//! The §3.4 integer *function* protocol: quotient and remainder by a
//! constant, under the integer-based output convention.
//!
//! The paper's example computes `f(m) = ⌊m/3⌋` where `m` is the number of
//! agents with input `1`. Each agent's state is a pair `(i, j)`; the
//! population-wide sums `r = Σᵢ` and `q = Σⱼ` satisfy the invariant
//! `m = r + k·q` throughout, and transitions drain `r` below `k`, leaving
//! `q = ⌊m/k⌋`. [`QuotientProtocol`] generalizes from `3` to any `k ≥ 2`.

use pp_core::Protocol;

/// Stably computes the pair `(m mod k, ⌊m/k⌋)` of the number `m` of `1`
/// inputs, diffusely: the quotient is the sum of all agents' output values
/// (integer output convention), and the remainder is the sum of the
/// first state components.
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_core::convention::integer_output;
/// use pp_protocols::QuotientProtocol;
///
/// let p = QuotientProtocol::new(3);
/// let mut sim = Simulation::from_counts(p, [(true, 14), (false, 6)]);
/// let mut rng = seeded_rng(4);
/// sim.run_until_silent(20_000, 2_000_000, &mut rng).unwrap();
/// assert_eq!(integer_output(&sim.output_histogram()), 14 / 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotientProtocol {
    k: u32,
}

/// State of [`QuotientProtocol`]: `(residue, quotient-bit)`.
///
/// Agents with `quotient_bit == 1` are frozen carriers of one unit of the
/// quotient; active agents carry residues `0 ≤ residue < k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuotState {
    /// First component `i` of the paper's `(i, j)` pair: residue share.
    pub residue: u32,
    /// Second component `j`: one accumulated unit of the quotient.
    pub quotient_bit: bool,
}

impl QuotientProtocol {
    /// Creates the protocol computing `(m mod k, ⌊m/k⌋)`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 2, "divisor k must be at least 2");
        Self { k }
    }

    /// The divisor `k`.
    pub fn divisor(&self) -> u32 {
        self.k
    }

    /// Decodes `(remainder, quotient)` from a state histogram.
    pub fn decode(&self, states: &[(QuotState, u64)]) -> (u64, u64) {
        let mut r = 0u64;
        let mut q = 0u64;
        for &(s, c) in states {
            r += u64::from(s.residue) * c;
            q += u64::from(s.quotient_bit) * c;
        }
        (r, q)
    }
}

impl Protocol for QuotientProtocol {
    type State = QuotState;
    type Input = bool;
    /// Each agent outputs its quotient bit as an integer; the represented
    /// output is the population sum (integer output convention, §3.4).
    type Output = i64;

    fn input(&self, &one: &bool) -> QuotState {
        QuotState { residue: u32::from(one), quotient_bit: false }
    }

    fn output(&self, q: &QuotState) -> i64 {
        i64::from(q.quotient_bit)
    }

    fn delta(&self, &p: &QuotState, &q: &QuotState) -> (QuotState, QuotState) {
        // Only pairs of active (non-frozen) agents interact.
        if p.quotient_bit || q.quotient_bit {
            return (p, q);
        }
        let sum = p.residue + q.residue;
        if sum >= self.k {
            // Emit one quotient token; keep the reduced residue.
            (
                QuotState { residue: sum - self.k, quotient_bit: false },
                QuotState { residue: 0, quotient_bit: true },
            )
        } else {
            (
                QuotState { residue: sum, quotient_bit: false },
                QuotState { residue: 0, quotient_bit: false },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::convention::integer_output;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn matches_paper_div3_transitions() {
        let p = QuotientProtocol::new(3);
        let s = |i: u32, j: bool| QuotState { residue: i, quotient_bit: j };
        // δ((1,0),(1,0)) = ((2,0),(0,0))
        assert_eq!(p.delta(&s(1, false), &s(1, false)), (s(2, false), s(0, false)));
        // i + k ≥ 3 ⇒ ((i+k−3,0),(0,1))
        assert_eq!(p.delta(&s(2, false), &s(2, false)), (s(1, false), s(0, true)));
        assert_eq!(p.delta(&s(2, false), &s(1, false)), (s(0, false), s(0, true)));
        // Frozen agents never change.
        assert_eq!(p.delta(&s(2, false), &s(0, true)), (s(2, false), s(0, true)));
        assert_eq!(p.delta(&s(0, true), &s(2, false)), (s(0, true), s(2, false)));
    }

    #[test]
    fn computes_quotients_across_divisors_and_inputs() {
        let mut rng = seeded_rng(42);
        for k in [2u32, 3, 5] {
            for m in [0u64, 1, 4, 9, 13] {
                let n = 20;
                let p = QuotientProtocol::new(k);
                let mut sim =
                    Simulation::from_counts(p, [(true, m), (false, n - m)]);
                sim.run_until_silent(30_000, 5_000_000, &mut rng)
                    .expect("must quiesce");
                let got = integer_output(&sim.output_histogram());
                assert_eq!(got, (m / u64::from(k)) as i64, "m={m} k={k}");
            }
        }
    }

    #[test]
    fn invariant_m_equals_r_plus_kq() {
        // Run and check the invariant m = r + k·q at every step.
        let k = 3u32;
        let p = QuotientProtocol::new(k);
        let m = 11u64;
        let mut sim = Simulation::from_counts(p, [(true, m), (false, 9)]);
        let mut rng = seeded_rng(7);
        for _ in 0..2000 {
            sim.step(&mut rng);
            let states: Vec<(QuotState, u64)> = sim
                .config()
                .support()
                .map(|(id, c)| (*sim.runtime().state(id), c))
                .collect();
            let (r, q) = QuotientProtocol::new(k).decode(&states);
            assert_eq!(r + u64::from(k) * q, m);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_k_below_2() {
        QuotientProtocol::new(1);
    }

    proptest::proptest! {
        #[test]
        fn prop_delta_preserves_token_value(i in 0u32..5, j in 0u32..5) {
            // value(state) = residue + k·quotient_bit is conserved by δ.
            let k = 5;
            let p = QuotientProtocol::new(k);
            let a = QuotState { residue: i, quotient_bit: false };
            let b = QuotState { residue: j, quotient_bit: false };
            let (a2, b2) = p.delta(&a, &b);
            let val = |s: QuotState| s.residue + k * u32::from(s.quotient_bit);
            proptest::prop_assert_eq!(val(a2) + val(b2), i + j);
        }
    }
}
