//! Protocol combinators: the Lemma 3 parallel product and output mapping.
//!
//! Lemma 3: if `A` stably computes `F` and `B` stably computes `G` (same
//! input alphabet), then for any 2-place Boolean function `ξ`, the parallel
//! composition with output `ξ(O_A, O_B)` stably computes `ξ(F, G)`.
//! Corollary 2 extends this to arbitrary Boolean formulas by iteration —
//! the route by which Theorem 5 assembles Presburger predicates from the
//! Lemma 5 atoms.

use std::fmt;
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;

use pp_core::Protocol;

/// The Lemma 3 parallel product of two protocols sharing an input alphabet,
/// with outputs combined by `ξ`.
///
/// Each agent runs both protocols side by side: the state is the pair of
/// component states and one interaction performs one interaction of each
/// component.
///
/// # Example
///
/// "More 1s than 0s AND an odd number of 1s":
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::{majority, parity, ProductProtocol};
///
/// let both = ProductProtocol::new(majority(), parity(), |&a: &bool, &b: &bool| a && b);
/// let mut sim = Simulation::from_counts(both, [(0usize, 4), (1usize, 7)]);
/// let mut rng = seeded_rng(2);
/// assert!(sim.measure_stabilization(&true, 400_000, &mut rng).converged());
/// ```
#[derive(Clone, Copy)]
pub struct ProductProtocol<A, B, C, Y> {
    a: A,
    b: B,
    combine: C,
    _marker: PhantomData<fn() -> Y>,
}

impl<A, B, C, Y> ProductProtocol<A, B, C, Y>
where
    A: Protocol,
    B: Protocol<Input = A::Input>,
    C: Fn(&A::Output, &B::Output) -> Y,
{
    /// Composes `a` and `b` in parallel, combining outputs with `combine`.
    pub fn new(a: A, b: B, combine: C) -> Self {
        Self { a, b, combine, _marker: PhantomData }
    }

    /// The first component protocol.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second component protocol.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: Debug, B: Debug, C, Y> Debug for ProductProtocol<A, B, C, Y> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProductProtocol")
            .field("a", &self.a)
            .field("b", &self.b)
            .finish_non_exhaustive()
    }
}

impl<A, B, C, Y> Protocol for ProductProtocol<A, B, C, Y>
where
    A: Protocol,
    B: Protocol<Input = A::Input>,
    C: Fn(&A::Output, &B::Output) -> Y,
    Y: Clone + Eq + Hash + Debug,
{
    type State = (A::State, B::State);
    type Input = A::Input;
    type Output = Y;

    fn input(&self, x: &A::Input) -> Self::State {
        (self.a.input(x), self.b.input(x))
    }

    fn output(&self, (qa, qb): &Self::State) -> Y {
        (self.combine)(&self.a.output(qa), &self.b.output(qb))
    }

    fn delta(&self, (pa, pb): &Self::State, (qa, qb): &Self::State) -> (Self::State, Self::State) {
        let (pa2, qa2) = self.a.delta(pa, qa);
        let (pb2, qb2) = self.b.delta(pb, qb);
        ((pa2, pb2), (qa2, qb2))
    }
}

/// Post-composes a protocol's output function with `f` — e.g. negation,
/// giving Boolean closure under `¬` without touching the transition
/// structure.
///
/// # Example
///
/// ```
/// use pp_core::Protocol;
/// use pp_protocols::combine::MapOutput;
/// use pp_protocols::majority;
///
/// // "At most as many 1s as 0s" = NOT majority.
/// let not_majority = MapOutput::new(majority(), |&b: &bool| !b);
/// let s = not_majority.input(&0usize);
/// assert_eq!(not_majority.output(&s), true);
/// ```
#[derive(Clone, Copy)]
pub struct MapOutput<P, F, Y> {
    inner: P,
    f: F,
    _marker: PhantomData<fn() -> Y>,
}

impl<P, F, Y> MapOutput<P, F, Y>
where
    P: Protocol,
    F: Fn(&P::Output) -> Y,
{
    /// Wraps `inner`, mapping each output through `f`.
    pub fn new(inner: P, f: F) -> Self {
        Self { inner, f, _marker: PhantomData }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Debug, F, Y> Debug for MapOutput<P, F, Y> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapOutput").field("inner", &self.inner).finish_non_exhaustive()
    }
}

impl<P, F, Y> Protocol for MapOutput<P, F, Y>
where
    P: Protocol,
    F: Fn(&P::Output) -> Y,
    Y: Clone + Eq + Hash + Debug,
{
    type State = P::State;
    type Input = P::Input;
    type Output = Y;

    fn input(&self, x: &P::Input) -> P::State {
        self.inner.input(x)
    }

    fn output(&self, q: &P::State) -> Y {
        (self.f)(&self.inner.output(q))
    }

    fn delta(&self, p: &P::State, q: &P::State) -> (P::State, P::State) {
        self.inner.delta(p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::{majority, parity};
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn product_projections_are_component_transitions() {
        let prod = ProductProtocol::new(majority(), parity(), |&a: &bool, &b: &bool| (a, b));
        let p = prod.input(&1usize);
        let q = prod.input(&0usize);
        let ((pa2, pb2), (qa2, qb2)) = prod.delta(&p, &q);
        let (ea, eqa) = majority().delta(&p.0, &q.0);
        let (eb, eqb) = parity().delta(&p.1, &q.1);
        assert_eq!((pa2, qa2), (ea, eqa));
        assert_eq!((pb2, qb2), (eb, eqb));
    }

    #[test]
    fn and_of_majority_and_parity() {
        let mut rng = seeded_rng(5);
        // 7 ones vs 4 zeros: majority yes, odd yes → true.
        let mk = || ProductProtocol::new(majority(), parity(), |&a: &bool, &b: &bool| a && b);
        let mut sim = Simulation::from_counts(mk(), [(0usize, 4), (1usize, 7)]);
        assert!(sim.measure_stabilization(&true, 300_000, &mut rng).converged());
        // 8 ones vs 4 zeros: majority yes, odd no → false.
        let mut sim = Simulation::from_counts(mk(), [(0usize, 4), (1usize, 8)]);
        assert!(sim.measure_stabilization(&false, 300_000, &mut rng).converged());
    }

    #[test]
    fn xor_combination() {
        let mut rng = seeded_rng(6);
        let mk = || ProductProtocol::new(majority(), parity(), |&a: &bool, &b: &bool| a ^ b);
        // 3 ones vs 5 zeros: majority no, odd yes → true.
        let mut sim = Simulation::from_counts(mk(), [(0usize, 5), (1usize, 3)]);
        assert!(sim.measure_stabilization(&true, 300_000, &mut rng).converged());
    }

    #[test]
    fn map_output_negates() {
        let mut rng = seeded_rng(7);
        let not_major = MapOutput::new(majority(), |&b: &bool| !b);
        let mut sim = Simulation::from_counts(not_major, [(0usize, 6), (1usize, 5)]);
        assert!(sim.measure_stabilization(&true, 300_000, &mut rng).converged());
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let prod = ProductProtocol::new(majority(), parity(), |&a: &bool, &b: &bool| a && b);
        assert!(!format!("{prod:?}").is_empty());
        let m = MapOutput::new(majority(), |&b: &bool| !b);
        assert!(!format!("{m:?}").is_empty());
    }
}
