//! Exact discrete samplers for count-based simulation.
//!
//! The batched engine ([`crate::batch`]) replaces Θ(√n) individual pair
//! draws by a handful of draws from classical discrete distributions over
//! the state counts of a [`CountConfig`](crate::CountConfig):
//!
//! * [`binomial`] — `Binomial(n, p)`, used by the conditional-binomial
//!   multinomial decomposition;
//! * [`hypergeometric`] — draws *without replacement*, the workhorse for
//!   sampling agent states from a finite population;
//! * [`multinomial_into`] — a multinomial vector via the chain of
//!   conditional binomials `xᵢ ~ Binomial(m_rem, wᵢ / w_rem)`;
//! * [`multivariate_hypergeometric_into`] — the without-replacement
//!   analogue via conditional hypergeometrics.
//!
//! # Algorithms
//!
//! Every sampler consumes exactly **one** uniform word of the RNG stream
//! per univariate draw (inversion), which keeps batched runs replayable and
//! cheap:
//!
//! * small-mean draws use bottom-up inversion on the pmf recurrence
//!   (expected `O(mean)` arithmetic, no transcendental calls);
//! * large-mean draws use **mode-centered inversion inside the normal-scale
//!   window**: the pmf at the mode is evaluated once through a Stirling
//!   [`ln_gamma`], then probability is accumulated outward (mode, mode±1,
//!   mode±2, …) by the exact pmf ratio recurrences until the target uniform
//!   is crossed. The walk is cut off where the normal-scale tail mass drops
//!   below f64 resolution (≈ ±40σ), so expected work is `O(σ)` — `O(n¼)`
//!   for the batch engine's √n-sized draws.
//!
//! Both paths invert the *exact* pmf, so the sampled laws are exact up to
//! f64 rounding (relative pmf error ≲ 1e-12 from the Stirling series);
//! there is no normal-approximation bias.

use rand::Rng;

/// Natural log of the gamma function, Stirling series with argument shift.
///
/// Accurate to ~1e-13 relative for all `x ≥ 1`; used to evaluate pmfs at
/// the mode. Only defined for positive `x`.
pub fn ln_gamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    // Shift x above 10 where the Stirling series converges fast:
    // ln Γ(x) = ln Γ(x + k) − Σ_{i=0}^{k−1} ln(x + i).
    let mut shift = 0.0;
    while x < 10.0 {
        shift -= x.ln();
        x += 1.0;
    }
    const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Stirling series: 1/12x − 1/360x³ + 1/1260x⁵ − 1/1680x⁷.
    let series = inv
        * (1.0 / 12.0 + inv2 * (-1.0 / 360.0 + inv2 * (1.0 / 1260.0 - inv2 / 1680.0)));
    shift + (x - 0.5) * x.ln() - x + LN_SQRT_2PI + series
}

/// Largest argument served by the memoized [`ln_factorial`] table. Batch
/// draws are √n-sized, so their small pmf arguments (the draw counts) hit
/// the table while the population-sized ones fall through to [`ln_gamma`].
const LN_FACT_TABLE: usize = 1024;

fn ln_factorial_table() -> &'static [f64; LN_FACT_TABLE + 1] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACT_TABLE + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; LN_FACT_TABLE + 1];
        for n in 2..=LN_FACT_TABLE {
            t[n] = t[n - 1] + (n as f64).ln();
        }
        t
    })
}

/// `ln n!`: table lookup for small `n`, [`ln_gamma`] beyond.
#[inline]
pub fn ln_factorial(n: u64) -> f64 {
    if n <= LN_FACT_TABLE as u64 {
        ln_factorial_table()[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; `-inf` when `k > n`.
#[inline]
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Mean threshold below which bottom-up inversion beats the mode-centered
/// walk (no `ln_gamma` evaluation, tiny constant).
const SMALL_MEAN: f64 = 32.0;

/// Draws `X ~ Binomial(n, p)`: the number of successes in `n` independent
/// trials of probability `p`. Exactly one uniform is consumed (zero when
/// the outcome is deterministic).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn binomial(rng: &mut (impl Rng + ?Sized), n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial probability {p} not in [0, 1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work on the lighter tail.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let u = rng.gen_f64();
    let mean = n as f64 * p;
    if mean <= SMALL_MEAN {
        // Union bound: P(X ≥ 1) ≤ E[X], so P(X = 0) ≥ 1 − mean and
        // `u < 1 − mean` certifies X = 0 without evaluating the pmf.
        if u < 1.0 - mean {
            return 0;
        }
        // Bottom-up inversion: p₀ = (1−p)ⁿ, then
        // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p).
        let ratio = p / (1.0 - p);
        let mut pk = (n as f64 * (-p).ln_1p()).exp();
        let mut cum = pk;
        let mut k = 0u64;
        while u >= cum && k < n {
            pk *= (n - k) as f64 / (k + 1) as f64 * ratio;
            k += 1;
            cum += pk;
            if pk <= f64::MIN_POSITIVE && u >= cum {
                // Float tail exhausted: the remaining mass is below f64
                // resolution; clamp to the current point.
                break;
            }
        }
        return k.min(n);
    }
    // Mode-centered inversion (large mean).
    let mode = (((n + 1) as f64) * p).floor().min(n as f64) as u64;
    let ln_pm = ln_choose(n, mode)
        + mode as f64 * p.ln()
        + (n - mode) as f64 * (-p).ln_1p();
    let pm = ln_pm.exp();
    let ratio = p / (1.0 - p);
    mode_inversion(
        u,
        mode,
        0,
        n,
        pm,
        // pmf(k+1)/pmf(k)
        |k| (n - k) as f64 / (k + 1) as f64 * ratio,
        // pmf(k−1)/pmf(k)
        |k| k as f64 / (n - k + 1) as f64 / ratio,
    )
}

/// Draws `X ~ Hypergeometric(total, successes, draws)`: the number of
/// successes in `draws` draws *without replacement* from a population of
/// `total` items containing `successes` successes. Consumes at most one
/// uniform.
///
/// # Panics
///
/// Panics if `successes > total` or `draws > total`.
pub fn hypergeometric(
    rng: &mut (impl Rng + ?Sized),
    total: u64,
    successes: u64,
    draws: u64,
) -> u64 {
    assert!(successes <= total, "successes {successes} > total {total}");
    assert!(draws <= total, "draws {draws} > total {total}");
    // Support: lo ≤ X ≤ hi.
    let lo = draws.saturating_sub(total - successes);
    let hi = draws.min(successes);
    if lo == hi {
        return lo;
    }
    // Symmetry reductions onto the lighter tail: swap successes/failures
    // (X ↦ draws − X) so the success fraction is ≤ 1/2, then swap
    // draws/successes (the pmf is symmetric in them).
    if 2 * successes > total {
        return draws - hypergeometric(rng, total, total - successes, draws);
    }
    if draws < successes {
        // Sample with the smaller of (draws, successes) as the draw count:
        // identical law, shorter inversion walk.
        return hypergeometric(rng, total, draws, successes);
    }
    let u = rng.gen_f64();
    let mean = draws as f64 * successes as f64 / total as f64;
    if lo == 0 && mean <= SMALL_MEAN {
        // Union bound: P(X ≥ 1) ≤ E[X], so P(X = 0) ≥ 1 − mean and
        // `u < 1 − mean` certifies X = 0 without evaluating the pmf —
        // the common case for the batch engine's many tiny conditional
        // draws.
        if u < 1.0 - mean {
            return 0;
        }
        // Bottom-up inversion: p₀ = C(total−succ, draws) / C(total, draws),
        // pmf(x+1) = pmf(x) · (succ−x)(draws−x) / ((x+1)(total−succ−draws+x+1)).
        // For few successes, p₀ = Π_{i<succ} (total−draws−i)/(total−i) is a
        // handful of multiplications; otherwise expand the binomials —
        // the `ln draws!` terms cancel, leaving four `ln_factorial`s.
        let mut px = if successes <= 64 {
            let mut p = 1.0f64;
            for i in 0..successes {
                p *= (total - draws - i) as f64 / (total - i) as f64;
            }
            p
        } else {
            (ln_factorial(total - successes) - ln_factorial(total - successes - draws)
                - ln_factorial(total)
                + ln_factorial(total - draws))
            .exp()
        };
        let mut cum = px;
        let mut x = 0u64;
        while u >= cum && x < hi {
            let num = (successes - x) as f64 * (draws - x) as f64;
            let den = (x + 1) as f64 * (total - successes - draws + x + 1) as f64;
            px *= num / den;
            x += 1;
            cum += px;
            if px <= f64::MIN_POSITIVE && u >= cum {
                break;
            }
        }
        return x.min(hi);
    }
    // Mode-centered inversion.
    let mode_f = ((draws + 1) as f64 * (successes + 1) as f64) / (total + 2) as f64;
    let mode = (mode_f.floor() as u64).clamp(lo, hi);
    let ln_pm = ln_choose(successes, mode) + ln_choose(total - successes, draws - mode)
        - ln_choose(total, draws);
    let pm = ln_pm.exp();
    mode_inversion(
        u,
        mode,
        lo,
        hi,
        pm,
        // pmf(x+1)/pmf(x); sums are ordered so `x ≥ lo` keeps the
        // failure-slot term `total + x + 1 − successes − draws ≥ 1`
        // non-negative in u64 arithmetic.
        |x| {
            (successes - x) as f64 * (draws - x) as f64
                / ((x + 1) as f64 * (total + x + 1 - successes - draws) as f64)
        },
        // pmf(x−1)/pmf(x)
        |x| {
            x as f64 * (total + x - successes - draws) as f64
                / ((successes - x + 1) as f64 * (draws - x + 1) as f64)
        },
    )
}

/// Inverts a unimodal pmf by accumulating probability outward from the
/// mode, always stepping toward the **heavier** of the two frontier points
/// (greedy order). Any fixed enumeration order inverts the same law; the
/// greedy one accumulates mass fastest, so the expected number of visited
/// points is minimized (still `O(σ)`). `up(k)` and `down(k)` are the exact
/// pmf ratio recurrences. If float rounding exhausts the representable mass
/// before crossing `u` (probability ≲ 1e-12), the nearest still-open
/// endpoint is returned.
fn mode_inversion(
    u: f64,
    mode: u64,
    lo: u64,
    hi: u64,
    pmf_mode: f64,
    up: impl Fn(u64) -> f64,
    down: impl Fn(u64) -> f64,
) -> u64 {
    let mut cum = pmf_mode;
    if u < cum {
        return mode;
    }
    let (mut k_up, mut k_down) = (mode, mode);
    // Frontier masses: the pmf at the next unvisited point on each side,
    // zero once that side's support ends or its mass underflows.
    let mut p_up = if k_up < hi { pmf_mode * up(k_up) } else { 0.0 };
    let mut p_down = if k_down > lo { pmf_mode * down(k_down) } else { 0.0 };
    loop {
        if p_up >= p_down {
            if p_up <= 0.0 {
                // Both sides exhausted (support ends or mass underflowed):
                // return the closest open endpoint.
                return if k_up < hi { k_up + 1 } else { k_down.max(lo) };
            }
            k_up += 1;
            cum += p_up;
            if u < cum {
                return k_up;
            }
            p_up = if k_up < hi { p_up * up(k_up) } else { 0.0 };
        } else {
            k_down -= 1;
            cum += p_down;
            if u < cum {
                return k_down;
            }
            p_down = if k_down > lo { p_down * down(k_down) } else { 0.0 };
        }
    }
}

/// Samples a multinomial vector: `n` independent draws over categories with
/// the given non-negative `weights`, written into `out` (cleared first).
/// Decomposed as conditional binomials `xᵢ ~ Binomial(m_rem, wᵢ / w_rem)`.
///
/// # Panics
///
/// Panics if `n > 0` and the weights sum to zero, or any weight is
/// negative or non-finite.
pub fn multinomial_into(
    rng: &mut (impl Rng + ?Sized),
    n: u64,
    weights: &[f64],
    out: &mut Vec<u64>,
) {
    out.clear();
    let mut w_rem: f64 = weights.iter().sum();
    assert!(
        w_rem.is_finite() && weights.iter().all(|&w| w >= 0.0),
        "multinomial weights must be non-negative and finite"
    );
    assert!(n == 0 || w_rem > 0.0, "cannot draw {n} items from zero total weight");
    let mut m_rem = n;
    for (i, &w) in weights.iter().enumerate() {
        if m_rem == 0 {
            out.push(0);
            continue;
        }
        let x = if i + 1 == weights.len() || w >= w_rem {
            m_rem
        } else {
            binomial(rng, m_rem, (w / w_rem).min(1.0))
        };
        out.push(x);
        m_rem -= x;
        w_rem -= w;
    }
    debug_assert_eq!(m_rem, 0, "multinomial failed to place every draw");
}

/// Samples a multivariate hypergeometric vector: `draws` items taken
/// without replacement from a population whose category sizes are `counts`,
/// written into `out` (cleared first). Decomposed as conditional
/// hypergeometrics.
///
/// # Panics
///
/// Panics if `draws` exceeds the population `Σ counts`.
pub fn multivariate_hypergeometric_into(
    rng: &mut (impl Rng + ?Sized),
    counts: &[u64],
    draws: u64,
    out: &mut Vec<u64>,
) {
    out.clear();
    let mut n_rem: u64 = counts.iter().sum();
    assert!(draws <= n_rem, "cannot draw {draws} agents from population {n_rem}");
    let mut m_rem = draws;
    for &c in counts {
        if m_rem == 0 || c == 0 {
            out.push(0);
            n_rem -= c;
            continue;
        }
        let x = if c == n_rem { m_rem } else { hypergeometric(rng, n_rem, c, m_rem) };
        out.push(x);
        n_rem -= c;
        m_rem -= x;
    }
    debug_assert_eq!(m_rem, 0, "hypergeometric sweep failed to place every draw");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut f = 1.0f64;
        for n in 1u64..20 {
            f *= n as f64;
            let err = (ln_gamma(n as f64 + 1.0) - f.ln()).abs();
            assert!(err < 1e-11, "ln_gamma({}) off by {err}", n + 1);
        }
        // Large argument sanity: Stirling regime.
        let big = ln_factorial(1_000_000);
        // Known: ln(10⁶!) ≈ 1.2815518e7.
        assert!((big / 1.281_551_8e7 - 1.0).abs() < 1e-6, "{big}");
    }

    #[test]
    fn binomial_edges() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..100 {
            let x = binomial(&mut rng, 7, 0.5);
            assert!(x <= 7);
        }
    }

    /// χ²-style check of the empirical pmf against the exact one.
    fn check_binomial_dist(n: u64, p: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 60_000usize;
        let mut hist = vec![0u64; n as usize + 1];
        for _ in 0..trials {
            hist[binomial(&mut rng, n, p) as usize] += 1;
        }
        // Exact pmf by recurrence.
        let mut pmf = vec![0.0f64; n as usize + 1];
        pmf[0] = (1.0 - p).powi(n as i32);
        for k in 0..n as usize {
            pmf[k + 1] = pmf[k] * (n - k as u64) as f64 / (k as f64 + 1.0) * p / (1.0 - p);
        }
        let mean_obs: f64 =
            hist.iter().enumerate().map(|(k, &c)| k as f64 * c as f64).sum::<f64>()
                / trials as f64;
        let mean_exp = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (mean_obs - mean_exp).abs() < 5.0 * sd / (trials as f64).sqrt(),
            "binomial({n},{p}) mean {mean_obs} vs {mean_exp}"
        );
        // Total-variation distance between empirical and exact.
        let tv: f64 = pmf
            .iter()
            .enumerate()
            .map(|(k, &q)| (hist[k] as f64 / trials as f64 - q).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.02, "binomial({n},{p}) TV {tv}");
    }

    #[test]
    fn binomial_small_path_distribution() {
        check_binomial_dist(12, 0.3, 1);
    }

    #[test]
    fn binomial_large_path_distribution() {
        // mean = 200 ⇒ mode-centered inversion path.
        check_binomial_dist(500, 0.4, 2);
    }

    #[test]
    fn binomial_heavy_p_uses_symmetry() {
        check_binomial_dist(40, 0.85, 3);
    }

    #[test]
    fn hypergeometric_edges_and_support() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(hypergeometric(&mut rng, 10, 0, 5), 0);
        assert_eq!(hypergeometric(&mut rng, 10, 10, 5), 5);
        assert_eq!(hypergeometric(&mut rng, 10, 4, 0), 0);
        assert_eq!(hypergeometric(&mut rng, 10, 4, 10), 4);
        for _ in 0..200 {
            // Support is max(0, m−(N−K)) ..= min(m, K) = 2..=6.
            let x = hypergeometric(&mut rng, 10, 6, 6);
            assert!((2..=6).contains(&x), "{x} outside support");
        }
    }

    fn check_hypergeometric_dist(total: u64, successes: u64, draws: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 60_000usize;
        let hi = draws.min(successes) as usize;
        let mut hist = vec![0u64; hi + 1];
        for _ in 0..trials {
            hist[hypergeometric(&mut rng, total, successes, draws) as usize] += 1;
        }
        let lo = draws.saturating_sub(total - successes);
        let mut pmf = vec![0.0f64; hi + 1];
        pmf[lo as usize] =
            (ln_choose(successes, lo) + ln_choose(total - successes, draws - lo)
                - ln_choose(total, draws))
            .exp();
        for x in lo as usize..hi {
            let xu = x as u64;
            pmf[x + 1] = pmf[x] * (successes - xu) as f64 * (draws - xu) as f64
                / ((xu + 1) as f64 * (total + xu + 1 - successes - draws) as f64);
        }
        let tv: f64 = pmf
            .iter()
            .enumerate()
            .map(|(k, &q)| (hist[k] as f64 / trials as f64 - q).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.02, "hypergeometric({total},{successes},{draws}) TV {tv}");
    }

    #[test]
    fn hypergeometric_small_path_distribution() {
        check_hypergeometric_dist(60, 20, 12, 5);
    }

    #[test]
    fn hypergeometric_large_path_distribution() {
        // mean = 500·2000/10000 = 100 ⇒ mode-centered path.
        check_hypergeometric_dist(10_000, 2_000, 500, 6);
    }

    #[test]
    fn hypergeometric_tight_support_lower_bound() {
        // lo = 30−(40−25) = 15 > 0 forces the mode path with clamping.
        check_hypergeometric_dist(40, 25, 30, 7);
    }

    #[test]
    fn multinomial_places_all_draws() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = Vec::new();
        for _ in 0..200 {
            multinomial_into(&mut rng, 100, &[1.0, 2.0, 0.0, 7.0], &mut out);
            assert_eq!(out.len(), 4);
            assert_eq!(out.iter().sum::<u64>(), 100);
            assert_eq!(out[2], 0, "zero-weight category must receive nothing");
        }
        multinomial_into(&mut rng, 0, &[1.0, 1.0], &mut out);
        assert_eq!(out, &[0, 0]);
    }

    #[test]
    fn multinomial_proportions_track_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut out = Vec::new();
        let mut sums = [0u64; 3];
        for _ in 0..2_000 {
            multinomial_into(&mut rng, 60, &[1.0, 2.0, 3.0], &mut out);
            for (s, &x) in sums.iter_mut().zip(out.iter()) {
                *s += x;
            }
        }
        let total: u64 = sums.iter().sum();
        for (i, &s) in sums.iter().enumerate() {
            let frac = s as f64 / total as f64;
            let expect = (i + 1) as f64 / 6.0;
            assert!((frac - expect).abs() < 0.01, "category {i}: {frac} vs {expect}");
        }
    }

    #[test]
    fn multivariate_hypergeometric_respects_counts() {
        let mut rng = StdRng::seed_from_u64(10);
        let counts = [5u64, 0, 12, 3];
        let mut out = Vec::new();
        for _ in 0..500 {
            multivariate_hypergeometric_into(&mut rng, &counts, 11, &mut out);
            assert_eq!(out.len(), 4);
            assert_eq!(out.iter().sum::<u64>(), 11);
            for (x, c) in out.iter().zip(counts.iter()) {
                assert!(x <= c, "drew {x} from category of {c}");
            }
        }
        // Drawing the whole population returns the counts themselves.
        multivariate_hypergeometric_into(&mut rng, &counts, 20, &mut out);
        assert_eq!(out, counts.to_vec());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn multivariate_hypergeometric_overdraw_panics() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        multivariate_hypergeometric_into(&mut rng, &[1, 2], 4, &mut out);
    }

    #[test]
    fn binomial_extreme_probabilities_stay_in_range() {
        // The mean-field validation sweeps push inversion into regimes the
        // batch engine rarely visits: p within ulps of {0, 1} at large n.
        let mut rng = StdRng::seed_from_u64(20);
        for _ in 0..500 {
            // mean = 10⁻³: the union-bound short-circuit fires almost
            // always; when it doesn't, the walk must stay on the support.
            let x = binomial(&mut rng, 1_000_000_000, 1e-12);
            assert!(x <= 3, "p=1e-12 drew {x}");
            // Complement symmetry at p ≈ 1.
            let y = binomial(&mut rng, 1_000_000_000, 1.0 - 1e-12);
            assert!(y >= 1_000_000_000 - 3, "p≈1 drew {y}");
        }
        // Subnormal-probability draws must not loop or panic.
        let z = binomial(&mut rng, u64::MAX / 2, f64::MIN_POSITIVE);
        assert_eq!(z, 0);
    }

    #[test]
    fn hypergeometric_near_degenerate_populations() {
        let mut rng = StdRng::seed_from_u64(21);
        // One success in a huge population: X ∈ {0, 1}, P(X=1) = draws/total.
        let mut ones = 0u64;
        for _ in 0..4_000 {
            let x = hypergeometric(&mut rng, 1_000_000, 1, 500_000);
            assert!(x <= 1);
            ones += x;
        }
        let frac = ones as f64 / 4_000.0;
        assert!((frac - 0.5).abs() < 0.05, "P(X=1) ≈ 0.5, got {frac}");
        // All-but-one successes: complement of the above.
        let x = hypergeometric(&mut rng, 1_000_000, 999_999, 500_000);
        assert!(x >= 499_999);
        // Single-item draws from a two-item population.
        for _ in 0..50 {
            assert!(hypergeometric(&mut rng, 2, 1, 1) <= 1);
        }
    }

    #[test]
    fn multivariate_hypergeometric_single_occupied_state() {
        // A population concentrated on one state (n with one occupied
        // state): every sweep must route all draws there deterministically.
        let mut a = StdRng::seed_from_u64(22);
        let mut b = StdRng::seed_from_u64(22);
        let counts = [0u64, 1_000_000_000_000, 0, 0];
        let mut out = Vec::new();
        for draws in [0u64, 1, 31, 1_000_000] {
            multivariate_hypergeometric_into(&mut a, &counts, draws, &mut out);
            assert_eq!(out, &[0, draws, 0, 0]);
        }
        // Degenerate sweeps are certain: no randomness may be consumed.
        assert_eq!(a.next_u64(), b.next_u64(), "degenerate sweep burned a word");
    }

    #[test]
    fn samplers_consume_at_most_one_uniform_per_draw() {
        // Replayability contract: a univariate draw costs one RNG word.
        let mut a = StdRng::seed_from_u64(12);
        let mut b = StdRng::seed_from_u64(12);
        let _ = binomial(&mut a, 1_000, 0.25);
        b.next_u64();
        assert_eq!(a, b, "binomial must consume exactly one word");
        let _ = hypergeometric(&mut a, 1_000, 300, 100);
        b.next_u64();
        assert_eq!(a, b, "hypergeometric must consume exactly one word");
    }
}
