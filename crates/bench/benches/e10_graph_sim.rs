//! E10 — Theorem 7 / Fig. 1: the baton simulator runs complete-graph
//! protocols on arbitrary weakly-connected graphs.
//!
//! Majority on the complete graph (bare protocol) vs the transformed
//! protocol A′ on complete / line / cycle / star / random graphs. The
//! paper proves correctness, not speed — the measured slowdown factors
//! quantify the price of generality.
//!
//! Both sides route through the unified [`pp_core::spec`] dispatcher:
//! the baseline is a sequential `run_counts` ensemble, the graph cases
//! are `run_agents` ensembles over each topology's sampler — the same
//! seams `pp-server` resolves `RunSpec` requests through. Offset seeding
//! (`seed_mode: "offset"`) keeps trial `i` on the former `seeded_rng(i)`
//! stream so the measured means are unchanged from the historical loops.

use pp_bench::{fmt, print_header};
use pp_core::seeded_rng;
use pp_core::spec::{
    run_agents, run_counts, EngineSel, ProtocolRef, RunOutcome, RunSpec, SeedModeSpec,
};
use pp_graphs as graphs;
use pp_protocols::{majority, GraphSimulator};

/// The shared spec shape: an offset-seeded stabilization ensemble.
fn spec_for(trials: u64, master_seed: u64, horizon: u64, engine: EngineSel) -> RunSpec {
    let mut spec = RunSpec::new(
        ProtocolRef::Name { name: "majority".into(), params: vec![] },
        // Population mirrors the dispatched pair order (0s first) — the
        // order the historical trial loops interned.
        vec![],
        master_seed,
    );
    spec.seed_mode = SeedModeSpec::Offset;
    spec.engine = engine;
    spec.trials = trials;
    spec.horizon = Some(horizon);
    spec
}

fn main() {
    let n = 10usize;
    let ones = 6usize;
    let expected = true;
    println!("\nE10: Theorem 7 — majority via the Fig. 1 simulator, n = {n}, {ones} ones\n");
    print_header(&["graph", "edges", "runs", "E[stabilize]", "slowdown"], &[16, 6, 5, 14, 10]);

    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < ones)).collect();
    let trials = if pp_bench::smoke() { 3u64 } else { 30u64 };

    // Baseline: bare protocol on the complete graph, through the
    // sequential count engine. Offset seeding keeps trial `i` on the
    // former `seeded_rng(i)` stream so the means are unchanged.
    let mut base_spec = spec_for(trials, 0, 400_000, EngineSel::Sequential);
    base_spec.population =
        vec![("0".into(), (n - ones) as u64), ("1".into(), ones as u64)];
    let base_outcome = run_counts(
        &base_spec,
        &majority(),
        &[(0usize, (n - ones) as u64), (1usize, ones as u64)],
        &expected,
    )
    .expect("baseline dispatch");
    let base_report = match base_outcome {
        RunOutcome::Ensemble(rep) => rep,
        other => panic!("expected an ensemble outcome, got {other:?}"),
    };
    assert_eq!(base_report.converged(), trials, "baseline stabilizes");
    let base = base_report.mean();
    println!(
        "{:>16} {:>6} {:>5} {:>14} {:>10}",
        "bare (complete)",
        n * (n - 1),
        trials,
        fmt(base),
        fmt(1.0)
    );

    let mut rng0 = seeded_rng(99);
    let cases: Vec<(&str, graphs::InteractionGraph)> = vec![
        ("A' complete", graphs::complete(n)),
        ("A' line", graphs::undirected_line(n)),
        ("A' cycle", graphs::undirected_cycle(n)),
        ("A' star", graphs::star(n)),
        ("A' random(0.3)", graphs::erdos_renyi_connected(n, 0.3, &mut rng0)),
    ];
    for (name, g) in cases {
        let spec = spec_for(trials, 1000, 4_000_000, EngineSel::Agents);
        let outcome = run_agents(
            &spec,
            &GraphSimulator::new(majority()),
            &inputs,
            &expected,
            || g.scheduler(),
        )
        .expect("graph dispatch");
        let report = match outcome {
            RunOutcome::Ensemble(rep) => rep,
            other => panic!("expected an ensemble outcome, got {other:?}"),
        };
        assert_eq!(report.converged(), trials, "{name} stabilizes");
        let m = report.mean();
        println!(
            "{:>16} {:>6} {:>5} {:>14} {:>10}",
            name,
            g.edge_count(),
            trials,
            fmt(m),
            fmt(m / base)
        );
    }

    println!("\npaper: A' stably computes the predicate on every weakly-connected graph;");
    println!("sparser graphs pay a polynomial slowdown (state tokens random-walk)\n");
}
