//! End-to-end tests over real sockets: boot `pp-server` workers on
//! loopback, drive them with the bundled client, and hard-assert the
//! service contract — byte-reproducible seeded reports across fresh
//! server instances and thread counts, and structured (never panicking)
//! errors for malformed or oversized requests.

use pp_server::client;
use pp_server::{serve, Server, ServerConfig};

fn boot(workers: usize) -> Server {
    serve(
        "127.0.0.1:0",
        ServerConfig { threads: workers, ..ServerConfig::default() },
    )
    .expect("bind loopback")
}

const ENSEMBLE_SPEC_T1: &str = r#"{
    "protocol": {"formula": "a > b"},
    "population": {"a": 6, "b": 4},
    "seed": 42,
    "engine": "batched",
    "trials": 8,
    "threads": 1,
    "horizon": 30000
}"#;

const ENSEMBLE_SPEC_T2: &str = r#"{
    "protocol": {"formula": "a > b"},
    "population": {"a": 6, "b": 4},
    "seed": 42,
    "engine": "batched",
    "trials": 8,
    "threads": 2,
    "horizon": 30000
}"#;

#[test]
fn reports_byte_identical_across_instances_and_thread_counts() {
    // Two fresh server processes-worth of state: separate listeners,
    // separate caches, different worker-pool sizes.
    let a = boot(1);
    let b = boot(4);

    let ra = client::post(a.addr(), "/v1/run", ENSEMBLE_SPEC_T1).unwrap();
    let rb = client::post(b.addr(), "/v1/run", ENSEMBLE_SPEC_T2).unwrap();
    assert_eq!(ra.status, 200, "body: {}", ra.text());
    assert_eq!(rb.status, 200, "body: {}", rb.text());
    // The hard guarantee: same seeded request → identical report BYTES,
    // on a fresh instance, at a different ensemble thread count.
    assert_eq!(ra.body, rb.body);

    // And across a restart of the same configuration.
    let a2 = boot(1);
    let ra2 = client::post(a2.addr(), "/v1/run", ENSEMBLE_SPEC_T1).unwrap();
    assert_eq!(ra.body, ra2.body);

    let report = ra.text();
    assert!(report.starts_with("{\"schema\":\"pp-run/v1\""));
    assert!(report.contains("\"ground_truth\":true"));

    a.shutdown();
    b.shutdown();
    a2.shutdown();
}

#[test]
fn compile_cache_hit_is_byte_identical_and_reported() {
    let s = boot(2);
    let cold = client::post(s.addr(), "/v1/run", ENSEMBLE_SPEC_T1).unwrap();
    let warm = client::post(s.addr(), "/v1/run", ENSEMBLE_SPEC_T1).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(warm.status, 200);
    assert_eq!(cold.header("x-pp-cache"), Some("miss"));
    assert_eq!(warm.header("x-pp-cache"), Some("hit"));
    // Cache state must be invisible in the body.
    assert_eq!(cold.body, warm.body);

    let stats = client::get(s.addr(), "/v1/cache").unwrap();
    assert_eq!(stats.status, 200);
    let text = stats.text();
    assert!(text.contains("\"schema\":\"pp-cache/v1\""), "{text}");
    assert!(text.contains("\"hits\":1"), "{text}");
    assert!(text.contains("\"misses\":1"), "{text}");
    s.shutdown();
}

#[test]
fn malformed_and_oversized_requests_get_structured_errors() {
    let s = boot(2);
    let cases: &[(&str, u16, &str)] = &[
        // Unparseable JSON.
        ("{not json", 400, "parse_error"),
        // Typo'd field.
        (
            r#"{"protocol":{"name":"majority"},"population":{"0":2,"1":3},"sede":1}"#,
            400,
            "unknown_field",
        ),
        // Unknown protocol name.
        (
            r#"{"protocol":{"name":"no-such"},"population":{"0":2,"1":3}}"#,
            400,
            "unknown_protocol",
        ),
        // Unknown population symbol for the resolved protocol.
        (
            r#"{"protocol":{"name":"majority"},"population":{"yes":2,"no":3}}"#,
            400,
            "unknown_symbol",
        ),
        // Oversized population -> 413.
        (
            r#"{"protocol":{"name":"majority"},"population":{"0":99999999999,"1":3}}"#,
            413,
            "population_too_large",
        ),
        // Fault drop probability outside [0, 1) must be a structured
        // error, not the InteractionDrop constructor panic.
        (
            r#"{"protocol":{"name":"majority"},"population":{"0":2,"1":3},"faults":{"drop":1.5}}"#,
            400,
            "bad_field",
        ),
    ];
    for (body, want_status, want_code) in cases {
        let resp = client::post(s.addr(), "/v1/run", body).unwrap();
        assert_eq!(resp.status, *want_status, "request {body}: {}", resp.text());
        let text = resp.text();
        assert!(text.contains("\"schema\":\"pp-error/v1\""), "{text}");
        assert!(text.contains(&format!("\"code\":\"{want_code}\"")), "{text}");
    }

    // Unknown route and wrong method.
    let resp = client::get(s.addr(), "/v1/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::get(s.addr(), "/v1/run").unwrap();
    assert_eq!(resp.status, 404);

    // A body over the configured cap is refused, not buffered.
    let huge = format!(
        r#"{{"protocol":{{"name":"majority"}},"population":{{"0":2,"1":3}},"pad":"{}"}}"#,
        "x".repeat(2 << 20)
    );
    let resp = client::post(s.addr(), "/v1/run", &huge).unwrap();
    assert_eq!(resp.status, 413);
    assert!(resp.text().contains("body_too_large"));

    // After all of that abuse every worker is still alive.
    for _ in 0..4 {
        let health = client::get(s.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
    }
    s.shutdown();
}

#[test]
fn stream_endpoint_emits_jsonl_then_final_report() {
    let s = boot(2);
    let spec = r#"{
        "protocol": {"name": "parity"},
        "population": {"0": 4, "1": 3},
        "seed": 9,
        "horizon": 5000,
        "probe": {"kind": "jsonl", "stride": 50}
    }"#;
    let one = client::post(s.addr(), "/v1/stream", spec).unwrap();
    let two = client::post(s.addr(), "/v1/stream", spec).unwrap();
    assert_eq!(one.status, 200, "body: {}", one.text());
    assert_eq!(one.header("x-pp-body"), Some("jsonl"));
    // Streams are seeded runs too: byte-identical on replay.
    assert_eq!(one.body, two.body);

    let text = one.text();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "want events + summary + report, got {text}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
    }
    assert!(
        lines[lines.len() - 1].starts_with("{\"schema\":\"pp-run/v1\""),
        "missing final report line"
    );

    // Ensembles cannot stream; the error is structured.
    let bad = r#"{
        "protocol": {"name": "parity"},
        "population": {"0": 4, "1": 3},
        "trials": 4,
        "probe": {"kind": "jsonl"}
    }"#;
    let resp = client::post(s.addr(), "/v1/stream", bad).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("unsupported"));
    s.shutdown();
}

#[test]
fn protocols_endpoint_lists_registry_and_backends() {
    let s = boot(1);
    let resp = client::get(s.addr(), "/v1/protocols").unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    assert!(text.contains("\"majority\""), "{text}");
    assert!(text.contains("\"parity\""), "{text}");
    assert!(text.contains("\"approximate-majority\""), "{text}");
    assert!(text.contains("\"count-to-k\""), "{text}");
    assert!(text.contains("\"cooper-product\""), "{text}");
    s.shutdown();
}

#[test]
fn agents_mean_field_and_fault_requests_run_end_to_end() {
    let s = boot(2);

    // Agents engine over a line topology (Theorem 7 simulation).
    let agents = r#"{
        "protocol": {"name": "majority"},
        "population": {"1": 5, "0": 3},
        "seed": 3,
        "engine": "agents",
        "topology": {"kind": "line"},
        "horizon": 400000
    }"#;
    let resp = client::post(s.addr(), "/v1/run", agents).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let text = resp.text();
    assert!(text.contains("\"engine\":\"agents\""), "{text}");
    assert!(text.contains("\"edges\":"), "{text}");

    // Mean-field query.
    let mf = r#"{
        "protocol": {"name": "majority"},
        "population": {"1": 600, "0": 400},
        "engine": "mean-field",
        "mean_field": {"horizon": 50.0}
    }"#;
    let resp = client::post(s.addr(), "/v1/run", mf).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let one = resp.text();
    assert!(one.contains("\"kind\":\"mean-field\""), "{one}");
    assert!(one.contains("terminal_fractions"), "{one}");
    // Deterministic, and served from the drift cache the second time.
    let two = client::post(s.addr(), "/v1/run", mf).unwrap();
    assert_eq!(resp.body, two.body);

    // Fault ensemble.
    let faults = r#"{
        "protocol": {"name": "majority"},
        "population": {"1": 6, "0": 4},
        "seed": 11,
        "trials": 4,
        "horizon": 60000,
        "faults": {"crash": [[500, 1]]}
    }"#;
    let resp = client::post(s.addr(), "/v1/run", faults).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let text = resp.text();
    assert!(text.contains("\"kind\":\"faults\""), "{text}");
    assert!(text.contains("pp-mttr/v1"), "{text}");
    s.shutdown();
}
