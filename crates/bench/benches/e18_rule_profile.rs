//! E18 (observability, beyond the paper) — which rules dominate each phase
//! of a protocol's trajectory, measured with `pp_core::observe`.
//!
//! Phase-by-phase rule-firing analysis is the standard tool of the modern
//! population-protocol literature (e.g. Kosowski–Uznański's potential
//! arguments): a protocol's runtime decomposes into phases, each driven by
//! one dominant rule whose firing rate sets the phase's length. This
//! experiment reproduces that style of analysis on two protocols:
//!
//! * **3-state approximate majority** (60/40 split) runs in three phases:
//!   (1) *duel* — the opposing committed opinions erase each other into
//!   blanks, all four rules firing; (2) *recruitment* — the minority
//!   opinion is extinct, so only `(One, Blank) → (One, One)` can fire and
//!   the blanks are absorbed; (3) *quiescent tail* — no reactive pair
//!   remains, the effective-interaction ratio is exactly 0.
//! * **leader election** has a single rule, `(L, L) → (L, F)`, so its
//!   profile is a collapse curve instead: between successive halvings of
//!   the leader count the effective ratio falls quadratically (two leaders
//!   must meet), which is exactly why the last merge costs Θ(n²)
//!   interactions (§6: E[T] = (n−1)²).
//!
//! Alongside the tables, the run emits `BENCH_e18_rule_profile.json` with
//! one row per phase plus the trajectory samples of the majority run.

use pp_bench::{fmt, print_header, BenchReport, Value};
use pp_core::observe::{MetricsProbe, TrajectoryProbe};
use pp_core::{seeded_rng, Simulation, StateId};
use pp_protocols::ext::{ApproximateMajority, Opinion};
use pp_protocols::LeaderElection;

fn main() {
    let smoke = pp_bench::smoke();
    let n: u64 = if smoke { 48 } else { 400 };
    let mut report = BenchReport::new("e18_rule_profile");
    report.set_meta("n", n);

    println!("\nE18: per-rule firing profile by phase (n = {n})\n");
    approximate_majority_profile(n, &mut report);
    leader_election_profile(n, &mut report);
    report.write();
}

/// Closes a metrics window as one report row + table line, then reopens it.
fn flush_phase(
    report: &mut BenchReport,
    protocol: &str,
    phase: &str,
    metrics: &mut MetricsProbe,
    rt_name: impl Fn(StateId) -> String,
) {
    let interactions = metrics.interactions();
    let ratio = metrics.effective_ratio();
    let rules = metrics.rules_by_count();
    let rule_str = rules
        .iter()
        .map(|&((p, q), c)| format!("({},{})×{c}", rt_name(p), rt_name(q)))
        .collect::<Vec<_>>()
        .join("  ");
    println!(
        "{:>10} {:>12} {:>10} {:>9}  {}",
        protocol,
        phase,
        interactions,
        fmt(ratio),
        if rule_str.is_empty() { "-".to_owned() } else { rule_str.clone() }
    );
    let mut row: Vec<(String, Value)> = vec![
        ("kind".into(), "phase".into()),
        ("protocol".into(), protocol.into()),
        ("phase".into(), phase.into()),
        ("interactions".into(), interactions.into()),
        ("effective".into(), metrics.effective_interactions().into()),
        ("effective_ratio".into(), ratio.into()),
    ];
    for &((p, q), c) in &rules {
        row.push((format!("fires_{}_{}", rt_name(p), rt_name(q)), c.into()));
    }
    report.push_row(row);
    metrics.reset_window();
}

fn approximate_majority_profile(n: u64, report: &mut BenchReport) {
    let ones = n * 6 / 10;
    report.set_meta("majority_split", format!("{ones}/{}", n - ones));
    println!("3-state approximate majority ({ones} One / {} Zero):", n - ones);
    print_header(&["protocol", "phase", "inter", "eff_ratio", "rule firings"], &[10, 12, 10, 9, 40]);

    let mut sim = Simulation::from_counts(ApproximateMajority, [(true, ones), (false, n - ones)])
        .with_probe((MetricsProbe::new(), TrajectoryProbe::new()));
    let mut rng = seeded_rng(18);
    let name = |sim: &Simulation<ApproximateMajority, _>, s: StateId| {
        format!("{:?}", sim.runtime().state(s))
    };

    // Phase 1 (duel): until the minority committed opinion is extinct.
    let cap = n * n * 100;
    while sim.count_of_state(&Opinion::Zero) > 0 && sim.steps() < cap {
        sim.step(&mut rng);
    }
    let rt_names: Vec<String> = (0..sim.runtime().state_count() as u32)
        .map(|i| name(&sim, StateId(i)))
        .collect();
    let label = |s: StateId| rt_names[s.index()].clone();
    flush_phase(report, "approx_maj", "duel", &mut sim.probe_mut().0, label);

    // Phase 2 (recruitment): only (One, Blank) → (One, One) can fire.
    while sim.count_of_state(&Opinion::Blank) > 0 && sim.steps() < cap {
        sim.step(&mut rng);
    }
    let label = |s: StateId| rt_names[s.index()].clone();
    flush_phase(report, "approx_maj", "recruitment", &mut sim.probe_mut().0, label);

    // Phase 3 (quiescent tail): every interaction is a no-op.
    let tail = if pp_bench::smoke() { 500 } else { 20_000 };
    sim.run(tail, &mut rng);
    let label = |s: StateId| rt_names[s.index()].clone();
    flush_phase(report, "approx_maj", "quiet_tail", &mut sim.probe_mut().0, label);

    // Occupancy curve: the log-sampled trajectory of the whole run.
    let trajectory = &sim.probe().1;
    for (step, occ) in trajectory.samples() {
        let mut row: Vec<(String, Value)> = vec![
            ("kind".into(), "trajectory".into()),
            ("protocol".into(), "approx_maj".into()),
            ("step".into(), (*step).into()),
        ];
        for (i, &c) in occ.iter().enumerate() {
            row.push((format!("occ_{}", rt_names[i]), c.into()));
        }
        report.push_row(row);
    }
    println!(
        "  trajectory: {} log-spaced occupancy samples recorded\n",
        trajectory.samples().len()
    );
}

fn leader_election_profile(n: u64, report: &mut BenchReport) {
    println!("leader election (single rule (L,L)→(L,F); collapse profile):");
    print_header(&["protocol", "phase", "inter", "eff_ratio", "rule firings"], &[10, 12, 10, 9, 40]);

    let mut sim = Simulation::from_counts(LeaderElection, [((), n)])
        .with_probe(MetricsProbe::new());
    let mut rng = seeded_rng(19);
    let leader_name = {
        // States are interned at construction: only `true` exists so far;
        // `false` appears after the first merge.
        move |s: StateId| if s.index() == 0 { "L".to_owned() } else { "F".to_owned() }
    };

    // Segment the run at each halving of the leader count; the effective
    // ratio collapses quadratically as leaders thin out.
    let mut threshold = n / 2;
    loop {
        while sim.count_of_state(&true) > threshold.max(1) {
            sim.step(&mut rng);
        }
        flush_phase(
            report,
            "leader",
            &format!("to_{}_leaders", threshold.max(1)),
            sim.probe_mut(),
            leader_name,
        );
        if threshold <= 1 {
            break;
        }
        threshold /= 2;
    }
    println!();
}
