//! The Theorem 9 zero test on a population.
//!
//! A unique leader wants to know whether any of the other `n − 1` agents
//! carries a nonzero counter share. One agent holds the *timer* token. The
//! leader watches its own interactions: seeing a counter token means
//! "definitely nonzero"; seeing the timer `k` times in a row with no other
//! token in between makes it conclude "probably zero".
//!
//! Theorem 9: with `m > 0` nonzero-share agents the test errs with
//! probability `Θ(n^{−k}/m)` and, conditioned on a correct outcome,
//! completes in `O(n²/m)` expected interactions; with `m = 0` it takes
//! `O(n^{k+1})` interactions. The extra factor of `n` over the urn process
//! comes from the leader participating in only `2/n` of all interactions.

use rand::Rng;

use crate::urn::UrnProcess;

/// Outcome of one population zero test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroTestOutcome {
    /// The leader's verdict: `true` = "counter is zero".
    pub reported_zero: bool,
    /// Total population interactions elapsed (each involving any pair of
    /// agents, not just the leader).
    pub interactions: u64,
}

/// A Theorem 9 zero test instance: population of `n` agents — 1 leader,
/// 1 timer (distinct from the leader), `m` counter-token holders, and
/// `n − 2 − m` blanks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroTest {
    n: u64,
    m: u64,
    k: u32,
}

impl ZeroTest {
    /// Creates a zero test over a population of `n` agents with `m`
    /// nonzero-share agents and waiting parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ m + 2` (leader and timer need their own agents)
    /// and `k ≥ 1`.
    pub fn new(n: u64, m: u64, k: u32) -> Self {
        assert!(n >= m + 2, "population must fit a leader and timer besides {m} tokens");
        assert!(k >= 1, "waiting parameter must be at least 1");
        Self { n, m, k }
    }

    /// The underlying urn process over the `n − 1` non-leader agents.
    pub fn urn(&self) -> UrnProcess {
        UrnProcess::new(self.n - 1, self.m, self.k)
    }

    /// Runs the test once, counting every population interaction.
    ///
    /// Non-leader interactions do not affect the test, so they are sampled
    /// in bulk: the number of interactions between two leader encounters is
    /// geometric with success probability `2/n` (an ordered pair involves
    /// the leader with probability `2/n`).
    pub fn run(&self, rng: &mut impl Rng) -> ZeroTestOutcome {
        let p_leader = 2.0 / self.n as f64;
        let mut interactions = 0u64;
        let mut streak = 0u32;
        loop {
            interactions += sample_geometric(p_leader, rng);
            // The other participant is uniform among the n − 1 non-leaders:
            // indices 0..m are counter tokens, m is the timer, rest blank.
            let t = rng.gen_range(0..self.n - 1);
            if t < self.m {
                return ZeroTestOutcome { reported_zero: false, interactions };
            } else if t == self.m {
                streak += 1;
                if streak == self.k {
                    return ZeroTestOutcome { reported_zero: true, interactions };
                }
            } else {
                streak = 0;
            }
        }
    }

    /// The exact probability of *incorrectly* reporting zero when `m > 0`
    /// (Lemma 11(1) over the `n − 1` non-leader agents).
    pub fn false_zero_probability(&self) -> f64 {
        if self.m == 0 {
            return 0.0; // reporting zero is then correct
        }
        self.urn().loss_probability()
    }

    /// Theorem 9(2)'s interaction bound for the `m > 0` case: `O(n²/m)`,
    /// evaluated with constant 1 as `n²/m` for table display.
    pub fn interaction_scale_nonzero(&self) -> f64 {
        (self.n * self.n) as f64 / self.m as f64
    }

    /// Theorem 9(2)'s interaction bound for the `m = 0` case: `O(n^{k+1})`,
    /// evaluated with constant 1 as `n^{k+1}` for table display.
    pub fn interaction_scale_zero(&self) -> f64 {
        (self.n as f64).powi(self.k as i32 + 1)
    }
}

/// Samples the number of Bernoulli(`p`) trials up to and including the
/// first success (support `1, 2, 3, …`).
pub(crate) fn sample_geometric(p: f64, rng: &mut impl Rng) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    // Inverse CDF: ⌈ln(U)/ln(1−p)⌉.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    if p >= 1.0 {
        return 1;
    }
    let x = (u.ln() / (1.0 - p).ln()).ceil();
    x.max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_is_one_over_p() {
        let mut rng = StdRng::seed_from_u64(1);
        for &p in &[0.5, 0.1, 0.02] {
            let trials = 200_000;
            let total: u64 = (0..trials).map(|_| sample_geometric(p, &mut rng)).sum();
            let mean = total as f64 / trials as f64;
            let expect = 1.0 / p;
            assert!(
                (mean / expect - 1.0).abs() < 0.03,
                "p={p}: mean {mean:.2} vs {expect:.2}"
            );
        }
    }

    #[test]
    fn error_rate_matches_urn_analysis() {
        let zt = ZeroTest::new(10, 1, 1);
        let analytic = zt.false_zero_probability();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200_000;
        let mut wrong = 0u64;
        for _ in 0..trials {
            if zt.run(&mut rng).reported_zero {
                wrong += 1;
            }
        }
        let measured = wrong as f64 / trials as f64;
        let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            (measured - analytic).abs() < 6.0 * se + 1e-4,
            "measured {measured:.5} vs analytic {analytic:.5}"
        );
    }

    #[test]
    fn zero_case_always_reports_zero() {
        let zt = ZeroTest::new(12, 0, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(zt.run(&mut rng).reported_zero);
        }
        assert_eq!(zt.false_zero_probability(), 0.0);
    }

    #[test]
    fn interactions_scale_like_n_squared_over_m() {
        // Doubling m should roughly halve the interaction count.
        let mut rng = StdRng::seed_from_u64(11);
        let mean = |m: u64, rng: &mut StdRng| {
            let zt = ZeroTest::new(64, m, 2);
            let trials = 4000;
            let total: u64 = (0..trials).map(|_| zt.run(rng).interactions).sum();
            total as f64 / trials as f64
        };
        let m2 = mean(2, &mut rng);
        let m8 = mean(8, &mut rng);
        let ratio = m2 / m8;
        assert!(
            (2.5..6.0).contains(&ratio),
            "expected ≈4x gap, got {ratio:.2} ({m2:.0} vs {m8:.0})"
        );
    }

    #[test]
    #[should_panic(expected = "leader and timer")]
    fn population_too_small_rejected() {
        ZeroTest::new(3, 2, 1);
    }
}
