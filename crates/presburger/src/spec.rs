//! Spec-addressable compilation: formula source text → a keyed, cacheable
//! compiled protocol.
//!
//! The direct pipeline (`parse` → `compile_parsed`) returns a bare
//! [`CompiledProtocol`]; services that compile *on request* need three
//! more things, which this module packages:
//!
//! 1. **a symbol table** — the free-variable names, in index order, so a
//!    population spec written as `{"hot": 2, "normal": 38}` can be mapped
//!    to symbol indices without the caller re-parsing the formula;
//! 2. **a cache key** — a deterministic string identifying the compiled
//!    artifact (backend + normalized source), so compiled products can be
//!    reused across requests through a keyed cache;
//! 3. **a backend name** — today only the paper-faithful Cooper-QE →
//!    Lemma 5 product construction exists, but the succinct construction
//!    of Czerner et al. ("Fast and Succinct Population Protocols for
//!    Presburger Arithmetic") is a planned second backend behind this
//!    same entry point; callers that route through [`compile_spec_with_backend`]
//!    will pick it up by name with no API change.

use std::fmt;

use crate::compile::{compile, CompileError, CompiledProtocol};
use crate::parser::{parse, ParseError};

/// The paper-faithful backend: Cooper quantifier elimination, then the
/// Lemma 5 threshold/remainder atoms composed by the Theorem 5 product.
pub const BACKEND_COOPER_PRODUCT: &str = "cooper-product";

/// The compilation backends this build knows, in preference order.
pub fn backends() -> &'static [&'static str] {
    &[BACKEND_COOPER_PRODUCT]
}

/// A compiled formula, addressed for caching.
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    /// The runnable protocol.
    pub protocol: CompiledProtocol,
    /// Free-variable names in symbol-index order (`symbols[i]` is input
    /// symbol `i`).
    pub symbols: Vec<String>,
    /// Deterministic identity of this artifact: `backend + ":" +`
    /// whitespace-normalized source. Equal keys ⇒ interchangeable
    /// compiled products.
    pub key: String,
}

/// Errors from the spec-level compile entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecCompileError {
    /// The source text failed to parse.
    Parse(ParseError),
    /// The parsed formula failed to compile.
    Compile(CompileError),
    /// The requested backend is not in [`backends`].
    UnknownBackend(String),
}

impl fmt::Display for SpecCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::Compile(e) => write!(f, "{e}"),
            Self::UnknownBackend(b) => write!(
                f,
                "unknown compile backend {b:?} (known: {})",
                backends().join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecCompileError {}

impl From<ParseError> for SpecCompileError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<CompileError> for SpecCompileError {
    fn from(e: CompileError) -> Self {
        Self::Compile(e)
    }
}

/// The cache key [`compile_spec_with_backend`] would assign — computable
/// without compiling, so caches can probe before paying for Cooper QE.
///
/// Source normalization is whitespace-collapsing only (runs of whitespace
/// become one space, ends trimmed): cheap, deterministic, and enough to
/// unify trivial reformattings. Semantically equal but textually distinct
/// formulas intentionally get distinct keys — key equality must guarantee
/// artifact interchangeability, and textual identity is the conservative
/// proxy for that.
pub fn spec_key(backend: &str, src: &str) -> String {
    let mut normalized = String::with_capacity(src.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in src.chars() {
        if c.is_whitespace() {
            if !in_ws {
                normalized.push(' ');
                in_ws = true;
            }
        } else {
            normalized.push(c);
            in_ws = false;
        }
    }
    let trimmed = normalized.trim_end();
    format!("{backend}:{trimmed}")
}

/// Compiles `src` with the default backend ([`BACKEND_COOPER_PRODUCT`]).
///
/// # Errors
///
/// [`SpecCompileError::Parse`] or [`SpecCompileError::Compile`].
pub fn compile_spec(src: &str) -> Result<CompiledSpec, SpecCompileError> {
    compile_spec_with_backend(src, BACKEND_COOPER_PRODUCT)
}

/// Compiles `src` with a named backend.
///
/// # Errors
///
/// [`SpecCompileError::UnknownBackend`] for backends not in [`backends`],
/// otherwise parse/compile failures.
pub fn compile_spec_with_backend(
    src: &str,
    backend: &str,
) -> Result<CompiledSpec, SpecCompileError> {
    if backend != BACKEND_COOPER_PRODUCT {
        return Err(SpecCompileError::UnknownBackend(backend.to_string()));
    }
    let parsed = parse(src)?;
    let protocol = compile(&parsed.formula, parsed.vars.len().max(1))?;
    let symbols = if parsed.vars.is_empty() {
        // A closed formula still compiles to an arity-1 protocol (one
        // dummy symbol), mirroring `compile_parsed`.
        vec!["x0".to_string()]
    } else {
        parsed.vars.clone()
    };
    Ok(CompiledSpec { protocol, symbols, key: spec_key(backend, src) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_keys() {
        let spec = compile_spec("a > b").unwrap();
        assert_eq!(spec.symbols, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(spec.key, "cooper-product:a > b");
        assert!(spec.protocol.eval(&[3, 2]));
        assert!(!spec.protocol.eval(&[2, 3]));
    }

    #[test]
    fn key_normalizes_whitespace_only() {
        assert_eq!(spec_key("b", "  a  >\t b \n"), spec_key("b", "a > b"));
        assert_ne!(spec_key("b", "a>b"), spec_key("b", "a > b"));
        assert_ne!(spec_key("b1", "a > b"), spec_key("b2", "a > b"));
    }

    #[test]
    fn unknown_backend_and_parse_errors_are_structured() {
        assert!(matches!(
            compile_spec_with_backend("a > b", "succinct"),
            Err(SpecCompileError::UnknownBackend(_))
        ));
        assert!(matches!(compile_spec("a >"), Err(SpecCompileError::Parse(_))));
        let msg = compile_spec("a >").unwrap_err().to_string();
        assert!(msg.contains("parse error"));
    }
}
