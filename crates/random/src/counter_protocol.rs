//! The §6.1 counter machine as a *bona fide population protocol*.
//!
//! [`crate::counter_sim`] executes the leader's program with a
//! discrete-event loop, which is faithful to interaction counts but is not
//! literally a `δ : Q × Q → Q × Q` table. This module is: given a
//! designated leader ("If we are allowed to designate a leader in the
//! input configuration…", §6.1), the whole counter-machine simulation —
//! program counter, timer streaks, share updates — is encoded in a
//! finite-state [`Protocol`] and runs on the ordinary simulation engine,
//! the exact analyzer included.
//!
//! The state space is finite by construction: leaders carry
//! `(pc, streak ≤ k)`, followers carry a share vector in `{0..M}^C` plus a
//! timer flag, so `|Q| ≤ |program|·k + 2·(M+1)^C`.
//!
//! Because the protocol is a real `δ`-table, `pp-analysis` can compute the
//! probability of a wrong zero test **exactly** from the configuration
//! Markov chain — and the tests check it against the Theorem 9 closed
//! form.

use pp_core::{CountConfig, DenseRuntime, Protocol, Simulation};
use pp_machines::counter::{CounterMachine, Instr};

/// One agent's state in the [`CounterProtocol`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CounterAgent {
    /// The designated leader: program counter plus the current run of
    /// consecutive timer encounters (only meaningful during a `DecJz`).
    Leader {
        /// Current instruction index.
        pc: u32,
        /// Consecutive timer encounters while waiting in `DecJz`.
        streak: u32,
    },
    /// A follower: counter shares (one per machine counter, each `≤ M`)
    /// and whether this agent carries the timer token.
    Follower {
        /// Share of each simulated counter.
        shares: Vec<u8>,
        /// Timer token.
        timer: bool,
    },
}

/// The §6.1 designated-leader counter machine as a population protocol.
///
/// The protocol's input alphabet is [`CounterAgent`] itself (the paper's
/// "designated leader in the input configuration"); use
/// [`initial_states`](CounterProtocol::initial_states) to build the
/// standard starting configuration.
#[derive(Debug, Clone)]
pub struct CounterProtocol {
    program: CounterMachine,
    k: u32,
    max_share: u8,
}

impl CounterProtocol {
    /// Wraps a counter-machine program with zero-test waiting parameter
    /// `k ≥ 1` and per-agent share cap `max_share ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1` or `max_share < 1`.
    pub fn new(program: CounterMachine, k: u32, max_share: u8) -> Self {
        assert!(k >= 1, "waiting parameter must be at least 1");
        assert!(max_share >= 1, "share cap must be at least 1");
        assert!(program.instructions().len() < 255, "program too long for the output map");
        Self { program, k, max_share }
    }

    /// The wrapped program.
    pub fn program(&self) -> &CounterMachine {
        &self.program
    }

    /// Builds the standard initial configuration for a population of `n`
    /// agents: one leader at `pc = 0`, one timer-carrying follower, and
    /// `n − 2` followers holding the initial counter values as shares
    /// (greedily packed).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, the value arity mismatches the program, or a
    /// value exceeds the capacity `(n−2)·M`.
    pub fn initial_states(&self, n: usize, initial: &[u128]) -> Vec<(CounterAgent, u64)> {
        assert!(n >= 4, "population must have at least 4 agents");
        let nc = self.program.num_counters();
        assert_eq!(initial.len(), nc, "initial value arity mismatch");
        let holders = n - 2;
        let mut shares = vec![vec![0u8; nc]; holders];
        for (c, &v) in initial.iter().enumerate() {
            let cap = holders as u128 * u128::from(self.max_share);
            assert!(v <= cap, "initial value {v} exceeds capacity {cap}");
            let mut rest = v;
            for agent in shares.iter_mut() {
                if rest == 0 {
                    break;
                }
                let take = rest.min(u128::from(self.max_share)) as u8;
                agent[c] = take;
                rest -= u128::from(take);
            }
        }
        let mut out: Vec<(CounterAgent, u64)> =
            vec![(CounterAgent::Leader { pc: 0, streak: 0 }, 1)];
        out.push((CounterAgent::Follower { shares: vec![0; nc], timer: true }, 1));
        for s in shares {
            let agent = CounterAgent::Follower { shares: s, timer: false };
            match out.iter_mut().find(|(a, _)| *a == agent) {
                Some((_, c)) => *c += 1,
                None => out.push((agent, 1)),
            }
        }
        out
    }

    /// Builds a ready-to-run [`Simulation`].
    ///
    /// # Panics
    ///
    /// As [`initial_states`](Self::initial_states).
    pub fn simulation(&self, n: usize, initial: &[u128]) -> Simulation<Self> {
        Simulation::from_states(self.clone(), self.initial_states(n, initial))
    }

    /// Decodes the counter values (population share sums) from a
    /// configuration.
    pub fn decode_counters(
        &self,
        rt: &DenseRuntime<Self>,
        config: &CountConfig,
    ) -> Vec<u128> {
        let mut totals = vec![0u128; self.program.num_counters()];
        for (id, count) in config.support() {
            if let CounterAgent::Follower { shares, .. } = rt.state(id) {
                for (t, &s) in totals.iter_mut().zip(shares) {
                    *t += u128::from(s) * u128::from(count);
                }
            }
        }
        totals
    }

    /// The leader's program counter in a configuration, if a leader exists.
    pub fn leader_pc(&self, rt: &DenseRuntime<Self>, config: &CountConfig) -> Option<u32> {
        config.support().find_map(|(id, _)| match rt.state(id) {
            CounterAgent::Leader { pc, .. } => Some(*pc),
            _ => None,
        })
    }

    /// Whether the leader has halted in a configuration.
    pub fn halted(&self, rt: &DenseRuntime<Self>, config: &CountConfig) -> bool {
        self.leader_pc(rt, config)
            .is_some_and(|pc| matches!(self.program.instructions()[pc as usize], Instr::Halt))
    }

    /// The leader-side update for an encounter with follower `f`; returns
    /// the new `(leader, follower)` pair.
    fn encounter(
        &self,
        pc: u32,
        streak: u32,
        f: &CounterAgent,
    ) -> (CounterAgent, CounterAgent) {
        let CounterAgent::Follower { shares, timer } = f else {
            // Leader–leader encounters cannot arise from a single-leader
            // initial configuration; leave them inert for totality.
            return (CounterAgent::Leader { pc, streak }, f.clone());
        };
        let leader = |pc, streak| CounterAgent::Leader { pc, streak };
        match self.program.instructions()[pc as usize] {
            Instr::Halt => (leader(pc, streak), f.clone()),
            Instr::Inc { counter, next } => {
                if shares[counter] < self.max_share {
                    let mut s2 = shares.clone();
                    s2[counter] += 1;
                    (
                        leader(next as u32, 0),
                        CounterAgent::Follower { shares: s2, timer: *timer },
                    )
                } else {
                    // Full share: wait (no state change).
                    (leader(pc, streak), f.clone())
                }
            }
            Instr::DecJz { counter, nonzero, zero } => {
                if shares[counter] > 0 {
                    let mut s2 = shares.clone();
                    s2[counter] -= 1;
                    (
                        leader(nonzero as u32, 0),
                        CounterAgent::Follower { shares: s2, timer: *timer },
                    )
                } else if *timer {
                    if streak + 1 >= self.k {
                        (leader(zero as u32, 0), f.clone())
                    } else {
                        (leader(pc, streak + 1), f.clone())
                    }
                } else {
                    // Ordinary zero-share agent: streak broken.
                    (leader(pc, 0), f.clone())
                }
            }
        }
    }
}

impl Protocol for CounterProtocol {
    type State = CounterAgent;
    /// Initial states are supplied directly (designated-leader convention).
    type Input = CounterAgent;
    /// `0` for followers and non-halted leaders; `pc + 1` for a leader
    /// halted at instruction `pc` — so the population output becomes
    /// non-zero exactly when the program has halted, and distinct halt
    /// sites (e.g. the two branches of a zero test) are distinguishable.
    type Output = u8;

    fn input(&self, x: &CounterAgent) -> CounterAgent {
        x.clone()
    }

    fn output(&self, q: &CounterAgent) -> u8 {
        match q {
            CounterAgent::Leader { pc, .. } => {
                if matches!(self.program.instructions()[*pc as usize], Instr::Halt) {
                    (*pc + 1) as u8
                } else {
                    0
                }
            }
            CounterAgent::Follower { .. } => 0,
        }
    }

    fn delta(&self, p: &CounterAgent, q: &CounterAgent) -> (CounterAgent, CounterAgent) {
        match (p, q) {
            (CounterAgent::Leader { pc, streak }, f @ CounterAgent::Follower { .. }) => {
                self.encounter(*pc, *streak, f)
            }
            // The leader acts whichever role it plays in the encounter.
            (f @ CounterAgent::Follower { .. }, CounterAgent::Leader { pc, streak }) => {
                let (l2, f2) = self.encounter(*pc, *streak, f);
                (f2, l2)
            }
            _ => (p.clone(), q.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::seeded_rng;
    use pp_machines::programs;

    #[test]
    fn runs_addition_as_a_real_protocol() {
        // Waiting parameter k = 6: the per-zero-test error probability is
        // small enough (Theorem 9) that a premature jump is overwhelmingly
        // unlikely at n = 16, rather than relying on a lucky seed.
        let proto = CounterProtocol::new(programs::cm_add(), 3, 2);
        let mut sim = proto.simulation(16, &[3, 4]);
        let mut rng = seeded_rng(1);
        let mut halted = false;
        for _ in 0..5_000_000 {
            sim.step(&mut rng);
            if sim.output_histogram().iter().any(|&(o, c)| o != 0 && c > 0) {
                halted = true;
                break;
            }
        }
        assert!(halted, "leader must halt");
        let proto2 = CounterProtocol::new(programs::cm_add(), 3, 2);
        let counters = proto2.decode_counters(sim.runtime(), sim.config());
        // c0 = 3 + 4 (if no zero-test error fired early; with value 7 the
        // only zero branch is the final one, which is correct by then).
        assert_eq!(counters[0], 7);
        assert_eq!(counters[1], 0);
    }

    #[test]
    fn state_space_is_finite_and_small() {
        let proto = CounterProtocol::new(programs::cm_add(), 3, 1);
        let mut rt = DenseRuntime::new(proto.clone());
        let seeds: Vec<_> = proto
            .initial_states(6, &[2, 2])
            .into_iter()
            .map(|(s, _)| rt.intern(s))
            .collect();
        let n = rt.close_under_delta(&seeds);
        // 3 instructions × 3 streaks + followers {0,1}²×{timer} — well
        // under 50 states.
        assert!(n < 50, "state space blew up: {n}");
    }

    #[test]
    fn exact_zero_test_error_matches_theorem9_closed_form() {
        // Program: single DecJz on counter 0 with distinct halt targets.
        //   0: DecJz c0 → 1 (nonzero) / 2 (zero)
        //   1: Halt    2: Halt
        let m = CounterMachine::new(
            vec![
                Instr::DecJz { counter: 0, nonzero: 1, zero: 2 },
                Instr::Halt,
                Instr::Halt,
            ],
            1,
        )
        .unwrap();
        for (n, k) in [(6usize, 1u32), (6, 2), (8, 2)] {
            let proto = CounterProtocol::new(m.clone(), k, 1);
            // Counter value 1: the correct branch is "nonzero" (pc = 1).
            let analysis = pp_analysis_markov(&proto, n, &[1]);
            // Exact probability that the leader commits to pc = 2 (wrong).
            let wrong = analysis;
            let urn = crate::urn::UrnProcess::new(n as u64 - 1, 1, k);
            let expect = urn.loss_probability();
            assert!(
                (wrong - expect).abs() < 1e-9,
                "n={n} k={k}: exact chain {wrong} vs closed form {expect}"
            );
        }
    }

    /// Exact probability (from the configuration Markov chain) that the
    /// single-DecJz program halts in the *zero* branch (pc = 2).
    fn pp_analysis_markov(proto: &CounterProtocol, n: usize, initial: &[u128]) -> f64 {
        use pp_analysis::MarkovAnalysis;
        let states = proto.initial_states(n, initial);
        let mut rt = DenseRuntime::new(proto.clone());
        let mut init = CountConfig::empty();
        for (s, c) in states {
            let id = rt.intern(s);
            init.add(id, c);
        }
        let graph = pp_analysis::ConfigGraph::explore_from(rt, init, 1_000_000);
        let m = MarkovAnalysis::from_graph(graph);
        // Output classes identify the halt site (output = pc + 1).
        let mut wrong = 0.0;
        let probs = m.commit_probabilities();
        for (ci, class) in m.classes().iter().enumerate() {
            // Output (pc + 1) identifies the halt site: 3 = zero branch.
            if class.iter().any(|&(o, c)| o == 3 && c > 0) {
                wrong += probs[ci];
            }
        }
        wrong
    }
}
