//! Interaction graphs for population protocols (§3.1, §5 of Angluin et al.,
//! PODC 2004).
//!
//! A population is a set of agents together with an irreflexive directed
//! edge relation: `(u, v) ∈ E` means `u` may interact with `v`, with `u` as
//! initiator and `v` as responder. The *complete* interaction graph (all
//! ordered pairs) is the standard population of §3.3; §5 (Theorem 7) shows
//! it is the weakest weakly-connected structure, so this crate's generators
//! are exactly what the Theorem 7 simulator and the restricted-interaction
//! experiments need.
//!
//! # Example
//!
//! ```
//! use pp_graphs::InteractionGraph;
//!
//! let ring = pp_graphs::directed_cycle(8);
//! assert!(ring.is_weakly_connected());
//! assert_eq!(ring.edge_count(), 8);
//! let sched = ring.scheduler();
//! assert_eq!(pp_core::scheduler::PairSampler::population(&sched), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod generators;
pub mod graph;

pub use csr::CsrGraph;
pub use generators::{
    complete, directed_cycle, directed_line, erdos_renyi_connected, grid2d, star, torus2d,
    torus2d_csr, torus3d, torus3d_csr, undirected_cycle, undirected_line,
};
pub use graph::InteractionGraph;
