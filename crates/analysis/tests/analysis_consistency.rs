//! Consistency checks between the analysis passes: the stable-computation
//! verdict, the Markov chain, and the paper's protocol library.

use pp_analysis::verify::{StableComputation, Verdict};
use pp_analysis::{verify_all_inputs, MarkovAnalysis};
use pp_protocols::{majority, parity, CountThreshold, PercentThreshold};

#[test]
fn paper_protocols_verified_for_all_small_inputs() {
    // Majority.
    verify_all_inputs(majority, 2, 6, |c| c[1] > c[0])
        .unwrap_or_else(|(c, r)| panic!("majority at {c:?}: {:?}", r.verdict));
    // Parity.
    verify_all_inputs(parity, 2, 6, |c| c[1] % 2 == 1)
        .unwrap_or_else(|(c, r)| panic!("parity at {c:?}: {:?}", r.verdict));
}

#[test]
fn count_threshold_all_k_all_inputs() {
    for k in 1u32..=4 {
        for ones in 0u64..=6 {
            for zeros in 0u64..=(6 - ones) {
                if ones + zeros < 2 {
                    continue;
                }
                let a = StableComputation::analyze(
                    CountThreshold::new(k),
                    [(true, ones), (false, zeros)],
                );
                assert_eq!(
                    *a.verdict(),
                    Verdict::Stable(ones >= u64::from(k)),
                    "k={k} ones={ones} zeros={zeros}"
                );
            }
        }
    }
}

#[test]
fn percent_threshold_small_populations() {
    let p = || PercentThreshold::new(1, 4).unwrap(); // at least 25%
    for hot in 0u64..=6 {
        for cold in 0u64..=(6 - hot) {
            if hot + cold < 2 {
                continue;
            }
            let expected = 4 * hot >= hot + cold;
            let a = StableComputation::analyze(p(), [(true, hot), (false, cold)]);
            assert_eq!(
                *a.verdict(),
                Verdict::Stable(expected),
                "hot={hot} cold={cold}"
            );
        }
    }
}

#[test]
fn stable_verdict_implies_certain_commitment() {
    // Whenever the exact verdict is Stable, the Markov chain must commit
    // almost surely (finite expected time) and all its committed classes
    // must carry the stable output.
    for (ones, zeros) in [(1u64, 4u64), (3, 2), (2, 2), (4, 1)] {
        let a = StableComputation::analyze(majority(), [(0usize, zeros), (1usize, ones)]);
        let Verdict::Stable(v) = a.verdict() else {
            panic!("majority must be stable at {ones}/{zeros}");
        };
        let m = MarkovAnalysis::analyze(majority(), [(0usize, zeros), (1usize, ones)]);
        let t = m.expected_steps_to_commit();
        assert!(t.is_some(), "stable verdict but no almost-sure commitment");
        for cls in m.classes() {
            assert_eq!(cls.len(), 1, "committed class must be consensus");
            assert_eq!(cls[0].0, *v, "committed output must match verdict");
        }
        let probs = m.commit_probabilities();
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "commit probabilities sum to {sum}");
    }
}
