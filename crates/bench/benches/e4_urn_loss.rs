//! E4 — Lemma 11(1): the urn process loses (k consecutive timer draws
//! before a counter token) with probability exactly
//! `(N−1)/(m·Nᵏ + (N−1−m))`, bounded by `1/(m·N^{k−1})`.

use pp_bench::{fmt, print_header};
use pp_core::seeded_rng;
use pp_random::UrnProcess;

fn main() {
    println!("\nE4: Lemma 11(1) — urn loss probability, measured vs closed form\n");
    print_header(
        &["N", "m", "k", "trials", "measured", "analytic", "bound"],
        &[5, 4, 3, 8, 11, 11, 11],
    );

    let mut rng = seeded_rng(4);
    for &k in &[1u32, 2, 3] {
        for &n in &[8u64, 16, 32] {
            for &m in &[1u64, 2, 4] {
                let urn = UrnProcess::new(n, m, k);
                let analytic = urn.loss_probability();
                // Pick trials so that we expect ≥ ~50 loss events, capped.
                let trials = if pp_bench::smoke() {
                    2_000
                } else {
                    ((80.0 / analytic) as u64).clamp(20_000, 3_000_000)
                };
                let mut losses = 0u64;
                for _ in 0..trials {
                    if !urn.run(&mut rng).won {
                        losses += 1;
                    }
                }
                let measured = losses as f64 / trials as f64;
                println!(
                    "{:>5} {:>4} {:>3} {:>8} {:>11} {:>11} {:>11}",
                    n,
                    m,
                    k,
                    trials,
                    fmt(measured),
                    fmt(analytic),
                    fmt(urn.loss_probability_bound()),
                );
            }
        }
    }
    println!("\npaper: measured ≈ analytic ≤ bound, with loss ∝ N^-(k-1)/m\n");
}
