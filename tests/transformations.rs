//! Integration tests for the paper's protocol transformations:
//! Theorem 2 (output conventions) and Theorem 7 (restricted graphs),
//! cross-checked with the exact analyzer.

use population_protocols::analysis::verify::verify_predicate;
use population_protocols::core::prelude::*;
use population_protocols::graphs;
use population_protocols::protocols::{majority, parity, AllAgentsAdapter, GraphSimulator};

#[test]
fn theorem2_adapter_verified_exactly() {
    // B: each agent outputs its own remembered input; zero/non-zero
    // verdict = "any 1 input?". The adapter must make it an all-agents
    // predicate, exhaustively for all small inputs.
    for ones in 0u64..=4 {
        for zeros in 0u64..=4 {
            if ones + zeros < 2 {
                continue;
            }
            let b = FnProtocol::new(
                |&x: &bool| x,
                |&q: &bool| q,
                |&p: &bool, &q: &bool| (p, q),
            );
            let adapted = AllAgentsAdapter::new(b);
            let expected = ones > 0;
            let report =
                verify_predicate(adapted, [(true, ones), (false, zeros)], expected);
            assert!(
                report.holds(),
                "ones={ones} zeros={zeros}: {:?}",
                report.verdict
            );
        }
    }
}

#[test]
fn theorem7_simulator_verified_exactly_on_complete_graph() {
    // The transformed protocol A' must still stably compute the predicate
    // when run on the complete graph (Theorem 7 includes it as a special
    // case). Exact verification, small populations.
    for ones in 0u64..=4 {
        for zeros in 0u64..=4 {
            let n = ones + zeros;
            if !(4..=5).contains(&n) {
                continue; // construction assumes n ≥ 4
            }
            let expected = ones > zeros;
            let report = verify_predicate(
                GraphSimulator::new(majority()),
                [(1usize, ones), (0usize, zeros)],
                expected,
            );
            assert!(
                report.holds(),
                "ones={ones} zeros={zeros}: {:?}",
                report.verdict
            );
        }
    }
}

#[test]
fn theorem7_simulator_preserves_parity_verdicts_exactly() {
    // A' for parity, exhaustively at every split with n ∈ {4, 5} (the
    // construction assumes n ≥ 4).
    for ones in 0u64..=5 {
        for zeros in 0u64..=(5 - ones) {
            let n = ones + zeros;
            if !(4..=5).contains(&n) {
                continue;
            }
            let report = verify_predicate(
                GraphSimulator::new(parity()),
                [(1usize, ones), (0usize, zeros)],
                ones % 2 == 1,
            );
            assert!(
                report.holds(),
                "parity A' failed at ones={ones} zeros={zeros}: {:?}",
                report.verdict
            );
        }
    }
}

#[test]
fn theorem7_simulator_stabilizes_on_many_graphs() {
    let n = 9usize;
    let mut rng = seeded_rng(31);
    let graphs: Vec<(&str, graphs::InteractionGraph)> = vec![
        ("line", graphs::undirected_line(n)),
        ("cycle", graphs::undirected_cycle(n)),
        ("directed cycle", graphs::directed_cycle(n)),
        ("star", graphs::star(n)),
        ("random", graphs::erdos_renyi_connected(n, 0.3, &mut rng)),
    ];
    // 4 ones vs 5 zeros: parity of ones = false... parity(4)=even -> false;
    // majority -> false.
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < 4)).collect();
    for (name, g) in graphs {
        let mut sim = AgentSimulation::from_inputs(
            GraphSimulator::new(majority()),
            &inputs,
            g.scheduler(),
        );
        let rep = sim.measure_stabilization(&false, 40_000_000, &mut rng);
        assert!(rep.converged(), "majority failed on {name}");

        let mut sim = AgentSimulation::from_inputs(
            GraphSimulator::new(parity()),
            &inputs,
            g.scheduler(),
        );
        let rep = sim.measure_stabilization(&false, 40_000_000, &mut rng);
        assert!(rep.converged(), "parity failed on {name}");
    }
}

#[test]
fn deterministic_round_robin_schedule_is_fair_enough() {
    // Stable computation needs only fairness, not randomness: a
    // deterministic round-robin over all ordered pairs must drive majority
    // to the correct verdict too.
    use population_protocols::core::prelude::*;
    use population_protocols::core::scheduler::RoundRobinScheduler;

    let n = 9usize;
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < 5)).collect(); // 5 ones
    let mut sim =
        AgentSimulation::from_inputs(majority(), &inputs, RoundRobinScheduler::new(n));
    let mut rng = seeded_rng(0); // unused by the deterministic scheduler
    let rep = sim.measure_stabilization(&true, 500_000, &mut rng);
    assert!(rep.converged(), "round-robin schedule must stabilize majority");
}

#[test]
fn theorem7_on_directed_line_still_works() {
    // The directed line is the extreme §5 example; weakly connected, so
    // Theorem 7 applies.
    let n = 6usize;
    let g = graphs::directed_line(n);
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 2 == 0)).collect(); // 3 vs 3
    let mut rng = seeded_rng(77);
    let mut sim = AgentSimulation::from_inputs(
        GraphSimulator::new(majority()),
        &inputs,
        g.scheduler(),
    );
    // tie → not a majority.
    let rep = sim.measure_stabilization(&false, 60_000_000, &mut rng);
    assert!(rep.converged(), "majority tie must stabilize to false on the directed line");
}
