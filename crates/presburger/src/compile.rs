//! The Theorem 5 compiler: Presburger formulas → population protocols.
//!
//! Pipeline (exactly the proof of Theorem 5):
//!
//! 1. [`eliminate_quantifiers`] turns the formula into a quantifier-free
//!    Boolean combination of atoms `Σ aᵢxᵢ + c < 0` and
//!    `m | Σ aᵢxᵢ + c` (Theorem 4 / Cooper);
//! 2. each atom becomes a Lemma 5 protocol
//!    ([`ThresholdProtocol`]/[`RemainderProtocol`], wrapped in
//!    [`LinearAtom`]);
//! 3. the atoms run in parallel (Lemma 3 product, here n-ary) and the
//!    output function evaluates the Boolean skeleton over the atom
//!    verdicts (Corollary 2).
//!
//! [`integer_input_formula`] additionally implements Corollary 3: a
//! predicate on `ℤᵏ` under the integer-based input convention is rewritten
//! into an equivalent predicate on symbol counts, by substituting each
//! integer variable with the linear combination of alphabet-vector counts
//! it denotes.

use std::fmt;

use pp_core::Protocol;
use pp_protocols::linear::{LinState, LinearAtom, RemainderProtocol, ThresholdProtocol};

use crate::formula::{Atom, Formula, LinExpr};
use crate::parser::ParsedFormula;
use crate::qe::eliminate_quantifiers;

/// Errors from [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The formula mentions a free variable `var ≥ num_vars`.
    FreeVariableOutOfRange {
        /// The offending variable index.
        var: u32,
        /// The declared input arity.
        num_vars: usize,
    },
    /// The input arity is zero — a protocol needs at least one input symbol.
    NoInputSymbols,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FreeVariableOutOfRange { var, num_vars } => write!(
                f,
                "free variable x{var} out of range for input arity {num_vars}"
            ),
            Self::NoInputSymbols => write!(f, "input arity must be at least 1"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The Boolean skeleton of a compiled formula, over atom indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// Constant.
    Const(bool),
    /// The verdict of atom `i`.
    Atom(usize),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Evaluates over atom verdicts.
    pub fn eval(&self, verdicts: &[bool]) -> bool {
        match self {
            Self::Const(b) => *b,
            Self::Atom(i) => verdicts[*i],
            Self::Not(e) => !e.eval(verdicts),
            Self::And(a, b) => a.eval(verdicts) && b.eval(verdicts),
            Self::Or(a, b) => a.eval(verdicts) || b.eval(verdicts),
        }
    }
}

/// A population protocol compiled from a Presburger formula (Theorem 5):
/// the Lemma 5 atoms run in parallel and the output is the Boolean skeleton
/// applied to their verdicts.
///
/// * Input: symbol index `0 ≤ i < arity` (symbol-count convention — `xᵢ` is
///   the number of agents with input `i`).
/// * Output: the predicate verdict, under the all-agents convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProtocol {
    atoms: Vec<LinearAtom>,
    expr: BoolExpr,
    arity: usize,
}

impl CompiledProtocol {
    /// Number of input symbols `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The compiled Lemma 5 atoms.
    pub fn atoms(&self) -> &[LinearAtom] {
        &self.atoms
    }

    /// The Boolean skeleton over atom verdicts.
    pub fn expr(&self) -> &BoolExpr {
        &self.expr
    }

    /// Ground-truth evaluation on symbol counts (no simulation).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != arity`.
    pub fn eval(&self, counts: &[u64]) -> bool {
        assert_eq!(counts.len(), self.arity, "arity mismatch");
        let verdicts: Vec<bool> = self.atoms.iter().map(|a| a.eval(counts)).collect();
        self.expr.eval(&verdicts)
    }
}

impl Protocol for CompiledProtocol {
    type State = Vec<LinState>;
    type Input = usize;
    type Output = bool;

    fn input(&self, &i: &usize) -> Vec<LinState> {
        assert!(i < self.arity, "input symbol {i} out of range");
        self.atoms.iter().map(|a| a.input(&i)).collect()
    }

    fn output(&self, q: &Vec<LinState>) -> bool {
        let verdicts: Vec<bool> = q.iter().map(|s| s.out).collect();
        self.expr.eval(&verdicts)
    }

    fn delta(&self, p: &Vec<LinState>, q: &Vec<LinState>) -> (Vec<LinState>, Vec<LinState>) {
        let mut p2 = Vec::with_capacity(self.atoms.len());
        let mut q2 = Vec::with_capacity(self.atoms.len());
        for ((a, sp), sq) in self.atoms.iter().zip(p).zip(q) {
            let (np, nq) = a.delta(sp, sq);
            p2.push(np);
            q2.push(nq);
        }
        (p2, q2)
    }
}

/// Compiles a Presburger formula into a population protocol with input
/// symbols `0..num_vars` (symbol-count convention: variable `xᵢ` counts the
/// agents whose input is `i`).
///
/// Quantifiers are eliminated automatically.
///
/// # Errors
///
/// Returns [`CompileError`] if `num_vars == 0` or a free variable index is
/// out of range.
///
/// # Example
///
/// ```
/// use pp_presburger::{compile::compile, parse};
///
/// // Majority with a twist: more 1s than 0s, or exactly three 1s.
/// let p = parse("ones > zeros \\/ ones = 3").unwrap();
/// let proto = compile(&p.formula, 2).unwrap();
/// // variable order: ones = 0, zeros = 1 (first appearance).
/// assert!(proto.eval(&[5, 4]));
/// assert!(proto.eval(&[3, 9]));
/// assert!(!proto.eval(&[2, 9]));
/// ```
pub fn compile(formula: &Formula, num_vars: usize) -> Result<CompiledProtocol, CompileError> {
    if num_vars == 0 {
        return Err(CompileError::NoInputSymbols);
    }
    let qf = eliminate_quantifiers(formula);
    if let Some(&v) = qf.free_vars().iter().find(|&&v| v as usize >= num_vars) {
        return Err(CompileError::FreeVariableOutOfRange { var: v, num_vars });
    }
    let mut atoms: Vec<LinearAtom> = Vec::new();
    let expr = build_expr(&qf, num_vars, &mut atoms);
    Ok(CompiledProtocol { atoms, expr, arity: num_vars })
}

/// Compiles a parsed formula (arity = its free-variable count).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_parsed(parsed: &ParsedFormula) -> Result<CompiledProtocol, CompileError> {
    compile(&parsed.formula, parsed.vars.len().max(1))
}

fn coeff_vector(e: &LinExpr, num_vars: usize) -> Vec<i64> {
    (0..num_vars as u32).map(|v| e.coefficient(v)).collect()
}

fn intern_atom(atoms: &mut Vec<LinearAtom>, atom: LinearAtom) -> usize {
    if let Some(i) = atoms.iter().position(|a| *a == atom) {
        i
    } else {
        atoms.push(atom);
        atoms.len() - 1
    }
}

fn build_expr(f: &Formula, num_vars: usize, atoms: &mut Vec<LinearAtom>) -> BoolExpr {
    match f {
        Formula::Const(b) => BoolExpr::Const(*b),
        Formula::Atom(Atom::Lt(e)) => {
            // Σ aᵢxᵢ + c < 0  ⇔  Σ aᵢxᵢ < −c.
            let proto = ThresholdProtocol::new(coeff_vector(e, num_vars), -e.constant_term())
                .expect("num_vars ≥ 1");
            BoolExpr::Atom(intern_atom(atoms, LinearAtom::Threshold(proto)))
        }
        Formula::Atom(Atom::Dvd(m, e)) => {
            // m | Σ aᵢxᵢ + c  ⇔  Σ aᵢxᵢ ≡ −c (mod m).
            if *m == 1 {
                return BoolExpr::Const(true);
            }
            let proto =
                RemainderProtocol::new(coeff_vector(e, num_vars), -e.constant_term(), *m)
                    .expect("num_vars ≥ 1, m ≥ 2");
            BoolExpr::Atom(intern_atom(atoms, LinearAtom::Remainder(proto)))
        }
        Formula::Not(g) => BoolExpr::Not(Box::new(build_expr(g, num_vars, atoms))),
        Formula::And(a, b) => BoolExpr::And(
            Box::new(build_expr(a, num_vars, atoms)),
            Box::new(build_expr(b, num_vars, atoms)),
        ),
        Formula::Or(a, b) => BoolExpr::Or(
            Box::new(build_expr(a, num_vars, atoms)),
            Box::new(build_expr(b, num_vars, atoms)),
        ),
        Formula::Exists(..) | Formula::ForAll(..) => {
            unreachable!("quantifiers eliminated before compilation")
        }
    }
}

/// Corollary 3: rewrites a predicate `Φ(y₀, …, y_{k−1})` on `ℤᵏ` under the
/// *integer-based input convention* with alphabet `X = {v⃗₀, …, v⃗_{ℓ−1}} ⊆ ℤᵏ`
/// into an equivalent predicate `Φ′(x₀, …, x_{ℓ−1})` on symbol counts,
/// where `xⱼ` counts the agents whose input is the vector `v⃗ⱼ`. Each `yᵢ`
/// is replaced by `Σⱼ v⃗ⱼ[i]·xⱼ`.
///
/// The result can be fed to [`compile`] with `num_vars = alphabet.len()`.
///
/// # Panics
///
/// Panics if the alphabet is empty or its vectors do not all have dimension
/// `k` = the number of integer variables (`max free var + 1` of `phi`).
///
/// # Example
///
/// The paper's §4.3 example: `Φ(y₁,y₂) = (y₁ − 2y₂ ≡ 0 (mod 3))` with
/// alphabet `{(0,0), (1,0), (−1,0), (0,1), (0,−1)}`:
///
/// ```
/// use pp_presburger::compile::{compile, integer_input_formula};
/// use pp_presburger::parse;
///
/// let phi = parse("y1 - 2 * y2 = 0 mod 3").unwrap().formula;
/// let alphabet: Vec<Vec<i64>> =
///     vec![vec![0, 0], vec![1, 0], vec![-1, 0], vec![0, 1], vec![0, -1]];
/// let phi2 = integer_input_formula(&phi, &alphabet);
/// let proto = compile(&phi2, 5).unwrap();
/// // y1 = x(1,0) − x(−1,0) = 4 − 1 = 3; y2 = 2 − 2 = 0; 3 ≡ 0 (mod 3). ✓
/// assert!(proto.eval(&[3, 4, 1, 2, 2]));
/// ```
pub fn integer_input_formula(phi: &Formula, alphabet: &[Vec<i64>]) -> Formula {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let k = phi.free_vars().iter().next_back().map_or(0, |&v| v as usize + 1);
    for v in alphabet {
        assert_eq!(v.len(), k, "alphabet vector dimension must equal variable count {k}");
    }
    let l = alphabet.len() as u32;
    // Shift every variable up by ℓ so indices 0..ℓ are free for the xⱼ.
    let shifted = phi.rename(&|v| v + l);
    // Substitute each yᵢ (now variable ℓ+i) by Σⱼ vⱼ[i]·xⱼ.
    let mut out = shifted;
    for i in 0..k as u32 {
        let mut sum = LinExpr::constant(0);
        for (j, vec) in alphabet.iter().enumerate() {
            sum = sum.add(&LinExpr::var_scaled(j as u32, vec[i as usize]));
        }
        out = out.substitute(l + i, &sum);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use pp_core::{seeded_rng, Simulation};

    fn simulate(proto: CompiledProtocol, counts: &[u64], seed: u64) -> bool {
        let expected = proto.eval(counts);
        let inputs: Vec<(usize, u64)> =
            counts.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        let mut sim = Simulation::from_counts(proto, inputs);
        let mut rng = seeded_rng(seed);
        let rep = sim.measure_stabilization(&expected, 400_000, &mut rng);
        assert!(rep.converged(), "simulation did not stabilize on {counts:?}");
        expected
    }

    #[test]
    fn compile_rejects_bad_arity() {
        let f = parse("x < 1").unwrap().formula;
        assert!(matches!(compile(&f, 0), Err(CompileError::NoInputSymbols)));
        assert!(compile(&f, 1).is_ok());
        let g = parse("x + y < 1").unwrap().formula;
        assert!(matches!(
            compile(&g, 1),
            Err(CompileError::FreeVariableOutOfRange { var: 1, num_vars: 1 })
        ));
    }

    #[test]
    fn compiled_eval_matches_formula_on_grid() {
        let p = parse("2 * a - b < 3 /\\ a + b = 1 mod 4").unwrap();
        let proto = compile_parsed(&p).unwrap();
        for a in 0u64..6 {
            for b in 0u64..6 {
                let want = p.formula.eval_qf(&[a as i64, b as i64]);
                assert_eq!(proto.eval(&[a, b]), want, "({a},{b})");
            }
        }
    }

    #[test]
    fn atoms_are_deduplicated() {
        let p = parse("a < 3 /\\ (a < 3 \\/ a = 1 mod 2)").unwrap();
        let proto = compile_parsed(&p).unwrap();
        assert_eq!(proto.atoms().len(), 2, "identical atoms must be interned");
    }

    #[test]
    fn quantified_formula_compiles_via_qe() {
        // "hot is even" with a quantifier.
        let p = parse("exists q. hot = 2 * q").unwrap();
        let proto = compile_parsed(&p).unwrap();
        assert!(proto.eval(&[4]));
        assert!(!proto.eval(&[5]));
        // And the protocol actually stabilizes to the right verdict.
        assert!(simulate(compile_parsed(&p).unwrap(), &[6], 1));
        assert!(!simulate(compile_parsed(&p).unwrap(), &[7], 2));
    }

    #[test]
    fn five_percent_flock_end_to_end() {
        // §1/§4.2: at least 5% elevated ⇔ 20·hot ≥ hot + normal.
        let p = parse("20 * hot >= hot + normal").unwrap();
        let proto = compile_parsed(&p).unwrap();
        let hot = p.index_of("hot").unwrap();
        assert_eq!(hot, 0);
        assert!(proto.eval(&[2, 38])); // exactly 5%
        assert!(!proto.eval(&[1, 39]));
        assert!(simulate(compile_parsed(&p).unwrap(), &[2, 38], 3));
        assert!(!simulate(compile_parsed(&p).unwrap(), &[1, 39], 4));
    }

    #[test]
    fn boolean_skeleton_with_negation() {
        let p = parse("!(a < 2) /\\ !(a = 0 mod 3)").unwrap();
        let proto = compile_parsed(&p).unwrap();
        assert!(!proto.eval(&[1]));
        assert!(!proto.eval(&[3]));
        assert!(proto.eval(&[4]));
        assert!(simulate(compile_parsed(&p).unwrap(), &[4], 5));
    }

    #[test]
    fn integer_input_formula_matches_paper_example() {
        let phi = parse("y1 - 2 * y2 = 0 mod 3").unwrap().formula;
        let alphabet: Vec<Vec<i64>> =
            vec![vec![0, 0], vec![1, 0], vec![-1, 0], vec![0, 1], vec![0, -1]];
        let phi2 = integer_input_formula(&phi, &alphabet);
        let proto = compile(&phi2, 5).unwrap();
        // Enumerate count grids and compare against direct evaluation.
        for x1 in 0u64..3 {
            for x2 in 0u64..3 {
                for x3 in 0u64..3 {
                    for x4 in 0u64..3 {
                        let y1 = x1 as i64 - x2 as i64;
                        let y2 = x3 as i64 - x4 as i64;
                        let want = (y1 - 2 * y2).rem_euclid(3) == 0;
                        assert_eq!(
                            proto.eval(&[1, x1, x2, x3, x4]),
                            want,
                            "x=({x1},{x2},{x3},{x4})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn integer_input_simulation() {
        // Predicate y ≥ 2 under integer inputs with alphabet {+1, −1, 0}.
        let phi = parse("y >= 2").unwrap().formula;
        let alphabet = vec![vec![1], vec![-1], vec![0]];
        let phi2 = integer_input_formula(&phi, &alphabet);
        let proto = compile(&phi2, 3).unwrap();
        // 5 plus, 2 minus, 3 zero: y = 3 ≥ 2.
        assert!(simulate(proto, &[5, 2, 3], 6));
    }

    #[test]
    fn bool_expr_eval() {
        let e = BoolExpr::And(
            Box::new(BoolExpr::Atom(0)),
            Box::new(BoolExpr::Not(Box::new(BoolExpr::Or(
                Box::new(BoolExpr::Atom(1)),
                Box::new(BoolExpr::Const(false)),
            )))),
        );
        assert!(e.eval(&[true, false]));
        assert!(!e.eval(&[true, true]));
        assert!(!e.eval(&[false, false]));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_compiled_simulation_stabilizes_to_formula_verdict(
            x0 in 0u64..8, x1 in 0u64..8, seed in 0u64..3,
        ) {
            proptest::prop_assume!(x0 + x1 >= 2);
            let p = parse("a - b < 2 \\/ a + b = 0 mod 3").unwrap();
            let proto = compile_parsed(&p).unwrap();
            let expected = proto.eval(&[x0, x1]);
            let mut sim = Simulation::from_counts(proto, [(0usize, x0), (1usize, x1)]);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&expected, 150_000, &mut rng);
            proptest::prop_assert!(rep.converged());
        }
    }
}
