//! The batched engine (`Simulation::run_batched`) against the paper's
//! concrete protocols: the batch sampler must compute the same predicates
//! the sequential engine does — majority, parity, leader election — at
//! populations where batches are genuinely √n-sized.

use pp_core::observe::MetricsProbe;
use pp_core::{seeded_rng, Simulation};
use pp_protocols::{majority, parity, LeaderElection};

#[test]
fn batched_majority_stabilizes_to_the_true_predicate() {
    // 1-votes hold a 10% edge at n = 1000; the Lemma 5 protocol's leader
    // election needs Θ(n²) interactions, well inside the horizon.
    let mut sim = Simulation::from_counts(majority(), [(0usize, 450), (1usize, 550)]);
    let mut rng = seeded_rng(31);
    let rep = sim.measure_stabilization_batched(&true, 10_000_000, &mut rng);
    assert!(rep.converged(), "majority must stabilize to true");
    assert_eq!(sim.population(), 1_000);
    assert_eq!(sim.consensus_output(), Some(&true));
}

#[test]
fn batched_majority_negative_case() {
    let mut sim = Simulation::from_counts(majority(), [(0usize, 330), (1usize, 270)]);
    let mut rng = seeded_rng(32);
    let rep = sim.measure_stabilization_batched(&false, 5_000_000, &mut rng);
    assert!(rep.converged(), "majority must stabilize to false");
    assert_eq!(sim.consensus_output(), Some(&false));
}

#[test]
fn batched_parity_is_exact_on_both_residues() {
    // Parity is a remainder predicate: the final answer is a deterministic
    // function of the inputs, so any sampling bias that loses or duplicates
    // even one token shows up as a wrong consensus.
    for (ones, expected) in [(301u64, true), (300u64, false)] {
        let mut sim = Simulation::from_counts(parity(), [(0usize, 300), (1usize, ones)]);
        let mut rng = seeded_rng(33 + ones);
        let rep = sim.measure_stabilization_batched(&expected, 4_000_000, &mut rng);
        assert!(rep.converged(), "parity of {ones} ones must be {expected}");
    }
}

#[test]
fn batched_leader_election_leaves_one_leader() {
    let n = 1_024u64;
    let mut sim = Simulation::from_counts(LeaderElection, [((), n)]);
    let mut rng = seeded_rng(34);
    // Pairwise elimination takes ≈ n² interactions in expectation; 10n²
    // leaves the failure probability of the exponential tail negligible.
    sim.run_batched(10 * n * n, &mut rng);
    assert_eq!(sim.count_of_state(&true), 1, "exactly one leader survives");
    assert_eq!(sim.population(), n);
    // n − 1 duels each retire one leader; every other meeting is a no-op.
    assert_eq!(sim.effective_steps(), n - 1);
}

#[test]
fn batched_run_with_probe_sees_every_interaction() {
    let mut sim = Simulation::from_counts(majority(), [(0usize, 300), (1usize, 700)])
        .with_probe(MetricsProbe::new());
    let mut rng = seeded_rng(35);
    sim.run_batched(100_000, &mut rng);
    assert_eq!(sim.probe().interactions(), 100_000);
    assert_eq!(sim.probe().effective_interactions(), sim.effective_steps());
}
