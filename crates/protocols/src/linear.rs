//! The Lemma 5 building blocks: linear **threshold** and **remainder**
//! predicates.
//!
//! Lemma 5 of the paper shows that for integer constants `aᵢ`, `c` and
//! `m ≥ 2`, the predicates
//!
//! * `Σ aᵢ xᵢ < c`   ([`ThresholdProtocol`]) and
//! * `Σ aᵢ xᵢ ≡ c (mod m)`   ([`RemainderProtocol`])
//!
//! on symbol counts `xᵢ` are stably computable. Together with Boolean
//! closure (Lemma 3) these atoms yield every Presburger-definable predicate
//! (Theorem 5); the compiler in `pp-presburger` builds on exactly these two
//! types via [`LinearAtom`].
//!
//! Both protocols elect a leader as they go: every agent starts with its
//! leader bit set, leaders merge pairwise, and the unique surviving leader
//! accumulates the linear combination and distributes the verdict.

use pp_core::Protocol;

/// State of the Lemma 5 protocols: a leader bit, an output bit, and a
/// bounded "count" field accumulating the linear combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinState {
    /// Leader bit (`ℓ`): set on every agent initially; exactly one survives.
    pub leader: bool,
    /// Output bit (`b`): the verdict distributed by the last leader met.
    pub out: bool,
    /// Count field (`u`): a partial sum, clamped to `[-s, s]` for the
    /// threshold protocol or reduced mod `m` for the remainder protocol.
    pub count: i64,
}

impl LinState {
    /// Creates a state.
    pub fn new(leader: bool, out: bool, count: i64) -> Self {
        Self { leader, out, count }
    }
}

/// Errors constructing a linear-predicate protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinearProtocolError {
    /// The coefficient list is empty, so there is no input alphabet.
    EmptyCoefficients,
    /// The modulus of a remainder protocol must be at least 2.
    ModulusTooSmall {
        /// The offending modulus.
        m: i64,
    },
}

impl std::fmt::Display for LinearProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyCoefficients => write!(f, "coefficient list is empty"),
            Self::ModulusTooSmall { m } => write!(f, "modulus {m} is smaller than 2"),
        }
    }
}

impl std::error::Error for LinearProtocolError {}

/// The Lemma 5 threshold protocol: stably computes `Σ aᵢ xᵢ < c` where `xᵢ`
/// is the number of agents whose input is symbol `i` (symbol-count input
/// convention) under the all-agents predicate output convention.
///
/// The count fields are clamped to `[-s, s]` with
/// `s = max(|c| + 1, maxᵢ |aᵢ|)`; the paper's potential argument shows the
/// unique leader's count converges to `max(-s, min(s, Σ aᵢxᵢ))`, which is on
/// the correct side of `c` in either saturation case.
///
/// # Example
///
/// "At least 5 hot birds": `x₁ ≥ 5` is `-x₁ < -4`, i.e. coefficients
/// `[0, -1]` and `c = -4`, with the predicate answer *negated*… or simply
/// use `x₁ < 5` and read the complement. Direct form:
///
/// ```
/// use pp_protocols::linear::ThresholdProtocol;
///
/// // Predicate: x1 < 5  (fewer than five hot birds).
/// let p = ThresholdProtocol::new(vec![0, 1], 5).unwrap();
/// assert!(p.eval(&[95, 4]));
/// assert!(!p.eval(&[95, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdProtocol {
    coeffs: Vec<i64>,
    c: i64,
    s: i64,
}

impl ThresholdProtocol {
    /// Creates the protocol for `Σ coeffs[i]·xᵢ < c`.
    ///
    /// # Errors
    ///
    /// Returns [`LinearProtocolError::EmptyCoefficients`] if `coeffs` is
    /// empty.
    pub fn new(coeffs: Vec<i64>, c: i64) -> Result<Self, LinearProtocolError> {
        if coeffs.is_empty() {
            return Err(LinearProtocolError::EmptyCoefficients);
        }
        let s = (c.abs() + 1).max(coeffs.iter().map(|a| a.abs()).max().unwrap_or(0));
        Ok(Self { coeffs, c, s })
    }

    /// The clamp bound `s`.
    pub fn bound(&self) -> i64 {
        self.s
    }

    /// The coefficient of input symbol `i`.
    pub fn coefficient(&self, i: usize) -> i64 {
        self.coeffs[i]
    }

    /// Number of input symbols.
    pub fn arity(&self) -> usize {
        self.coeffs.len()
    }

    /// Ground-truth evaluation of the predicate on symbol counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the coefficient arity.
    pub fn eval(&self, counts: &[u64]) -> bool {
        assert_eq!(counts.len(), self.coeffs.len(), "arity mismatch");
        let sum: i64 = self
            .coeffs
            .iter()
            .zip(counts)
            .map(|(&a, &x)| a * i64::try_from(x).expect("count too large"))
            .sum();
        sum < self.c
    }

    /// The paper's `q(u, u') = max(-s, min(s, u + u'))`.
    #[inline]
    fn q(&self, u: i64, v: i64) -> i64 {
        (u + v).clamp(-self.s, self.s)
    }
}

impl Protocol for ThresholdProtocol {
    type State = LinState;
    type Input = usize;
    type Output = bool;

    /// Maps symbol `i` to `(1, 0, aᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol index is out of range.
    fn input(&self, &i: &usize) -> LinState {
        LinState::new(true, false, self.coeffs[i])
    }

    fn output(&self, q: &LinState) -> bool {
        q.out
    }

    fn delta(&self, p: &LinState, r: &LinState) -> (LinState, LinState) {
        if !p.leader && !r.leader {
            return (*p, *r);
        }
        let q = self.q(p.count, r.count);
        let rem = p.count + r.count - q;
        let b = q < self.c;
        (LinState::new(true, b, q), LinState::new(false, b, rem))
    }
}

/// The Lemma 5 remainder protocol: stably computes `Σ aᵢ xᵢ ≡ c (mod m)`
/// under the symbol-count input convention and the all-agents predicate
/// output convention.
///
/// # Example
///
/// ```
/// use pp_protocols::linear::RemainderProtocol;
///
/// // Parity of x1: x1 ≡ 1 (mod 2).
/// let p = RemainderProtocol::new(vec![0, 1], 1, 2).unwrap();
/// assert!(p.eval(&[10, 3]));
/// assert!(!p.eval(&[10, 4]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemainderProtocol {
    coeffs: Vec<i64>,
    c: i64,
    m: i64,
}

impl RemainderProtocol {
    /// Creates the protocol for `Σ coeffs[i]·xᵢ ≡ c (mod m)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `coeffs` is empty or `m < 2`.
    pub fn new(coeffs: Vec<i64>, c: i64, m: i64) -> Result<Self, LinearProtocolError> {
        if coeffs.is_empty() {
            return Err(LinearProtocolError::EmptyCoefficients);
        }
        if m < 2 {
            return Err(LinearProtocolError::ModulusTooSmall { m });
        }
        Ok(Self { coeffs, c: c.rem_euclid(m), m })
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> i64 {
        self.m
    }

    /// Number of input symbols.
    pub fn arity(&self) -> usize {
        self.coeffs.len()
    }

    /// Ground-truth evaluation of the predicate on symbol counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the coefficient arity.
    pub fn eval(&self, counts: &[u64]) -> bool {
        assert_eq!(counts.len(), self.coeffs.len(), "arity mismatch");
        let sum: i64 = self
            .coeffs
            .iter()
            .zip(counts)
            .map(|(&a, &x)| {
                (a.rem_euclid(self.m) * (i64::try_from(x).expect("count too large") % self.m))
                    % self.m
            })
            .sum();
        sum.rem_euclid(self.m) == self.c
    }
}

impl Protocol for RemainderProtocol {
    type State = LinState;
    type Input = usize;
    type Output = bool;

    /// Maps symbol `i` to `(1, 0, aᵢ mod m)`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol index is out of range.
    fn input(&self, &i: &usize) -> LinState {
        LinState::new(true, false, self.coeffs[i].rem_euclid(self.m))
    }

    fn output(&self, q: &LinState) -> bool {
        q.out
    }

    fn delta(&self, p: &LinState, r: &LinState) -> (LinState, LinState) {
        if !p.leader && !r.leader {
            return (*p, *r);
        }
        let u = (p.count + r.count).rem_euclid(self.m);
        let b = u == self.c;
        (LinState::new(true, b, u), LinState::new(false, b, 0))
    }
}

/// Either Lemma 5 atom, under one state type — the unit the Presburger
/// compiler (Theorem 5) composes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearAtom {
    /// `Σ aᵢ xᵢ < c`.
    Threshold(ThresholdProtocol),
    /// `Σ aᵢ xᵢ ≡ c (mod m)`.
    Remainder(RemainderProtocol),
}

impl LinearAtom {
    /// Ground-truth evaluation on symbol counts.
    pub fn eval(&self, counts: &[u64]) -> bool {
        match self {
            Self::Threshold(t) => t.eval(counts),
            Self::Remainder(r) => r.eval(counts),
        }
    }

    /// Number of input symbols.
    pub fn arity(&self) -> usize {
        match self {
            Self::Threshold(t) => t.arity(),
            Self::Remainder(r) => r.arity(),
        }
    }
}

impl Protocol for LinearAtom {
    type State = LinState;
    type Input = usize;
    type Output = bool;

    fn input(&self, i: &usize) -> LinState {
        match self {
            Self::Threshold(t) => t.input(i),
            Self::Remainder(r) => r.input(i),
        }
    }

    fn output(&self, q: &LinState) -> bool {
        q.out
    }

    fn delta(&self, p: &LinState, q: &LinState) -> (LinState, LinState) {
        match self {
            Self::Threshold(t) => t.delta(p, q),
            Self::Remainder(r) => r.delta(p, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    /// Drives a linear protocol on the given symbol counts and asserts it
    /// stabilizes to the ground-truth verdict.
    fn check_stabilizes<P>(p: P, counts: &[u64], expected: bool, seed: u64)
    where
        P: Protocol<State = LinState, Input = usize, Output = bool>,
    {
        let inputs = counts
            .iter()
            .enumerate()
            .map(|(i, &k)| (i, k))
            .collect::<Vec<_>>();
        let mut sim = Simulation::from_counts(p, inputs);
        let mut rng = seeded_rng(seed);
        let n = sim.population();
        let horizon = (n * n * 64).max(100_000);
        let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
        assert!(
            rep.converged(),
            "did not stabilize to {expected} on counts {counts:?}"
        );
        assert!(
            rep.silent_tail() > horizon / 4,
            "suspiciously short stable tail on counts {counts:?}"
        );
    }

    #[test]
    fn threshold_constructor_validates() {
        assert!(ThresholdProtocol::new(vec![], 0).is_err());
        let p = ThresholdProtocol::new(vec![3, -7], 2).unwrap();
        assert_eq!(p.bound(), 7);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.coefficient(1), -7);
    }

    #[test]
    fn remainder_constructor_validates() {
        assert!(RemainderProtocol::new(vec![1], 0, 1).is_err());
        assert!(RemainderProtocol::new(vec![], 0, 3).is_err());
        let p = RemainderProtocol::new(vec![1], -1, 3).unwrap();
        assert_eq!(p.modulus(), 3);
        // c normalized into [0, m).
        assert!(p.eval(&[2]));
    }

    #[test]
    fn threshold_eval_ground_truth() {
        // 2*x0 - x1 < 3
        let p = ThresholdProtocol::new(vec![2, -1], 3).unwrap();
        assert!(p.eval(&[0, 0]));
        assert!(p.eval(&[1, 0]));
        assert!(!p.eval(&[2, 0]));
        assert!(p.eval(&[2, 2]));
    }

    #[test]
    fn threshold_stabilizes_positive_and_negative() {
        // x1 >= 5  <=>  NOT(x1 < 5); drive the "x1 < 5" protocol.
        let mk = || ThresholdProtocol::new(vec![0, 1], 5).unwrap();
        check_stabilizes(mk(), &[20, 4], true, 1);
        check_stabilizes(mk(), &[20, 5], false, 2);
        check_stabilizes(mk(), &[20, 17], false, 3);
    }

    #[test]
    fn threshold_with_negative_coefficients() {
        // Majority-ish: x0 - x1 < 0, i.e. more 1s than 0s.
        let mk = || ThresholdProtocol::new(vec![1, -1], 0).unwrap();
        check_stabilizes(mk(), &[10, 11], true, 4);
        check_stabilizes(mk(), &[11, 10], false, 5);
        check_stabilizes(mk(), &[10, 10], false, 6);
    }

    #[test]
    fn remainder_stabilizes() {
        // x0 + 2*x1 ≡ 1 (mod 3)
        let mk = || RemainderProtocol::new(vec![1, 2], 1, 3).unwrap();
        check_stabilizes(mk(), &[5, 1], true, 7); // 5 + 2 = 7 ≡ 1 (mod 3)
        check_stabilizes(mk(), &[5, 2], false, 8); // 9 ≡ 0
        check_stabilizes(mk(), &[2, 1], true, 9); // 2 + 2 = 4 ≡ 1 (mod 3)
    }

    #[test]
    fn remainder_small_case_truth_table() {
        let p = RemainderProtocol::new(vec![1, 2], 1, 3).unwrap();
        assert!(p.eval(&[5, 1]));
        assert!(!p.eval(&[5, 2]));
        assert!(p.eval(&[2, 1])); // 2 + 2 = 4 ≡ 1 (mod 3)
    }

    #[test]
    fn threshold_sum_invariant_until_saturation() {
        // Within bounds, each interaction preserves the sum of count fields.
        let p = ThresholdProtocol::new(vec![1, -1], 0).unwrap();
        let a = p.input(&0);
        let b = p.input(&1);
        let (a2, b2) = p.delta(&a, &b);
        assert_eq!(a.count + b.count, a2.count + b2.count);
        // Leaders merge.
        assert!(a2.leader);
        assert!(!b2.leader);
    }

    #[test]
    fn nonleader_pairs_are_noops() {
        let p = ThresholdProtocol::new(vec![1], 1).unwrap();
        let x = LinState::new(false, false, 1);
        let y = LinState::new(false, true, 0);
        assert_eq!(p.delta(&x, &y), (x, y));
        let r = RemainderProtocol::new(vec![1], 0, 2).unwrap();
        assert_eq!(r.delta(&x, &y), (x, y));
    }

    #[test]
    fn linear_atom_dispatches() {
        let t = LinearAtom::Threshold(ThresholdProtocol::new(vec![1], 2).unwrap());
        let r = LinearAtom::Remainder(RemainderProtocol::new(vec![1], 0, 2).unwrap());
        assert!(t.eval(&[1]));
        assert!(!t.eval(&[2]));
        assert!(r.eval(&[4]));
        assert!(!r.eval(&[3]));
        assert_eq!(t.arity(), 1);
        let s = t.input(&0);
        assert!(s.leader);
        assert!(!t.output(&s));
    }

    #[test]
    fn remainder_eval_handles_negative_coefficients() {
        // -x0 ≡ 2 (mod 3) with x0 = 1: -1 ≡ 2 ✓
        let p = RemainderProtocol::new(vec![-1], 2, 3).unwrap();
        assert!(p.eval(&[1]));
        assert!(!p.eval(&[2]));
    }

    proptest::proptest! {
        #[test]
        fn prop_threshold_conserves_unclamped_sum_when_within_bounds(
            u in -5i64..=5, v in -5i64..=5, lp: bool, lr: bool,
        ) {
            let p = ThresholdProtocol::new(vec![5, -5], 0).unwrap();
            let a = LinState::new(lp, false, u);
            let b = LinState::new(lr, false, v);
            let (a2, b2) = p.delta(&a, &b);
            // q + r = u + v always (Lemma 5 observation).
            proptest::prop_assert_eq!(a2.count + b2.count, a.count + b.count);
            // Counts stay in [-s, s].
            proptest::prop_assert!(a2.count.abs() <= p.bound());
            proptest::prop_assert!(b2.count.abs() <= p.bound());
        }

        #[test]
        fn prop_remainder_preserves_sum_mod_m(
            u in 0i64..7, v in 0i64..7, lp: bool, lr: bool,
        ) {
            let m = 7;
            let p = RemainderProtocol::new(vec![1], 3, m).unwrap();
            let a = LinState::new(lp, false, u);
            let b = LinState::new(lr, false, v);
            let (a2, b2) = p.delta(&a, &b);
            proptest::prop_assert_eq!(
                (a2.count + b2.count).rem_euclid(m),
                (u + v).rem_euclid(m)
            );
        }

        #[test]
        fn prop_leader_count_never_increases(
            lp: bool, lr: bool, u in -3i64..=3, v in -3i64..=3,
        ) {
            let p = ThresholdProtocol::new(vec![3], 1).unwrap();
            let a = LinState::new(lp, false, u);
            let b = LinState::new(lr, false, v);
            let (a2, b2) = p.delta(&a, &b);
            let before = usize::from(lp) + usize::from(lr);
            let after = usize::from(a2.leader) + usize::from(b2.leader);
            proptest::prop_assert!(after <= before);
            // And at least one leader survives if there was one.
            if before > 0 {
                proptest::prop_assert!(after >= 1);
            }
        }

        #[test]
        fn prop_threshold_simulation_matches_eval(
            x0 in 0u64..12, x1 in 0u64..12, seed in 0u64..4,
        ) {
            proptest::prop_assume!(x0 + x1 >= 2);
            let p = ThresholdProtocol::new(vec![2, -3], 1).unwrap();
            let expected = p.eval(&[x0, x1]);
            let mut sim = Simulation::from_counts(p, [(0usize, x0), (1usize, x1)]);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&expected, 60_000, &mut rng);
            proptest::prop_assert!(rep.converged());
        }
    }
}
