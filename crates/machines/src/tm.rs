//! Single-tape Turing machines.
//!
//! The machines simulated on populations in Theorem 10 are logspace TMs
//! with unary inputs; this module provides the direct substrate: a
//! conventional single-tape machine with explicit transition tables, used
//! both as a baseline and as the input to the Minsky compiler
//! ([`crate::minsky`]).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// One transition: write `write`, move `mv`, enter `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Symbol to write.
    pub write: u8,
    /// Head movement.
    pub mv: Move,
    /// Next state.
    pub next: usize,
}

/// Errors from TM construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TmError {
    /// A transition mentions a symbol ≥ the alphabet size.
    BadSymbol {
        /// The offending symbol.
        symbol: u8,
    },
    /// A transition mentions a state ≥ the state count.
    BadState {
        /// The offending state.
        state: usize,
    },
    /// The machine ran out of fuel before halting.
    OutOfFuel {
        /// The exhausted budget.
        fuel: u64,
    },
    /// The machine reached a (state, symbol) pair with no transition and
    /// the state is not the halt state.
    Stuck {
        /// State at the stuck point.
        state: usize,
        /// Symbol under the head.
        symbol: u8,
    },
    /// An input symbol is outside the alphabet.
    BadInput {
        /// The offending symbol.
        symbol: u8,
    },
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSymbol { symbol } => write!(f, "symbol {symbol} outside alphabet"),
            Self::BadState { state } => write!(f, "state {state} out of range"),
            Self::OutOfFuel { fuel } => write!(f, "no halt within {fuel} steps"),
            Self::Stuck { state, symbol } => {
                write!(f, "no transition from state {state} on symbol {symbol}")
            }
            Self::BadInput { symbol } => write!(f, "input symbol {symbol} outside alphabet"),
        }
    }
}

impl Error for TmError {}

/// Result of a halted TM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmOutcome {
    /// Tape contents from the leftmost to the rightmost visited cell, with
    /// leading and trailing blanks trimmed.
    pub tape: Vec<u8>,
    /// Steps executed.
    pub steps: u64,
}

/// A deterministic single-tape Turing machine. Symbol `0` is the blank;
/// the tape is unbounded in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuringMachine {
    num_states: usize,
    num_symbols: u8,
    start: usize,
    halt: usize,
    transitions: HashMap<(usize, u8), Action>,
}

impl TuringMachine {
    /// Creates a machine.
    ///
    /// * `num_states` — states are `0..num_states`; `start` is the initial
    ///   state and `halt` the halting state (no transitions needed there).
    /// * `num_symbols` — symbols are `0..num_symbols`, `0` is the blank.
    /// * `transitions` — the partial transition table.
    ///
    /// # Errors
    ///
    /// Returns [`TmError`] on out-of-range states or symbols.
    pub fn new(
        num_states: usize,
        num_symbols: u8,
        start: usize,
        halt: usize,
        transitions: impl IntoIterator<Item = ((usize, u8), Action)>,
    ) -> Result<Self, TmError> {
        if start >= num_states {
            return Err(TmError::BadState { state: start });
        }
        if halt >= num_states {
            return Err(TmError::BadState { state: halt });
        }
        let mut table = HashMap::new();
        for ((s, c), a) in transitions {
            if s >= num_states {
                return Err(TmError::BadState { state: s });
            }
            if a.next >= num_states {
                return Err(TmError::BadState { state: a.next });
            }
            if c >= num_symbols {
                return Err(TmError::BadSymbol { symbol: c });
            }
            if a.write >= num_symbols {
                return Err(TmError::BadSymbol { symbol: a.write });
            }
            table.insert((s, c), a);
        }
        Ok(Self { num_states, num_symbols, start, halt, transitions: table })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size (including the blank `0`).
    pub fn num_symbols(&self) -> u8 {
        self.num_symbols
    }

    /// Start state.
    pub fn start_state(&self) -> usize {
        self.start
    }

    /// Halt state.
    pub fn halt_state(&self) -> usize {
        self.halt
    }

    /// The transition for `(state, symbol)`, if any.
    pub fn action(&self, state: usize, symbol: u8) -> Option<Action> {
        self.transitions.get(&(state, symbol)).copied()
    }

    /// Runs on `input` (written at cells `0..input.len()`, head starting at
    /// cell 0) until the halt state, for at most `fuel` steps.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::OutOfFuel`], [`TmError::Stuck`], or
    /// [`TmError::BadInput`].
    pub fn run(&self, input: &[u8], fuel: u64) -> Result<TmOutcome, TmError> {
        for &c in input {
            if c >= self.num_symbols {
                return Err(TmError::BadInput { symbol: c });
            }
        }
        // Tape as two stacks around the head, exactly the Minsky view:
        // `left` holds cells left of the head (top = adjacent), `right`
        // holds the current cell and everything to its right.
        let mut left: Vec<u8> = Vec::new();
        let mut right: Vec<u8> = input.iter().rev().copied().collect();
        let mut state = self.start;
        let mut steps = 0u64;
        while state != self.halt {
            if steps >= fuel {
                return Err(TmError::OutOfFuel { fuel });
            }
            let cur = right.last().copied().unwrap_or(0);
            let Some(a) = self.action(state, cur) else {
                return Err(TmError::Stuck { state, symbol: cur });
            };
            if right.pop().is_none() {
                // Head was on a blank beyond the written region.
            }
            match a.mv {
                Move::Right => left.push(a.write),
                Move::Stay => right.push(a.write),
                Move::Left => {
                    right.push(a.write);
                    right.push(left.pop().unwrap_or(0));
                }
            }
            state = a.next;
            steps += 1;
        }
        // Reassemble the tape left-to-right and trim blanks.
        let mut tape: Vec<u8> = left;
        tape.extend(right.iter().rev());
        while tape.first() == Some(&0) {
            tape.remove(0);
        }
        while tape.last() == Some(&0) {
            tape.pop();
        }
        Ok(TmOutcome { tape, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn construction_validates() {
        assert!(TuringMachine::new(2, 2, 5, 1, []).is_err());
        assert!(TuringMachine::new(2, 2, 0, 1, [
            ((0, 3), Action { write: 0, mv: Move::Stay, next: 1 })
        ])
        .is_err());
        assert!(TuringMachine::new(2, 2, 0, 1, [
            ((0, 0), Action { write: 0, mv: Move::Stay, next: 7 })
        ])
        .is_err());
    }

    #[test]
    fn unary_increment_appends_one() {
        let tm = programs::tm_unary_increment();
        for n in 0..6 {
            let input = vec![1u8; n];
            let out = tm.run(&input, 1000).unwrap();
            assert_eq!(out.tape, vec![1u8; n + 1], "n={n}");
        }
    }

    #[test]
    fn parity_machine() {
        let tm = programs::tm_unary_parity();
        for n in 0..8 {
            let out = tm.run(&vec![1u8; n], 1000).unwrap();
            let expect = if n % 2 == 1 { vec![1u8] } else { vec![] };
            assert_eq!(out.tape, expect, "n={n}");
        }
    }

    #[test]
    fn halving_machine() {
        let tm = programs::tm_unary_half();
        for n in 0..10 {
            let out = tm.run(&vec![1u8; n], 10_000).unwrap();
            let ones = out.tape.iter().filter(|&&c| c == 1).count();
            assert_eq!(ones, n / 2, "n={n}");
        }
    }

    #[test]
    fn stuck_and_fuel_errors() {
        let tm = TuringMachine::new(
            3,
            2,
            0,
            2,
            [
                // Loop forever on blank; no transition on 1.
                ((0, 0), Action { write: 0, mv: Move::Stay, next: 0 }),
            ],
        )
        .unwrap();
        assert_eq!(tm.run(&[0], 25), Err(TmError::OutOfFuel { fuel: 25 }));
        assert_eq!(tm.run(&[1], 25), Err(TmError::Stuck { state: 0, symbol: 1 }));
        assert_eq!(tm.run(&[9], 25), Err(TmError::BadInput { symbol: 9 }));
    }

    #[test]
    fn left_moves_past_origin_hit_blanks() {
        // Move left twice from the origin, write 1s, halt.
        let tm = TuringMachine::new(
            3,
            2,
            0,
            2,
            [
                ((0, 0), Action { write: 1, mv: Move::Left, next: 1 }),
                ((1, 0), Action { write: 1, mv: Move::Left, next: 2 }),
            ],
        )
        .unwrap();
        let out = tm.run(&[], 10).unwrap();
        assert_eq!(out.tape, vec![1, 1]);
        assert_eq!(out.steps, 2);
    }
}
