//! E5 — Lemma 11(2,3): expected draw counts of the urn process.
//!
//! * `m > 0`: conditioned on winning, `E[draws] ≤ N/m`;
//! * `m = 0`: `E[draws to lose] = O(Nᵏ)` — compared against the exact
//!   success-run waiting time `(1 − pᵏ)/(pᵏ(1−p))`, `p = 1/N`.

use pp_bench::{fmt, mean, print_header};
use pp_core::seeded_rng;
use pp_random::UrnProcess;

fn main() {
    println!("\nE5a: Lemma 11(2) — winning draws vs the N/m bound (k = 2)\n");
    print_header(&["N", "m", "trials", "E[draws|win]", "N/m bound"], &[5, 4, 8, 13, 11]);
    let mut rng = seeded_rng(5);
    for &n in &[8u64, 16, 32, 64] {
        for &m in &[1u64, 2, 4] {
            let urn = UrnProcess::new(n, m, 2);
            let trials = if pp_bench::smoke() { 1_000 } else { 60_000 };
            let mut wins = Vec::new();
            for _ in 0..trials {
                let o = urn.run(&mut rng);
                if o.won {
                    wins.push(o.draws as f64);
                }
            }
            println!(
                "{:>5} {:>4} {:>8} {:>13} {:>11}",
                n,
                m,
                wins.len(),
                fmt(mean(&wins)),
                fmt(urn.expected_draws_bound()),
            );
        }
    }

    println!("\nE5b: Lemma 11(3) — m = 0: E[draws to k consecutive timers] = O(N^k)\n");
    print_header(&["N", "k", "trials", "measured", "exact", "N^k"], &[5, 3, 8, 11, 11, 11]);
    for &n in &[4u64, 8, 16] {
        for &k in &[1u32, 2, 3] {
            let urn = UrnProcess::new(n, 0, k);
            let exact = urn.expected_draws_to_lose();
            let trials = (40_000_000.0 / exact) as u64;
            let trials =
                if pp_bench::smoke() { 200 } else { trials.clamp(500, 200_000) };
            let mut draws = Vec::new();
            for _ in 0..trials {
                draws.push(urn.run(&mut rng).draws as f64);
            }
            println!(
                "{:>5} {:>3} {:>8} {:>11} {:>11} {:>11}",
                n,
                k,
                trials,
                fmt(mean(&draws)),
                fmt(exact),
                fmt((n as f64).powi(k as i32)),
            );
        }
    }
    println!("\npaper: measured ≈ exact = Θ(N^k); winning draws stay under N/m\n");
}
