//! A plain fixed-length bitset, the packed backing store of the agent
//! engine's per-agent flags.
//!
//! At 10⁸ agents a `Vec<bool>` crash mask costs 100 MB and a
//! `Vec<Option<bool>>` coin column 100 MB more — and, worse, every byte the
//! hot loop touches evicts a cache line of states. Packed to one bit per
//! agent the crash mask is 12.5 MB and the coin pair 25 MB, and testing a
//! bit is a shift-and-mask on a word that is usually already in cache.
//! [`AgentStore`](crate::config::AgentStore) keeps one `BitSet` for the
//! crash mask and a *pair* of them (known/value) for the synthesized coins
//! that used to live in a `Vec<Option<bool>>`.

/// A fixed-length set of bits, stored 64 per word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for bitset of {} bits", self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range for bitset of {} bits", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set — `O(words)`, short-circuiting.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut b = BitSet::new(130);
        for &i in &[0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = BitSet::new(200);
        let expect = vec![3usize, 64, 65, 100, 199];
        for &i in &expect {
            b.set(i, true);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn clear_all_and_any() {
        let mut b = BitSet::new(70);
        assert!(!b.any());
        b.set(69, true);
        assert!(b.any());
        b.clear_all();
        assert!(!b.any());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitSet::new(10).get(10);
    }

    #[test]
    fn zero_length_is_empty() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(!b.any());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
