//! Transparency properties of the tracing layer: attaching a tracer must
//! never change what the simulation computes. Tracers read the clock but
//! never the RNG, so same seed ⇒ identical reports *and* an identical RNG
//! stream afterward — whether the run carries the default [`NoTracer`], an
//! explicit [`NoTracer`], or a live [`SpanStats`] — on every execution
//! path: sequential steps, leaps, the batched engine, ensemble fan-out,
//! and faulted runs. Plus: [`SpanStats`] merge is exact on counters and
//! folding per-trial tracers in trial order is thread-count invariant.

use pp_core::scheduler::UniformPairScheduler;
use pp_core::{
    seeded_rng, AgentSimulation, Ensemble, FnProtocol, NoTracer, Protocol, Simulation, SpanKind,
    SpanStats, StabilizationReport, TransientCorruption,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::RngCore;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Three-state approximate majority (Angluin–Aspnes–Eisenstat): richer rule
/// set than the epidemic, so batched grouping is exercised.
fn approx_majority() -> impl Protocol<State = u8, Input = u8, Output = u8> {
    // 0 = zero, 1 = one, 2 = blank.
    FnProtocol::new(
        |&x: &u8| x,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| match (p, q) {
            (0, 1) => (0, 2),
            (1, 0) => (1, 2),
            (0, 2) => (0, 0),
            (1, 2) => (1, 1),
            _ => (p, q),
        },
    )
}

/// Drains a few values from the RNG so stream identity after the run is
/// checked, not just the run's outcome.
fn drain(rng: &mut impl RngCore) -> [u64; 4] {
    [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()]
}

/// The deterministic projection of a [`SpanStats`]: everything except
/// wall-clock self-times — counters for every kind, plus the exact Welford
/// moments for `kinds_with_times` (kinds populated only by synthetic
/// [`SpanStats::record`], whose fold-left merge is bitwise reproducible).
fn projection(s: &SpanStats, kinds_with_times: &[SpanKind]) -> Vec<(u64, u64, u64, [u64; 4])> {
    SpanKind::ALL
        .iter()
        .map(|&k| {
            let moments = if kinds_with_times.contains(&k) {
                [
                    s.self_ns(k).mean().to_bits(),
                    s.self_ns(k).std_dev().to_bits(),
                    s.self_ns(k).min().to_bits(),
                    s.self_ns(k).max().to_bits(),
                ]
            } else {
                [0; 4]
            };
            (s.count(k), s.items(k), s.instants(k), moments)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn count_engine_step_path_is_tracer_transparent(
        seed in 0u64..1_000,
        ones in 1u64..24,
        zeros in 1u64..24,
        horizon in 100u64..5_000,
    ) {
        type Outcome = Result<(StabilizationReport, u64, u64, [u64; 4]), TestCaseError>;
        let run = |traced: bool| -> Outcome {
            let init = [(1u8, ones), (0u8, zeros)];
            let expected = if ones > zeros { 1u8 } else { 0u8 };
            let mut rng = seeded_rng(seed);
            if traced {
                let mut sim = Simulation::from_counts(approx_majority(), init)
                    .with_tracer(SpanStats::new());
                let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
                // The step path wraps the whole horizon loop in one
                // scheduler_draw span covering `horizon` draws.
                prop_assert_eq!(sim.tracer().count(SpanKind::SchedulerDraw), 1);
                prop_assert_eq!(sim.tracer().items(SpanKind::SchedulerDraw), horizon);
                Ok((rep, sim.steps(), sim.effective_steps(), drain(&mut rng)))
            } else {
                let mut sim = Simulation::from_counts(approx_majority(), init)
                    .with_tracer(NoTracer);
                let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
                Ok((rep, sim.steps(), sim.effective_steps(), drain(&mut rng)))
            }
        };
        prop_assert_eq!(run(false)?, run(true)?);
    }

    #[test]
    fn count_engine_leap_path_is_tracer_transparent(
        seed in 0u64..1_000,
        n in 4u64..64,
    ) {
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            let t = sim.run_to_quiescence(100_000, &mut rng);
            (t, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let traced = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_tracer(SpanStats::new());
            let mut rng = seeded_rng(seed);
            let t = sim.run_to_quiescence(100_000, &mut rng);
            prop_assert!(sim.tracer().count(SpanKind::SchedulerDraw) > 0);
            (t, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, traced);
    }

    #[test]
    fn batched_path_is_tracer_transparent(
        seed in 0u64..1_000,
        ones in 8u64..64,
        zeros in 8u64..64,
        horizon in 500u64..8_000,
    ) {
        let init = [(1u8, ones), (0u8, zeros)];
        let expected = if ones > zeros { 1u8 } else { 0u8 };
        let base = {
            let mut sim = Simulation::from_counts(approx_majority(), init);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization_batched(&expected, horizon, &mut rng);
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let traced = {
            let mut sim = Simulation::from_counts(approx_majority(), init)
                .with_tracer(SpanStats::new());
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization_batched(&expected, horizon, &mut rng);
            // Batched windows emit paired sample/apply spans.
            prop_assert_eq!(
                sim.tracer().count(SpanKind::BatchSample),
                sim.tracer().count(SpanKind::BatchApply)
            );
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, traced);
    }

    #[test]
    fn agent_engine_is_tracer_transparent(
        seed in 0u64..1_000,
        n in 4usize..48,
        horizon in 100u64..4_000,
    ) {
        let inputs: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let base = {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(), &inputs, UniformPairScheduler::new(n));
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let traced = {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(), &inputs, UniformPairScheduler::new(n))
                .with_tracer(SpanStats::new());
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            prop_assert_eq!(sim.tracer().count(SpanKind::SchedulerDraw), 1);
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, traced);
    }

    #[test]
    fn faulted_runs_are_tracer_transparent(
        seed in 0u64..1_000,
        n in 8u64..64,
        burst in 1u64..2_000,
        corruptions in 1u64..6,
    ) {
        let horizon = 4_000;
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut plan = TransientCorruption::<bool>::uniform_at(burst, corruptions);
            let mut rng = seeded_rng(seed);
            let rep = sim.run_with_faults(&mut plan, &true, horizon, &mut rng);
            (rep, sim.steps(), drain(&mut rng))
        };
        let traced = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_tracer(SpanStats::new());
            let mut plan = TransientCorruption::<bool>::uniform_at(burst, corruptions);
            let mut rng = seeded_rng(seed);
            let rep = sim.run_with_faults(&mut plan, &true, horizon, &mut rng);
            // The burst surfaced as one instant event carrying its tally.
            prop_assert_eq!(sim.tracer().instants(SpanKind::FaultBurst), 1);
            prop_assert_eq!(sim.tracer().items(SpanKind::FaultBurst), corruptions);
            (rep, sim.steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, traced);
    }

    #[test]
    fn ensemble_map_traced_matches_map_at_any_thread_count(
        master in 0u64..1_000,
        trials in 1u64..12,
        n in 4u64..32,
    ) {
        let horizon = 2_000;
        let run = |sim_seed: u64, rng: &mut rand::rngs::StdRng| {
            let mut sim = Simulation::from_counts(
                epidemic(), [(true, 1), (false, n - 1 + sim_seed % 3)]);
            let rep = sim.measure_stabilization(&true, horizon, rng);
            (rep, sim.steps(), drain(rng))
        };
        let plain = Ensemble::new(trials, master).with_threads(1).map(|i, rng| run(i, rng));
        for threads in [1usize, 2, 8] {
            let ens = Ensemble::new(trials, master).with_threads(threads);
            let (results, tracers) =
                ens.map_traced(|_| SpanStats::new(), |i, rng, _tr| run(i, rng));
            prop_assert_eq!(&results, &plain,
                "tracer fan-out changed results at {} threads", threads);
            // One trial span per trial, reassembled in trial order.
            prop_assert_eq!(tracers.len() as u64, trials);
            for t in &tracers {
                prop_assert_eq!(t.count(SpanKind::Trial), 1);
            }
        }
    }

    #[test]
    fn span_stats_fold_is_thread_count_invariant(
        master in 0u64..1_000,
        trials in 1u64..16,
    ) {
        // Per-trial tracers carry synthetic, trial-determined spans; folding
        // them in trial order must give bitwise-identical moments no matter
        // how many worker threads produced them.
        let fixture = |i: u64, tr: &mut SpanStats| {
            tr.record(SpanKind::BatchSample, 100 + 13 * i, i);
            tr.record(SpanKind::BatchApply, 7 * i + 1, 2 * i);
            if i.is_multiple_of(2) {
                tr.instant(SpanKind::FaultBurst, i);
            }
            i
        };
        use pp_core::Tracer as _;
        let mut folded = Vec::new();
        for threads in [1usize, 2, 8] {
            let ens = Ensemble::new(trials, master).with_threads(threads);
            let (results, tracers) = ens.map_traced(
                |_| SpanStats::new(),
                |i, _rng, tr| fixture(i, tr),
            );
            prop_assert_eq!(results, (0..trials).collect::<Vec<_>>());
            let mut acc = SpanStats::new();
            for t in &tracers {
                acc.merge(t);
            }
            folded.push(projection(&acc, &[SpanKind::BatchSample, SpanKind::BatchApply]));
        }
        prop_assert_eq!(&folded[0], &folded[1], "1 vs 2 threads");
        prop_assert_eq!(&folded[0], &folded[2], "1 vs 8 threads");
    }

    #[test]
    fn span_stats_merge_counters_are_associative(
        a_len in 0u64..8, a_seed in 1u64..100_000,
        b_len in 0u64..8, b_seed in 1u64..100_000,
        c_len in 0u64..8, c_seed in 1u64..100_000,
    ) {
        // The vendored proptest has no collection strategies; derive each
        // part's span durations from a (length, seed) pair instead.
        let build = |len: u64, seed: u64| {
            let mut s = SpanStats::new();
            for j in 0..len {
                s.record(SpanKind::SchedulerDraw, 1 + (seed * (j + 1)) % 100_000, j);
            }
            s
        };
        let (a, b, c) = (build(a_len, a_seed), build(b_len, b_seed), build(c_len, c_seed));
        // (a ⊔ b) ⊔ c
        let mut left = SpanStats::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = SpanStats::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut right = SpanStats::new();
        right.merge(&a);
        right.merge(&bc);
        let k = SpanKind::SchedulerDraw;
        prop_assert_eq!(left.count(k), right.count(k));
        prop_assert_eq!(left.items(k), right.items(k));
        prop_assert_eq!(left.self_ns(k).count(), right.self_ns(k).count());
        // Welford moments are associative up to rounding.
        if left.count(k) > 0 {
            prop_assert!((left.self_ns(k).mean() - right.self_ns(k).mean()).abs()
                < 1e-6 * left.self_ns(k).mean().abs().max(1.0));
            prop_assert_eq!(left.self_ns(k).min(), right.self_ns(k).min());
            prop_assert_eq!(left.self_ns(k).max(), right.self_ns(k).max());
        }
    }
}
