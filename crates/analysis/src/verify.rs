//! The stable-computation decision procedure.
//!
//! A computation converges iff it reaches an output-stable configuration
//! (§3.2); by Lemma 1, fair computations cycle forever inside a final
//! strongly connected component, visiting all of it infinitely often. So a
//! protocol stably computes output `y` on input `x` iff **every final SCC
//! reachable from `C_x` is output-uniform with value `y`** — which is
//! decidable by exhaustive search on the (finite) configuration graph.
//! This module is the executable content of the paper's Theorem 6 argument
//! (there phrased as an `NL` upper bound via multiset counters).

use pp_core::Protocol;

use crate::reach::ConfigGraph;
use crate::scc::{tarjan_slices, SccDecomposition};

/// Result of an exact stable-computation analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<Y> {
    /// Every fair computation converges to this output on every agent.
    Stable(Y),
    /// Every fair computation converges, but different computations may
    /// stabilize to different outputs (the relation is not single-valued),
    /// or agents stabilize without consensus.
    Ambiguous {
        /// The distinct stable output histograms, as `(output, count)` rows.
        outcomes: Vec<Vec<(Y, u64)>>,
    },
    /// Some fair computation never converges: a reachable final component
    /// contains configurations with different output assignments.
    NotConvergent,
}

impl<Y> Verdict<Y> {
    /// Whether the verdict is `Stable(_)`.
    pub fn is_stable(&self) -> bool {
        matches!(self, Self::Stable(_))
    }
}

/// The full analysis result: the explored graph plus the verdict.
#[derive(Debug)]
pub struct StableComputation<P: Protocol> {
    graph: ConfigGraph<P>,
    scc: SccDecomposition,
    verdict: Verdict<P::Output>,
}

impl<P: Protocol> StableComputation<P> {
    /// Analyzes the protocol from the given symbol-count input.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 2 or exploration exceeds
    /// the default bound.
    pub fn analyze<I>(protocol: P, inputs: I) -> Self
    where
        I: IntoIterator<Item = (P::Input, u64)>,
    {
        let graph = ConfigGraph::explore(protocol, inputs);
        Self::from_graph(graph)
    }

    /// Analyzes a pre-explored configuration graph.
    pub fn from_graph(graph: ConfigGraph<P>) -> Self {
        let succ: Vec<Vec<usize>> = (0..graph.len()).map(|i| graph.successors(i).to_vec()).collect();
        let scc = tarjan_slices(&succ);

        // Collect the output histograms of final components, checking
        // uniformity within each.
        let mut outcomes: Vec<Vec<(P::Output, u64)>> = Vec::new();
        let mut not_convergent = false;
        for c in scc.final_components() {
            let members = &scc.members[c];
            let first = graph.output_histogram(members[0]);
            if members
                .iter()
                .any(|&v| graph.output_histogram(v) != first)
            {
                not_convergent = true;
                continue;
            }
            let hist: Vec<(P::Output, u64)> = first
                .into_iter()
                .map(|(o, k)| (graph.runtime().output_value(o).clone(), k))
                .collect();
            if !outcomes.contains(&hist) {
                outcomes.push(hist);
            }
        }

        let verdict = if not_convergent {
            Verdict::NotConvergent
        } else if outcomes.len() == 1 && outcomes[0].len() == 1 {
            Verdict::Stable(outcomes[0][0].0.clone())
        } else {
            Verdict::Ambiguous { outcomes }
        };

        Self { graph, scc, verdict }
    }

    /// The verdict.
    pub fn verdict(&self) -> &Verdict<P::Output> {
        &self.verdict
    }

    /// The explored configuration graph.
    pub fn graph(&self) -> &ConfigGraph<P> {
        &self.graph
    }

    /// The SCC decomposition of the configuration graph.
    pub fn scc(&self) -> &SccDecomposition {
        &self.scc
    }

    /// Number of reachable configurations.
    pub fn reachable_configs(&self) -> usize {
        self.graph.len()
    }

    /// Number of final components.
    pub fn final_component_count(&self) -> usize {
        self.scc.final_components().count()
    }
}

/// Report from [`verify_predicate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateReport {
    /// The expected truth value.
    pub expected: bool,
    /// The verdict of the exact analysis.
    pub verdict: Verdict<bool>,
    /// Number of reachable configurations examined.
    pub reachable_configs: usize,
}

impl PredicateReport {
    /// Whether the protocol stably computes exactly the expected value.
    pub fn holds(&self) -> bool {
        self.verdict == Verdict::Stable(self.expected)
    }
}

/// Exhaustively verifies that `protocol` stably computes `expected` (under
/// the all-agents predicate output convention) on the given symbol-count
/// input: *every* fair computation from that input must converge to
/// `expected` on every agent.
///
/// # Panics
///
/// Panics if the population is smaller than 2 or exploration exceeds the
/// default configuration bound.
pub fn verify_predicate<P, I>(protocol: P, inputs: I, expected: bool) -> PredicateReport
where
    P: Protocol<Output = bool>,
    I: IntoIterator<Item = (P::Input, u64)>,
{
    let a = StableComputation::analyze(protocol, inputs);
    PredicateReport {
        expected,
        verdict: a.verdict().clone(),
        reachable_configs: a.reachable_configs(),
    }
}

/// Exhaustively verifies a predicate protocol against a ground-truth
/// function over **every** symbol-count input with `2 ≤ n ≤ max_n`, where
/// the input alphabet is `0..arity`.
///
/// Returns the number of inputs verified, or the first counterexample.
///
/// # Errors
///
/// Returns `Err((counts, report))` for the first input whose exact
/// analysis does not yield `Stable(truth(counts))`.
///
/// # Panics
///
/// Panics if `arity == 0`.
///
/// # Example
///
/// ```
/// use pp_analysis::verify::verify_all_inputs;
/// use pp_protocols::majority;
///
/// let checked = verify_all_inputs(
///     || majority(),
///     2,
///     5,
///     |counts| counts[1] > counts[0],
/// ).unwrap();
/// assert_eq!(checked, 18); // all splits with 2 ≤ n ≤ 5
/// ```
pub fn verify_all_inputs<P, F, T>(
    make: F,
    arity: usize,
    max_n: u64,
    truth: T,
) -> Result<u64, (Vec<u64>, PredicateReport)>
where
    P: Protocol<Input = usize, Output = bool>,
    F: Fn() -> P,
    T: Fn(&[u64]) -> bool,
{
    assert!(arity >= 1, "need at least one input symbol");
    let mut verified = 0u64;
    let mut counts = vec![0u64; arity];
    loop {
        let n: u64 = counts.iter().sum();
        if (2..=max_n).contains(&n) {
            let expected = truth(&counts);
            let report = verify_predicate(
                make(),
                counts.iter().enumerate().map(|(i, &c)| (i, c)),
                expected,
            );
            if !report.holds() {
                return Err((counts, report));
            }
            verified += 1;
        }
        let mut i = 0;
        while i < arity {
            counts[i] += 1;
            if counts[i] <= max_n {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
        if i == arity {
            return Ok(verified);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::FnProtocol;

    #[test]
    fn epidemic_is_stable_true() {
        let epidemic = FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        );
        let r = verify_predicate(epidemic, [(true, 1), (false, 4)], true);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.reachable_configs, 5);
    }

    #[test]
    fn wrong_expectation_fails() {
        let epidemic = FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        );
        let r = verify_predicate(epidemic, [(true, 1), (false, 4)], false);
        assert!(!r.holds());
    }

    #[test]
    fn nonconsensus_is_ambiguous_not_stable() {
        // A protocol that never changes state: agents keep their inputs, so
        // a mixed input never reaches consensus.
        let inert = FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p, q),
        );
        let a = StableComputation::analyze(inert, [(true, 1), (false, 1)]);
        match a.verdict() {
            Verdict::Ambiguous { outcomes } => {
                assert_eq!(outcomes.len(), 1);
                assert_eq!(outcomes[0].len(), 2, "two distinct outputs present");
            }
            v => panic!("expected ambiguous, got {v:?}"),
        }
    }

    #[test]
    fn nondeterministic_outcome_detected() {
        // "Gossip coin": when two agents in the initial state s meet, both
        // commit to the initiator role outcome; the final consensus depends
        // on scheduling. States: 0 = undecided, 1/2 = committed values;
        // committed values recruit undecided agents; two different
        // committed values deadlock (no transition).
        let coin = FnProtocol::new(
            |&(): &()| 0u8,
            |&q: &u8| q,
            |&p: &u8, &q: &u8| match (p, q) {
                (0, 0) => (1, 2), // schism!
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                (0, 1) => (1, 1),
                (0, 2) => (2, 2),
                other => other,
            },
        );
        let a = StableComputation::analyze(coin, [((), 4)]);
        match a.verdict() {
            // Mixed committed values persist: outcomes include non-consensus
            // histograms -> Ambiguous.
            Verdict::Ambiguous { outcomes } => assert!(outcomes.len() > 1),
            v => panic!("expected ambiguity, got {v:?}"),
        }
    }

    #[test]
    fn oscillator_is_not_convergent() {
        // Two outputs alternate forever inside one final SCC: a protocol
        // where any interaction flips both agents' bits.
        let osc = FnProtocol::new(
            |&(): &()| false,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (!p, !q),
        );
        let a = StableComputation::analyze(osc, [((), 3)]);
        assert_eq!(*a.verdict(), Verdict::NotConvergent);
    }

    #[test]
    fn analysis_exposes_graph_and_scc() {
        let epidemic = FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        );
        let a = StableComputation::analyze(epidemic, [(true, 1), (false, 3)]);
        assert_eq!(a.reachable_configs(), 4);
        assert_eq!(a.final_component_count(), 1);
        assert!(a.scc().is_final_node(a.reachable_configs() - 1) || !a.graph().is_empty());
    }
}
