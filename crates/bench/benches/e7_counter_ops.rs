//! E7 — §6.1 counter operations on a population.
//!
//! The multiply-by-`b` / divide-by-`b` loops behind push and pop cost
//! `O(n² log n + n^{k+1})` expected interactions and err with probability
//! `O(n^{−k} log n)` per operation. We run `c1 ← 2·c0` (multiply) and
//! `c1 ← ⌊c0/2⌋` (divide) through the population counter machine across a
//! population sweep, reporting interaction counts and observed error
//! rates.

use pp_bench::{fmt, mean, print_header};
use pp_core::seeded_rng;
use pp_machines::programs;
use pp_random::counter_sim::PopulationRunOutcome;
use pp_random::PopulationCounterMachine;

fn run_op(
    label: &str,
    program: pp_machines::CounterMachine,
    init: &dyn Fn(u64) -> Vec<u128>,
    k: u32,
) {
    let n_list: &[u64] = if pp_bench::smoke() { &[16] } else { &[16, 32, 64] };
    for &n in n_list {
        let pcm = PopulationCounterMachine::new(program.clone(), n as usize, k, 2);
        let trials = if pp_bench::smoke() { 3 } else { 400 };
        let mut rng = seeded_rng(7 * n + u64::from(k));
        let mut interactions = Vec::new();
        let mut errors = 0u64;
        for _ in 0..trials {
            match pcm.run(&init(n), u64::MAX / 2, &mut rng) {
                PopulationRunOutcome::Halted {
                    interactions: it, silent_errors, ..
                } => {
                    interactions.push(it as f64);
                    if silent_errors > 0 {
                        errors += 1;
                    }
                }
                other => panic!("{label}: {other:?}"),
            }
        }
        let scale =
            (n * n) as f64 * (n as f64).ln() + (n as f64).powi(k as i32 + 1);
        println!(
            "{:>14} {:>3} {:>6} {:>14} {:>14} {:>8} {:>10}",
            label,
            k,
            n,
            fmt(mean(&interactions)),
            fmt(scale),
            fmt(mean(&interactions) / scale),
            fmt(errors as f64 / trials as f64),
        );
    }
}

fn main() {
    println!("\nE7: §6.1 counter ops — multiply/divide by b on the population");
    println!("paper: O(n² log n + n^(k+1)) interactions, error O(n^-k log n)\n");
    print_header(
        &["op", "k", "n", "measured", "n²lnn+n^k+1", "ratio", "err rate"],
        &[14, 3, 6, 14, 14, 8, 10],
    );

    // Multiply: value n/4 doubled (population capacity 2(n−2) suffices).
    run_op("mul by 2", programs::cm_double(), &|n| vec![u128::from(n / 4), 0], 2);
    // Divide: value n/2 halved with remainder.
    run_op("div by 2", programs::cm_divmod(2), &|n| vec![u128::from(n / 2), 0, 0], 2);
    // Same ops at k = 3 (lower error, higher zero-test cost).
    run_op("mul by 2", programs::cm_double(), &|n| vec![u128::from(n / 4), 0], 3);
    run_op("div by 2", programs::cm_divmod(2), &|n| vec![u128::from(n / 2), 0, 0], 3);

    println!("\npaper shape: error rate drops by ~n per unit of k; time grows by ~n\n");
}
