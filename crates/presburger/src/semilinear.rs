//! Linear and semilinear sets, the Parikh map, and the Ginsburg–Spanier
//! bridge to Presburger formulas.
//!
//! A set `L ⊆ ℕᵏ` is *linear* if `L = {v₀ + κ₁v₁ + … + κₘvₘ : κᵢ ∈ ℕ}` and
//! *semilinear* if it is a finite union of linear sets. Theorem 3 (Ginsburg
//! and Spanier): a subset of `ℕᵏ` is semilinear iff it is Presburger-
//! definable. Corollary 4 of the paper then gives: a symmetric language is
//! accepted by a population protocol if its Parikh image is semilinear —
//! realized here by [`SemilinearSet::to_formula`] followed by quantifier
//! elimination and compilation.

use crate::formula::{Formula, LinExpr};

/// A linear set `{base + Σ κᵢ·periods[i] : κᵢ ∈ ℕ} ⊆ ℕᵏ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSet {
    base: Vec<u64>,
    periods: Vec<Vec<u64>>,
}

impl LinearSet {
    /// Creates a linear set with the given base vector and period vectors.
    ///
    /// # Panics
    ///
    /// Panics if any period's dimension differs from the base's.
    pub fn new(base: Vec<u64>, periods: Vec<Vec<u64>>) -> Self {
        for p in &periods {
            assert_eq!(p.len(), base.len(), "period dimension mismatch");
        }
        Self { base, periods }
    }

    /// Dimension `k`.
    pub fn dim(&self) -> usize {
        self.base.len()
    }

    /// The base vector `v₀`.
    pub fn base(&self) -> &[u64] {
        &self.base
    }

    /// The period vectors `v₁ … vₘ`.
    pub fn periods(&self) -> &[Vec<u64>] {
        &self.periods
    }

    /// Membership: does some `κ ∈ ℕᵐ` satisfy `base + Σ κᵢ pᵢ = v`?
    ///
    /// Solved by depth-first search with per-period bounds; exponential in
    /// the worst case (membership in a linear set is NP-hard in general)
    /// but fast for the small instances used in protocol work.
    pub fn contains(&self, v: &[u64]) -> bool {
        assert_eq!(v.len(), self.dim(), "dimension mismatch");
        // Residual after subtracting the base.
        let mut residual = Vec::with_capacity(v.len());
        for (x, b) in v.iter().zip(&self.base) {
            match x.checked_sub(*b) {
                Some(r) => residual.push(r),
                None => return false,
            }
        }
        self.search(&residual, 0)
    }

    fn search(&self, residual: &[u64], from: usize) -> bool {
        if residual.iter().all(|&r| r == 0) {
            return true;
        }
        if from == self.periods.len() {
            return false;
        }
        let p = &self.periods[from];
        // Max multiplicity of this period.
        let mut max_k = u64::MAX;
        for (r, &pi) in residual.iter().zip(p) {
            if let Some(q) = r.checked_div(pi) {
                max_k = max_k.min(q);
            }
        }
        if max_k == u64::MAX {
            // Zero period vector: contributes nothing.
            return self.search(residual, from + 1);
        }
        let mut reduced = residual.to_vec();
        for k in 0..=max_k {
            if k > 0 {
                for (r, &pi) in reduced.iter_mut().zip(p) {
                    *r -= pi; // safe: k ≤ max_k
                }
            }
            if self.search(&reduced, from + 1) {
                return true;
            }
        }
        false
    }

    /// The defining Presburger formula with free variables `0..k`:
    /// `∃κ₁…κₘ ≥ 0. ⋀ᵢ xᵢ = v₀ᵢ + Σⱼ κⱼ·vⱼᵢ`.
    pub fn to_formula(&self) -> Formula {
        let k = self.dim() as u32;
        let m = self.periods.len() as u32;
        // κ_j are variables k..k+m.
        let mut body = Formula::Const(true);
        for j in 0..m {
            body = body.and(Formula::ge(LinExpr::var(k + j), LinExpr::constant(0)));
        }
        for i in 0..k {
            let mut rhs = LinExpr::constant(
                i64::try_from(self.base[i as usize]).expect("base too large"),
            );
            for j in 0..m {
                let c = i64::try_from(self.periods[j as usize][i as usize])
                    .expect("period too large");
                rhs = rhs.add(&LinExpr::var_scaled(k + j, c));
            }
            body = body.and(Formula::eq(LinExpr::var(i), rhs));
        }
        for j in (0..m).rev() {
            body = body.exists(k + j);
        }
        body
    }
}

/// A semilinear set: a finite union of [`LinearSet`]s of equal dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemilinearSet {
    components: Vec<LinearSet>,
}

impl SemilinearSet {
    /// Creates a semilinear set from its linear components.
    ///
    /// # Panics
    ///
    /// Panics if the components have mismatched dimensions or the list is
    /// empty (use an empty linear component `{}`? — represent the empty set
    /// as zero components of explicit dimension via
    /// [`SemilinearSet::empty`]).
    pub fn new(components: Vec<LinearSet>) -> Self {
        assert!(!components.is_empty(), "use SemilinearSet::empty for the empty set");
        let k = components[0].dim();
        for c in &components {
            assert_eq!(c.dim(), k, "component dimension mismatch");
        }
        Self { components }
    }

    /// The empty semilinear set of dimension `k` (no components; `k` is
    /// only recorded implicitly by membership queries).
    pub fn empty() -> Self {
        Self { components: Vec::new() }
    }

    /// The linear components.
    pub fn components(&self) -> &[LinearSet] {
        &self.components
    }

    /// Membership in any component.
    pub fn contains(&self, v: &[u64]) -> bool {
        self.components.iter().any(|c| c.contains(v))
    }

    /// Union with another semilinear set.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        Self { components }
    }

    /// The defining Presburger formula (disjunction of component formulas);
    /// `false` for the empty set.
    pub fn to_formula(&self) -> Formula {
        self.components
            .iter()
            .fold(Formula::Const(false), |acc, c| acc.or(c.to_formula()))
    }
}

impl FromIterator<LinearSet> for SemilinearSet {
    fn from_iter<T: IntoIterator<Item = LinearSet>>(iter: T) -> Self {
        Self { components: iter.into_iter().collect() }
    }
}

/// The Parikh map `Ψ` (§3.5): counts the occurrences of each alphabet
/// symbol in a word. Symmetric languages are exactly the inverse images of
/// their Parikh images, which is why population protocols can "accept" them
/// (Lemma 2).
///
/// # Panics
///
/// Panics if the word contains a symbol not in `alphabet`.
///
/// # Example
///
/// ```
/// use pp_presburger::parikh;
///
/// assert_eq!(parikh("abba".chars(), &['a', 'b']), vec![2, 2]);
/// ```
pub fn parikh<T: PartialEq + std::fmt::Debug>(
    word: impl IntoIterator<Item = T>,
    alphabet: &[T],
) -> Vec<u64> {
    let mut counts = vec![0u64; alphabet.len()];
    for sym in word {
        let i = alphabet
            .iter()
            .position(|a| *a == sym)
            .unwrap_or_else(|| panic!("symbol {sym:?} not in alphabet"));
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qe::eliminate_quantifiers;

    #[test]
    fn linear_membership_basics() {
        // {(1,0) + k(2,1) + l(0,3)}.
        let l = LinearSet::new(vec![1, 0], vec![vec![2, 1], vec![0, 3]]);
        assert!(l.contains(&[1, 0]));
        assert!(l.contains(&[3, 1]));
        assert!(l.contains(&[3, 4])); // k=1, l=1
        assert!(l.contains(&[1, 3])); // l=1
        assert!(!l.contains(&[0, 0]));
        assert!(!l.contains(&[2, 0]));
        assert!(!l.contains(&[3, 2]));
    }

    #[test]
    fn zero_period_handled() {
        let l = LinearSet::new(vec![2], vec![vec![0]]);
        assert!(l.contains(&[2]));
        assert!(!l.contains(&[3]));
    }

    #[test]
    fn no_periods_is_singleton() {
        let l = LinearSet::new(vec![4, 2], vec![]);
        assert!(l.contains(&[4, 2]));
        assert!(!l.contains(&[4, 3]));
    }

    #[test]
    fn semilinear_union_and_empty() {
        let evens = LinearSet::new(vec![0], vec![vec![2]]);
        let ones = LinearSet::new(vec![1], vec![]);
        let s = SemilinearSet::new(vec![evens, ones]);
        assert!(s.contains(&[0]));
        assert!(s.contains(&[1]));
        assert!(s.contains(&[6]));
        assert!(!s.contains(&[3]));
        assert!(!SemilinearSet::empty().contains(&[0]));
        let u = s.union(&SemilinearSet::new(vec![LinearSet::new(vec![3], vec![])]));
        assert!(u.contains(&[3]));
    }

    #[test]
    fn formula_agrees_with_membership() {
        // Ginsburg–Spanier, checked by brute force on a grid.
        let l = LinearSet::new(vec![1, 0], vec![vec![2, 1], vec![0, 3]]);
        let f = l.to_formula();
        let qf = eliminate_quantifiers(&f);
        assert!(qf.is_quantifier_free());
        for x in 0u64..8 {
            for y in 0u64..8 {
                assert_eq!(
                    qf.eval_qf(&[x as i64, y as i64]),
                    l.contains(&[x, y]),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn semilinear_formula_is_union() {
        let s = SemilinearSet::new(vec![
            LinearSet::new(vec![0], vec![vec![2]]),
            LinearSet::new(vec![3], vec![]),
        ]);
        let qf = eliminate_quantifiers(&s.to_formula());
        for x in 0u64..10 {
            assert_eq!(qf.eval_qf(&[x as i64]), s.contains(&[x]), "x={x}");
        }
        assert_eq!(
            eliminate_quantifiers(&SemilinearSet::empty().to_formula()),
            Formula::Const(false)
        );
    }

    #[test]
    fn parikh_counts_symbols() {
        assert_eq!(parikh("aabca".chars(), &['a', 'b', 'c']), vec![3, 1, 1]);
        assert_eq!(parikh(Vec::<char>::new(), &['a']), vec![0]);
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn parikh_rejects_unknown_symbols() {
        parikh("xyz".chars(), &['a']);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_generated_points_are_members(
            b0 in 0u64..4, b1 in 0u64..4,
            p0 in 0u64..4, p1 in 0u64..4,
            q0 in 0u64..4, q1 in 0u64..4,
            k in 0u64..5, l in 0u64..5,
        ) {
            let lin = LinearSet::new(vec![b0, b1], vec![vec![p0, p1], vec![q0, q1]]);
            let v = [b0 + k * p0 + l * q0, b1 + k * p1 + l * q1];
            proptest::prop_assert!(lin.contains(&v));
        }
    }
}
