//! E12 — engineering throughput of the simulation engines.
//!
//! Not a paper claim: this table documents the cost of one interaction in
//! the count-based engine (O(|Q|), independent of n) and the agent-based
//! engine, so experiment budgets elsewhere can be sized.
//!
//! Each row reports nanoseconds per interaction, measured with a warmup
//! batch followed by timed batches (no external benchmarking harness: the
//! build environment is offline, so this target self-times with
//! `std::time::Instant`). The numbers land in `BENCH_e12_throughput.json`
//! so regressions are visible across commits.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{seeded_rng, AgentSimulation, Simulation};
use pp_presburger::{compile::compile_parsed, parse};
use pp_protocols::{majority, CountThreshold, GraphSimulator};

/// Times `batch` invocations of `f` after a warmup batch; returns ns/call.
fn time_per_call(batch: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..batch / 4 {
        f();
    }
    let start = Instant::now();
    for _ in 0..batch {
        f();
    }
    start.elapsed().as_nanos() as f64 / batch as f64
}

fn bench_count_engine(report: &mut BenchReport, batch: u64) {
    println!("count engine (one `step`, O(|Q|) per interaction):");
    print_header(&["case", "n", "ns/step"], &[28, 12, 10]);
    let ns_list: &[u64] =
        if pp_bench::smoke() { &[1_000] } else { &[1_000, 100_000, 10_000_000] };
    for &n in ns_list {
        let mut sim =
            Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
        let mut rng = seeded_rng(1);
        let ns = time_per_call(batch, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "majority_step", n, fmt(ns));
        report.push_row([("case", "majority_step".into()), ("n", n.into()), ("ns_per_step", ns.into())]
            as [(&str, pp_bench::Value); 3]);
    }
    {
        let n = if pp_bench::smoke() { 1_000 } else { 1_000_000 };
        let mut sim =
            Simulation::from_counts(CountThreshold::new(5), [(true, 10), (false, n - 10)]);
        let mut rng = seeded_rng(2);
        let ns = time_per_call(batch, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "count_to_5_step", n, fmt(ns));
        report.push_row([("case", "count_to_5_step".into()), ("n", n.into()), ("ns_per_step", ns.into())]
            as [(&str, pp_bench::Value); 3]);
    }
    {
        let half = if pp_bench::smoke() { 500 } else { 5_000 };
        let proto = compile_parsed(&parse("b < a /\\ a = 1 mod 3").unwrap()).unwrap();
        let mut sim = Simulation::from_counts(proto, [(0usize, half), (1usize, half + 1)]);
        let mut rng = seeded_rng(3);
        let ns = time_per_call(batch / 2, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "compiled_formula_step", 2 * half + 1, fmt(ns));
        report.push_row([
            ("case", "compiled_formula_step".into()),
            ("n", (2 * half + 1).into()),
            ("ns_per_step", ns.into()),
        ] as [(&str, pp_bench::Value); 3]);
    }
}

fn bench_leap_engine(report: &mut BenchReport) {
    // Whole epidemic runs: the leaping engine fast-forwards no-ops, so a
    // full run to quiescence is n−1 leaps regardless of how many
    // interactions they span.
    println!("\nleap engine (full epidemic run to quiescence):");
    print_header(&["case", "n", "µs/run"], &[28, 12, 10]);
    let ns_list: &[u64] = if pp_bench::smoke() { &[1_000] } else { &[1_000, 100_000] };
    for &n in ns_list {
        let mut rng = seeded_rng(9);
        let runs: u32 = if pp_bench::smoke() {
            5
        } else if n >= 100_000 {
            40
        } else {
            400
        };
        let start = Instant::now();
        for _ in 0..runs {
            let epidemic = pp_core::FnProtocol::new(
                |&b: &bool| b,
                |&q: &bool| q,
                |&p: &bool, &q: &bool| (p || q, p || q),
            );
            let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, n - 1)]);
            sim.run_to_quiescence(u64::MAX, &mut rng).expect("quiesces");
        }
        let us = start.elapsed().as_micros() as f64 / f64::from(runs);
        println!("{:>28} {:>12} {:>10}", "epidemic_full_run", n, fmt(us));
        report.push_row([("case", "epidemic_full_run".into()), ("n", n.into()), ("us_per_run", us.into())]
            as [(&str, pp_bench::Value); 3]);
    }
}

fn bench_agent_engine(report: &mut BenchReport, batch: u64) {
    println!("\nagent engine (one `step` through the Theorem 7 baton simulator):");
    print_header(&["case", "n", "ns/step"], &[28, 12, 10]);
    let ns_list: &[usize] = if pp_bench::smoke() { &[100] } else { &[100, 10_000] };
    for &n in ns_list {
        let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 2 == 0)).collect();
        let mut sim = AgentSimulation::from_inputs(
            GraphSimulator::new(majority()),
            &inputs,
            UniformPairScheduler::new(n),
        );
        let mut rng = seeded_rng(4);
        let ns = time_per_call(batch, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "graphsim_step", n, fmt(ns));
        report.push_row([("case", "graphsim_step".into()), ("n", n.into()), ("ns_per_step", ns.into())]
            as [(&str, pp_bench::Value); 3]);
    }
}

fn main() {
    println!("\nE12: engine throughput (self-timed; offline build has no criterion)\n");
    let batch: u64 = if pp_bench::smoke() { 5_000 } else { 400_000 };
    let mut report = BenchReport::new("e12_throughput");
    report.set_meta("batch", batch);
    bench_count_engine(&mut report, batch);
    bench_leap_engine(&mut report);
    bench_agent_engine(&mut report, batch);
    report.write();
}
