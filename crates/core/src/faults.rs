//! Fault injection and empirical self-stabilization measurement.
//!
//! The paper's sensors are "small, cheap and unreliable" (§1): they ride on
//! birds, sit in smoke detectors, or are carried by vehicles, and §8 asks
//! explicitly what a protocol guarantees when they fail. This module makes
//! those failure modes executable. Each [`FaultPlan`] model corresponds to a
//! concrete mishap of the §1–§2 sensor-network story:
//!
//! * [`CrashFaults`] — a sensor's battery dies or the bird carrying it
//!   leaves the flock. §8 observes that crashes are benign for predicates
//!   already true of the surviving population: "if an agent dies, the
//!   interactions between the remaining agents are unaffected". Crashes
//!   *do* break protocols whose answer depends on the lost agents' tokens
//!   (e.g. the flock-of-birds count when an alerted bird dies).
//! * [`TransientCorruption`] — a cosmic ray, brown-out or radio glitch
//!   scrambles a sensor's `O(1)` memory without stopping it. The sensor
//!   keeps interacting from an arbitrary state. This is the classical
//!   *self-stabilization* adversary: a protocol recovers iff every fair
//!   execution from the corrupted configuration re-stabilizes to the
//!   correct output.
//! * [`InteractionDrop`] — two sensors pass within radio range but the
//!   exchange fails (collision, noise, §2's unreliable low-power links).
//!   Under the paper's fairness assumption a dropped encounter merely
//!   delays the schedule, so stable protocols should tolerate any constant
//!   drop rate at a time cost.
//! * [`Churn`] — a sensor leaves the population and a factory-fresh one
//!   (initial state, as if just given its input) joins: zebras wander in
//!   and out of the ZebraNet herd (§2). The population size is preserved so
//!   the count-based engine's multiset stays well-formed.
//! * [`AdversarialInit`] — the defining adversary of *self-stabilization*:
//!   the run does not start from the image of the input function at all but
//!   from an **arbitrary** configuration the adversary picked (the sensors
//!   were deployed with stale, scrambled or maliciously chosen memory).
//!   Unlike the mid-run models above it damages only slot 0, and it may
//!   rewrite *every* agent. Protocols designed to survive it live in
//!   `pp-protocols`: the leaderless `phase_clock` module and the coin-driven
//!   `ranking` module both re-converge from any such start; the paper's
//!   exact constructions (majority, parity) generally do not — they
//!   stabilize *wrong*, which [`Mttr`] reports as a zero recovery
//!   probability with a non-zero residual tail.
//!
//! # Measuring recovery
//!
//! Both engines gain
//! [`run_with_faults`](crate::Simulation::run_with_faults): run a horizon of
//! interactions, let the plan inject faults between them, and segment the
//! run at each injection burst. Every segment yields a [`RecoveryReport`]
//! recording when (and whether) the population's outputs returned to the
//! expected value and how many agents were still wrong at the segment's
//! end. A protocol *self-stabilizes* against a fault model when the final
//! segment recovers; it *stabilizes wrong* when the run ends quiet but with
//! a non-zero residual error (e.g. exact majority after adversarial
//! corruption has flipped the apparent winner — the computation is stable,
//! and stably wrong).
//!
//! # Example
//!
//! An epidemic recovers from a mid-run corruption burst:
//!
//! ```
//! use pp_core::faults::TransientCorruption;
//! use pp_core::{seeded_rng, FnProtocol, Simulation};
//!
//! let epidemic = FnProtocol::new(
//!     |&b: &bool| b,
//!     |&q: &bool| q,
//!     |&p: &bool, &q: &bool| (p || q, p || q),
//! );
//! let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, 63)]);
//! // At interaction 2000, reset 20 agents to the susceptible state.
//! let mut plan = TransientCorruption::adversarial_at(2000, 20, false);
//! let mut rng = seeded_rng(3);
//! let report = sim.run_with_faults(&mut plan, &true, 40_000, &mut rng);
//! assert_eq!(report.segments.len(), 2);
//! assert!(report.recovered(), "the epidemic re-infects the corrupted agents");
//! ```

use rand::{Rng, RngCore};

use crate::engine::{consensus_reached, AgentSimulation, Simulation};
use crate::ensemble::{json_f64, LogHistogram, Welford};
use crate::observe::Probe;
use crate::protocol::Protocol;
use crate::scheduler::PairSampler;
use crate::trace::Tracer;

/// Engine-agnostic handle a [`FaultPlan`] uses to damage the population.
///
/// Both [`Simulation`] (multiset) and [`AgentSimulation`] (per-agent)
/// implement this behind an adapter, so one fault model drives both
/// engines — and both produce the same [`RecoveryReport`] shape.
pub trait FaultCtx<S> {
    /// Number of agents still participating in interactions.
    fn live_population(&self) -> u64;

    /// Crashes one uniformly random live agent. Returns `false` when the
    /// engine refuses (fewer than 3 live agents — the model needs a pair).
    fn crash_random(&mut self, rng: &mut dyn RngCore) -> bool;

    /// Rewrites one uniformly random live agent's state to `to`.
    fn corrupt_random(&mut self, to: &S, rng: &mut dyn RngCore);

    /// Rewrites one uniformly random live agent's state to `f(old)` — the
    /// state-function form of [`corrupt_random`](Self::corrupt_random), so
    /// [`CorruptionMode::Targeted`] can aim at whatever the victim currently
    /// holds (demote the current leader, clobber the current rank).
    fn corrupt_random_with(&mut self, f: fn(&S) -> S, rng: &mut dyn RngCore);

    /// Replaces the state of **every** live agent: live agent `i` (in a
    /// fixed engine-defined order, `0..live_population`) gets `next(i)`.
    /// Only [`AdversarialInit`] uses this — per-agent corruption cannot
    /// guarantee hitting each agent exactly once on the multiset engine.
    fn overwrite_population(&mut self, next: &mut dyn FnMut(u64) -> S);

    /// A uniformly random state among those the run has occupied so far.
    fn random_known_state(&mut self, rng: &mut dyn RngCore) -> S;
}

/// A fault model: decides, between interactions, what damage to inject.
///
/// Implementations should be deterministic functions of `(step, rng)` so a
/// run is exactly replayable from its seed; the provided models keep no
/// mutable progress state for this reason.
pub trait FaultPlan<S> {
    /// Called before the interaction at `step` (0-based, relative to the
    /// `run_with_faults` call). Applies any scheduled damage through `ctx`
    /// and returns the number of faults actually injected.
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64;

    /// Probability that the interaction at `step` is dropped (both agents
    /// met, nothing happened). The default fault-free value is `0.0`.
    fn drop_probability(&mut self, step: u64) -> f64 {
        let _ = step;
        0.0
    }
}

/// Crash model: at each scheduled step, a burst of uniformly random live
/// agents permanently stops interacting (§8 "agent dies").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFaults {
    schedule: Vec<(u64, u64)>,
}

impl CrashFaults {
    /// One burst: crash `count` random agents just before interaction `step`.
    pub fn at(step: u64, count: u64) -> Self {
        Self { schedule: vec![(step, count)] }
    }

    /// Several bursts of `(step, count)`.
    pub fn schedule(bursts: Vec<(u64, u64)>) -> Self {
        Self { schedule: bursts }
    }
}

impl<S> FaultPlan<S> for CrashFaults {
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        let mut applied = 0;
        for &(t, k) in &self.schedule {
            if t == step {
                for _ in 0..k {
                    if ctx.crash_random(rng) {
                        applied += 1;
                    }
                }
            }
        }
        applied
    }
}

/// How [`TransientCorruption`] rewrites a victim's memory.
// Fn-pointer equality is only used to compare plans built from the same
// constructor calls (replay bookkeeping), where address identity suffices.
#[allow(unpredictable_function_pointer_comparisons)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptionMode<S> {
    /// Each victim gets an independent uniformly random state among those
    /// the run has occupied — a memory scramble with no adversarial aim.
    UniformKnown,
    /// Every victim is rewritten to this state — the worst-case adversary
    /// of the self-stabilization literature picks the most damaging value.
    SetTo(S),
    /// Every victim is rewritten to a *function* of its current state, so
    /// the burst can target what the victim holds right now (e.g. demote
    /// whoever is currently a leader, or scramble only the rank field). A
    /// plain `fn` pointer keeps the mode `Clone`/`Eq`/replayable.
    Targeted(fn(&S) -> S),
}

/// Transient-corruption model: at each scheduled step, a burst of `k`
/// uniformly random live agents have their states rewritten (they keep
/// interacting — nothing crashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientCorruption<S> {
    schedule: Vec<(u64, u64)>,
    mode: CorruptionMode<S>,
}

impl<S> TransientCorruption<S> {
    /// One burst of `count` uniformly random rewrites before `step`.
    pub fn uniform_at(step: u64, count: u64) -> Self {
        Self { schedule: vec![(step, count)], mode: CorruptionMode::UniformKnown }
    }

    /// One adversarial burst: `count` agents are all set to `state`.
    pub fn adversarial_at(step: u64, count: u64, state: S) -> Self {
        Self { schedule: vec![(step, count)], mode: CorruptionMode::SetTo(state) }
    }

    /// One targeted burst: `count` random agents are rewritten to a
    /// function of their current state (see [`CorruptionMode::Targeted`]).
    pub fn targeted_at(step: u64, count: u64, f: fn(&S) -> S) -> Self {
        Self { schedule: vec![(step, count)], mode: CorruptionMode::Targeted(f) }
    }

    /// Several bursts of `(step, count)` sharing one corruption mode.
    pub fn schedule(bursts: Vec<(u64, u64)>, mode: CorruptionMode<S>) -> Self {
        Self { schedule: bursts, mode }
    }
}

impl<S: Clone> FaultPlan<S> for TransientCorruption<S> {
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        let mut applied = 0;
        for i in 0..self.schedule.len() {
            let (t, k) = self.schedule[i];
            if t != step {
                continue;
            }
            for _ in 0..k {
                match &self.mode {
                    CorruptionMode::UniformKnown => {
                        let to = ctx.random_known_state(rng);
                        ctx.corrupt_random(&to, rng);
                    }
                    CorruptionMode::SetTo(s) => {
                        let to = s.clone();
                        ctx.corrupt_random(&to, rng);
                    }
                    CorruptionMode::Targeted(f) => ctx.corrupt_random_with(*f, rng),
                }
                applied += 1;
            }
        }
        applied
    }
}

/// Message-loss model: every encounter independently fails with probability
/// `p` (the agents meet, the radio exchange does not happen, neither state
/// changes). Drops are *not* counted as faults in the recovery segmentation
/// — they slow the schedule rather than damage the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionDrop {
    p: f64,
}

impl InteractionDrop {
    /// Drop each interaction with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0` (a drop rate of 1 would freeze the
    /// schedule forever, violating fairness).
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1), got {p}");
        Self { p }
    }
}

impl<S> FaultPlan<S> for InteractionDrop {
    fn inject(&mut self, _step: u64, _ctx: &mut dyn FaultCtx<S>, _rng: &mut dyn RngCore) -> u64 {
        0
    }

    fn drop_probability(&mut self, _step: u64) -> f64 {
        self.p
    }
}

/// Churn model: every `period` interactions, `count` uniformly random live
/// agents leave and the same number of factory-fresh agents (state `fresh`)
/// join. Population size is preserved, so the multiset engine stays
/// well-formed; the per-agent engine reuses the departed agents' slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Churn<S> {
    period: u64,
    count: u64,
    fresh: S,
}

impl<S> Churn<S> {
    /// Replace `count` random agents with fresh ones (state `fresh`) every
    /// `period` interactions, starting at interaction `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn new(period: u64, count: u64, fresh: S) -> Self {
        assert!(period > 0, "churn period must be positive");
        Self { period, count, fresh }
    }
}

impl<S: Clone> FaultPlan<S> for Churn<S> {
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        if step == 0 || !step.is_multiple_of(self.period) {
            return 0;
        }
        for _ in 0..self.count {
            ctx.corrupt_random(&self.fresh.clone(), rng);
        }
        self.count
    }
}

/// How [`AdversarialInit`] picks the arbitrary starting configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarialInitMode<S> {
    /// Each agent independently gets a uniformly random state from the
    /// given universe — the "scrambled memory" start.
    UniformRandom(Vec<S>),
    /// Every agent gets the same state — the single-state flood that kills
    /// protocols relying on a unique token or leader surviving somewhere.
    Flood(S),
    /// The `index`-th multiset of size `n` over the universe, in the
    /// combinatorial-number-system order used by
    /// [`enumeration_count`]/[`unrank_multiset`] — with this mode a driver
    /// can sweep **every** configuration of a small population and make
    /// "recovers from *any* start" an exhaustive check rather than a
    /// sampled one.
    Enumerated {
        /// The state universe the configuration is drawn over.
        universe: Vec<S>,
        /// Rank of the configuration among all
        /// [`enumeration_count`]`(universe.len(), n)` multisets.
        index: u128,
    },
}

/// The self-stabilization adversary: a [`FaultPlan`] that rewrites the
/// **entire** population before the first interaction (slot 0) and then
/// never interferes again. A protocol self-stabilizes against a mode iff
/// every seeded run started this way reaches its legal configuration.
///
/// Distinct from [`TransientCorruption`]: a mid-run burst damages `k`
/// random victims of a healthy run, while adversarial init controls every
/// agent and the protocol gets no clean prefix at all. On the agent engine
/// it also clears all synthesized coins
/// ([`AgentSimulation::clear_coins`]) so a
/// [`CoinProtocol`](crate::CoinProtocol) cannot smuggle trusted state
/// through the coin side channel.
///
/// Apply it standalone with
/// [`Simulation::apply_adversarial_init`] /
/// [`AgentSimulation::apply_adversarial_init`], or use it as a plan in
/// `run_with_faults` (it injects `n` faults at slot 0, so the first
/// [`RecoveryReport`] segment is the degenerate pre-init prefix and the
/// *final* segment is the recovery verdict — exactly what
/// [`Mttr`] summarizes).
///
/// The protocols designed to beat this adversary live in `pp-protocols`:
/// the leaderless `phase_clock` module re-synchronizes its hour hands and
/// the `ranking` module re-derives a permutation of `1..=n` from any of
/// these modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversarialInit<S> {
    mode: AdversarialInitMode<S>,
}

impl<S: Clone> AdversarialInit<S> {
    /// Uniform-random mode over the given non-empty state universe.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is empty.
    pub fn uniform_random(universe: Vec<S>) -> Self {
        assert!(!universe.is_empty(), "adversarial-init universe must be non-empty");
        Self { mode: AdversarialInitMode::UniformRandom(universe) }
    }

    /// Flood mode: every agent starts in `state`.
    pub fn flood(state: S) -> Self {
        Self { mode: AdversarialInitMode::Flood(state) }
    }

    /// Worst-case enumeration mode: the `index`-th of all
    /// [`enumeration_count`]`(universe.len(), n)` starting configurations.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is empty; [`apply`](Self::apply) panics if
    /// `index` is out of range for the population it meets.
    pub fn enumerated(universe: Vec<S>, index: u128) -> Self {
        assert!(!universe.is_empty(), "adversarial-init universe must be non-empty");
        Self { mode: AdversarialInitMode::Enumerated { universe, index } }
    }

    /// The configured mode.
    pub fn mode(&self) -> &AdversarialInitMode<S> {
        &self.mode
    }

    /// Rewrites the whole live population through `ctx`; returns the number
    /// of agents rewritten.
    pub fn apply(&self, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        let n = ctx.live_population();
        match &self.mode {
            AdversarialInitMode::Flood(s) => {
                ctx.overwrite_population(&mut |_| s.clone());
            }
            AdversarialInitMode::UniformRandom(universe) => {
                ctx.overwrite_population(&mut |_| {
                    universe[rng.gen_range(0..universe.len())].clone()
                });
            }
            AdversarialInitMode::Enumerated { universe, index } => {
                let counts = unrank_multiset(universe.len(), n, *index);
                let mut kind = 0usize;
                let mut left = counts[0];
                ctx.overwrite_population(&mut |_| {
                    while left == 0 {
                        kind += 1;
                        left = counts[kind];
                    }
                    left -= 1;
                    universe[kind].clone()
                });
            }
        }
        n
    }
}

impl<S: Clone> FaultPlan<S> for AdversarialInit<S> {
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        if step == 0 {
            self.apply(ctx, rng)
        } else {
            0
        }
    }
}

/// Number of distinct configurations of `population` anonymous agents over
/// `universe_len` states: the multiset count `C(n + k − 1, k − 1)`. This is
/// the exclusive upper bound for [`AdversarialInitMode::Enumerated`]
/// indices.
///
/// # Panics
///
/// Panics if `universe_len` is 0 or the count overflows `u128` (far beyond
/// any enumerable sweep).
pub fn enumeration_count(universe_len: usize, population: u64) -> u128 {
    assert!(universe_len > 0, "universe must be non-empty");
    binomial(population as u128 + universe_len as u128 - 1, universe_len as u128 - 1)
}

/// Exact binomial coefficient in `u128`, multiplying in an order that keeps
/// every intermediate value an exact integer.
fn binomial(n: u128, k: u128) -> u128 {
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul(n - i)
            .expect("binomial overflows u128 — population too large to enumerate")
            / (i + 1);
    }
    acc
}

/// Unranks `index` into per-state occupancy counts `(c_0, …, c_{k−1})` with
/// `Σ c_i = population`, in the order that enumerates configurations by the
/// count of state 0, then state 1, and so on (the combinatorial number
/// system for multisets). Inverse of that enumeration's ranking; the public
/// entry point is [`AdversarialInitMode::Enumerated`].
///
/// # Panics
///
/// Panics if `index >=` [`enumeration_count`]`(universe_len, population)`.
pub fn unrank_multiset(universe_len: usize, population: u64, mut index: u128) -> Vec<u64> {
    assert!(
        index < enumeration_count(universe_len, population),
        "enumeration index {index} out of range"
    );
    let mut counts = Vec::with_capacity(universe_len);
    let mut n = population;
    for remaining in (1..=universe_len).rev() {
        if remaining == 1 {
            counts.push(n);
            break;
        }
        let mut c = 0u64;
        loop {
            let block = enumeration_count(remaining - 1, n - c);
            if index < block {
                break;
            }
            index -= block;
            c += 1;
        }
        counts.push(c);
        n -= c;
    }
    counts
}

/// Two fault plans compose into one: both inject, and an interaction
/// survives only if neither drops it.
impl<S, A: FaultPlan<S>, B: FaultPlan<S>> FaultPlan<S> for (A, B) {
    fn inject(&mut self, step: u64, ctx: &mut dyn FaultCtx<S>, rng: &mut dyn RngCore) -> u64 {
        self.0.inject(step, ctx, rng) + self.1.inject(step, ctx, rng)
    }

    fn drop_probability(&mut self, step: u64) -> f64 {
        let (a, b) = (self.0.drop_probability(step), self.1.drop_probability(step));
        1.0 - (1.0 - a) * (1.0 - b)
    }
}

/// Recovery outcome for one fault-free segment of a faulted run (from one
/// injection burst to the next, or to the horizon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Interaction slot (relative to the `run_with_faults` call) at which
    /// this segment began — `0` for the initial segment, otherwise the slot
    /// whose injection burst opened it.
    pub injected_at: u64,
    /// First slot after which every live agent's output was continuously
    /// `expected` through the end of the segment; `None` if the segment
    /// ended with some agent still wrong.
    pub recovered_at: Option<u64>,
    /// Number of live agents whose output was still wrong when the segment
    /// closed (0 iff `recovered_at` is `Some`).
    pub residual_error: u64,
}

impl RecoveryReport {
    /// Whether the population's outputs returned to the expected value.
    pub fn recovered(&self) -> bool {
        self.recovered_at.is_some()
    }

    /// Interactions from the start of the segment to recovery.
    pub fn recovery_time(&self) -> Option<u64> {
        self.recovered_at.map(|t| t - self.injected_at)
    }
}

/// Full account of a [`run_with_faults`](Simulation::run_with_faults) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRunReport {
    /// Interaction slots executed (including dropped and starved slots).
    pub horizon: u64,
    /// One report per fault-free segment, in order; the first covers the
    /// undamaged prefix, each later one follows an injection burst.
    pub segments: Vec<RecoveryReport>,
    /// Total faults the plan injected (crashes + corruptions + churn).
    pub faults_injected: u64,
    /// Interactions lost to [`InteractionDrop`]-style message loss.
    pub dropped: u64,
    /// Slots where no live pair could be sampled (agent engine only).
    pub starved: u64,
}

impl FaultRunReport {
    /// The segment after the last injection burst — the verdict on whether
    /// the protocol self-stabilized against the whole plan.
    pub fn final_segment(&self) -> &RecoveryReport {
        self.segments.last().expect("a run always has at least one segment")
    }

    /// Whether the run ended with every live agent's output correct.
    pub fn recovered(&self) -> bool {
        self.final_segment().recovered()
    }
}

/// Closes a segment: converts running last-wrong tracking into the
/// `recovered_at` convention of `StabilizationReport` via the shared
/// [`consensus_reached`] predicate (`wrong after slot t` ⇒ recovered at
/// `t + 1` at the earliest).
fn close_segment(
    injected_at: u64,
    wrong: u64,
    last_wrong: Option<u64>,
) -> RecoveryReport {
    RecoveryReport {
        injected_at,
        recovered_at: consensus_reached(wrong, last_wrong, injected_at),
        residual_error: wrong,
    }
}

/// Mean-time-to-recover summary over [`RecoveryReport`] segments — the
/// scalar the self-stabilization literature reports, in mergeable form.
///
/// Absorbs one segment per trial (conventionally the *final* segment; see
/// [`FaultEnsembleReport::final_mttr`](crate::ensemble::FaultEnsembleReport::final_mttr)),
/// tracking the recovery probability, the moments and log-histogram of the
/// recovery times of the trials that did recover, and the residual-error
/// tail of those that did not. [`merge`](Self::merge) is the ensemble
/// combiner: counters and the histogram merge exactly, the moments by
/// Chan's parallel Welford update — so folding per-trial summaries in trial
/// order yields byte-identical [`to_json`](Self::to_json) output at any
/// thread count.
#[derive(Debug, Clone, Default)]
pub struct Mttr {
    trials: u64,
    recovered: u64,
    time: Welford,
    residual: Welford,
    histogram: LogHistogram,
}

impl Mttr {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one trial's verdict segment.
    pub fn absorb(&mut self, seg: &RecoveryReport) {
        self.trials += 1;
        if let Some(t) = seg.recovery_time() {
            self.recovered += 1;
            self.time.push(t as f64);
            self.histogram.push(t as f64);
        }
        self.residual.push(seg.residual_error as f64);
    }

    /// Absorbs a whole other summary.
    pub fn merge(&mut self, other: &Self) {
        self.trials += other.trials;
        self.recovered += other.recovered;
        self.time.merge(other.time);
        self.residual.merge(other.residual);
        self.histogram.merge(&other.histogram);
    }

    /// Trials absorbed.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Trials whose verdict segment recovered.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Empirical probability that a trial recovered (NaN when empty).
    pub fn recovery_probability(&self) -> f64 {
        if self.trials == 0 {
            return f64::NAN;
        }
        self.recovered as f64 / self.trials as f64
    }

    /// Mean time to recover, in interaction slots from the burst, over the
    /// recovered trials (NaN if none recovered).
    pub fn mean(&self) -> f64 {
        self.time.mean()
    }

    /// Moments of the recovery times of the recovered trials.
    pub fn time_stats(&self) -> &Welford {
        &self.time
    }

    /// Moments of the residual error over **all** trials — the tail left
    /// behind by non-recovering runs (0 for every recovered trial).
    pub fn residual_stats(&self) -> &Welford {
        &self.residual
    }

    /// Log-spaced histogram of the recovery times.
    pub fn histogram(&self) -> &LogHistogram {
        &self.histogram
    }

    /// Deterministic JSON rendering (schema `pp-mttr/v1`); a pure function
    /// of the absorbed segments and the fold order, so determinism tests
    /// compare these strings byte-for-byte across thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"pp-mttr/v1\"");
        s.push_str(&format!(",\"trials\":{}", self.trials));
        s.push_str(&format!(",\"recovered\":{}", self.recovered));
        s.push_str(&format!(",\"recovery_probability\":{}", json_f64(self.recovery_probability())));
        s.push_str(&format!(",\"mttr_mean\":{}", json_f64(self.time.mean())));
        s.push_str(&format!(",\"mttr_std\":{}", json_f64(self.time.std_dev())));
        s.push_str(&format!(",\"mttr_min\":{}", json_f64(self.time.min())));
        s.push_str(&format!(",\"mttr_max\":{}", json_f64(self.time.max())));
        s.push_str(&format!(",\"residual_mean\":{}", json_f64(self.residual.mean())));
        s.push_str(&format!(",\"residual_max\":{}", json_f64(self.residual.max())));
        s.push_str(&format!(",\"histogram\":{{\"underflow\":{}", self.histogram.underflow()));
        s.push_str(",\"buckets\":[");
        for (k, (i, c)) in self.histogram.nonzero().into_iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{i},{c}]"));
        }
        s.push_str("]}}");
        s
    }
}

/// Adapter giving fault plans access to the multiset engine.
struct CountCtx<'a, P: Protocol, Pr: Probe, Tr: Tracer> {
    sim: &'a mut Simulation<P, Pr, Tr>,
}

impl<P: Protocol, Pr: Probe, Tr: Tracer> FaultCtx<P::State> for CountCtx<'_, P, Pr, Tr> {
    fn live_population(&self) -> u64 {
        self.sim.population()
    }

    fn crash_random(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.sim.population() <= 2 {
            return false;
        }
        self.sim.crash_random_agent(&mut &mut *rng);
        true
    }

    fn corrupt_random(&mut self, to: &P::State, rng: &mut dyn RngCore) {
        self.sim.corrupt_random_agent(to, &mut &mut *rng);
    }

    fn corrupt_random_with(&mut self, f: fn(&P::State) -> P::State, rng: &mut dyn RngCore) {
        self.sim.corrupt_random_agent_with(f, &mut &mut *rng);
    }

    fn overwrite_population(&mut self, next: &mut dyn FnMut(u64) -> P::State) {
        self.sim.overwrite_states(&mut *next);
    }

    fn random_known_state(&mut self, rng: &mut dyn RngCore) -> P::State {
        self.sim.random_known_state(&mut &mut *rng)
    }
}

/// Adapter giving fault plans access to the per-agent engine.
struct AgentCtx<'a, P: Protocol, S, Pr: Probe, Tr: Tracer> {
    sim: &'a mut AgentSimulation<P, S, Pr, Tr>,
}

impl<P: Protocol, S: PairSampler, Pr: Probe, Tr: Tracer> FaultCtx<P::State>
    for AgentCtx<'_, P, S, Pr, Tr>
{
    fn live_population(&self) -> u64 {
        self.sim.live_population() as u64
    }

    fn crash_random(&mut self, rng: &mut dyn RngCore) -> bool {
        self.sim.crash_random_live(&mut &mut *rng).is_some()
    }

    fn corrupt_random(&mut self, to: &P::State, rng: &mut dyn RngCore) {
        let a = self.sim.random_live_agent(&mut &mut *rng);
        self.sim.set_agent_state(a, to);
    }

    fn corrupt_random_with(&mut self, f: fn(&P::State) -> P::State, rng: &mut dyn RngCore) {
        let a = self.sim.random_live_agent(&mut &mut *rng);
        let to = f(self.sim.state_of(a));
        self.sim.set_agent_state(a, &to);
    }

    fn overwrite_population(&mut self, next: &mut dyn FnMut(u64) -> P::State) {
        self.sim.overwrite_live_states(&mut *next);
    }

    fn random_known_state(&mut self, rng: &mut dyn RngCore) -> P::State {
        self.sim.random_known_state(&mut &mut *rng)
    }
}

impl<P: Protocol, Pr: Probe, Tr: Tracer> Simulation<P, Pr, Tr> {
    /// Number of agents whose current output differs from `expected`.
    fn wrong_now(&mut self, expected: &P::Output) -> u64 {
        self.population() - self.count_with_output(expected)
    }

    /// Rewrites the whole population to the adversary's chosen starting
    /// configuration (notifying any attached probe) — the standalone form
    /// for protocols whose "recovered" condition is not a stable output and
    /// therefore cannot go through `run_with_faults` (e.g. the phase
    /// clock's synchronization predicate). Returns the number of agents
    /// rewritten.
    pub fn apply_adversarial_init(
        &mut self,
        init: &AdversarialInit<P::State>,
        rng: &mut impl Rng,
    ) -> u64 {
        let applied = init.apply(&mut CountCtx { sim: self }, &mut *rng);
        self.probe_fault_burst(applied);
        applied
    }

    /// Runs `horizon` interaction slots, letting `plan` inject faults
    /// between interactions, and reports per-segment recovery against the
    /// `expected` stable output.
    ///
    /// Slot accounting is local to this call: slot `t` (0-based) is offered
    /// to `plan` for injection and for a drop decision before the `t`-th
    /// interaction executes. Dropped slots consume a slot but no
    /// interaction, so [`steps`](Self::steps) advances by
    /// `horizon − dropped`.
    pub fn run_with_faults<F>(
        &mut self,
        plan: &mut F,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl Rng,
    ) -> FaultRunReport
    where
        F: FaultPlan<P::State> + ?Sized,
    {
        let mut segments = Vec::new();
        let mut faults_injected = 0u64;
        let mut dropped = 0u64;
        let mut seg_start = 0u64;
        let mut wrong = self.wrong_now(expected);
        let mut last_wrong: Option<u64> = if wrong > 0 { Some(0) } else { None };
        for slot in 0..horizon {
            let applied = plan.inject(slot, &mut CountCtx { sim: self }, &mut *rng);
            if applied > 0 {
                faults_injected += applied;
                self.probe_fault_burst(applied);
                segments.push(close_segment(seg_start, wrong, last_wrong));
                seg_start = slot;
                wrong = self.wrong_now(expected);
                last_wrong = if wrong > 0 { Some(slot) } else { None };
            }
            let p = plan.drop_probability(slot);
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                dropped += 1;
            } else if self.step(rng) {
                wrong = self.wrong_now(expected);
            }
            if wrong > 0 {
                last_wrong = Some(slot + 1);
            }
        }
        segments.push(close_segment(seg_start, wrong, last_wrong));
        FaultRunReport { horizon, segments, faults_injected, dropped, starved: 0 }
    }
}

impl<P: Protocol, S: PairSampler, Pr: Probe, Tr: Tracer> AgentSimulation<P, S, Pr, Tr> {
    /// Rewrites every live agent to the adversary's chosen starting
    /// configuration and clears all synthesized coins; see
    /// [`Simulation::apply_adversarial_init`]. Returns the number of agents
    /// rewritten.
    pub fn apply_adversarial_init(
        &mut self,
        init: &AdversarialInit<P::State>,
        rng: &mut impl RngCore,
    ) -> u64 {
        let applied = init.apply(&mut AgentCtx { sim: self }, &mut *rng);
        self.probe_fault_burst(applied);
        applied
    }

    /// Runs `horizon` interaction slots on the per-agent engine, letting
    /// `plan` inject faults between interactions; see
    /// [`Simulation::run_with_faults`] for the slot and segmentation
    /// conventions. Slots where no live pair can be sampled (all edges
    /// touch crashed agents) are counted in
    /// [`starved`](FaultRunReport::starved) instead of panicking.
    pub fn run_with_faults<F>(
        &mut self,
        plan: &mut F,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl RngCore,
    ) -> FaultRunReport
    where
        F: FaultPlan<P::State> + ?Sized,
    {
        let mut segments = Vec::new();
        let mut faults_injected = 0u64;
        let mut dropped = 0u64;
        let mut starved = 0u64;
        let mut seg_start = 0u64;
        let mut wrong = self.wrong_output_count(expected);
        let mut last_wrong: Option<u64> = if wrong > 0 { Some(0) } else { None };
        for slot in 0..horizon {
            let applied = plan.inject(slot, &mut AgentCtx { sim: self }, &mut *rng);
            if applied > 0 {
                faults_injected += applied;
                self.probe_fault_burst(applied);
                segments.push(close_segment(seg_start, wrong, last_wrong));
                seg_start = slot;
                wrong = self.wrong_output_count(expected);
                last_wrong = if wrong > 0 { Some(slot) } else { None };
            }
            let p = plan.drop_probability(slot);
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                dropped += 1;
            } else {
                match self.step_transitions(rng) {
                    Some((_, (p0, q0), (p2, q2))) => {
                        let rt = self.runtime();
                        for (old, new) in [(p0, p2), (q0, q2)] {
                            if old == new {
                                continue;
                            }
                            let was_ok = rt.output_value(rt.output_of(old)) == expected;
                            let is_ok = rt.output_value(rt.output_of(new)) == expected;
                            match (was_ok, is_ok) {
                                (true, false) => wrong += 1,
                                (false, true) => wrong -= 1,
                                _ => {}
                            }
                        }
                    }
                    None => starved += 1,
                }
            }
            if wrong > 0 {
                last_wrong = Some(slot + 1);
            }
        }
        segments.push(close_segment(seg_start, wrong, last_wrong));
        FaultRunReport { horizon, segments, faults_injected, dropped, starved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seeded_rng;
    use crate::protocol::FnProtocol;
    use crate::scheduler::UniformPairScheduler;

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    #[test]
    fn fault_free_run_matches_plain_stabilization() {
        // With a no-op plan, run_with_faults is an exact re-skin of
        // measure_stabilization: same RNG stream, same verdict.
        struct NoFaults;
        impl<S> FaultPlan<S> for NoFaults {
            fn inject(
                &mut self,
                _: u64,
                _: &mut dyn FaultCtx<S>,
                _: &mut dyn RngCore,
            ) -> u64 {
                0
            }
        }
        let mut a = Simulation::from_counts(epidemic(), [(true, 1), (false, 31)]);
        let mut b = Simulation::from_counts(epidemic(), [(true, 1), (false, 31)]);
        let rep_a = a.measure_stabilization(&true, 20_000, &mut seeded_rng(7));
        let rep_b = b.run_with_faults(&mut NoFaults, &true, 20_000, &mut seeded_rng(7));
        assert_eq!(rep_b.segments.len(), 1);
        assert_eq!(rep_b.faults_injected, 0);
        assert_eq!(rep_a.stabilized_at, rep_b.final_segment().recovered_at);
    }

    #[test]
    fn corruption_splits_the_run_into_segments() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 63)]);
        let mut plan = TransientCorruption::adversarial_at(2_000, 20, false);
        let mut rng = seeded_rng(3);
        let rep = sim.run_with_faults(&mut plan, &true, 40_000, &mut rng);
        assert_eq!(rep.segments.len(), 2);
        assert_eq!(rep.faults_injected, 20);
        assert_eq!(rep.segments[1].injected_at, 2_000);
        assert!(rep.recovered(), "epidemic re-infects corrupted agents");
        assert_eq!(rep.final_segment().residual_error, 0);
        assert_eq!(sim.population(), 64);
    }

    #[test]
    fn crash_faults_shrink_the_population() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 4), (false, 28)]);
        let mut plan = CrashFaults::schedule(vec![(100, 5), (200, 5)]);
        let mut rng = seeded_rng(5);
        let rep = sim.run_with_faults(&mut plan, &true, 10_000, &mut rng);
        assert_eq!(sim.population(), 22);
        assert_eq!(rep.faults_injected, 10);
        assert_eq!(rep.segments.len(), 3);
        assert!(rep.recovered());
    }

    #[test]
    fn crash_respects_minimum_population() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 3)]);
        // Ask for far more crashes than the population can give up.
        let mut plan = CrashFaults::at(0, 100);
        let mut rng = seeded_rng(1);
        let rep = sim.run_with_faults(&mut plan, &true, 1_000, &mut rng);
        assert_eq!(sim.population(), 2, "engine keeps an interacting pair alive");
        assert_eq!(rep.faults_injected, 2);
    }

    #[test]
    fn interaction_drop_slows_but_does_not_stop_the_epidemic() {
        let mut rng = seeded_rng(11);
        let mut clean = Simulation::from_counts(epidemic(), [(true, 1), (false, 63)]);
        let clean_rep = clean.run_with_faults(
            &mut InteractionDrop::new(0.0),
            &true,
            60_000,
            &mut rng,
        );
        let mut lossy = Simulation::from_counts(epidemic(), [(true, 1), (false, 63)]);
        let lossy_rep = lossy.run_with_faults(
            &mut InteractionDrop::new(0.5),
            &true,
            60_000,
            &mut rng,
        );
        assert!(clean_rep.recovered() && lossy_rep.recovered());
        assert_eq!(clean_rep.dropped, 0);
        // ~50% of 60k slots dropped; allow a generous band.
        assert!(
            (25_000..35_000).contains(&lossy_rep.dropped),
            "dropped {} of 60000",
            lossy_rep.dropped
        );
        assert_eq!(lossy.steps(), 60_000 - lossy_rep.dropped);
    }

    #[test]
    fn churn_preserves_population_and_is_periodic() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 8), (false, 24)]);
        let mut plan = Churn::new(1_000, 2, false);
        let mut rng = seeded_rng(13);
        let rep = sim.run_with_faults(&mut plan, &true, 10_000, &mut rng);
        assert_eq!(sim.population(), 32);
        // Bursts at 1000, 2000, ..., 9000 (slot 0 excluded, horizon is 10k).
        assert_eq!(rep.faults_injected, 18);
        assert_eq!(rep.segments.len(), 10);
        assert!(rep.recovered(), "epidemic outruns slow churn");
    }

    #[test]
    fn composed_plans_inject_both_and_drop_jointly() {
        let mut plan = (InteractionDrop::new(0.5), InteractionDrop::new(0.5));
        let p = FaultPlan::<bool>::drop_probability(&mut plan, 0);
        assert!((p - 0.75).abs() < 1e-12);

        let mut sim = Simulation::from_counts(epidemic(), [(true, 2), (false, 30)]);
        let mut plan =
            (CrashFaults::at(50, 3), TransientCorruption::<bool>::uniform_at(50, 4));
        let mut rng = seeded_rng(17);
        let rep = sim.run_with_faults(&mut plan, &true, 5_000, &mut rng);
        assert_eq!(rep.faults_injected, 7);
        assert_eq!(sim.population(), 29);
        // One burst slot → exactly two segments even though two models fired.
        assert_eq!(rep.segments.len(), 2);
    }

    #[test]
    fn agent_engine_runs_all_models() {
        let n = 32;
        let inputs: Vec<bool> = (0..n).map(|i| i < 2).collect();
        let mut sim = AgentSimulation::from_inputs(
            epidemic(),
            &inputs,
            UniformPairScheduler::new(n),
        );
        let mut plan = (
            CrashFaults::at(500, 4),
            (Churn::new(2_000, 2, false), InteractionDrop::new(0.1)),
        );
        let mut rng = seeded_rng(23);
        let rep = sim.run_with_faults(&mut plan, &true, 20_000, &mut rng);
        assert_eq!(sim.live_population(), 28);
        assert_eq!(sim.population(), 32);
        assert!(rep.faults_injected >= 4 + 2 * 9);
        assert!(rep.dropped > 1_000);
        assert_eq!(rep.starved, 0, "uniform sampler never starves with 28 live");
        assert!(rep.recovered(), "epidemic survives crash + churn + loss");
        assert_eq!(
            sim.output_histogram(),
            vec![(true, 28)],
            "histogram covers live agents only"
        );
    }

    #[test]
    fn targeted_corruption_applies_the_state_function() {
        // Target the infected agents: every victim is flipped to healthy.
        let mut sim = Simulation::from_counts(epidemic(), [(true, 16)]);
        let mut plan = TransientCorruption::targeted_at(0, 16, |&b: &bool| !b);
        let mut rng = seeded_rng(29);
        let rep = sim.run_with_faults(&mut plan, &true, 10, &mut rng);
        assert_eq!(rep.faults_injected, 16);
        // All 16 flips hit random agents, so some may be flipped twice —
        // but the very first injection makes at least one agent false, and
        // with nobody else to re-infect a fully flipped population stays
        // wrong. Either way the state function demonstrably ran:
        assert!(sim.count_of_state(&false) > 0 || rep.recovered());
    }

    #[test]
    fn enumeration_count_matches_stars_and_bars() {
        assert_eq!(enumeration_count(1, 10), 1);
        assert_eq!(enumeration_count(2, 3), 4); // (0,3)(1,2)(2,1)(3,0)
        assert_eq!(enumeration_count(3, 6), 28); // C(8,2)
        assert_eq!(enumeration_count(4, 6), 84); // C(9,3)
    }

    #[test]
    fn unrank_multiset_is_a_bijection() {
        // Every index yields a distinct count vector summing to n.
        let (k, n) = (3usize, 5u64);
        let total = enumeration_count(k, n);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let counts = unrank_multiset(k, n, idx);
            assert_eq!(counts.len(), k);
            assert_eq!(counts.iter().sum::<u64>(), n);
            assert!(seen.insert(counts), "duplicate configuration at index {idx}");
        }
        assert_eq!(seen.len() as u128, total);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_multiset_rejects_out_of_range() {
        let _ = unrank_multiset(2, 3, 4);
    }

    #[test]
    fn flood_init_overwrites_everyone_on_both_engines() {
        let init = AdversarialInit::flood(false);
        let mut count = Simulation::from_counts(epidemic(), [(true, 10), (false, 22)]);
        let n = count.apply_adversarial_init(&init, &mut seeded_rng(1));
        assert_eq!(n, 32);
        assert_eq!(count.count_of_state(&false), 32);
        assert_eq!(count.population(), 32);

        let inputs: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let mut agent =
            AgentSimulation::from_inputs(epidemic(), &inputs, UniformPairScheduler::new(8));
        agent.apply_adversarial_init(&init, &mut seeded_rng(1));
        assert!((0..8).all(|a| !*agent.state_of(a)));
        assert!((0..8).all(|a| agent.coin_of(a).is_none()), "coins cleared");
    }

    #[test]
    fn uniform_random_init_draws_from_the_universe() {
        let init = AdversarialInit::uniform_random(vec![false, true]);
        let mut sim = Simulation::from_counts(epidemic(), [(false, 64)]);
        sim.apply_adversarial_init(&init, &mut seeded_rng(7));
        let (t, f) = (sim.count_of_state(&true), sim.count_of_state(&false));
        assert_eq!(t + f, 64);
        assert!(t > 0 && f > 0, "a 64-agent uniform draw hits both states");
    }

    #[test]
    fn enumerated_init_realizes_the_unranked_configuration() {
        let universe = vec![false, true];
        let (k, n) = (2usize, 6u64);
        for idx in 0..enumeration_count(k, n) {
            let counts = unrank_multiset(k, n, idx);
            let init = AdversarialInit::enumerated(universe.clone(), idx);
            let mut sim = Simulation::from_counts(epidemic(), [(true, 6)]);
            sim.apply_adversarial_init(&init, &mut seeded_rng(0));
            assert_eq!(sim.count_of_state(&false), counts[0]);
            assert_eq!(sim.count_of_state(&true), counts[1]);
        }
    }

    #[test]
    fn adversarial_init_as_plan_segments_at_slot_zero() {
        // Flood with `false`: the epidemic has no seed left and cannot
        // recover — the canonical non-self-stabilizing verdict.
        let mut sim = Simulation::from_counts(epidemic(), [(true, 4), (false, 28)]);
        let mut plan = AdversarialInit::flood(false);
        let mut rng = seeded_rng(31);
        let rep = sim.run_with_faults(&mut plan, &true, 5_000, &mut rng);
        assert_eq!(rep.faults_injected, 32);
        assert_eq!(rep.segments.len(), 2);
        assert!(!rep.recovered());
        assert_eq!(rep.final_segment().residual_error, 32);
    }

    #[test]
    fn mttr_absorbs_and_merges_exactly() {
        let rec = |at, t| RecoveryReport {
            injected_at: at,
            recovered_at: Some(at + t),
            residual_error: 0,
        };
        let fail = |at, r| RecoveryReport { injected_at: at, recovered_at: None, residual_error: r };

        let mut whole = Mttr::new();
        for seg in [rec(0, 100), rec(0, 300), fail(0, 7)] {
            whole.absorb(&seg);
        }
        assert_eq!(whole.trials(), 3);
        assert_eq!(whole.recovered(), 2);
        assert!((whole.recovery_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert!((whole.mean() - 200.0).abs() < 1e-9);
        assert!((whole.residual_stats().max() - 7.0).abs() < 1e-12);

        // Split/merge is exact on counters and the histogram, and
        // algebraically exact (Chan) on the moments.
        let mut left = Mttr::new();
        left.absorb(&rec(0, 100));
        left.absorb(&rec(0, 300));
        let mut right = Mttr::new();
        right.absorb(&fail(0, 7));
        left.merge(&right);
        assert_eq!(left.trials(), 3);
        assert_eq!(left.recovered(), 2);
        assert_eq!(left.histogram().total(), whole.histogram().total());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.residual_stats().mean() - whole.residual_stats().mean()).abs() < 1e-9);
        assert!(whole.to_json().starts_with("{\"schema\":\"pp-mttr/v1\""));
    }

    #[test]
    fn recovery_report_times() {
        let r = RecoveryReport { injected_at: 100, recovered_at: Some(175), residual_error: 0 };
        assert!(r.recovered());
        assert_eq!(r.recovery_time(), Some(75));
        let r = RecoveryReport { injected_at: 100, recovered_at: None, residual_error: 9 };
        assert!(!r.recovered());
        assert_eq!(r.recovery_time(), None);
    }
}
