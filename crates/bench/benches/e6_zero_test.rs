//! E6 — Theorem 9: the population zero test.
//!
//! 1. With `m > 0` nonzero tokens it falsely reports zero with probability
//!    `Θ(n^{−k}/m)` (exactly the urn loss probability over `n−1` tokens);
//! 2. conditioned on a correct outcome it takes `O(n²/m)` interactions;
//! 3. with `m = 0` it takes `O(n^{k+1})` interactions.

use pp_bench::{fit_exponent, fmt, mean, print_header};
use pp_core::seeded_rng;
use pp_random::ZeroTest;

fn main() {
    let mut rng = seeded_rng(6);

    println!("\nE6a: Theorem 9(1) — false-zero probability (k = 2)\n");
    print_header(
        &["n", "m", "trials", "measured", "analytic"],
        &[5, 4, 8, 11, 11],
    );
    for &n in &[8u64, 16, 32] {
        for &m in &[1u64, 2, 4] {
            let zt = ZeroTest::new(n, m, 2);
            let analytic = zt.false_zero_probability();
            let trials = if pp_bench::smoke() {
                2_000
            } else {
                ((60.0 / analytic) as u64).clamp(20_000, 1_500_000)
            };
            let mut wrong = 0u64;
            for _ in 0..trials {
                if zt.run(&mut rng).reported_zero {
                    wrong += 1;
                }
            }
            println!(
                "{:>5} {:>4} {:>8} {:>11} {:>11}",
                n,
                m,
                trials,
                fmt(wrong as f64 / trials as f64),
                fmt(analytic),
            );
        }
    }

    println!("\nE6b: Theorem 9(2) — interactions, m > 0 (k = 2): O(n²/m)\n");
    print_header(
        &["n", "m", "E[interactions]", "n²/m", "ratio"],
        &[5, 4, 16, 12, 8],
    );
    let n_list_b: &[u64] = if pp_bench::smoke() { &[16, 32] } else { &[16, 32, 64, 128] };
    for &n in n_list_b {
        for &m in &[1u64, 4] {
            let zt = ZeroTest::new(n, m, 2);
            let trials = if pp_bench::smoke() { 300 } else { 20_000 };
            let mut ok_times = Vec::new();
            for _ in 0..trials {
                let o = zt.run(&mut rng);
                if !o.reported_zero {
                    ok_times.push(o.interactions as f64);
                }
            }
            let measured = mean(&ok_times);
            let scale = zt.interaction_scale_nonzero();
            println!(
                "{:>5} {:>4} {:>16} {:>12} {:>8}",
                n,
                m,
                fmt(measured),
                fmt(scale),
                fmt(measured / scale)
            );
        }
    }

    println!("\nE6c: Theorem 9(2) — interactions, m = 0: O(n^(k+1))\n");
    print_header(
        &["n", "k", "E[interactions]", "n^(k+1)", "ratio"],
        &[5, 3, 16, 12, 8],
    );
    let mut ns = Vec::new();
    let mut ts = Vec::new();
    let n_list_c: &[u64] = if pp_bench::smoke() { &[8, 16] } else { &[8, 16, 32, 64] };
    for &n in n_list_c {
        let k = 2;
        let zt = ZeroTest::new(n, 0, k);
        let trials = if pp_bench::smoke() {
            50
        } else {
            (30_000_000 / (n * n * n)).clamp(200, 20_000)
        };
        let times: Vec<f64> =
            (0..trials).map(|_| zt.run(&mut rng).interactions as f64).collect();
        let measured = mean(&times);
        println!(
            "{:>5} {:>3} {:>16} {:>12} {:>8}",
            n,
            k,
            fmt(measured),
            fmt(zt.interaction_scale_zero()),
            fmt(measured / zt.interaction_scale_zero())
        );
        ns.push(n as f64);
        ts.push(measured);
    }
    println!(
        "\nfitted exponent (m = 0 case, k = 2): {:.3} (paper: k+1 = 3)\n",
        fit_exponent(&ns, &ts)
    );
}
