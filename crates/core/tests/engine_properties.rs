//! Cross-cutting property tests for the simulation engines.

use pp_core::prelude::*;
use proptest::prelude::*;

fn epidemic() -> impl pp_core::Protocol<State = bool, Input = bool, Output = bool> + Clone {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// A protocol whose transitions conserve a token sum — lets properties
/// check engine bookkeeping against a conserved quantity.
fn token_merge() -> impl pp_core::Protocol<State = u8, Input = u8, Output = u8> + Clone {
    FnProtocol::new(
        |&x: &u8| x % 4,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| {
            let total = p + q;
            (total.min(9), total.saturating_sub(9)) // conserve p + q
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn population_and_token_sum_conserved(
        a in 0u64..6, b in 0u64..6, c in 0u64..6, steps in 0u64..500, seed in 0u64..8,
    ) {
        prop_assume!(a + b + c >= 2);
        let mut sim = Simulation::from_counts(
            token_merge(),
            [(1u8, a), (2u8, b), (3u8, c)],
        );
        let initial_sum: u64 = sim
            .config()
            .support()
            .map(|(id, cnt)| u64::from(*sim.runtime().state(id)) * cnt)
            .sum();
        let mut rng = seeded_rng(seed);
        sim.run(steps, &mut rng);
        prop_assert_eq!(sim.population(), a + b + c);
        let final_sum: u64 = sim
            .config()
            .support()
            .map(|(id, cnt)| u64::from(*sim.runtime().state(id)) * cnt)
            .sum();
        prop_assert_eq!(final_sum, initial_sum, "token sum must be conserved");
        prop_assert!(sim.effective_steps() <= sim.steps());
    }

    #[test]
    fn output_histogram_always_partitions_population(
        t in 0u64..8, f in 0u64..8, steps in 0u64..300, seed in 0u64..8,
    ) {
        prop_assume!(t + f >= 2);
        let mut sim = Simulation::from_counts(epidemic(), [(true, t), (false, f)]);
        let mut rng = seeded_rng(seed);
        sim.run(steps, &mut rng);
        let total: u64 = sim.output_histogram().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, t + f);
    }

    #[test]
    fn leap_and_step_agree_on_reachable_outputs(
        t in 1u64..5, f in 1u64..8, seed in 0u64..8,
    ) {
        // Both engines must end an epidemic in the all-true configuration.
        let mut fast = Simulation::from_counts(epidemic(), [(true, t), (false, f)]);
        let mut rng = seeded_rng(seed);
        fast.run_to_quiescence(10_000, &mut rng).expect("quiesces");
        prop_assert_eq!(fast.consensus_output(), Some(&true));

        let mut slow = Simulation::from_counts(epidemic(), [(true, t), (false, f)]);
        let mut rng = seeded_rng(seed);
        slow.run_until_consensus(&true, 5_000_000, &mut rng).expect("reaches consensus");
        prop_assert_eq!(slow.consensus_output(), Some(&true));
    }

    #[test]
    fn crash_reduces_population_by_one(
        t in 1u64..6, f in 2u64..6, seed in 0u64..8,
    ) {
        let mut sim = Simulation::from_counts(epidemic(), [(true, t), (false, f)]);
        let mut rng = seeded_rng(seed);
        let n = sim.population();
        let _state = sim.crash_random_agent(&mut rng);
        prop_assert_eq!(sim.population(), n - 1);
        let total: u64 = sim.output_histogram().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, n - 1);
    }

    #[test]
    fn parallel_round_preserves_population_and_tokens(
        a in 1u64..6, b in 1u64..6, rounds in 0u64..30, seed in 0u64..8,
    ) {
        let mut sim = Simulation::from_counts(token_merge(), [(1u8, a), (3u8, b)]);
        let initial_sum: u64 = sim
            .config()
            .support()
            .map(|(id, cnt)| u64::from(*sim.runtime().state(id)) * cnt)
            .sum();
        let mut rng = seeded_rng(seed);
        for _ in 0..rounds {
            sim.parallel_round(&mut rng);
        }
        prop_assert_eq!(sim.population(), a + b);
        let final_sum: u64 = sim
            .config()
            .support()
            .map(|(id, cnt)| u64::from(*sim.runtime().state(id)) * cnt)
            .sum();
        prop_assert_eq!(final_sum, initial_sum);
    }
}
