//! Dense interning of protocol states and memoization of the transition
//! function, so the simulation inner loop works on `u32` ids and array
//! lookups rather than hashing rich state values.

use crate::error::PopulationError;
use crate::fxhash::FxHashMap;
use crate::protocol::{CoinProtocol, Protocol};

/// Dense identifier of an interned protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of an interned output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputId(pub u32);

impl OutputId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Default ceiling on the number of distinct states a protocol may intern.
///
/// The model requires `Q` to be finite; a protocol that keeps generating new
/// states (e.g. an unbounded counter) violates the model, and this bound
/// turns that bug into an error instead of memory exhaustion.
pub const DEFAULT_STATE_BOUND: usize = 1 << 22;

/// Interns the states and outputs of a [`Protocol`] into dense ids and
/// memoizes its transition function.
///
/// States are discovered lazily: the set of interned states after any number
/// of operations is exactly the set of states the runtime has been shown
/// (via [`intern`](Self::intern)) plus the states produced by memoized
/// transitions.
///
/// # Example
///
/// ```
/// use pp_core::{DenseRuntime, FnProtocol};
///
/// let epidemic = FnProtocol::new(
///     |&b: &bool| b,
///     |&q: &bool| q,
///     |&p: &bool, &q: &bool| (p || q, p || q),
/// );
/// let mut rt = DenseRuntime::new(epidemic);
/// let healthy = rt.intern_input(&false);
/// let infected = rt.intern_input(&true);
/// let (a, b) = rt.transition(infected, healthy);
/// assert_eq!((a, b), (infected, infected));
/// ```
#[derive(Debug, Clone)]
pub struct DenseRuntime<P: Protocol> {
    protocol: P,
    states: Vec<P::State>,
    state_index: FxHashMap<P::State, StateId>,
    /// Output id of each interned state, parallel to `states`.
    state_output: Vec<OutputId>,
    outputs: Vec<P::Output>,
    output_index: FxHashMap<P::Output, OutputId>,
    /// Memoized transitions keyed by `(initiator, responder)`.
    transitions: FxHashMap<(StateId, StateId), (StateId, StateId)>,
    /// Memoized coin-consuming transitions keyed by
    /// `(initiator, responder, coin code)`; see [`coin_code`].
    coined_transitions: FxHashMap<(StateId, StateId, u8), (StateId, StateId)>,
    state_bound: usize,
}

/// Dense encoding of an `(Option<bool>, Option<bool>)` coin pair into
/// `0..9`, used as the third key component of the coined-transition memo.
#[inline]
fn coin_code(coins: (Option<bool>, Option<bool>)) -> u8 {
    #[inline]
    fn enc(c: Option<bool>) -> u8 {
        match c {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        }
    }
    enc(coins.0) * 3 + enc(coins.1)
}

impl<P: Protocol> DenseRuntime<P> {
    /// Creates a runtime with the [`DEFAULT_STATE_BOUND`].
    pub fn new(protocol: P) -> Self {
        Self::with_state_bound(protocol, DEFAULT_STATE_BOUND)
    }

    /// Creates a runtime that will panic through
    /// [`PopulationError::StateSpaceExceeded`] if more than `bound` distinct
    /// states are ever interned.
    pub fn with_state_bound(protocol: P, bound: usize) -> Self {
        Self {
            protocol,
            states: Vec::new(),
            state_index: FxHashMap::default(),
            state_output: Vec::new(),
            outputs: Vec::new(),
            output_index: FxHashMap::default(),
            transitions: FxHashMap::default(),
            coined_transitions: FxHashMap::default(),
            state_bound: bound,
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of distinct states interned so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct output values interned so far.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Interns a state, returning its dense id.
    ///
    /// # Panics
    ///
    /// Panics if the number of distinct states exceeds the configured bound
    /// (the protocol is then not finite-state, violating the model).
    pub fn intern(&mut self, state: P::State) -> StateId {
        if let Some(&id) = self.state_index.get(&state) {
            return id;
        }
        assert!(
            self.states.len() < self.state_bound,
            "{}",
            PopulationError::StateSpaceExceeded { bound: self.state_bound }
        );
        let id = StateId(u32::try_from(self.states.len()).expect("more than u32::MAX states"));
        let out = self.intern_output(self.protocol.output(&state));
        self.states.push(state.clone());
        self.state_output.push(out);
        self.state_index.insert(state, id);
        id
    }

    /// Interns an output value, returning its dense id.
    ///
    /// Useful for configuring output-keyed observers (e.g.
    /// `observe::ConvergenceProbe`) before a run.
    pub fn intern_output(&mut self, out: P::Output) -> OutputId {
        if let Some(&id) = self.output_index.get(&out) {
            return id;
        }
        let id = OutputId(u32::try_from(self.outputs.len()).expect("more than u32::MAX outputs"));
        self.outputs.push(out.clone());
        self.output_index.insert(out, id);
        id
    }

    /// Applies the input function `I` and interns the resulting state.
    pub fn intern_input(&mut self, x: &P::Input) -> StateId {
        let s = self.protocol.input(x);
        self.intern(s)
    }

    /// The state value behind an id.
    pub fn state(&self, id: StateId) -> &P::State {
        &self.states[id.index()]
    }

    /// The output id of a state.
    #[inline]
    pub fn output_of(&self, id: StateId) -> OutputId {
        self.state_output[id.index()]
    }

    /// The output value behind an output id.
    pub fn output_value(&self, id: OutputId) -> &P::Output {
        &self.outputs[id.index()]
    }

    /// Looks up (and memoizes) `δ(p, q)`.
    #[inline]
    pub fn transition(&mut self, p: StateId, q: StateId) -> (StateId, StateId) {
        if let Some(&r) = self.transitions.get(&(p, q)) {
            return r;
        }
        let (sp, sq) = self.protocol.delta(self.state(p), self.state(q));
        let rp = self.intern(sp);
        let rq = self.intern(sq);
        self.transitions.insert((p, q), (rp, rq));
        (rp, rq)
    }

    /// Looks up (and memoizes) the coin-consuming transition
    /// `δ(p, q, coins)` of a [`CoinProtocol`]. Memoization is keyed by the
    /// state pair *and* the coin pair (9 possible coin codes), so the hot
    /// path of [`step_coined`](crate::AgentSimulation::step_coined) stays a
    /// single hash lookup like the deterministic path.
    #[inline]
    pub fn transition_coined(
        &mut self,
        p: StateId,
        q: StateId,
        coins: (Option<bool>, Option<bool>),
    ) -> (StateId, StateId)
    where
        P: CoinProtocol,
    {
        let key = (p, q, coin_code(coins));
        if let Some(&r) = self.coined_transitions.get(&key) {
            return r;
        }
        let (sp, sq) = self.protocol.delta_coined(self.state(p), self.state(q), coins);
        let rp = self.intern(sp);
        let rq = self.intern(sq);
        self.coined_transitions.insert(key, (rp, rq));
        (rp, rq)
    }

    /// Returns the memoized transition for `(p, q)` without computing it —
    /// `None` if this pair has never been passed to
    /// [`transition`](Self::transition).
    pub fn cached_transition(&self, p: StateId, q: StateId) -> Option<(StateId, StateId)> {
        self.transitions.get(&(p, q)).copied()
    }

    /// Eagerly explores the whole state space reachable from the given seed
    /// states by closing under `δ` on all ordered pairs, returning the total
    /// number of states.
    ///
    /// Useful before analysis passes that need the full (reachable) state
    /// set, and as a finiteness check for a protocol.
    pub fn close_under_delta(&mut self, seeds: &[StateId]) -> usize {
        let mut frontier: Vec<StateId> = seeds.to_vec();
        let mut known = self.states.len();
        // Process pairs (old × new, new × old, new × new) until fixpoint.
        while !frontier.is_empty() {
            let snapshot: Vec<StateId> = (0..known as u32).map(StateId).collect();
            for &a in &snapshot {
                for &b in &frontier {
                    self.transition(a, b);
                    self.transition(b, a);
                }
            }
            for &a in &frontier {
                for &b in &frontier {
                    self.transition(a, b);
                }
            }
            let new_known = self.states.len();
            frontier = (known as u32..new_known as u32).map(StateId).collect();
            known = new_known;
        }
        known
    }

    /// All interned states (ids `0..state_count`).
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// The full transition table over the δ-closure of `seeds`: closes the
    /// state space under `δ` ([`close_under_delta`](Self::close_under_delta)),
    /// then returns every ordered pair `((p, q), δ(p, q))` over the closed
    /// space, in row-major `(p, q)` order.
    ///
    /// This is the registry hook for whole-protocol analyses — the
    /// mean-field drift derivation in `pp-analysis` compiles its vector
    /// field from exactly this table.
    pub fn transition_table(
        &mut self,
        seeds: &[StateId],
    ) -> Vec<((StateId, StateId), (StateId, StateId))> {
        let count = self.close_under_delta(seeds);
        let mut table = Vec::with_capacity(count * count);
        for p in 0..count as u32 {
            for q in 0..count as u32 {
                let (p, q) = (StateId(p), StateId(q));
                table.push(((p, q), self.transition(p, q)));
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FnProtocol;

    fn mod3() -> impl Protocol<State = u8, Input = u8, Output = u8> {
        FnProtocol::new(
            |&x: &u8| x % 3,
            |&q: &u8| q,
            |&p: &u8, &q: &u8| ((p + q) % 3, 0),
        )
    }

    #[test]
    fn intern_is_idempotent() {
        let mut rt = DenseRuntime::new(mod3());
        let a = rt.intern(2);
        let b = rt.intern(2);
        assert_eq!(a, b);
        assert_eq!(rt.state_count(), 1);
    }

    #[test]
    fn transition_memoization_consistent() {
        let mut rt = DenseRuntime::new(mod3());
        let one = rt.intern(1);
        let two = rt.intern(2);
        let r1 = rt.transition(one, two);
        let r2 = rt.transition(one, two);
        assert_eq!(r1, r2);
        assert_eq!(*rt.state(r1.0), 0);
        assert_eq!(*rt.state(r1.1), 0);
    }

    #[test]
    fn outputs_are_interned_with_states() {
        let mut rt = DenseRuntime::new(mod3());
        let id = rt.intern(2);
        assert_eq!(*rt.output_value(rt.output_of(id)), 2);
    }

    #[test]
    fn close_under_delta_explores_reachable_space() {
        let mut rt = DenseRuntime::new(mod3());
        let seeds: Vec<StateId> = (0..3u8).map(|x| rt.intern_input(&x)).collect();
        let n = rt.close_under_delta(&seeds);
        assert_eq!(n, 3); // states {0,1,2}
        // Closure contains every pair transition.
        for a in 0..3u32 {
            for b in 0..3u32 {
                let (p, q) = rt.transition(StateId(a), StateId(b));
                let _ = (p, q);
            }
        }
        assert_eq!(rt.state_count(), 3);
    }

    #[test]
    fn transition_table_covers_the_closure_in_row_major_order() {
        let mut rt = DenseRuntime::new(mod3());
        let seed = rt.intern_input(&1);
        let table = rt.transition_table(&[seed]);
        let k = rt.state_count();
        assert_eq!(table.len(), k * k);
        for (i, &((p, q), result)) in table.iter().enumerate() {
            assert_eq!(p.index() * k + q.index(), i, "row-major order");
            assert_eq!(rt.cached_transition(p, q), Some(result));
        }
    }

    #[test]
    #[should_panic(expected = "distinct states")]
    fn state_bound_enforced() {
        // An unbounded counter protocol violates finiteness.
        let unbounded = FnProtocol::new(
            |&x: &u64| x,
            |&q: &u64| q,
            |&p: &u64, &q: &u64| (p + q + 1, q),
        );
        let mut rt = DenseRuntime::with_state_bound(unbounded, 8);
        let mut s = rt.intern(0);
        let z = rt.intern(0);
        for _ in 0..100 {
            s = rt.transition(s, z).0;
        }
    }
}
