//! Fault injection (§8): "If an agent dies, say from an exhausted battery,
//! the interactions between the remaining agents are unaffected. Of course,
//! many of the algorithms we describe here would not survive the failure of
//! a single agent, especially those based on leader election."
//!
//! These tests make both halves of that observation concrete.

use population_protocols::core::prelude::*;
use population_protocols::protocols::linear::LinState;
use population_protocols::protocols::{majority, CountThreshold};

fn epidemic() -> impl pp_core::Protocol<State = bool, Input = bool, Output = bool> + Clone {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

#[test]
fn epidemic_survives_crashes_of_uninfected_agents() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 20)]);
    let mut rng = seeded_rng(1);
    // Kill five healthy agents before the epidemic spreads.
    for _ in 0..5 {
        assert!(sim.crash_agent_in_state(&false));
    }
    assert_eq!(sim.population(), 16);
    let rep = sim.measure_stabilization(&true, 100_000, &mut rng);
    assert!(rep.converged(), "epidemic is robust to non-seed crashes");
}

#[test]
fn epidemic_dies_with_its_seed() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 20)]);
    // Kill the only infected agent before it spreads.
    assert!(sim.crash_agent_in_state(&true));
    let mut rng = seeded_rng(2);
    sim.run(50_000, &mut rng);
    assert_eq!(sim.consensus_output(), Some(&false), "no seed, no alert");
}

#[test]
fn count_to_k_loses_tokens_with_crashed_accumulators() {
    // 5 hot birds; the predicate is true. Crash an agent carrying an
    // accumulated count of 2 before the alert fires: the remaining tokens
    // sum to 3 < 5 and the population stabilizes to the WRONG answer —
    // exactly the fragility §8 warns about.
    let mut sim = Simulation::from_counts(CountThreshold::new(5), [(true, 5), (false, 15)]);
    let mut rng = seeded_rng(3);
    // Run until some agent holds a partial count of exactly 2 (and no
    // alert has fired).
    let mut found = false;
    for _ in 0..100_000 {
        sim.step(&mut rng);
        if sim.count_of_state(&5) > 0 {
            break; // alert fired first; try another seed below
        }
        if sim.count_of_state(&2) > 0 {
            found = true;
            break;
        }
    }
    if !found {
        // Alert fired before any 2-token formed under this seed; the
        // scenario needs a token to kill, so re-run deterministically with
        // another seed where a 2 forms first.
        sim = Simulation::from_counts(CountThreshold::new(5), [(true, 5), (false, 15)]);
        let mut rng2 = seeded_rng(1234);
        loop {
            sim.step(&mut rng2);
            assert_eq!(sim.count_of_state(&5), 0, "seed must form a 2-token before alerting");
            if sim.count_of_state(&2) > 0 {
                break;
            }
        }
    }
    assert!(sim.crash_agent_in_state(&2), "kill the token carrier");
    let rep = sim.measure_stabilization(&false, 400_000, &mut rng);
    assert!(
        rep.converged(),
        "after losing 2 of 5 tokens the population must stabilize to false"
    );
}

#[test]
fn majority_leader_crash_freezes_outputs() {
    // The Lemma 5 majority protocol funnels everything through a unique
    // leader. Crash every leader and the output bits can never change
    // again — stale verdicts persist (the §8 leader-election fragility).
    let mut sim = Simulation::from_counts(majority(), [(0usize, 6), (1usize, 7)]);
    let mut rng = seeded_rng(5);
    sim.run(50, &mut rng); // partial progress; leaders still merging
    // Crash all remaining leaders.
    let leader_states: Vec<LinState> = sim
        .config()
        .support()
        .map(|(id, _)| *sim.runtime().state(id))
        .filter(|s| s.leader)
        .collect();
    let mut crashed = 0u64;
    for s in leader_states {
        while sim.population() > 2 && sim.crash_agent_in_state(&s) {
            crashed += 1;
        }
    }
    assert!(crashed > 0, "some leader must have been crashed");
    // With no leaders, every transition is a no-op: effective steps freeze.
    let before = sim.effective_steps();
    sim.run(20_000, &mut rng);
    assert_eq!(
        sim.effective_steps(),
        before,
        "a leaderless Lemma 5 population is frozen"
    );
}

#[test]
fn effective_steps_lag_total_steps() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 31)]);
    let mut rng = seeded_rng(8);
    sim.run(100_000, &mut rng);
    // After convergence all interactions are no-ops: the epidemic needs at
    // most n−1 = 31 effective interactions ever.
    assert!(sim.effective_steps() <= 31);
    assert_eq!(sim.steps(), 100_000);
    assert_eq!(sim.consensus_output(), Some(&true));
}
