//! E14 — the §8 energy measure: interactions in which at least one state
//! changes.
//!
//! "If we consider only the number of interactions in which at least one
//! state changes (which might be correlated with the energy required by
//! the computation), then the bounds can be finite even in the stable
//! computation model." This bench measures total vs *effective*
//! interactions over a long horizon: effective counts plateau after
//! convergence, confirming the finite-energy observation.

use pp_bench::{fmt, mean, print_header};
use pp_core::ensemble::Ensemble;
use pp_core::Simulation;
use pp_protocols::{majority, CountThreshold};

fn main() {
    println!("\nE14: §8 energy — total vs effective (state-changing) interactions");
    println!("horizon = 50·n² interactions, well past convergence\n");
    print_header(
        &["protocol", "n", "total", "effective", "eff/n", "stabilized"],
        &[12, 6, 12, 11, 8, 11],
    );
    let n_list: &[u64] = if pp_bench::smoke() { &[32, 64] } else { &[32, 64, 128, 256] };

    for &n in n_list {
        let trials = if pp_bench::smoke() { 3 } else { 20 };
        // Ensemble-parallel trials; offset seeding keeps trial `i` on the
        // former `seeded_rng(i)` stream (statistics unchanged).
        let outcomes = Ensemble::new(trials, 0).legacy_offset_seeds().map(|_trial, rng| {
            let mut sim =
                Simulation::from_counts(CountThreshold::new(5), [(true, 6), (false, n - 6)]);
            let rep = sim.measure_stabilization(&true, 50 * n * n, rng);
            (sim.effective_steps() as f64, rep.stabilized_at.expect("converges") as f64)
        });
        let eff: Vec<f64> = outcomes.iter().map(|&(e, _)| e).collect();
        let stab: Vec<f64> = outcomes.iter().map(|&(_, s)| s).collect();
        println!(
            "{:>12} {:>6} {:>12} {:>11} {:>8} {:>11}",
            "count-to-5",
            n,
            fmt((50 * n * n) as f64),
            fmt(mean(&eff)),
            fmt(mean(&eff) / n as f64),
            fmt(mean(&stab)),
        );
    }
    println!();
    for &n in n_list {
        let trials = if pp_bench::smoke() { 3 } else { 20 };
        let outcomes = Ensemble::new(trials, 0).legacy_offset_seeds().map(|_trial, rng| {
            let mut sim =
                Simulation::from_counts(majority(), [(0usize, n / 2 - 1), (1usize, n / 2 + 1)]);
            let rep = sim.measure_stabilization(&true, 50 * n * n, rng);
            (sim.effective_steps() as f64, rep.stabilized_at.expect("converges") as f64)
        });
        let eff: Vec<f64> = outcomes.iter().map(|&(e, _)| e).collect();
        let stab: Vec<f64> = outcomes.iter().map(|&(_, s)| s).collect();
        println!(
            "{:>12} {:>6} {:>12} {:>11} {:>8} {:>11}",
            "majority",
            n,
            fmt((50 * n * n) as f64),
            fmt(mean(&eff)),
            fmt(mean(&eff) / n as f64),
            fmt(mean(&stab)),
        );
    }

    println!("\npaper shape: count-to-5's effective interactions are O(n) — finite energy");
    println!("per agent — while the leader-based majority keeps spending energy on");
    println!("output redistribution encounters long after the verdict is fixed\n");
}
