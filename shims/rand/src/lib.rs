//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace supplies the pieces of `rand` it actually uses as a local
//! path dependency: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! [`rngs::StdRng`], `gen_range` over integer and float ranges, and
//! `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of the real `rand`, so streams differ
//! from upstream `rand 0.8` for the same seed. Within this workspace that is
//! invisible: every experiment seeds its own RNG and only relies on
//! *reproducibility*, which this implementation provides (same seed, same
//! stream, forever, on every platform).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
///
/// Object-safe, mirroring `rand::RngCore` so samplers can take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given (non-empty) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision — the
    /// `rng.gen::<f64>()` of the real `rand`. One word of the stream per
    /// call, so inversion samplers cost exactly one RNG draw.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which [`Rng::gen_range`] can sample a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random `u64` to the unit interval `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `0..width` (`width > 0`) without modulo bias.
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    // Rejection zone: the largest multiple of `width` below 2^64.
    let zone = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Full-width integer range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, width as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating-point rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start
            + (self.end - self.start) * (unit_f64(rng.next_u64()) as f32);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded through SplitMix64 as recommended by the xoshiro authors, so
    /// any `u64` seed (including 0) yields a well-mixed state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four state words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

/// `rand::prelude`-style glob import: the traits and the standard generator.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 6];
        let trials = 120_000;
        for _ in 0..trials {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        let expect = trials as f64 / 6.0;
        for &c in &counts {
            let ratio = f64::from(c) / expect;
            assert!((0.93..1.07).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 100_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "gen_f64 out of [0,1): {v}");
            sum += v;
        }
        let mean = sum / f64::from(trials);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u32..4);
        assert!(v < 4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
