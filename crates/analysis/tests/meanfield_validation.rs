//! The mean-field ODE against the batched count engine at overlapping
//! scale: at `n = 10⁴` the fluid limit must track one finite-`n`
//! trajectory within a total-variation budget for every protocol whose
//! dynamics stay macroscopic — and must *refuse* to answer for the one
//! that doesn't (leader election's `1/n`-rate bottleneck).
//!
//! CI runs this file as a named step (`meanfield: ODE vs batched engine`);
//! the e24 bench repeats the comparison at `n = 10⁶` with the tighter
//! 0.05 budget from the acceptance bar.

use pp_analysis::meanfield::{Divergence, MeanField, MeanFieldOptions};
use pp_core::observe::TrajectoryProbe;
use pp_core::{seeded_rng, FnProtocol, Protocol, Simulation};
use pp_protocols::{ApproximateMajority, LeaderElection, PhaseClock};

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Runs the batched engine for `horizon` parallel time under a trajectory
/// probe and returns the ODE-vs-engine total-variation distance.
fn tv_ode_vs_engine<P: Protocol>(
    protocol: P,
    inputs: impl IntoIterator<Item = (P::Input, u64)>,
    horizon: f64,
    seed: u64,
) -> (f64, Vec<Divergence>) {
    let mut sim = Simulation::from_counts(protocol, inputs);
    let n = sim.population();
    let mf = MeanField::from_simulation(&mut sim);
    let opts = MeanFieldOptions { horizon, ..Default::default() };
    let run = mf.run(&opts);
    let mut probed = sim.with_probe(TrajectoryProbe::new());
    let mut rng = seeded_rng(seed);
    probed.run_batched((horizon * n as f64) as u64, &mut rng);
    (run.tv_against(probed.probe().samples()), run.divergences().to_vec())
}

#[test]
fn epidemic_tracks_the_ode_at_n_1e4() {
    // 1% infected: macroscopic, so the logistic fluid limit is trustworthy.
    let n = 10_000u64;
    let (tv, flags) = tv_ode_vs_engine(epidemic(), [(true, n / 100), (false, n - n / 100)], 15.0, 11);
    assert!(flags.is_empty(), "macroscopic epidemic wrongly flagged: {flags:?}");
    assert!(tv < 0.10, "epidemic ODE vs engine TV {tv} at n = 10⁴");
}

#[test]
fn approximate_majority_tracks_the_ode_at_n_1e4() {
    let n = 10_000u64;
    let (tv, flags) =
        tv_ode_vs_engine(ApproximateMajority, [(true, 6 * n / 10), (false, 4 * n / 10)], 30.0, 12);
    assert!(flags.is_empty(), "60/40 approximate majority wrongly flagged: {flags:?}");
    assert!(tv < 0.10, "approximate-majority ODE vs engine TV {tv} at n = 10⁴");
}

#[test]
fn phase_clock_tracks_the_ode_at_n_1e4() {
    // From all-hands-at-hour-0 the clock is a traveling pulse that never
    // quiesces; compare over a fixed horizon instead of to stabilization.
    // The pulse position is diffusive in the engine, so the budget is
    // looser than for the absorbing protocols.
    let n = 10_000u64;
    let (tv, flags) = tv_ode_vs_engine(PhaseClock::new(16), [((), n)], 8.0, 13);
    assert!(flags.is_empty(), "phase clock wrongly flagged: {flags:?}");
    assert!(tv < 0.20, "phase-clock ODE vs engine TV {tv} at n = 10⁴");
}

#[test]
fn leader_election_is_flagged_and_refuses_a_prediction() {
    // The fluid limit predicts an n-independent 1/(1+τ) leader decay; the
    // finite-n law needs Θ(n) parallel time for the last duel. The
    // detector must flag the vanishing×vanishing bottleneck and the run
    // must refuse to emit a stabilization-time prediction.
    let mut sim = Simulation::from_counts(LeaderElection, [((), 10_000u64)]);
    let run = MeanField::from_simulation(&mut sim).run(&MeanFieldOptions::default());
    let flags = run.divergences();
    assert!(
        flags.iter().any(|d| matches!(d, Divergence::VanishingRateBottleneck { .. })),
        "leader election must carry the bottleneck flag, got {flags:?}"
    );
    assert_eq!(run.predicted_stabilization_time(1e-3), None);
}

#[test]
fn microscopic_seed_is_flagged_at_n_1e4() {
    // One infected agent in 10⁴: the front launch time is a random Θ(1)
    // offset (Gumbel-like), which the deterministic limit cannot carry.
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1u64), (false, 9_999)]);
    let run = MeanField::from_simulation(&mut sim).run(&MeanFieldOptions::default());
    assert!(
        run.divergences()
            .iter()
            .any(|d| matches!(d, Divergence::MicroscopicInitialFraction { .. })),
        "single-seed epidemic must be flagged, got {:?}",
        run.divergences()
    );
}
