//! Protocol-as-a-service: a deterministic population-protocol simulation
//! server behind the unified spec-driven run API.
//!
//! Angluin et al. (PODC 2004) model computation by *passively mobile*
//! finite-state sensors — the device fleet is the computer, and a query
//! ("do at least 5 birds have elevated temperature?") is a Presburger
//! predicate compiled to a protocol and run over a population. This crate
//! packages that pipeline as a service:
//!
//! - [`registry`] — the named protocols a spec can reference directly;
//! - [`api`] — [`execute`]: `RunSpec` in, `pp-run/v1` report
//!   out, with a keyed [`CompiledCache`] reusing
//!   compiled Presburger products, drift fields, and interaction graphs
//!   across requests;
//! - [`http`] — a zero-dependency HTTP/1.1 front end (hand-rolled parser,
//!   fixed thread-pool accept loop) exposing `/v1/run`, `/v1/stream`,
//!   `/v1/protocols`, `/v1/cache`, and `/healthz`;
//! - [`client`] — a matching minimal client for tests and benches.
//!
//! Determinism is the contract: a seeded request returns byte-identical
//! report bodies across server restarts, worker counts, and cache states.
//! Anything timing-dependent travels in HTTP headers (`X-PP-Cache`,
//! `X-PP-Elapsed-Us`), never in bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod registry;

pub use api::{execute, execute_stream, CacheStats, CacheStatus, CompiledCache, ExecOptions};
pub use http::{serve, Server, ServerConfig};
pub use registry::{resolve_named, NamedProtocol};
