//! Pairwise leader election — "the usual leader-election protocol"
//! (Theorem 2's proof), the fuse lit under every construction in §4–§6.
//!
//! Every agent starts as a leader; when two leaders meet, the responder
//! demotes itself. The number of leaders decreases monotonically to one and
//! can never reach zero. §6 computes the expected number of interactions to
//! reach a unique leader under random pairing as exactly `(n−1)²`
//! (reproduced by experiment E1).

use pp_core::Protocol;

/// The canonical leader-election protocol.
///
/// Input is `()` (every agent starts identically); output is the leader
/// bit. This protocol does not compute a predicate under the all-agents
/// convention — it stabilizes with exactly one agent outputting `true`.
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::LeaderElection;
///
/// let mut sim = Simulation::from_counts(LeaderElection, [((), 50)]);
/// let mut rng = seeded_rng(6);
/// let t = LeaderElection::run_until_unique(&mut sim, 1_000_000, &mut rng).unwrap();
/// assert!(t > 0);
/// assert_eq!(sim.count_of_state(&true), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeaderElection;

impl LeaderElection {
    /// Runs `sim` until exactly one leader remains, returning the number of
    /// interactions taken, or `None` if `max_steps` elapse first.
    pub fn run_until_unique<Pr: pp_core::Probe>(
        sim: &mut pp_core::Simulation<Self, Pr>,
        max_steps: u64,
        rng: &mut impl rand::Rng,
    ) -> Option<u64> {
        let start = sim.steps();
        while sim.count_of_state(&true) > 1 {
            if sim.steps() - start >= max_steps {
                return None;
            }
            sim.step(rng);
        }
        Some(sim.steps() - start)
    }
}

impl Protocol for LeaderElection {
    /// `true` = leader.
    type State = bool;
    type Input = ();
    type Output = bool;

    fn input(&self, _: &()) -> bool {
        true
    }

    fn output(&self, &q: &bool) -> bool {
        q
    }

    fn delta(&self, &p: &bool, &q: &bool) -> (bool, bool) {
        if p && q {
            (true, false)
        } else {
            (p, q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn leaders_merge_pairwise() {
        let p = LeaderElection;
        assert_eq!(p.delta(&true, &true), (true, false));
        assert_eq!(p.delta(&true, &false), (true, false));
        assert_eq!(p.delta(&false, &true), (false, true));
        assert_eq!(p.delta(&false, &false), (false, false));
    }

    #[test]
    fn exactly_one_leader_survives() {
        let mut sim = Simulation::from_counts(LeaderElection, [((), 100)]);
        let mut rng = seeded_rng(31);
        let t = LeaderElection::run_until_unique(&mut sim, 10_000_000, &mut rng);
        assert!(t.is_some());
        assert_eq!(sim.count_of_state(&true), 1);
        assert_eq!(sim.count_of_state(&false), 99);
        // Leadership is then stable.
        sim.run(10_000, &mut rng);
        assert_eq!(sim.count_of_state(&true), 1);
    }

    #[test]
    fn expected_time_near_n_minus_1_squared() {
        // §6: E[interactions to unique leader] = (n−1)² exactly.
        let n = 32u64;
        let trials = 200;
        let mut total = 0u64;
        for seed in 0..trials {
            let mut sim = Simulation::from_counts(LeaderElection, [((), n)]);
            let mut rng = seeded_rng(seed);
            total +=
                LeaderElection::run_until_unique(&mut sim, 100_000_000, &mut rng).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let expect = ((n - 1) * (n - 1)) as f64;
        let ratio = mean / expect;
        assert!(
            (0.85..1.15).contains(&ratio),
            "mean {mean:.1} vs expected {expect} (ratio {ratio:.3})"
        );
    }
}
