//! E17 (robustness, beyond the paper) — recovery time vs corruption
//! fraction under the `pp_core::faults` transient-corruption model.
//!
//! §8 of the paper raises fault tolerance as an open direction; this
//! experiment measures it. A population stabilizes, an adversary rewrites
//! a fraction φ of the agents, and we record how many further interactions
//! the protocol needs to make every output correct again (the
//! `RecoveryReport` of `run_with_faults`):
//!
//! * **approximate majority** (3-state, no conserved tally) recovers from
//!   any corruption fraction below its margin, with recovery time growing
//!   with φ;
//! * **exact majority** (Lemma 5, verdict carried by a conserved sum)
//!   recovers only while the corrupted sum still has the original sign —
//!   past that, it stabilizes to the wrong answer and the recovery rate
//!   collapses to zero.

use pp_bench::{fmt, mean, print_header};
use pp_core::faults::TransientCorruption;
use pp_core::{seeded_rng, Protocol, Simulation};
use pp_protocols::ext::{ApproximateMajority, Opinion};
use pp_protocols::majority;

const N: u64 = 200;
const ONES: u64 = 140; // 70/30 split: wide margin, stable output `true`
const TRIALS: u64 = 20;

fn main() {
    println!("\nE17: recovery time vs corruption fraction (n = {N}, {ONES} one-votes)");
    println!("burst: ⌈φn⌉ agents rewritten adversarially after stabilization\n");
    print_header(
        &["phi", "approx_recov", "approx_time", "exact_recov", "exact_time"],
        &[5, 12, 12, 11, 12],
    );

    for phi in [0.05f64, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let k = (phi * N as f64).ceil() as u64;

        // 3-state approximate majority: corrupt to Blank (the recruitable
        // neutral state — an adversary erasing memories).
        let (ar, at) = sweep(
            || Simulation::from_counts(ApproximateMajority, [(true, ONES), (false, N - ONES)]),
            TransientCorruption::adversarial_at(40_000, k, Opinion::Blank),
            400_000,
        );

        // Exact Lemma 5 majority: corrupt to fresh zero-votes (the
        // adversary stuffing ballots for the minority).
        let (er, et) = sweep(
            || Simulation::from_counts(majority(), [(1usize, ONES), (0usize, N - ONES)]),
            TransientCorruption::adversarial_at(300_000, k, majority().input(&0usize)),
            4_000_000,
        );

        println!(
            "{:>5} {:>12} {:>12} {:>11} {:>12}",
            fmt(phi),
            fmt(ar),
            fmt(at),
            fmt(er),
            fmt(et)
        );
    }

    println!("\nreading: approx recovers across the sweep (time grows with phi);");
    println!("exact majority recovers only while the corrupted sum keeps the");
    println!("original sign — each post-stabilization corruption adds +1, so the");
    println!("verdict flips once ceil(phi*n) exceeds the margin {m} (phi = {f});", m = 2 * ONES - N, f = fmt((2 * ONES - N) as f64 / N as f64));
    println!("past that it stabilizes wrong: recovery rate 0, no recovery time\n");
}

/// Runs `TRIALS` faulted runs; returns (recovery rate, mean recovery time
/// over the recovering trials).
fn sweep<P, F>(
    make: F,
    plan: TransientCorruption<P::State>,
    horizon: u64,
) -> (f64, f64)
where
    P: Protocol<Output = bool>,
    P::State: Clone,
    F: Fn() -> Simulation<P>,
{
    let mut recovered = 0u64;
    let mut times = Vec::new();
    for seed in 0..TRIALS {
        let mut sim = make();
        let mut plan = plan.clone();
        let mut rng = seeded_rng(seed);
        let rep = sim.run_with_faults(&mut plan, &true, horizon, &mut rng);
        let last = rep.final_segment();
        if last.recovered() {
            recovered += 1;
            times.push(last.recovery_time().unwrap() as f64);
        }
    }
    (recovered as f64 / TRIALS as f64, mean(&times))
}
