//! The unified run entry point: [`execute`]`(spec) -> `[`RunReport`].
//!
//! This is the layer the HTTP server, the `pp` CLI, and the benches all
//! route through. It resolves a [`RunSpec`]'s protocol reference (registry
//! name or Presburger formula), materializes its topology, and enters the
//! generic engine dispatchers in `pp_core::spec` — so every front end gets
//! the same semantics, the same validation, and the same byte-reproducible
//! reports.
//!
//! # The cache
//!
//! [`CompiledCache`] is the server's **only** mutable state, and it is
//! purely memoization: compiled Presburger products (Cooper QE is the
//! expensive step), mean-field drift fields, and interaction graphs, each
//! behind a deterministic key. A cache hit returns an artifact
//! *interchangeable* with a cold compile's, so cached and uncached
//! responses are byte-identical — which is why the server can hold no
//! other mutable state and still honor the reproducibility guarantee.
//! Hit/miss status travels in HTTP headers, never in bodies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pp_analysis::{DriftCache, MeanFieldOptions};
use pp_core::spec::{
    check_population, counts_by_symbol, index_population, run_agents, run_counts, EngineSel,
    JsonValue, ProtocolRef, RunOutcome, RunReport, RunSpec, SingleRun, SpecError,
    StopCondition, TopologySpec,
};
use pp_core::{seeded_rng, JsonlSink, Protocol, Simulation, StateId};
use pp_presburger::CompiledSpec;
use pp_protocols::GraphSimulator;

use crate::registry::{self, NamedProtocol};

/// Execution limits (the request-independent server policy).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Largest population a spec may materialize (the HTTP 413 bound).
    /// A [`MeanFieldSpec`](pp_core::MeanFieldSpec) `population` override
    /// is exempt — it changes an ODE parameter, not an allocation.
    pub max_population: u64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self { max_population: 10_000_000 }
    }
}

/// Whether a request was served from the compiled-protocol cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Formula request served from cache.
    Hit,
    /// Formula request compiled cold (and cached for the next request).
    Miss,
    /// Named-protocol request — nothing to compile.
    None,
}

impl CacheStatus {
    /// The `X-PP-Cache` header value.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::None => "none",
        }
    }
}

/// Cache statistics (the `GET /v1/cache` body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Compiled Presburger products held.
    pub compiled: usize,
    /// Mean-field drift fields held.
    pub drift: usize,
    /// Interaction graphs held (edge-list + CSR).
    pub graphs: usize,
    /// Compile-cache hits since start.
    pub hits: u64,
    /// Compile-cache misses since start.
    pub misses: u64,
}

impl CacheStats {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"pp-cache/v1\",\"compiled\":{},\"drift\":{},\"graphs\":{},\"hits\":{},\"misses\":{}}}",
            self.compiled, self.drift, self.graphs, self.hits, self.misses
        )
    }
}

/// Keyed store of compiled artifacts reused across requests: Presburger
/// products, drift fields, interaction graphs. Shared by every server
/// worker behind `Arc`; all interior mutability is memoization (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct CompiledCache {
    compiled: Mutex<HashMap<String, Arc<CompiledSpec>>>,
    drift: Mutex<DriftCache>,
    graphs: Mutex<HashMap<String, Arc<pp_graphs::InteractionGraph>>>,
    csr: Mutex<HashMap<String, Arc<pp_graphs::CsrGraph>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A lock acquisition that survives a poisoned peer: cache contents are
/// always internally consistent (inserts are atomic under the lock), so a
/// panic elsewhere must not take the cache down with it.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CompiledCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled product for `src`, compiling on first use.
    ///
    /// # Errors
    ///
    /// [`SpecError::Compile`] when parsing or compilation fails.
    pub fn compiled(&self, src: &str) -> Result<(Arc<CompiledSpec>, CacheStatus), SpecError> {
        let key = pp_presburger::spec_key(pp_presburger::BACKEND_COOPER_PRODUCT, src);
        if let Some(c) = lock(&self.compiled).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(c), CacheStatus::Hit));
        }
        // Compile outside the lock: Cooper QE can be slow and must not
        // serialize unrelated requests. Two racers compile twice; the
        // artifacts are interchangeable, last insert wins.
        let compiled = Arc::new(
            pp_presburger::compile_spec(src)
                .map_err(|e| SpecError::Compile(e.to_string()))?,
        );
        lock(&self.compiled).insert(key, Arc::clone(&compiled));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((compiled, CacheStatus::Miss))
    }

    fn graph(
        &self,
        key: &str,
        build: impl FnOnce() -> pp_graphs::InteractionGraph,
    ) -> Arc<pp_graphs::InteractionGraph> {
        if let Some(g) = lock(&self.graphs).get(key) {
            return Arc::clone(g);
        }
        let g = Arc::new(build());
        lock(&self.graphs).insert(key.to_string(), Arc::clone(&g));
        g
    }

    fn csr(
        &self,
        key: &str,
        build: impl FnOnce() -> pp_graphs::CsrGraph,
    ) -> Arc<pp_graphs::CsrGraph> {
        if let Some(g) = lock(&self.csr).get(key) {
            return Arc::clone(g);
        }
        let g = Arc::new(build());
        lock(&self.csr).insert(key.to_string(), Arc::clone(&g));
        g
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiled: lock(&self.compiled).len(),
            drift: lock(&self.drift).len(),
            graphs: lock(&self.graphs).len() + lock(&self.csr).len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Runs a spec end to end: resolve, validate, dispatch, report.
///
/// The returned report's [`to_json`](RunReport::to_json) bytes depend only
/// on the spec (protocol, population order, seed, engine, trials, horizon
/// — never on cache state, thread count, or timing).
///
/// # Errors
///
/// A structured [`SpecError`] for every bad request; this function does
/// not panic on untrusted input.
pub fn execute(
    spec: &RunSpec,
    cache: &CompiledCache,
    opts: &ExecOptions,
) -> Result<(RunReport, CacheStatus), SpecError> {
    if spec.probe.jsonl {
        return Err(SpecError::Unsupported(
            "probe=jsonl streams; POST the spec to /v1/stream instead".to_string(),
        ));
    }
    execute_inner::<std::io::Sink>(spec, cache, opts, StreamSink::None)
}

/// Runs a single-trial count-engine spec with a [`JsonlSink`] attached,
/// streaming interaction events as JSON Lines into `out`, followed by the
/// sink's summary line and the final `pp-run/v1` report line.
///
/// # Errors
///
/// Structured [`SpecError`]s; ensembles, the agents/mean-field engines,
/// and fault plans are [`SpecError::Unsupported`] here.
pub fn execute_stream<W: std::io::Write>(
    spec: &RunSpec,
    cache: &CompiledCache,
    opts: &ExecOptions,
    out: W,
) -> Result<CacheStatus, SpecError> {
    if spec.trials != 1 {
        return Err(SpecError::Unsupported(
            "streaming serves single-trial runs; drop \"trials\"".to_string(),
        ));
    }
    if !matches!(spec.engine, EngineSel::Sequential | EngineSel::Batched) {
        return Err(SpecError::Unsupported(
            "streaming runs on the count engines (sequential or batched)".to_string(),
        ));
    }
    if spec.faults.is_some() {
        return Err(SpecError::Unsupported(
            "streaming does not take a fault plan".to_string(),
        ));
    }
    let stride = spec.probe.stride.max(1);
    let mut sink = Some(JsonlSink::with_stride(out, stride));
    let (report, status) = execute_inner(spec, cache, opts, StreamSink::Jsonl(&mut sink))?;
    // `execute_inner` ran the simulation through the sink and put it back
    // in the slot; recover the writer and append the final report line.
    let mut w = match sink {
        Some(s) => s.into_inner(),
        None => return Err(SpecError::Internal("stream sink was consumed".to_string())),
    };
    writeln!(w, "{}", report.to_json())
        .map_err(|e| SpecError::Internal(format!("stream write failed: {e}")))?;
    let _ = w.flush();
    Ok(status)
}

/// How a run routes its probe events.
enum StreamSink<'a, W: std::io::Write> {
    /// No probe: the plain [`execute`] path.
    None,
    /// Stream through a JSONL sink. The sink is taken from the slot and
    /// put back afterwards so the caller can recover the writer.
    Jsonl(&'a mut Option<JsonlSink<W>>),
}

fn execute_inner<W: std::io::Write>(
    spec: &RunSpec,
    cache: &CompiledCache,
    opts: &ExecOptions,
    sink: StreamSink<'_, W>,
) -> Result<(RunReport, CacheStatus), SpecError> {
    check_population(spec, opts.max_population)?;
    match &spec.protocol {
        ProtocolRef::Name { name, params } => {
            let named = registry::resolve_named(name, params)?;
            let key = named.key();
            let symbols = named.symbols();
            let gt = |c: &[u64]| named.ground_truth(c);
            let report = match &named {
                NamedProtocol::Majority(p) => {
                    drive(spec, cache, p.clone(), symbols, key, gt, |i| i, sink)?
                }
                NamedProtocol::Parity(p) => {
                    drive(spec, cache, p.clone(), symbols, key, gt, |i| i, sink)?
                }
                NamedProtocol::ApproximateMajority(p) => {
                    drive(spec, cache, *p, symbols, key, gt, |i| i == 1, sink)?
                }
                NamedProtocol::CountTo(p) => {
                    drive(spec, cache, *p, symbols, key, gt, |i| i == 1, sink)?
                }
            };
            Ok((report, CacheStatus::None))
        }
        ProtocolRef::Formula(src) => {
            let (compiled, status) = cache.compiled(src)?;
            let report = drive(
                spec,
                cache,
                compiled.protocol.clone(),
                compiled.symbols.clone(),
                compiled.key.clone(),
                |c| compiled.protocol.eval(c),
                |i| i,
                sink,
            )?;
            Ok((report, status))
        }
    }
}

/// The generic engine router: everything after protocol resolution.
#[allow(clippy::too_many_arguments)]
fn drive<P, FI, FG, W>(
    spec: &RunSpec,
    cache: &CompiledCache,
    protocol: P,
    symbols: Vec<String>,
    key: String,
    ground_truth: FG,
    to_input: FI,
    sink: StreamSink<'_, W>,
) -> Result<RunReport, SpecError>
where
    P: Protocol<Output = bool> + Clone + Send + Sync,
    P::Input: Sync,
    FI: Fn(usize) -> P::Input + Copy,
    FG: Fn(&[u64]) -> bool,
    W: std::io::Write,
{
    let indexed = index_population(&spec.population, &symbols)?;
    let counts = counts_by_symbol(&indexed, symbols.len());
    let expected = ground_truth(&counts);
    // Spec order is semantic: it fixes the state-interning order and with
    // it the RNG stream, exactly like calling the engines directly.
    let pairs: Vec<(P::Input, u64)> =
        indexed.iter().map(|&(i, c)| (to_input(i), c)).collect();

    let (outcome, edges) = match spec.engine {
        EngineSel::Sequential | EngineSel::Batched => {
            let outcome = match sink {
                StreamSink::None => run_counts(spec, &protocol, &pairs, &expected)?,
                StreamSink::Jsonl(slot) => {
                    let taken = slot
                        .take()
                        .ok_or_else(|| SpecError::Internal("sink already taken".to_string()))?;
                    let (outcome, returned) =
                        run_streamed(spec, &protocol, &pairs, &expected, taken)?;
                    *slot = Some(returned);
                    outcome
                }
            };
            (outcome, None)
        }
        EngineSel::Agents => {
            if matches!(sink, StreamSink::Jsonl(_)) {
                return Err(SpecError::Unsupported(
                    "streaming runs on the count engines".to_string(),
                ));
            }
            run_on_topology(spec, cache, &protocol, &indexed, &expected, to_input)?
        }
        EngineSel::MeanField => {
            if matches!(sink, StreamSink::Jsonl(_)) {
                return Err(SpecError::Unsupported(
                    "streaming runs on the count engines".to_string(),
                ));
            }
            (mean_field_outcome(spec, cache, &protocol, &pairs, &key)?, None)
        }
    };

    Ok(RunReport {
        protocol_key: key,
        engine: spec.engine,
        symbols,
        counts,
        population: spec.population_size(),
        ground_truth: Some(expected),
        edges,
        outcome,
        spec: spec.to_value(),
    })
}

/// Single-trial count-engine run with a [`JsonlSink`] attached — the
/// probe-carrying twin of the `trials == 1` arm of [`run_counts`], field
/// for field. Returns the sink so the caller can recover the writer.
fn run_streamed<P, W>(
    spec: &RunSpec,
    protocol: &P,
    pairs: &[(P::Input, u64)],
    expected: &bool,
    sink: JsonlSink<W>,
) -> Result<(RunOutcome, JsonlSink<W>), SpecError>
where
    P: Protocol<Output = bool> + Clone,
    W: std::io::Write,
{
    let horizon = spec.effective_horizon();
    let batched = matches!(spec.engine, EngineSel::Batched);
    let mut rng = seeded_rng(spec.seed);
    let mut sim =
        Simulation::from_counts(protocol.clone(), pairs.iter().cloned()).with_probe(sink);
    let single = match spec.stop {
        StopCondition::Stabilization => {
            let rep = if batched {
                sim.measure_stabilization_batched(expected, horizon, &mut rng)
            } else {
                sim.measure_stabilization(expected, horizon, &mut rng)
            };
            SingleRun {
                stabilized_at: rep.stabilized_at,
                silent_tail: rep.silent_tail(),
                horizon: rep.horizon,
                steps: sim.steps(),
                effective_steps: Some(sim.effective_steps()),
                outputs: outputs_of(&sim),
            }
        }
        StopCondition::Consensus => {
            if batched {
                return Err(SpecError::Unsupported(
                    "stop=\"consensus\" runs on the sequential engine".to_string(),
                ));
            }
            let at = sim.run_until_consensus(expected, horizon, &mut rng);
            SingleRun {
                stabilized_at: at,
                silent_tail: 0,
                horizon,
                steps: sim.steps(),
                effective_steps: Some(sim.effective_steps()),
                outputs: outputs_of(&sim),
            }
        }
        StopCondition::FixedSteps => {
            if batched {
                sim.run_batched(horizon, &mut rng);
            } else {
                sim.run(horizon, &mut rng);
            }
            SingleRun {
                stabilized_at: None,
                silent_tail: 0,
                horizon,
                steps: sim.steps(),
                effective_steps: Some(sim.effective_steps()),
                outputs: outputs_of(&sim),
            }
        }
    };
    Ok((RunOutcome::Single(single), sim.into_probe()))
}

fn outputs_of<P, Pr, Tr>(sim: &Simulation<P, Pr, Tr>) -> Vec<(String, u64)>
where
    P: Protocol + Clone,
    Pr: pp_core::Probe,
    Tr: pp_core::Tracer,
{
    sim.output_histogram().iter().map(|(o, c)| (format!("{o:?}"), *c)).collect()
}

/// The agents engine: materialize the topology (cached), wrap the protocol
/// in the Theorem 7 simulator `A′`, and dispatch.
fn run_on_topology<P, FI>(
    spec: &RunSpec,
    cache: &CompiledCache,
    protocol: &P,
    indexed: &[(usize, u64)],
    expected: &bool,
    to_input: FI,
) -> Result<(RunOutcome, Option<u64>), SpecError>
where
    P: Protocol<Output = bool> + Clone + Send + Sync,
    P::Input: Sync,
    FI: Fn(usize) -> P::Input + Copy,
{
    let n64 = spec.population_size();
    // The Theorem 7 baton construction assumes n ≥ 4; the paper covers
    // smaller populations by table lookup, which we don't implement.
    if n64 < 4 {
        return Err(SpecError::Unsupported(
            "the agents engine needs a population of at least 4 (Theorem 7)".to_string(),
        ));
    }
    let n = usize::try_from(n64)
        .map_err(|_| SpecError::Internal("population exceeds usize".to_string()))?;

    // Per-agent inputs in spec order (order is semantic, as for counts).
    let mut inputs: Vec<P::Input> = Vec::with_capacity(n);
    for &(sym, count) in indexed {
        for _ in 0..count {
            inputs.push(to_input(sym));
        }
    }

    let wrapped = GraphSimulator::new(protocol.clone());
    let topo = spec.topology.clone().unwrap_or(TopologySpec::Complete);
    match topo {
        TopologySpec::Complete
        | TopologySpec::Line
        | TopologySpec::Cycle
        | TopologySpec::Star
        | TopologySpec::Random { .. } => {
            let key = match &topo {
                TopologySpec::Random { p, graph_seed } => {
                    format!("random:p={p}:seed={graph_seed}:n={n}")
                }
                other => format!("{}:n={n}", other.kind()),
            };
            let graph = cache.graph(&key, || match &topo {
                TopologySpec::Complete => pp_graphs::complete(n),
                TopologySpec::Line => pp_graphs::undirected_line(n),
                TopologySpec::Cycle => pp_graphs::undirected_cycle(n),
                TopologySpec::Star => pp_graphs::star(n),
                TopologySpec::Random { p, graph_seed } => {
                    pp_graphs::erdos_renyi_connected(n, *p, &mut seeded_rng(*graph_seed))
                }
                _ => unreachable!("arm filtered above"),
            });
            let edges = graph.edge_count() as u64;
            let g = Arc::clone(&graph);
            let outcome =
                run_agents(spec, &wrapped, &inputs, expected, move || g.scheduler())?;
            Ok((outcome, Some(edges)))
        }
        TopologySpec::Torus2d { w, h } => {
            let (w, h) = (w as usize, h as usize);
            if w * h != n {
                return Err(SpecError::BadField {
                    field: "topology".to_string(),
                    detail: format!("torus2d {w}x{h} needs population {}, got {n}", w * h),
                });
            }
            let graph =
                cache.csr(&format!("torus2d:{w}x{h}"), || pp_graphs::torus2d_csr(w, h));
            let edges = graph.edge_count() as u64;
            let g = Arc::clone(&graph);
            let outcome =
                run_agents(spec, &wrapped, &inputs, expected, move || g.scheduler())?;
            Ok((outcome, Some(edges)))
        }
        TopologySpec::Torus3d { w, h, d } => {
            let (w, h, d) = (w as usize, h as usize, d as usize);
            if w * h * d != n {
                return Err(SpecError::BadField {
                    field: "topology".to_string(),
                    detail: format!(
                        "torus3d {w}x{h}x{d} needs population {}, got {n}",
                        w * h * d
                    ),
                });
            }
            let graph = cache
                .csr(&format!("torus3d:{w}x{h}x{d}"), || pp_graphs::torus3d_csr(w, h, d));
            let edges = graph.edge_count() as u64;
            let g = Arc::clone(&graph);
            let outcome =
                run_agents(spec, &wrapped, &inputs, expected, move || g.scheduler())?;
            Ok((outcome, Some(edges)))
        }
    }
}

/// The mean-field fast path: derive (or fetch) the drift field, integrate
/// the ODE, and package the prediction as [`RunOutcome::External`].
fn mean_field_outcome<P>(
    spec: &RunSpec,
    cache: &CompiledCache,
    protocol: &P,
    pairs: &[(P::Input, u64)],
    key: &str,
) -> Result<RunOutcome, SpecError>
where
    P: Protocol + Clone,
{
    if spec.trials != 1 {
        return Err(SpecError::Unsupported(
            "mean-field is deterministic; trials must be 1".to_string(),
        ));
    }
    if spec.faults.is_some() {
        return Err(SpecError::Unsupported(
            "mean-field takes no fault plan".to_string(),
        ));
    }
    let mf = spec.mean_field.clone().unwrap_or_default();
    let mut sim = Simulation::from_counts(protocol.clone(), pairs.iter().cloned());
    let n = sim.population();
    let support: Vec<StateId> = sim.config().support().map(|(s, _)| s).collect();
    // The field depends on the δ-closure of the supported states, so the
    // cache key is protocol identity + the support's state ids.
    let support_ids: Vec<u32> = support.iter().map(|s| s.0).collect();
    let drift_key = format!("{key}|support:{support_ids:?}");
    let field = lock(&cache.drift).get_or_derive(&drift_key, sim.runtime_mut(), &support);
    let init: Vec<f64> =
        sim.config().as_slice().iter().map(|&c| c as f64 / n as f64).collect();
    let population = mf.population.unwrap_or(n);
    let model = pp_analysis::MeanField::new(field, init, population);
    let run = model.run(&MeanFieldOptions {
        horizon: mf.horizon,
        diffusion: mf.diffusion,
        ..MeanFieldOptions::default()
    });

    let (accepted, rejected) = run.step_counts();
    let body = vec![
        ("population".to_string(), JsonValue::Num(population as f64)),
        (
            "terminal_fractions".to_string(),
            JsonValue::Arr(
                run.terminal_fractions().iter().map(|&f| JsonValue::Num(f)).collect(),
            ),
        ),
        ("terminal_time".to_string(), JsonValue::Num(run.terminal_time())),
        (
            "quiescent_at".to_string(),
            run.quiescent_at().map_or(JsonValue::Null, JsonValue::Num),
        ),
        (
            "predicted_stabilization_interactions".to_string(),
            run.predicted_stabilization_interactions(mf.eps)
                .map_or(JsonValue::Null, |k| JsonValue::Num(k as f64)),
        ),
        ("eps".to_string(), JsonValue::Num(mf.eps)),
        (
            "divergences".to_string(),
            JsonValue::Arr(
                run.divergences().iter().map(|d| JsonValue::Str(format!("{d:?}"))).collect(),
            ),
        ),
        ("accepted_steps".to_string(), JsonValue::Num(accepted as f64)),
        ("rejected_steps".to_string(), JsonValue::Num(rejected as f64)),
    ];
    Ok(RunOutcome::External {
        kind: "mean-field".to_string(),
        body: JsonValue::Obj(body),
    })
}
