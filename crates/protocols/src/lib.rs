//! A library of concrete population protocols from Angluin, Aspnes, Diamadi,
//! Fischer, Peralta, *"Computation in networks of passively mobile
//! finite-state sensors"* (PODC 2004).
//!
//! Every construction that appears in the paper is implemented here as a
//! reusable, tested protocol:
//!
//! * [`counting`] — the §1/§3.1 "flock of birds" count-to-`k` protocol and
//!   the ≥5% relative-threshold example;
//! * [`linear`] — the Lemma 5 building blocks: linear *threshold*
//!   (`Σ aᵢxᵢ < c`) and *remainder* (`Σ aᵢxᵢ ≡ c (mod m)`) predicates;
//! * [`majority`](mod@majority) — majority and parity as instances of [`linear`];
//! * [`function`] — the §3.4 `⌊m/k⌋` quotient/remainder *function* protocol
//!   under the integer output convention;
//! * [`leader`] — pairwise leader election (the fuse used throughout §4–§6);
//! * [`combine`] — the Lemma 3 parallel product with a Boolean output
//!   combiner, giving closure under all Boolean operations (Corollary 2);
//! * [`convention`] — the Theorem 2 transformation from the zero/non-zero
//!   output convention to the all-agents convention;
//! * [`graph_sim`] — the Theorem 7 / Fig. 1 baton simulator that runs any
//!   complete-graph protocol on an arbitrary weakly-connected interaction
//!   graph;
//! * [`oneway`] — the §8 one-way (observation-only) restriction, with the
//!   one-way count-to-`k` protocol;
//! * [`ext`] — protocols beyond the paper, for ablation experiments;
//! * [`phase_clock`] — the leaderless self-stabilizing phase clock
//!   (Kosowski–Uznański), recovering from any adversarial initialization;
//! * [`ranking`] — the coin-driven self-stabilizing ranking protocol,
//!   seating `n` anonymous agents on chairs `1..=n` from any start.
//!
//! # Example
//!
//! Is the number of `1` inputs congruent to `2 (mod 3)`?
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_protocols::linear::RemainderProtocol;
//!
//! // One input symbol with coefficient 1: predicate  x ≡ 2 (mod 3).
//! let p = RemainderProtocol::new(vec![1], 2, 3).unwrap();
//! let mut sim = Simulation::from_counts(p, [(0usize, 8)]);
//! let mut rng = seeded_rng(1);
//! let rep = sim.measure_stabilization(&true, 400_000, &mut rng); // 8 ≡ 2 (mod 3)
//! assert!(rep.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod convention;
pub mod counting;
pub mod ext;
pub mod function;
pub mod graph_sim;
pub mod leader;
pub mod linear;
pub mod majority;
pub mod oneway;
pub mod phase_clock;
pub mod ranking;

pub use combine::ProductProtocol;
pub use convention::AllAgentsAdapter;
pub use counting::{CountThreshold, PercentThreshold};
pub use ext::ApproximateMajority;
pub use function::QuotientProtocol;
pub use graph_sim::{Baton, GraphSimulator};
pub use leader::LeaderElection;
pub use linear::{LinState, LinearAtom, RemainderProtocol, ThresholdProtocol};
pub use majority::{majority, parity};
pub use oneway::{one_way_count_threshold, ObservationProtocol};
pub use phase_clock::PhaseClock;
pub use ranking::{RankState, Ranking};
