//! Deterministic multi-threaded Monte Carlo ensembles.
//!
//! Every quantitative claim in the paper — expected stabilization times,
//! error probabilities of the urn and counter constructions (§4–§5),
//! fault-recovery curves (§8) — is estimated by Monte Carlo over many
//! *independent* trials. A single trajectory is made fast by
//! [`crate::batch`]; this module makes the trial loop itself saturate all
//! cores without changing a single measured number.
//!
//! # Terminology: parallel *time* vs. parallel *threads*
//!
//! The paper's "parallel time" (§3.2) is a modelling notion: `n`
//! interactions count as one unit of time, and a *round* matches each agent
//! once (see
//! [`measure_stabilization_rounds`](crate::engine::Simulation::measure_stabilization_rounds)).
//! This module is about something entirely different — OS threads running
//! independent trials concurrently. The two never mix: each trial is still a
//! sequential trajectory with its own RNG.
//!
//! # Determinism
//!
//! An [`Ensemble`] derives the RNG of trial `i` from a master seed by
//! SplitMix64 splitting ([`split_seed`]), so the seed of a trial depends
//! only on `(master_seed, i)` — never on which thread ran it or in what
//! order. Trials are dispatched to a hand-rolled scoped [`std::thread`]
//! pool through an atomic work-stealing counter; results are reassembled
//! **by trial index** after join and all statistics are folded in trial
//! order. The resulting [`EnsembleReport`] is therefore *bit-identical*
//! regardless of thread count or scheduling order.
//!
//! Thread count resolution: forced to 1 when `PP_BENCH_SMOKE` is set (CI
//! smoke runs), else `PP_THREADS`, else [`std::thread::available_parallelism`].
//! An explicit [`with_threads`](Ensemble::with_threads) overrides all three.
//!
//! # Example
//!
//! ```
//! use pp_core::ensemble::Ensemble;
//! use pp_core::{FnProtocol, Simulation};
//!
//! let epidemic = FnProtocol::new(
//!     |&b: &bool| b,
//!     |&q: &bool| q,
//!     |&p: &bool, &q: &bool| (p || q, p || q),
//! );
//! let report = Ensemble::new(16, 7)
//!     .with_threads(2)
//!     .measure_stabilization(
//!         |_trial| Simulation::from_counts(epidemic.clone(), [(true, 1), (false, 63)]),
//!         &true,
//!         100_000,
//!     );
//! assert_eq!(report.converged(), 16);
//! // Same master seed, different thread count: byte-identical report.
//! let single = Ensemble::new(16, 7)
//!     .with_threads(1)
//!     .measure_stabilization(
//!         |_trial| Simulation::from_counts(epidemic.clone(), [(true, 1), (false, 63)]),
//!         &true,
//!         100_000,
//!     );
//! assert_eq!(report.to_json(), single.to_json());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::{AgentSimulation, Simulation};
use crate::faults::{FaultPlan, FaultRunReport};
use crate::observe::MergeProbe;
use crate::protocol::Protocol;
use crate::scheduler::PairSampler;
use crate::trace::{SpanKind, SpanStats, Tracer};

// ---------------------------------------------------------------------------
// Seed splitting
// ---------------------------------------------------------------------------

/// SplitMix64 increment (golden-ratio constant), identical to the one the
/// workspace `rand` shim uses for `seed_from_u64` state expansion.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output mix (finalizer).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of trial `trial` from `master` by SplitMix64 splitting:
/// the `trial`-th output of a SplitMix64 stream seeded with `master`.
///
/// Random access (no sequential stream advance) is what lets work-stealing
/// workers seed any trial independently, which in turn is what makes
/// ensemble results independent of scheduling order.
pub fn split_seed(master: u64, trial: u64) -> u64 {
    splitmix64_mix(master.wrapping_add(trial.wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// How an [`Ensemble`] derives per-trial seeds from the master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// SplitMix64 splitting ([`split_seed`]) — the default. Decorrelates
    /// trials even for adjacent master seeds; use for all new code.
    Split,
    /// `trial_seed = master_seed + trial` (wrapping). Reproduces the
    /// `seeded_rng(base + trial)` loops the benches used before the
    /// ensemble executor existed, so migrated experiments keep their
    /// checked-in statistics byte-for-byte.
    Offset,
}

// ---------------------------------------------------------------------------
// Ensemble executor
// ---------------------------------------------------------------------------

/// A deterministic multi-threaded Monte Carlo executor: `T` independent
/// trials of any [`Simulation`]/[`AgentSimulation`] workload, bit-identical
/// results at any thread count. See the [module docs](crate::ensemble).
#[derive(Debug, Clone)]
pub struct Ensemble {
    trials: u64,
    master_seed: u64,
    threads: usize,
    seed_mode: SeedMode,
}

/// The worker-thread count an [`Ensemble`] resolves by default: 1 under
/// `PP_BENCH_SMOKE`, else `PP_THREADS` if set to a positive integer, else
/// the host's available parallelism. Exposed so harnesses (e.g. the
/// `pp-bench/v1` report header) can record the effective thread count
/// without constructing an ensemble.
pub fn default_threads() -> usize {
    resolve_threads()
}

/// Resolves the default thread count from the environment; see the
/// [module docs](crate::ensemble#determinism).
fn resolve_threads() -> usize {
    if std::env::var("PP_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0") {
        return 1;
    }
    if let Ok(v) = std::env::var("PP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Ensemble {
    /// An ensemble of `trials` independent trials seeded from `master_seed`
    /// by SplitMix64 splitting, with the thread count resolved from the
    /// environment (`PP_BENCH_SMOKE` → 1, else `PP_THREADS`, else all
    /// available cores).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn new(trials: u64, master_seed: u64) -> Self {
        assert!(trials >= 1, "an ensemble needs at least one trial");
        Self { trials, master_seed, threads: resolve_threads(), seed_mode: SeedMode::Split }
    }

    /// Overrides the thread count (wins over the environment).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = threads;
        self
    }

    /// Selects the per-trial seed derivation; see [`SeedMode`].
    pub fn with_seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Shorthand for [`SeedMode::Offset`]: trial `i` gets
    /// `seeded_rng(master_seed + i)`, exactly like the pre-ensemble bench
    /// trial loops.
    pub fn legacy_offset_seeds(self) -> Self {
        self.with_seed_mode(SeedMode::Offset)
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Worker threads the next run will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The seed of trial `trial` under the configured [`SeedMode`].
    pub fn trial_seed(&self, trial: u64) -> u64 {
        match self.seed_mode {
            SeedMode::Split => split_seed(self.master_seed, trial),
            SeedMode::Offset => self.master_seed.wrapping_add(trial),
        }
    }

    /// A fresh RNG for trial `trial` — a pure function of
    /// `(master_seed, seed_mode, trial)`.
    pub fn trial_rng(&self, trial: u64) -> StdRng {
        StdRng::seed_from_u64(self.trial_seed(trial))
    }

    /// Runs `f` once per trial across the thread pool and returns the
    /// results **in trial order** — the primitive every other entry point
    /// builds on.
    ///
    /// `f` receives the trial index and that trial's private RNG. Trials
    /// are claimed from an atomic counter (work stealing), so threads stay
    /// busy even when trial durations vary wildly; determinism is
    /// unaffected because seeds depend only on the trial index and the
    /// output is reassembled by index after join.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64, &mut StdRng) -> R + Sync,
    {
        let trials = self.trials;
        let workers = self.threads.min(usize::try_from(trials).unwrap_or(usize::MAX));
        if workers <= 1 {
            return (0..trials)
                .map(|i| {
                    let mut rng = self.trial_rng(i);
                    f(i, &mut rng)
                })
                .collect();
        }
        let next = AtomicU64::new(0);
        let f = &f;
        let next = &next;
        let per_worker: Vec<Vec<(u64, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= trials {
                                break;
                            }
                            let mut rng = self.trial_rng(i);
                            out.push((i, f(i, &mut rng)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ensemble worker panicked"))
                .collect()
        });
        // Scatter back into trial order; every index in 0..trials was
        // claimed exactly once, so every slot fills.
        let mut slots: Vec<Option<R>> = (0..trials).map(|_| None).collect();
        for chunk in per_worker {
            for (i, r) in chunk {
                slots[usize::try_from(i).expect("trial index fits usize")] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("work-stealing counter covers every trial"))
            .collect()
    }

    /// [`map`](Self::map) with a per-trial [`Tracer`]: `make_tracer(trial)`
    /// builds each trial's tracer, which is tagged with the worker-thread
    /// index that claimed the trial ([`Tracer::tag_worker`]), wrapped in a
    /// [`Trial`](SpanKind::Trial) span around `f`, and returned — like the
    /// results — **in trial order**, so folding them sequentially (e.g.
    /// [`SpanStats::fold`]) yields the same report at any thread count for
    /// the same per-trial data.
    ///
    /// Tracers never touch the trial RNGs, so the results are identical to
    /// [`map`](Self::map) with the same `f`.
    pub fn map_traced<R, T, M, F>(&self, make_tracer: M, f: F) -> (Vec<R>, Vec<T>)
    where
        R: Send,
        T: Tracer + Send,
        M: Fn(u64) -> T + Sync,
        F: Fn(u64, &mut StdRng, &mut T) -> R + Sync,
    {
        let run_trial = |i: u64, worker: u32, rng: &mut StdRng| {
            let mut tracer = make_tracer(i);
            tracer.tag_worker(worker);
            tracer.enter(SpanKind::Trial);
            let r = f(i, rng, &mut tracer);
            tracer.exit(SpanKind::Trial, 1);
            (r, tracer)
        };
        let trials = self.trials;
        let workers = self.threads.min(usize::try_from(trials).unwrap_or(usize::MAX));
        if workers <= 1 {
            return (0..trials)
                .map(|i| {
                    let mut rng = self.trial_rng(i);
                    run_trial(i, 0, &mut rng)
                })
                .unzip();
        }
        let next = AtomicU64::new(0);
        let run_trial = &run_trial;
        let next = &next;
        let per_worker: Vec<Vec<(u64, (R, T))>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= trials {
                                break;
                            }
                            let mut rng = self.trial_rng(i);
                            out.push((i, run_trial(i, w as u32, &mut rng)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ensemble worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<(R, T)>> = (0..trials).map(|_| None).collect();
        for chunk in per_worker {
            for (i, r) in chunk {
                slots[usize::try_from(i).expect("trial index fits usize")] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("work-stealing counter covers every trial"))
            .unzip()
    }

    /// [`map_traced`](Self::map_traced) specialized to [`SpanStats`]: runs
    /// one accumulator per trial and folds them in trial order
    /// ([`SpanStats::fold`], which self-times the fold as a
    /// [`Fold`](SpanKind::Fold) span). The folded statistics are a pure
    /// function of the per-trial data and the trial order — independent of
    /// the worker-thread count.
    pub fn map_span_stats<R, F>(&self, f: F) -> (Vec<R>, SpanStats)
    where
        R: Send,
        F: Fn(u64, &mut StdRng, &mut SpanStats) -> R + Sync,
    {
        let (results, tracers) = self.map_traced(|_| SpanStats::new(), f);
        (results, SpanStats::fold(tracers))
    }

    /// Runs one scalar-outcome workload per trial (`None` = the trial did
    /// not converge) and folds the results into an [`EnsembleReport`].
    pub fn summarize<F>(&self, f: F) -> EnsembleReport
    where
        F: Fn(u64, &mut StdRng) -> Option<f64> + Sync,
    {
        EnsembleReport::from_records(self.map(f))
    }

    /// Ensemble of [`Simulation::run_until_consensus`]: per-trial record is
    /// the interaction count at first consensus.
    pub fn run_until_consensus<P, F>(
        &self,
        make: F,
        expected: &P::Output,
        max_steps: u64,
    ) -> EnsembleReport
    where
        P: Protocol,
        P::Output: Sync,
        F: Fn(u64) -> Simulation<P> + Sync,
    {
        self.summarize(|trial, rng| {
            let mut sim = make(trial);
            sim.run_until_consensus(expected, max_steps, rng).map(|t| t as f64)
        })
    }

    /// Ensemble of [`Simulation::measure_stabilization`]: per-trial record
    /// is `stabilized_at`.
    pub fn measure_stabilization<P, F>(
        &self,
        make: F,
        expected: &P::Output,
        horizon: u64,
    ) -> EnsembleReport
    where
        P: Protocol,
        P::Output: Sync,
        F: Fn(u64) -> Simulation<P> + Sync,
    {
        self.summarize(|trial, rng| {
            let mut sim = make(trial);
            sim.measure_stabilization(expected, horizon, rng).stabilized_at.map(|t| t as f64)
        })
    }

    /// Ensemble of
    /// [`Simulation::measure_stabilization_batched`](crate::batch) — the
    /// fast path for large populations; each trial runs the Θ(√n)-per-sweep
    /// batched engine on its own thread.
    ///
    /// **New call sites should route through the spec layer instead**:
    /// build a [`RunSpec`](crate::spec::RunSpec) with
    /// `engine: `[`EngineSel::Batched`](crate::spec::EngineSel) and
    /// dispatch it via [`run_counts`](crate::spec::run_counts) — the
    /// unified seam the server, the CLI, and the benches share. This
    /// method stays as the executor those dispatchers call into.
    pub fn measure_stabilization_batched<P, F>(
        &self,
        make: F,
        expected: &P::Output,
        horizon: u64,
    ) -> EnsembleReport
    where
        P: Protocol,
        P::Output: Sync,
        F: Fn(u64) -> Simulation<P> + Sync,
    {
        self.summarize(|trial, rng| {
            let mut sim = make(trial);
            sim.measure_stabilization_batched(expected, horizon, rng)
                .stabilized_at
                .map(|t| t as f64)
        })
    }

    /// Ensemble of [`AgentSimulation::measure_stabilization`] for
    /// graph-restricted or scripted workloads.
    ///
    /// **New call sites should route through the spec layer instead**:
    /// build a [`RunSpec`](crate::spec::RunSpec) with
    /// `engine: `[`EngineSel::Agents`](crate::spec::EngineSel) and
    /// dispatch it via [`run_agents`](crate::spec::run_agents), which
    /// materializes the topology and sampler exactly once per trial.
    /// This method stays as the executor those dispatchers call into.
    pub fn measure_stabilization_agents<P, S, F>(
        &self,
        make: F,
        expected: &P::Output,
        horizon: u64,
    ) -> EnsembleReport
    where
        P: Protocol,
        P::Output: Sync,
        S: PairSampler,
        F: Fn(u64) -> AgentSimulation<P, S> + Sync,
    {
        self.summarize(|trial, rng| {
            let mut sim = make(trial);
            sim.measure_stabilization(expected, horizon, rng).stabilized_at.map(|t| t as f64)
        })
    }

    /// Ensemble of [`Simulation::run_with_faults`](crate::faults): `make`
    /// builds the per-trial simulation *and* fault plan; per-burst
    /// [`RecoveryReport`](crate::faults::RecoveryReport)s aggregate across
    /// trials in the returned [`FaultEnsembleReport`].
    pub fn run_with_faults<P, Pl, F>(
        &self,
        make: F,
        expected: &P::Output,
        horizon: u64,
    ) -> FaultEnsembleReport
    where
        P: Protocol,
        P::Output: Sync,
        Pl: FaultPlan<P::State>,
        F: Fn(u64) -> (Simulation<P>, Pl) + Sync,
    {
        FaultEnsembleReport::from_runs(self.map(|trial, rng| {
            let (mut sim, mut plan) = make(trial);
            sim.run_with_faults(&mut plan, expected, horizon, rng)
        }))
    }

    /// Like [`map`](Self::map), with a per-trial probe: `mk_probe` builds
    /// trial `i`'s probe, `f` runs the trial and hands the probe back, and
    /// the per-trial probes are folded with
    /// [`MergeProbe::merge`](crate::observe::MergeProbe) **in trial order**
    /// into one aggregate probe — deterministic at any thread count.
    pub fn run_probed<R, Pr, MF, F>(&self, mk_probe: MF, f: F) -> (Vec<R>, Pr)
    where
        R: Send,
        Pr: MergeProbe + Send,
        MF: Fn(u64) -> Pr + Sync,
        F: Fn(u64, &mut StdRng, Pr) -> (R, Pr) + Sync,
    {
        let pairs = self.map(|trial, rng| f(trial, rng, mk_probe(trial)));
        let mut results = Vec::with_capacity(pairs.len());
        let mut merged: Option<Pr> = None;
        for (r, p) in pairs {
            results.push(r);
            match &mut merged {
                None => merged = Some(p),
                Some(m) => m.merge(p),
            }
        }
        (results, merged.expect("ensemble has at least one trial"))
    }
}

// ---------------------------------------------------------------------------
// Mergeable statistics
// ---------------------------------------------------------------------------

/// Streaming count/mean/M2 (Welford) accumulator with min/max, mergeable
/// across partitions by Chan et al.'s parallel update.
///
/// Merging is *algebraically* exact but floating-point merge results depend
/// on the partition (O(n·ε) drift); the ensemble therefore folds per-trial
/// summaries in trial order, which fixes the evaluation order — and hence
/// the bits — independent of threading.
#[derive(Debug, Clone, Copy)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Absorbs one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorbs a whole other accumulator (Chan's parallel merge).
    pub fn merge(&mut self, other: Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let d = other.mean - self.mean;
        self.mean += d * (n2 / n);
        self.m2 += other.m2 + d * d * (n1 * n2 / n);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.mean
    }

    /// Population variance `M2 / count` (NaN when empty) — the same form
    /// `pp_bench::std_dev` reports.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.m2 / self.count as f64
    }

    /// Population standard deviation (NaN when empty).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.min
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.max
    }
}

/// Number of half-octave buckets in a [`LogHistogram`].
const HIST_BUCKETS: usize = 128;

/// Bounded log-spaced histogram: an underflow bucket for values in
/// `[0, 1)` plus 128 half-octave buckets, bucket `i` covering
/// `[2^(i/2), 2^((i+1)/2))` — reaching past `1.8·10^19`, i.e. any `u64`
/// interaction count. Merging adds buckets elementwise (`u64` addition), so
/// it is exactly associative and commutative.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    underflow: u64,
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { underflow: 0, buckets: vec![0; HIST_BUCKETS] }
    }

    /// Bucket index of a value `>= 1`.
    fn bucket_of(v: f64) -> usize {
        let i = (2.0 * v.log2()).floor();
        if i <= 0.0 {
            0
        } else {
            (i as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Absorbs one non-negative observation (NaN and negatives are counted
    /// in the underflow bucket — records are interaction counts, so neither
    /// occurs in practice).
    pub fn push(&mut self, v: f64) {
        if v.is_finite() && v >= 1.0 {
            self.buckets[Self::bucket_of(v)] += 1;
        } else {
            self.underflow += 1;
        }
    }

    /// Adds `other`'s buckets into `self` — exactly associative.
    pub fn merge(&mut self, other: &Self) {
        self.underflow += other.underflow;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Count of observations in `[0, 1)` (plus any non-finite ones).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// `[lo, hi)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        (2f64.powf(i as f64 / 2.0), 2f64.powf((i as f64 + 1.0) / 2.0))
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.underflow + self.buckets.iter().sum::<u64>()
    }

    /// Non-empty `(bucket, count)` pairs, ascending.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// The mergeable per-worker summary of the tentpole design: convergence
/// count, Welford moments, log-histogram, and the per-trial records that
/// make exact quantiles (and bit-stable folding) possible.
#[derive(Debug, Clone, Default)]
pub struct TrialSummary {
    trials: u64,
    converged: u64,
    stats: Welford,
    histogram: LogHistogram,
    /// `(trial index, record)` pairs, in whatever order they were absorbed.
    records: Vec<(u64, Option<f64>)>,
}

impl TrialSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// The summary of a single trial (`None` = did not converge).
    pub fn from_trial(trial: u64, record: Option<f64>) -> Self {
        let mut s = Self::new();
        s.absorb(trial, record);
        s
    }

    /// Absorbs one trial outcome.
    pub fn absorb(&mut self, trial: u64, record: Option<f64>) {
        self.trials += 1;
        if let Some(v) = record {
            self.converged += 1;
            self.stats.push(v);
            self.histogram.push(v);
        }
        self.records.push((trial, record));
    }

    /// Absorbs a whole other summary. Counters and the histogram merge
    /// exactly; the Welford moments merge by Chan's update (see
    /// [`Welford::merge`]).
    pub fn merge(&mut self, other: Self) {
        self.trials += other.trials;
        self.converged += other.converged;
        self.stats.merge(other.stats);
        self.histogram.merge(&other.histogram);
        self.records.extend(other.records);
    }

    /// Trials absorbed.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Converged trials absorbed.
    pub fn converged(&self) -> u64 {
        self.converged
    }

    /// Welford moments over converged records.
    pub fn stats(&self) -> &Welford {
        &self.stats
    }

    /// Log-spaced histogram over converged records.
    pub fn histogram(&self) -> &LogHistogram {
        &self.histogram
    }
}

// ---------------------------------------------------------------------------
// EnsembleReport
// ---------------------------------------------------------------------------

/// Aggregate result of an [`Ensemble`] run over a scalar-outcome workload.
///
/// Built by folding per-trial [`TrialSummary`] values in ascending trial
/// order, so two runs with the same master seed produce byte-identical
/// [`to_json`](Self::to_json) output at any thread count. Wall-clock time
/// and thread count are deliberately **not** part of this report — they
/// belong in the non-deterministic header of a `pp-bench/v1` report.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    trials: u64,
    converged: u64,
    stats: Welford,
    histogram: LogHistogram,
    /// Per-trial records in trial order (`None` = did not converge).
    records: Vec<Option<f64>>,
}

impl EnsembleReport {
    /// Folds trial-ordered records into a report.
    pub fn from_records(records: Vec<Option<f64>>) -> Self {
        let mut acc = TrialSummary::new();
        for (i, r) in records.iter().enumerate() {
            acc.merge(TrialSummary::from_trial(i as u64, *r));
        }
        Self {
            trials: acc.trials,
            converged: acc.converged,
            stats: acc.stats,
            histogram: acc.histogram,
            records,
        }
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of converged trials (record was `Some`).
    pub fn converged(&self) -> u64 {
        self.converged
    }

    /// Fraction of trials that converged.
    pub fn convergence_rate(&self) -> f64 {
        self.converged as f64 / self.trials as f64
    }

    /// Welford moments over converged records.
    pub fn stats(&self) -> &Welford {
        &self.stats
    }

    /// Mean of converged records (NaN if none).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population variance of converged records (NaN if none).
    pub fn variance(&self) -> f64 {
        self.stats.variance()
    }

    /// Population standard deviation of converged records (NaN if none).
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Log-spaced histogram of converged records.
    pub fn histogram(&self) -> &LogHistogram {
        &self.histogram
    }

    /// Per-trial records in trial order.
    pub fn records(&self) -> &[Option<f64>] {
        &self.records
    }

    /// Converged records in trial order.
    pub fn values(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| *r).collect()
    }

    /// Nearest-rank quantile of the converged records (`q` in `[0, 1]`;
    /// NaN if no trial converged).
    pub fn quantile(&self, q: f64) -> f64 {
        let mut v = self.values();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    /// Deterministic JSON rendering (schema `pp-ensemble/v1`): everything
    /// here is a pure function of `(master seed, workload)`, so determinism
    /// tests compare these strings byte-for-byte across thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"pp-ensemble/v1\"");
        s.push_str(&format!(",\"trials\":{}", self.trials));
        s.push_str(&format!(",\"converged\":{}", self.converged));
        s.push_str(&format!(",\"mean\":{}", json_f64(self.mean())));
        s.push_str(&format!(",\"variance\":{}", json_f64(self.variance())));
        s.push_str(&format!(",\"std_dev\":{}", json_f64(self.std_dev())));
        s.push_str(&format!(",\"min\":{}", json_f64(self.stats.min())));
        s.push_str(&format!(",\"max\":{}", json_f64(self.stats.max())));
        for (label, q) in [("q10", 0.10), ("q50", 0.50), ("q90", 0.90)] {
            s.push_str(&format!(",\"{label}\":{}", json_f64(self.quantile(q))));
        }
        s.push_str(&format!(",\"histogram\":{{\"underflow\":{}", self.histogram.underflow()));
        s.push_str(",\"buckets\":[");
        for (k, (i, c)) in self.histogram.nonzero().into_iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{i},{c}]"));
        }
        s.push_str("]}");
        s.push_str(",\"records\":[");
        for (k, r) in self.records.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            match r {
                Some(v) => s.push_str(&json_f64(*v)),
                None => s.push_str("null"),
            }
        }
        s.push_str("]}");
        s
    }
}

/// Full-precision JSON float (same convention as `pp-bench`): shortest
/// round-trip representation, `null` for non-finite values.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fault ensembles
// ---------------------------------------------------------------------------

/// Cross-trial aggregate of one segment position (the run prefix before the
/// first burst is segment 0, the stretch after burst `k` is segment `k`).
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Segment index within each trial's [`FaultRunReport`].
    pub segment: usize,
    /// Trials that have this segment.
    pub trials: u64,
    /// Trials whose segment recovered.
    pub recovered: u64,
    /// Moments of `recovery_time` over the recovered trials.
    pub recovery_time: Welford,
    /// Moments of `residual_error` over all trials with this segment.
    pub residual_error: Welford,
}

/// Aggregate result of [`Ensemble::run_with_faults`]: the per-trial
/// [`FaultRunReport`]s (trial-ordered) plus per-burst
/// [`RecoveryReport`](crate::faults::RecoveryReport) aggregation across
/// trials.
#[derive(Debug, Clone)]
pub struct FaultEnsembleReport {
    runs: Vec<FaultRunReport>,
}

impl FaultEnsembleReport {
    /// Wraps trial-ordered fault runs.
    pub fn from_runs(runs: Vec<FaultRunReport>) -> Self {
        Self { runs }
    }

    /// Per-trial runs in trial order.
    pub fn runs(&self) -> &[FaultRunReport] {
        &self.runs
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.runs.len() as u64
    }

    /// Fraction of trials whose *final* segment recovered.
    pub fn recovery_rate(&self) -> f64 {
        let rec = self.runs.iter().filter(|r| r.recovered()).count();
        rec as f64 / self.runs.len() as f64
    }

    /// Final-segment recovery times of the recovered trials, in trial order.
    pub fn final_recovery_times(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter_map(|r| r.final_segment().recovery_time())
            .map(|t| t as f64)
            .collect()
    }

    /// MTTR summary over the *final* segment of every trial, folded in
    /// trial order (so the result — and its
    /// [`to_json`](crate::faults::Mttr::to_json) — is byte-identical at any
    /// thread count). The final segment is the verdict segment: the stretch
    /// after the last injection burst, or the whole run for
    /// adversarial-initialization plans that only damage slot 0.
    pub fn final_mttr(&self) -> crate::faults::Mttr {
        let mut m = crate::faults::Mttr::new();
        for run in &self.runs {
            m.absorb(run.final_segment());
        }
        m
    }

    /// Per-segment-index aggregation across trials, folded in trial order.
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        let max_segments = self.runs.iter().map(|r| r.segments.len()).max().unwrap_or(0);
        (0..max_segments)
            .map(|k| {
                let mut st = SegmentStats {
                    segment: k,
                    trials: 0,
                    recovered: 0,
                    recovery_time: Welford::new(),
                    residual_error: Welford::new(),
                };
                for run in &self.runs {
                    let Some(seg) = run.segments.get(k) else { continue };
                    st.trials += 1;
                    if let Some(t) = seg.recovery_time() {
                        st.recovered += 1;
                        st.recovery_time.push(t as f64);
                    }
                    st.residual_error.push(seg.residual_error as f64);
                }
                st
            })
            .collect()
    }

    /// Deterministic JSON rendering (schema `pp-ensemble-faults/v1`);
    /// see [`EnsembleReport::to_json`] for the determinism contract.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"pp-ensemble-faults/v1\"");
        s.push_str(&format!(",\"trials\":{}", self.trials()));
        s.push_str(&format!(",\"recovery_rate\":{}", json_f64(self.recovery_rate())));
        s.push_str(",\"segments\":[");
        for (k, st) in self.segment_stats().into_iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"segment\":{},\"trials\":{},\"recovered\":{},\"recovery_time_mean\":{},\"recovery_time_std\":{},\"residual_error_mean\":{}}}",
                st.segment,
                st.trials,
                st.recovered,
                json_f64(st.recovery_time.mean()),
                json_f64(st.recovery_time.std_dev()),
                json_f64(st.residual_error.mean()),
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seeded_rng;
    use crate::protocol::FnProtocol;
    use rand::Rng;

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> + Clone {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    #[test]
    fn split_seed_is_random_access() {
        // The i-th split seed matches sequentially advancing SplitMix64.
        let master: u64 = 0xDEAD_BEEF;
        let mut state = master;
        for i in 0..16 {
            state = state.wrapping_add(GOLDEN);
            assert_eq!(split_seed(master, i), splitmix64_mix(state));
        }
    }

    #[test]
    fn offset_mode_matches_legacy_seeding() {
        let e = Ensemble::new(8, 1000).legacy_offset_seeds().with_threads(1);
        let draws = e.map(|_t, rng| rng.gen_range(0u64..1_000_000));
        for (i, &d) in draws.iter().enumerate() {
            let mut legacy = seeded_rng(1000 + i as u64);
            assert_eq!(d, legacy.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn map_is_trial_ordered_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let e = Ensemble::new(37, 5).with_threads(threads);
            let out = e.map(|t, _| t * 3);
            assert_eq!(out, (0..37).map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn report_json_is_thread_count_invariant() {
        let run = |threads| {
            Ensemble::new(24, 42).with_threads(threads).measure_stabilization(
                |_| Simulation::from_counts(epidemic(), [(true, 1), (false, 31)]),
                &true,
                200_000,
            )
        };
        let base = run(1).to_json();
        assert_eq!(run(2).to_json(), base);
        assert_eq!(run(8).to_json(), base);
    }

    #[test]
    fn welford_matches_naive_moments() {
        let mut rng = seeded_rng(9);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9 * mean.abs());
        assert!((w.variance() - var).abs() < 1e-9 * var.abs());
        assert_eq!(w.count(), 1000);
        assert_eq!(w.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(w.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let report =
            EnsembleReport::from_records((1..=100).map(|v| Some(v as f64)).collect::<Vec<_>>());
        assert_eq!(report.quantile(0.10), 10.0);
        assert_eq!(report.quantile(0.50), 50.0);
        assert_eq!(report.quantile(0.90), 90.0);
        assert_eq!(report.quantile(0.0), 1.0);
        assert_eq!(report.quantile(1.0), 100.0);
    }

    #[test]
    fn histogram_buckets_are_half_octaves() {
        let mut h = LogHistogram::new();
        h.push(0.0);
        h.push(0.5);
        h.push(1.0); // bucket 0: [1, √2)
        h.push(1.5); // bucket 1: [√2, 2)
        h.push(2.0); // bucket 2: [2, 2√2)
        h.push(1e30); // clamps to the last bucket
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(HIST_BUCKETS - 1), 1);
        assert_eq!(h.total(), 6);
        let (lo, hi) = LogHistogram::bucket_bounds(2);
        assert!(lo <= 2.0 && 2.0 < hi);
    }

    #[test]
    fn fault_ensemble_aggregates_segments() {
        use crate::faults::TransientCorruption;
        let e = Ensemble::new(6, 3).with_threads(2);
        let rep = e.run_with_faults(
            |_trial| {
                let sim = Simulation::from_counts(epidemic(), [(true, 2), (false, 30)]);
                let plan = TransientCorruption::uniform_at(5_000, 8);
                (sim, plan)
            },
            &true,
            60_000,
        );
        assert_eq!(rep.trials(), 6);
        let segs = rep.segment_stats();
        assert_eq!(segs.len(), 2, "one burst → two segments");
        assert_eq!(segs[0].trials, 6);
        assert_eq!(segs[1].trials, 6);
        // Determinism across thread counts for the fault path too.
        let rep1 = Ensemble::new(6, 3).with_threads(1).run_with_faults(
            |_trial| {
                let sim = Simulation::from_counts(epidemic(), [(true, 2), (false, 30)]);
                let plan = TransientCorruption::uniform_at(5_000, 8);
                (sim, plan)
            },
            &true,
            60_000,
        );
        assert_eq!(rep.to_json(), rep1.to_json());
    }
}
