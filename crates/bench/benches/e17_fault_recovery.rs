//! E17 (robustness, beyond the paper) — recovery time vs corruption
//! fraction under the `pp_core::faults` transient-corruption model.
//!
//! §8 of the paper raises fault tolerance as an open direction; this
//! experiment measures it. A population stabilizes, an adversary rewrites
//! a fraction φ of the agents, and we record how many further interactions
//! the protocol needs to make every output correct again (the
//! `RecoveryReport` of `run_with_faults`):
//!
//! * **approximate majority** (3-state, no conserved tally) recovers from
//!   any corruption fraction below its margin, with recovery time growing
//!   with φ;
//! * **exact majority** (Lemma 5, verdict carried by a conserved sum)
//!   recovers only while the corrupted sum still has the original sign —
//!   past that, it stabilizes to the wrong answer and the recovery rate
//!   collapses to zero.
//!
//! The sweep is also emitted as `BENCH_e17_fault_recovery.json`.

use pp_bench::{fmt, mean, print_header, BenchReport};
use pp_core::ensemble::Ensemble;
use pp_core::faults::TransientCorruption;
use pp_core::{Protocol, Simulation};
use pp_protocols::ext::{ApproximateMajority, Opinion};
use pp_protocols::majority;

/// Population size, one-votes (70/30 split: wide margin, stable output
/// `true`), trials per φ, and per-protocol burst step / horizon — scaled
/// down under `PP_BENCH_SMOKE`.
struct Params {
    n: u64,
    ones: u64,
    trials: u64,
    approx_burst: u64,
    approx_horizon: u64,
    exact_burst: u64,
    exact_horizon: u64,
}

impl Params {
    fn get() -> Self {
        if pp_bench::smoke() {
            Self {
                n: 60,
                ones: 42,
                trials: 3,
                approx_burst: 4_000,
                approx_horizon: 40_000,
                exact_burst: 30_000,
                exact_horizon: 400_000,
            }
        } else {
            Self {
                n: 200,
                ones: 140,
                trials: 20,
                approx_burst: 40_000,
                approx_horizon: 400_000,
                exact_burst: 300_000,
                exact_horizon: 4_000_000,
            }
        }
    }
}

fn main() {
    let p = Params::get();
    let (n, ones) = (p.n, p.ones);
    // `threads` and `wall_s` land in the report header automatically.
    let mut report = BenchReport::new("e17_fault_recovery");
    report.set_meta("n", n).set_meta("ones", ones).set_meta("trials", p.trials);

    println!("\nE17: recovery time vs corruption fraction (n = {n}, {ones} one-votes)");
    println!("burst: ⌈φn⌉ agents rewritten adversarially after stabilization\n");
    print_header(
        &["phi", "approx_recov", "approx_time", "exact_recov", "exact_time"],
        &[5, 12, 12, 11, 12],
    );

    for phi in [0.05f64, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let k = (phi * n as f64).ceil() as u64;

        // 3-state approximate majority: corrupt to Blank (the recruitable
        // neutral state — an adversary erasing memories).
        let (ar, at) = sweep(
            &p,
            || Simulation::from_counts(ApproximateMajority, [(true, ones), (false, n - ones)]),
            TransientCorruption::adversarial_at(p.approx_burst, k, Opinion::Blank),
            p.approx_horizon,
        );

        // Exact Lemma 5 majority: corrupt to fresh zero-votes (the
        // adversary stuffing ballots for the minority).
        let (er, et) = sweep(
            &p,
            || Simulation::from_counts(majority(), [(1usize, ones), (0usize, n - ones)]),
            TransientCorruption::adversarial_at(p.exact_burst, k, majority().input(&0usize)),
            p.exact_horizon,
        );

        println!(
            "{:>5} {:>12} {:>12} {:>11} {:>12}",
            fmt(phi),
            fmt(ar),
            fmt(at),
            fmt(er),
            fmt(et)
        );
        report.push_row([
            ("phi", pp_bench::Value::from(phi)),
            ("corrupted", k.into()),
            ("approx_recovery_rate", ar.into()),
            ("approx_recovery_time", at.into()),
            ("exact_recovery_rate", er.into()),
            ("exact_recovery_time", et.into()),
        ]);
    }

    println!("\nreading: approx recovers across the sweep (time grows with phi);");
    println!("exact majority recovers only while the corrupted sum keeps the");
    println!("original sign — each post-stabilization corruption adds +1, so the");
    println!("verdict flips once ceil(phi*n) exceeds the margin {m} (phi = {f});", m = 2 * ones - n, f = fmt((2 * ones - n) as f64 / n as f64));
    println!("past that it stabilizes wrong: recovery rate 0, no recovery time\n");
    report.write();
}

/// Runs `trials` faulted runs through the multi-threaded ensemble executor
/// (`PP_THREADS` workers; trial `i` keeps the legacy `seeded_rng(i)`
/// stream, so the sweep's statistics are byte-identical to the former
/// sequential loop); returns (recovery rate, mean recovery time over the
/// recovering trials).
fn sweep<P, F>(
    params: &Params,
    make: F,
    plan: TransientCorruption<P::State>,
    horizon: u64,
) -> (f64, f64)
where
    P: Protocol<Output = bool>,
    P::State: Clone + Sync,
    F: Fn() -> Simulation<P> + Sync,
{
    let rep = Ensemble::new(params.trials, 0)
        .legacy_offset_seeds()
        .run_with_faults(|_trial| (make(), plan.clone()), &true, horizon);
    (rep.recovery_rate(), mean(&rep.final_recovery_times()))
}
