//! The Lemma 11 urn process.
//!
//! An urn holds `N` tokens: `m` *counter* tokens, one *timer* token, and
//! `N − 1 − m` blanks. Tokens are drawn with replacement. The process
//! ends in a **win** when a counter token is drawn, and in a **loss** when
//! the timer token is drawn `k` times in a row before any counter token.
//!
//! Lemma 11 gives exactly:
//!
//! 1. `P(loss) = (N−1) / (m·Nᵏ + (N−1−m)) ≤ 1/(m·N^{k−1})`;
//! 2. conditioned on winning (and `m > 0`), `E[draws] ≤ N/m`;
//! 3. for `m = 0`, `E[draws to lose] = O(Nᵏ)`.
//!
//! [`UrnProcess`] simulates the process; the `loss_probability` /
//! `expected_draws_*` methods evaluate the closed forms, so experiment E4
//! can put measured and analytic columns side by side.

use rand::Rng;

/// Outcome of one urn run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrnOutcome {
    /// `true` if a counter token was drawn before `k` consecutive timers.
    pub won: bool,
    /// Total draws performed (including the final, deciding draw).
    pub draws: u64,
}

/// The Lemma 11 urn: `N` tokens of which `m` are counter tokens and one is
/// the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrnProcess {
    n: u64,
    m: u64,
    k: u32,
}

impl UrnProcess {
    /// Creates an urn with `n` tokens total, `m` counter tokens, and
    /// waiting parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ m + 1` (the timer needs its own token — the
    /// Lemma 11 case where the timer is distinct from all counter tokens)
    /// and `k ≥ 1`.
    pub fn new(n: u64, m: u64, k: u32) -> Self {
        assert!(n > m, "urn needs room for the timer besides {m} counter tokens");
        assert!(n >= 1, "urn must be non-empty");
        assert!(k >= 1, "waiting parameter must be at least 1");
        Self { n, m, k }
    }

    /// Urn size `N`.
    pub fn size(&self) -> u64 {
        self.n
    }

    /// Number of counter tokens `m`.
    pub fn counter_tokens(&self) -> u64 {
        self.m
    }

    /// Waiting parameter `k`.
    pub fn waiting_parameter(&self) -> u32 {
        self.k
    }

    /// Runs the process once.
    pub fn run(&self, rng: &mut impl Rng) -> UrnOutcome {
        let mut streak = 0u32;
        let mut draws = 0u64;
        loop {
            draws += 1;
            let t = rng.gen_range(0..self.n);
            if t < self.m {
                return UrnOutcome { won: true, draws };
            } else if t == self.m {
                // The timer token.
                streak += 1;
                if streak == self.k {
                    return UrnOutcome { won: false, draws };
                }
            } else {
                streak = 0;
            }
        }
    }

    /// Lemma 11(1): the exact loss probability
    /// `(N−1) / (m·Nᵏ + (N−1−m))`.
    ///
    /// For `m = 0` this is 1 (the process can only lose).
    pub fn loss_probability(&self) -> f64 {
        let n = self.n as f64;
        let m = self.m as f64;
        let nk = n.powi(self.k as i32);
        (n - 1.0) / (m * nk + (n - 1.0 - m))
    }

    /// Lemma 11(1)'s upper bound `1/(m·N^{k−1})` (only for `m > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `m = 0`.
    pub fn loss_probability_bound(&self) -> f64 {
        assert!(self.m > 0, "bound requires counter tokens");
        1.0 / (self.m as f64 * (self.n as f64).powi(self.k as i32 - 1))
    }

    /// Lemma 11(2): the bound `N/m` on the expected draws up to and
    /// including the first counter token, conditioned on winning.
    ///
    /// # Panics
    ///
    /// Panics if `m = 0`.
    pub fn expected_draws_bound(&self) -> f64 {
        assert!(self.m > 0, "bound requires counter tokens");
        self.n as f64 / self.m as f64
    }

    /// For `m = 0`: the exact expected number of draws until `k`
    /// consecutive timer draws, `(1 − pᵏ) / (pᵏ(1−p))` with `p = 1/N`
    /// (the classical waiting time for a success run), which is `O(Nᵏ)` as
    /// Lemma 11(3) states.
    ///
    /// # Panics
    ///
    /// Panics if `m > 0`.
    pub fn expected_draws_to_lose(&self) -> f64 {
        assert!(self.m == 0, "closed form applies to the m = 0 case");
        let p = 1.0 / self.n as f64;
        let pk = p.powi(self.k as i32);
        (1.0 - pk) / (pk * (1.0 - p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mc_loss_rate(urn: UrnProcess, trials: u64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut losses = 0u64;
        for _ in 0..trials {
            if !urn.run(&mut rng).won {
                losses += 1;
            }
        }
        losses as f64 / trials as f64
    }

    #[test]
    fn loss_probability_matches_monte_carlo() {
        // Small N and k so losses are frequent enough to measure.
        for (n, m, k) in [(6u64, 1u64, 1u32), (6, 2, 1), (8, 1, 2), (5, 3, 1)] {
            let urn = UrnProcess::new(n, m, k);
            let analytic = urn.loss_probability();
            let trials: u64 = if cfg!(debug_assertions) { 100_000 } else { 400_000 };
            let measured = mc_loss_rate(urn, trials, 42 + n + m + u64::from(k));
            let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
            assert!(
                (measured - analytic).abs() < 6.0 * se + 1e-4,
                "N={n} m={m} k={k}: measured {measured:.5} vs analytic {analytic:.5}"
            );
        }
    }

    #[test]
    fn loss_probability_bound_dominates_exact() {
        for (n, m, k) in [(10u64, 1u64, 2u32), (20, 3, 2), (50, 5, 3)] {
            let urn = UrnProcess::new(n, m, k);
            assert!(urn.loss_probability() <= urn.loss_probability_bound() + 1e-15);
        }
    }

    #[test]
    fn expected_draws_bound_holds_empirically() {
        let urn = UrnProcess::new(12, 3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0u64;
        let mut wins = 0u64;
        let trials: u64 = if cfg!(debug_assertions) { 50_000 } else { 200_000 };
        for _ in 0..trials {
            let o = urn.run(&mut rng);
            if o.won {
                wins += 1;
                total += o.draws;
            }
        }
        let mean = total as f64 / wins as f64;
        assert!(
            mean <= urn.expected_draws_bound() * 1.02,
            "mean {mean:.3} exceeds bound {}",
            urn.expected_draws_bound()
        );
    }

    #[test]
    fn m0_expected_loss_time_matches_closed_form() {
        let urn = UrnProcess::new(4, 0, 2);
        let analytic = urn.expected_draws_to_lose(); // (1-p²)/(p²(1-p)), p=1/4
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0u64;
        let trials: u64 = if cfg!(debug_assertions) { 25_000 } else { 100_000 };
        for _ in 0..trials {
            let o = urn.run(&mut rng);
            assert!(!o.won, "m = 0 can only lose");
            total += o.draws;
        }
        let mean = total as f64 / trials as f64;
        let ratio = mean / analytic;
        assert!((0.97..1.03).contains(&ratio), "mean {mean:.2} vs {analytic:.2}");
    }

    #[test]
    fn m_equals_zero_always_loses() {
        let urn = UrnProcess::new(5, 0, 1);
        assert_eq!(urn.loss_probability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "room for the timer")]
    fn too_many_counter_tokens_rejected() {
        UrnProcess::new(3, 3, 1);
    }

    #[test]
    fn k1_loss_probability_closed_form_sanity() {
        // k = 1: lose iff the timer comes before any counter token:
        // P = 1/(m+1) among the relevant tokens — matches the formula.
        let urn = UrnProcess::new(10, 4, 1);
        let formula = urn.loss_probability();
        let direct = (10.0 - 1.0) / (4.0 * 10.0 + (10.0 - 1.0 - 4.0));
        assert!((formula - direct).abs() < 1e-15);
        assert!((formula - 1.0 / 5.0).abs() < 0.03, "≈ 1/(m+1)");
    }
}
