//! E20 — multi-threaded ensemble scaling with bit-identical statistics.
//!
//! The ensemble executor claims two things at once: (1) `T` independent
//! trials scale across OS threads, and (2) the aggregated statistics are
//! a pure function of the master seed — byte-identical at any thread
//! count. This bench measures both on majority stabilization, routed
//! through the unified [`pp_core::spec`] dispatcher (`RunSpec` →
//! `run_counts`) that the server, the CLI, and the benches now share —
//! the spec's `threads` field is execution policy, so sweeping it must
//! not move a byte of the report:
//!
//! * **exact majority** (Lemma 5) at n = 256 — its Θ(n² log n) interaction
//!   count makes n = 10⁴ infeasible (~10¹¹ interactions *per trial*), so
//!   the exact protocol is measured at a population where T = 256 trials
//!   finish in seconds;
//! * **approximate majority** (3-state) at n = 10⁴ — Θ(n log n), the
//!   large-population case.
//!
//! Both run on the Θ(√n)-per-sweep batched engine (`engine: "batched"`
//! in spec terms), once per thread count with the same master seed; every
//! row records the wall clock, the speedup over the 1-thread run, and
//! whether the `EnsembleReport` JSON matched the 1-thread run
//! byte-for-byte.
//!
//! Wall-clock speedup is hardware-bound: on a k-core machine the curve
//! saturates at ≈ k (the `hw_threads` meta records what the host offered;
//! on a 1-core CI runner every thread count measures ≈ 1×). The
//! determinism column must read 1 everywhere, on any machine.
//!
//! The sweep is also emitted as `BENCH_e20_ensemble_scaling.json`.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport};
use pp_core::ensemble::EnsembleReport;
use pp_core::spec::{run_counts, EngineSel, ProtocolRef, RunOutcome, RunSpec};
use pp_protocols::ext::ApproximateMajority;
use pp_protocols::majority;

struct Params {
    trials: u64,
    exact_n: u64,
    approx_n: u64,
    threads: Vec<usize>,
}

impl Params {
    fn get() -> Self {
        if pp_bench::smoke() {
            Self { trials: 8, exact_n: 48, approx_n: 400, threads: vec![1, 2] }
        } else {
            Self { trials: 256, exact_n: 256, approx_n: 10_000, threads: vec![1, 2, 4, 8] }
        }
    }
}

/// The shared spec shape: a batched stabilization ensemble on a 60/40
/// majority split. The spec population and the dispatched `pairs` travel
/// in the same order — population order is semantic (it fixes interning,
/// hence the RNG streams), so both workloads list the majority symbol
/// first, exactly like the historical direct calls.
fn ensemble_spec(
    p: &Params,
    population: Vec<(String, u64)>,
    master_seed: u64,
    horizon: u64,
    threads: usize,
) -> RunSpec {
    let mut spec = RunSpec::new(
        ProtocolRef::Name { name: "majority".into(), params: vec![] },
        population,
        master_seed,
    );
    spec.engine = EngineSel::Batched;
    spec.trials = p.trials;
    spec.threads = threads;
    spec.horizon = Some(horizon);
    spec
}

fn expect_ensemble(outcome: RunOutcome) -> EnsembleReport {
    match outcome {
        RunOutcome::Ensemble(rep) => rep,
        other => panic!("expected an ensemble outcome, got {other:?}"),
    }
}

fn main() {
    let p = Params::get();
    let master_seed = 2020u64;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut report = BenchReport::new("e20_ensemble_scaling");
    report
        .set_meta("trials", p.trials)
        .set_meta("master_seed", master_seed)
        .set_meta("hw_threads", hw);

    println!("\nE20: ensemble scaling — T = {} trials, master seed {master_seed}", p.trials);
    println!("host offers {hw} hardware thread(s); identical=1 means the report");
    println!("JSON matched the 1-thread run byte-for-byte\n");
    print_header(
        &["case", "threads", "wall_s", "speedup", "identical", "mean"],
        &[22, 8, 9, 8, 10, 12],
    );

    // Exact majority (Lemma 5): 60/40 split, horizon 40·n² ≫ Θ(n² log n)/2
    // for this margin.
    let exact_n = p.exact_n;
    let exact_ones = exact_n * 3 / 5;
    let exact_horizon = 40 * exact_n * exact_n;
    sweep_case(&mut report, &p, &format!("exact majority n={exact_n}"), "exact", |threads| {
        let spec = ensemble_spec(
            &p,
            vec![("1".into(), exact_ones), ("0".into(), exact_n - exact_ones)],
            master_seed,
            exact_horizon,
            threads,
        );
        expect_ensemble(
            run_counts(
                &spec,
                &majority(),
                &[(1usize, exact_ones), (0usize, exact_n - exact_ones)],
                &true,
            )
            .expect("exact majority dispatch"),
        )
    });

    // Approximate majority: Θ(n log n); horizon 60·n·ln n.
    let approx_n = p.approx_n;
    let approx_ones = approx_n * 3 / 5;
    let approx_horizon = (60.0 * approx_n as f64 * (approx_n as f64).ln()) as u64;
    sweep_case(&mut report, &p, &format!("approx majority n={approx_n}"), "approx", |threads| {
        let spec = ensemble_spec(
            &p,
            vec![("1".into(), approx_ones), ("0".into(), approx_n - approx_ones)],
            master_seed,
            approx_horizon,
            threads,
        );
        expect_ensemble(
            run_counts(
                &spec,
                &ApproximateMajority,
                &[(true, approx_ones), (false, approx_n - approx_ones)],
                &true,
            )
            .expect("approx majority dispatch"),
        )
    });

    println!("\nreading: speedup tracks hardware threads (≈1 on a 1-core host);");
    println!("the identical column is the machine-checked determinism guarantee —");
    println!("same master seed → same mean/variance/quantiles at every thread count\n");
    report.write();
}

/// Runs one workload at every thread count, checks byte-identity against
/// the 1-thread report, and emits rows.
fn sweep_case(
    report: &mut BenchReport,
    p: &Params,
    label: &str,
    case: &str,
    run: impl Fn(usize) -> EnsembleReport,
) {
    let mut base_json: Option<String> = None;
    let mut base_wall = 0.0f64;
    for &threads in &p.threads {
        let t0 = Instant::now();
        let rep = run(threads);
        let wall = t0.elapsed().as_secs_f64();
        let json = rep.to_json();
        let identical = match &base_json {
            None => {
                base_json = Some(json);
                base_wall = wall;
                true
            }
            Some(b) => *b == json,
        };
        assert!(identical, "{label}: thread count {threads} changed the ensemble report");
        let speedup = base_wall / wall;
        println!(
            "{:>22} {:>8} {:>9} {:>8} {:>10} {:>12}",
            label,
            threads,
            fmt(wall),
            fmt(speedup),
            u64::from(identical),
            fmt(rep.mean()),
        );
        report.push_row([
            ("case", pp_bench::Value::from(case)),
            ("threads", (threads as u64).into()),
            ("wall_s", wall.into()),
            ("speedup", speedup.into()),
            ("identical", identical.into()),
            ("converged", rep.converged().into()),
            ("mean", rep.mean().into()),
            ("std_dev", rep.std_dev().into()),
            ("q50", rep.quantile(0.5).into()),
            ("q90", rep.quantile(0.9).into()),
        ]);
    }
}
