//! E10 — Theorem 7 / Fig. 1: the baton simulator runs complete-graph
//! protocols on arbitrary weakly-connected graphs.
//!
//! Majority on the complete graph (bare protocol) vs the transformed
//! protocol A′ on complete / line / cycle / star / random graphs. The
//! paper proves correctness, not speed — the measured slowdown factors
//! quantify the price of generality.

use pp_bench::{fmt, mean, print_header};
use pp_core::{seeded_rng, AgentSimulation, Simulation};
use pp_graphs as graphs;
use pp_protocols::{majority, GraphSimulator};

fn main() {
    let n = 10usize;
    let ones = 6usize;
    let expected = true;
    println!("\nE10: Theorem 7 — majority via the Fig. 1 simulator, n = {n}, {ones} ones\n");
    print_header(&["graph", "edges", "runs", "E[stabilize]", "slowdown"], &[16, 6, 5, 14, 10]);

    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < ones)).collect();
    let trials = if pp_bench::smoke() { 3u64 } else { 30u64 };

    // Baseline: bare protocol on the complete graph.
    let mut base_times = Vec::new();
    for seed in 0..trials {
        let mut sim = Simulation::from_counts(
            majority(),
            [(0usize, (n - ones) as u64), (1usize, ones as u64)],
        );
        let mut rng = seeded_rng(seed);
        let rep = sim.measure_stabilization(&expected, 400_000, &mut rng);
        base_times.push(rep.stabilized_at.expect("stabilizes") as f64);
    }
    let base = mean(&base_times);
    println!(
        "{:>16} {:>6} {:>5} {:>14} {:>10}",
        "bare (complete)",
        n * (n - 1),
        trials,
        fmt(base),
        fmt(1.0)
    );

    let mut rng0 = seeded_rng(99);
    let cases: Vec<(&str, graphs::InteractionGraph)> = vec![
        ("A' complete", graphs::complete(n)),
        ("A' line", graphs::undirected_line(n)),
        ("A' cycle", graphs::undirected_cycle(n)),
        ("A' star", graphs::star(n)),
        ("A' random(0.3)", graphs::erdos_renyi_connected(n, 0.3, &mut rng0)),
    ];
    for (name, g) in cases {
        let mut times = Vec::new();
        for seed in 0..trials {
            let mut sim = AgentSimulation::from_inputs(
                GraphSimulator::new(majority()),
                &inputs,
                g.scheduler(),
            );
            let mut rng = seeded_rng(1000 + seed);
            let rep = sim.measure_stabilization(&expected, 4_000_000, &mut rng);
            times.push(rep.stabilized_at.expect("stabilizes") as f64);
        }
        let m = mean(&times);
        println!(
            "{:>16} {:>6} {:>5} {:>14} {:>10}",
            name,
            g.edge_count(),
            trials,
            fmt(m),
            fmt(m / base)
        );
    }

    println!("\npaper: A' stably computes the predicate on every weakly-connected graph;");
    println!("sparser graphs pay a polynomial slowdown (state tokens random-walk)\n");
}
