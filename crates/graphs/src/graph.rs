//! The [`InteractionGraph`] type: agents plus permitted encounters.

use pp_core::scheduler::EdgeListScheduler;

/// A directed, irreflexive interaction graph on agents `0..n`.
///
/// Edge `(u, v)` permits an encounter with `u` as initiator and `v` as
/// responder. The graph owns a deduplicated, sorted edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl InteractionGraph {
    /// Builds a graph over `n` agents with the given directed edges.
    ///
    /// Duplicate edges are removed; edges are stored sorted.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, any edge is a self-loop, or an endpoint is out of
    /// range.
    pub fn new(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        assert!(n >= 2, "population must have at least 2 agents");
        for &(u, v) in &edges {
            assert!(u != v, "self-loop on agent {u}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for population of size {n}"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        Self { n, edges }
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The sorted directed edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Whether `(u, v)` is a permitted encounter.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.binary_search(&(u, v)).is_ok()
    }

    /// Undirected adjacency lists (neighbors in either direction).
    pub fn undirected_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Whether the graph is weakly connected (connected when edge directions
    /// are ignored). Theorem 7 requires weak connectivity of the target
    /// population.
    pub fn is_weakly_connected(&self) -> bool {
        let adj = self.undirected_adjacency();
        let mut seen = vec![false; self.n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == self.n
    }

    /// A spanning tree of the underlying undirected graph, as
    /// `parent[child]` pairs rooted at agent 0 (the root maps to itself).
    ///
    /// Returns `None` if the graph is not weakly connected.
    pub fn spanning_tree(&self) -> Option<Vec<u32>> {
        let adj = self.undirected_adjacency();
        let mut parent = vec![u32::MAX; self.n];
        parent[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u32]);
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if parent[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        (visited == self.n).then_some(parent)
    }

    /// Leaves of the spanning tree returned by
    /// [`spanning_tree`](Self::spanning_tree): nodes that are no other
    /// node's parent.
    pub fn spanning_tree_leaves(&self) -> Option<Vec<u32>> {
        let parent = self.spanning_tree()?;
        let mut is_parent = vec![false; self.n];
        for (child, &p) in parent.iter().enumerate() {
            if child as u32 != p {
                is_parent[p as usize] = true;
            }
        }
        Some(
            (0..self.n as u32)
                .filter(|&v| !is_parent[v as usize])
                .collect(),
        )
    }

    /// A uniform-random-edge scheduler over this graph, as required by the
    /// conjugating-automaton sampling rule restricted to `E` (§6).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn scheduler(&self) -> EdgeListScheduler {
        EdgeListScheduler::new(self.n, self.edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let g = InteractionGraph::new(3, vec![(2, 0), (0, 1), (2, 0)]);
        assert_eq!(g.edges(), &[(0, 1), (2, 0)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        InteractionGraph::new(3, vec![(1, 1)]);
    }

    #[test]
    fn weak_connectivity() {
        let connected = InteractionGraph::new(4, vec![(0, 1), (2, 1), (3, 2)]);
        assert!(connected.is_weakly_connected());
        let split = InteractionGraph::new(4, vec![(0, 1), (2, 3)]);
        assert!(!split.is_weakly_connected());
    }

    #[test]
    fn spanning_tree_covers_all_agents() {
        let g = InteractionGraph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let parent = g.spanning_tree().unwrap();
        assert_eq!(parent[0], 0);
        for v in 1..5 {
            // Walk to the root.
            let mut cur = v as u32;
            let mut hops = 0;
            while cur != 0 {
                cur = parent[cur as usize];
                hops += 1;
                assert!(hops <= 5, "cycle in spanning tree");
            }
        }
    }

    #[test]
    fn spanning_tree_none_when_disconnected() {
        let g = InteractionGraph::new(4, vec![(0, 1), (2, 3)]);
        assert!(g.spanning_tree().is_none());
        assert!(g.spanning_tree_leaves().is_none());
    }

    #[test]
    fn line_leaves_are_endpoints() {
        let g = InteractionGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let leaves = g.spanning_tree_leaves().unwrap();
        assert_eq!(leaves, vec![3]);
        // In a path rooted at 0, only the far endpoint is a leaf by the
        // parent-based definition (0 is the root and parent of 1).
    }
}
