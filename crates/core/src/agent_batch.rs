//! Batched and epoch-sharded execution for the agent engine.
//!
//! The sequential [`AgentSimulation::step`] loop interleaves one scheduler
//! draw with one transition apply, which serializes a cache miss per
//! interaction once the population spills out of cache. This module breaks
//! that dependence in two stages:
//!
//! * **Batched sampling** ([`run_batched`](AgentSimulation::run_batched)):
//!   draw `K` edges at once through [`BatchPairSampler`] (monomorphized RNG,
//!   independent random reads that overlap in the memory pipeline), then
//!   apply them in draw order against a *frozen* dense `δ`-table instead of
//!   a hash-map lookup per interaction. The RNG stream and the applied
//!   interaction sequence are **byte-identical** to the sequential loop.
//! * **Epoch sharding** ([`run_epochs`](AgentSimulation::run_epochs)): shard
//!   one trajectory across threads in conflict-free epochs. Each epoch's
//!   `K` sampled edges are classified in draw order — an edge is
//!   *independent* iff no earlier edge of the same epoch touches either
//!   endpoint — and worker threads precompute the transition of every edge
//!   from the pre-epoch states into disjoint result chunks. The main thread
//!   then merges in draw order: independent edges take their precomputed
//!   result (valid because their endpoints are untouched when they apply),
//!   conflicted edges are recomputed from the current states. Sampling,
//!   classification, and merging all happen on the main thread with a single
//!   RNG, so the trajectory is byte-identical at **any** thread count —
//!   parallelism changes wall-clock only, never results.
//!
//! Both paths surface starvation (no live pair can ever be sampled again) as
//! [`PopulationError::StarvedSchedule`] instead of spinning or panicking.

use rand::RngCore;

use crate::engine::{
    consensus_reached, AgentSimulation, StabilizationReport, MAX_PAIR_RESAMPLES,
};
use crate::error::PopulationError;
use crate::observe::Probe;
use crate::protocol::Protocol;
use crate::registry::StateId;
use crate::scheduler::BatchPairSampler;
use crate::trace::{SpanKind, Tracer};

/// Edges sampled per batch/epoch. Large enough to amortize the buffer walk
/// and expose memory-level parallelism; small enough that an epoch's stamp
/// working set stays cache-resident and conflicts stay rare on sparse
/// graphs.
pub const EPOCH_EDGES: usize = 4096;

/// Upper bound on the state count for which the dense frozen `δ`-table is
/// materialized (`k × k` entries of 8 bytes: 8 MiB at the cap). Protocols
/// beyond the cap fall back to the memoized hash-map transition.
const FROZEN_DELTA_CAP: usize = 1024;

/// The transition function frozen into a dense `k × k` table over a
/// `δ`-closed state set, so workers can evaluate it with a shared reference
/// (no interning, no locking) and the hot loop replaces a hash lookup with
/// one indexed load.
#[derive(Debug, Clone)]
struct FrozenDelta {
    k: usize,
    next: Vec<(StateId, StateId)>,
}

impl FrozenDelta {
    #[inline]
    fn lookup(&self, p: StateId, q: StateId) -> (StateId, StateId) {
        self.next[p.index() * self.k + q.index()]
    }
}

/// Reusable scratch buffers for batched and epoch-sharded execution, owned
/// by every [`AgentSimulation`] (empty until the first batched call, so the
/// sequential engine pays nothing for it).
#[derive(Debug, Clone, Default)]
pub struct AgentBatchScratch {
    /// Sampled edges of the current batch, in draw order.
    edges: Vec<(u32, u32)>,
    /// Per-edge precomputed transition results (epoch sharding only).
    results: Vec<(StateId, StateId)>,
    /// Per-agent epoch stamp for conflict classification.
    stamp: Vec<u32>,
    /// Current epoch number (stamp values equal to this are "touched").
    epoch: u32,
    /// Per-edge independence verdicts, in draw order.
    independent: Vec<bool>,
    /// Frozen dense transition table, when the state space fits the cap.
    delta: Option<FrozenDelta>,
}

impl<P: Protocol, S: BatchPairSampler, Pr: Probe, Tr: Tracer> AgentSimulation<P, S, Pr, Tr> {
    /// Closes the state space under `δ` and (re)freezes the dense transition
    /// table if the closure fits [`FROZEN_DELTA_CAP`]. After this, applying
    /// interactions can never intern a new state, which is what lets worker
    /// threads evaluate transitions from a shared reference.
    fn refresh_frozen_delta(&mut self) {
        let seeds: Vec<StateId> = self.rt.state_ids().collect();
        self.rt.close_under_delta(&seeds);
        let k = self.rt.state_count();
        if k > FROZEN_DELTA_CAP {
            self.batch.delta = None;
            return;
        }
        if self.batch.delta.as_ref().is_some_and(|d| d.k == k) {
            return;
        }
        let mut next = Vec::with_capacity(k * k);
        for p in 0..k as u32 {
            for q in 0..k as u32 {
                next.push(self.rt.transition(StateId(p), StateId(q)));
            }
        }
        debug_assert_eq!(self.rt.state_count(), k, "closure must be δ-closed");
        self.batch.delta = Some(FrozenDelta { k, next });
    }

    /// Fills the scratch edge buffer with `k` edges joining live agents.
    ///
    /// With no crashed agents this is exactly the sampler's batched draw
    /// (stream-identical to `k` sequential draws). Masked samplers (see
    /// [`crate::scheduler::PairSampler::mask_live`]) never emit a crashed
    /// endpoint, so the fix-up scan finds nothing; for rejection samplers,
    /// offending slots are redrawn in place with the usual capped budget.
    fn fill_live_batch(
        &mut self,
        k: usize,
        rng: &mut impl RngCore,
    ) -> Result<(), PopulationError> {
        let starved_err =
            |live: usize| PopulationError::StarvedSchedule { live: live as u64 };
        if self.starved || self.agents.live() < 2 {
            return Err(starved_err(self.agents.live()));
        }
        let mut edges = std::mem::take(&mut self.batch.edges);
        self.sampler.sample_batch(rng, k, &mut edges);
        if self.agents.live() < self.agents.population() {
            'slots: for slot in edges.iter_mut() {
                if !self.agents.is_crashed(slot.0) && !self.agents.is_crashed(slot.1) {
                    continue;
                }
                for _ in 0..MAX_PAIR_RESAMPLES {
                    let (u, v) = self.sampler.sample(rng);
                    if !self.agents.is_crashed(u) && !self.agents.is_crashed(v) {
                        *slot = (u, v);
                        continue 'slots;
                    }
                }
                self.batch.edges = edges;
                return Err(starved_err(self.agents.live()));
            }
        }
        self.batch.edges = edges;
        Ok(())
    }

    /// Applies the buffered batch in draw order on the calling thread.
    fn apply_batch_sequential(&mut self) {
        let edges = std::mem::take(&mut self.batch.edges);
        let delta = self.batch.delta.take();
        if !Pr::ACTIVE {
            if let Some(d) = &delta {
                // The hottest loop of the engine: no probe to feed, a frozen
                // δ-table to look transitions up in. The step counters
                // accumulate in registers (one read-modify-write of the
                // `self` fields per batch, not per interaction), and an
                // ineffective interaction skips its writes entirely — the
                // store is what it read, so elision is unobservable, and it
                // keeps no-ops (the vast majority away from the convergence
                // frontier) from dirtying two random state-array lines.
                let mut effective = 0u64;
                let states = self.agents.states_mut();
                for &(u, v) in &edges {
                    let (p, q) = (states[u as usize], states[v as usize]);
                    let r = d.lookup(p, q);
                    if r != (p, q) {
                        states[u as usize] = r.0;
                        states[v as usize] = r.1;
                        effective += 1;
                    }
                }
                self.steps += edges.len() as u64;
                self.effective_steps += effective;
                self.batch.edges = edges;
                self.batch.delta = delta;
                return;
            }
        }
        for &(u, v) in &edges {
            let (p, q) = (self.agents.state(u), self.agents.state(v));
            let r = match &delta {
                Some(d) => d.lookup(p, q),
                None => self.rt.transition(p, q),
            };
            // Same store elision as the fast path above.
            if r != (p, q) {
                self.agents.apply((u, v), r);
            }
            self.note_interaction((p, q), r);
        }
        self.batch.edges = edges;
        self.batch.delta = delta;
    }

    /// Runs `steps` interactions through batched sampling and the frozen
    /// `δ`-table.
    ///
    /// Byte-identical to [`run`](Self::run) — same RNG stream, same
    /// interaction sequence, same final states and step counters — just
    /// faster, because scheduler draws are batched (independent random reads
    /// overlap in the memory pipeline) and each transition is one dense
    /// table load instead of a hash-map probe.
    ///
    /// # Errors
    ///
    /// [`PopulationError::StarvedSchedule`] if no pair of live agents can
    /// interact; interactions executed before starvation was detected remain
    /// applied.
    pub fn run_batched(
        &mut self,
        steps: u64,
        rng: &mut impl RngCore,
    ) -> Result<(), PopulationError> {
        self.refresh_frozen_delta();
        let mut remaining = steps;
        while remaining > 0 {
            let k = remaining.min(EPOCH_EDGES as u64) as usize;
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchSample);
            }
            let fill = self.fill_live_batch(k, rng);
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchSample, k as u64);
            }
            fill?;
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchApply);
            }
            self.apply_batch_sequential();
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchApply, k as u64);
            }
            remaining -= k as u64;
        }
        Ok(())
    }

    /// Stamps every edge of the buffered batch, in draw order, as
    /// independent (no earlier edge of this epoch touches either endpoint)
    /// or conflicted.
    fn classify_epoch(&mut self) {
        let AgentBatchScratch { edges, stamp, epoch, independent, .. } = &mut self.batch;
        let n = self.agents.population();
        if stamp.len() != n {
            *stamp = vec![0; n];
            *epoch = 0;
        }
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp.fill(0);
            *epoch = 1;
        }
        independent.clear();
        independent.reserve(edges.len());
        for &(u, v) in edges.iter() {
            let free = stamp[u as usize] != *epoch && stamp[v as usize] != *epoch;
            independent.push(free);
            stamp[u as usize] = *epoch;
            stamp[v as usize] = *epoch;
        }
    }

    /// Applies the buffered epoch: workers precompute every edge's
    /// transition from the pre-epoch states in disjoint chunks, then the
    /// main thread merges in draw order (precomputed where independent,
    /// recomputed where conflicted).
    fn apply_epoch(&mut self, threads: usize) {
        let edges = std::mem::take(&mut self.batch.edges);
        let mut results = std::mem::take(&mut self.batch.results);
        let independent = std::mem::take(&mut self.batch.independent);
        let delta = self.batch.delta.take();

        // Precompute from pre-epoch states. Only meaningful with a frozen
        // table: without one, evaluating a transition may intern new states,
        // and doing that from pre-epoch (possibly never-realized) pairs
        // would assign state ids in a different order than the sequential
        // engine — so the no-table fallback recomputes everything in the
        // merge instead.
        if let Some(d) = &delta {
            results.clear();
            results.resize(edges.len(), (StateId(0), StateId(0)));
            let states = self.agents.states().as_slice();
            if threads > 1 {
                let chunk = edges.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for (es, rs) in edges.chunks(chunk).zip(results.chunks_mut(chunk)) {
                        scope.spawn(move || {
                            for (&(u, v), r) in es.iter().zip(rs.iter_mut()) {
                                *r = d.lookup(states[u as usize], states[v as usize]);
                            }
                        });
                    }
                });
            } else {
                for (&(u, v), r) in edges.iter().zip(results.iter_mut()) {
                    *r = d.lookup(states[u as usize], states[v as usize]);
                }
            }
        }

        for (i, &(u, v)) in edges.iter().enumerate() {
            let (p, q) = (self.agents.state(u), self.agents.state(v));
            let r = match &delta {
                // An independent edge's endpoints are untouched by earlier
                // edges of the epoch, so the precomputed result is exactly
                // what sequential execution would produce here.
                Some(_) if independent[i] => results[i],
                Some(d) => d.lookup(p, q),
                None => self.rt.transition(p, q),
            };
            // Same store elision as the batched path: identity writes skip.
            if r != (p, q) {
                self.agents.apply((u, v), r);
            }
            self.note_interaction((p, q), r);
        }

        self.batch.edges = edges;
        self.batch.results = results;
        self.batch.independent = independent;
        self.batch.delta = delta;
    }

    /// Runs `steps` interactions, sharding each epoch of sampled edges
    /// across `threads` worker threads.
    ///
    /// The trajectory is byte-identical to [`run_batched`](Self::run_batched)
    /// (and therefore to the sequential [`run`](Self::run)) at **any**
    /// `threads` value, including 1: sampling, conflict classification, and
    /// the draw-order merge all run on the calling thread with the single
    /// `rng`, and workers only precompute pure functions of the pre-epoch
    /// states. Property-tested in `tests/agent_batch_properties.rs` and
    /// hard-asserted by the `e23_agent_engine` bench.
    ///
    /// # Errors
    ///
    /// [`PopulationError::StarvedSchedule`] as for
    /// [`run_batched`](Self::run_batched).
    pub fn run_epochs(
        &mut self,
        steps: u64,
        threads: usize,
        rng: &mut impl RngCore,
    ) -> Result<(), PopulationError> {
        let threads = threads.max(1);
        self.refresh_frozen_delta();
        let mut remaining = steps;
        while remaining > 0 {
            let k = remaining.min(EPOCH_EDGES as u64) as usize;
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchSample);
            }
            let fill = self.fill_live_batch(k, rng);
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchSample, k as u64);
            }
            fill?;
            self.classify_epoch();
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchApply);
            }
            self.apply_epoch(threads);
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchApply, k as u64);
            }
            remaining -= k as u64;
        }
        Ok(())
    }

    /// [`run_epochs`](Self::run_epochs) with the thread count resolved from
    /// the environment ([`crate::ensemble::default_threads`]: 1 under
    /// `PP_BENCH_SMOKE`, else `PP_THREADS`, else the host parallelism).
    pub fn run_sharded(
        &mut self,
        steps: u64,
        rng: &mut impl RngCore,
    ) -> Result<(), PopulationError> {
        self.run_epochs(steps, crate::ensemble::default_threads(), rng)
    }

    /// Batched counterpart of
    /// [`measure_stabilization`](Self::measure_stabilization): runs up to
    /// `horizon` interactions and reports when the output assignment last
    /// became (and stayed) `expected` on every live agent.
    ///
    /// The incremental wrong-output accounting uses a per-state lookup table
    /// instead of two runtime queries per state change, but tracks exactly
    /// the same quantity, so the report matches the sequential measurement
    /// on the same seed.
    ///
    /// # Errors
    ///
    /// [`PopulationError::StarvedSchedule`] if the schedule starves before
    /// the horizon (the sequential method instead idles through the
    /// remaining steps).
    pub fn measure_stabilization_batched(
        &mut self,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl RngCore,
    ) -> Result<StabilizationReport, PopulationError> {
        self.refresh_frozen_delta();
        let mut ok: Vec<bool> = self
            .rt
            .state_ids()
            .map(|s| self.rt.output_value(self.rt.output_of(s)) == expected)
            .collect();
        let mut wrong = self.wrong_output_count(expected);
        let mut last_wrong: Option<u64> = if wrong == 0 { None } else { Some(0) };
        let start = self.steps;
        let mut remaining = horizon;
        while remaining > 0 {
            let k = remaining.min(EPOCH_EDGES as u64) as usize;
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchSample);
            }
            let fill = self.fill_live_batch(k, rng);
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchSample, k as u64);
            }
            fill?;
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::BatchApply);
            }
            let edges = std::mem::take(&mut self.batch.edges);
            let delta = self.batch.delta.take();
            for &(u, v) in &edges {
                let (p, q) = (self.agents.state(u), self.agents.state(v));
                let r = match &delta {
                    Some(d) => d.lookup(p, q),
                    None => self.rt.transition(p, q),
                };
                // The no-table fallback can intern states mid-run; keep the
                // per-state table in sync.
                while ok.len() < self.rt.state_count() {
                    let s = StateId(ok.len() as u32);
                    ok.push(self.rt.output_value(self.rt.output_of(s)) == expected);
                }
                self.agents.apply((u, v), r);
                self.note_interaction((p, q), r);
                for (old, new) in [(p, r.0), (q, r.1)] {
                    if old == new {
                        continue;
                    }
                    match (ok[old.index()], ok[new.index()]) {
                        (true, false) => wrong += 1,
                        (false, true) => wrong -= 1,
                        _ => {}
                    }
                }
                if wrong > 0 {
                    last_wrong = Some(self.steps - start);
                }
            }
            self.batch.edges = edges;
            self.batch.delta = delta;
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::BatchApply, k as u64);
            }
            remaining -= k as u64;
        }
        Ok(StabilizationReport {
            horizon,
            stabilized_at: consensus_reached(wrong, last_wrong, 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{seeded_rng, AgentSimulation};
    use crate::error::PopulationError;
    use crate::protocol::FnProtocol;
    use crate::scheduler::{CsrScheduler, EdgeListScheduler, UniformPairScheduler};
    use rand::RngCore;

    fn epidemic() -> impl crate::protocol::Protocol<State = bool, Input = bool, Output = bool>
    {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    fn inputs(n: usize) -> Vec<bool> {
        (0..n).map(|i| i == 0).collect()
    }

    #[test]
    fn run_batched_is_byte_identical_to_sequential() {
        let n = 64;
        let mut seq = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(n),
            UniformPairScheduler::new(n),
        );
        let mut bat = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(n),
            UniformPairScheduler::new(n),
        );
        let mut rng_a = seeded_rng(42);
        let mut rng_b = seeded_rng(42);
        seq.run(10_000, &mut rng_a);
        bat.run_batched(10_000, &mut rng_b).unwrap();
        assert_eq!(seq.agents(), bat.agents());
        assert_eq!(seq.steps(), bat.steps());
        assert_eq!(seq.effective_steps(), bat.effective_steps());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams must stay aligned");
    }

    #[test]
    fn run_epochs_matches_at_any_thread_count() {
        let edges: Vec<(u32, u32)> = (0..32u32)
            .flat_map(|i| [(i, (i + 1) % 32), ((i + 1) % 32, i)])
            .collect();
        let mut base = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(32),
            CsrScheduler::new(32, &edges),
        );
        let mut rng = seeded_rng(7);
        base.run_batched(20_000, &mut rng).unwrap();
        for threads in [1usize, 2, 8] {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(),
                &inputs(32),
                CsrScheduler::new(32, &edges),
            );
            let mut rng = seeded_rng(7);
            sim.run_epochs(20_000, threads, &mut rng).unwrap();
            assert_eq!(sim.agents(), base.agents(), "threads={threads}");
            assert_eq!(sim.effective_steps(), base.effective_steps(), "threads={threads}");
        }
    }

    #[test]
    fn starved_schedule_is_a_structured_error() {
        // Two disconnected dumbbells plus two isolated agents: crashing
        // agents 0..=3 leaves agents 4 and 5 live but edgeless.
        let edges = [(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        let mut sim = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(6),
            EdgeListScheduler::new(6, edges.to_vec()),
        );
        for a in 0..=3 {
            sim.crash_agent(a);
        }
        let mut rng = seeded_rng(3);
        let before = rng.clone();
        assert_eq!(
            sim.run_batched(100, &mut rng),
            Err(PopulationError::StarvedSchedule { live: 2 })
        );
        assert_eq!(
            sim.try_step_transitions(&mut rng),
            Err(PopulationError::StarvedSchedule { live: 2 })
        );
        // Structural detection: the failing calls consumed no randomness.
        let mut a = before;
        assert_eq!(a.next_u64(), rng.next_u64());
    }

    #[test]
    fn measure_stabilization_batched_matches_sequential() {
        let n = 48;
        let mut seq = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(n),
            UniformPairScheduler::new(n),
        );
        let mut bat = AgentSimulation::from_inputs(
            epidemic(),
            &inputs(n),
            UniformPairScheduler::new(n),
        );
        let mut rng_a = seeded_rng(19);
        let mut rng_b = seeded_rng(19);
        let a = seq.measure_stabilization(&true, 30_000, &mut rng_a);
        let b = bat.measure_stabilization_batched(&true, 30_000, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }
}
