//! E23 — the agent/graph engine at scale: boxed vs CSR, sequential vs
//! batched, 1 vs 2 threads.
//!
//! Not a paper claim: this table measures what PR 8's CSR/SoA engine buys on
//! §5's restricted-interaction-graph workloads. The workload is the epidemic
//! (one-way infection) on a 2D torus — sparse, regular, weakly connected at
//! any size — swept up to 10⁷ agents with every engine, plus a 10⁸-agent
//! CSR-only row built through the sort-free `torus2d_csr` constructor (the
//! tuple-list build is skipped there: a 3.2 GB edge vector plus its sort
//! adds minutes without changing the comparison).
//!
//! Cases per population:
//!
//! * `boxed_seq` — `EdgeListScheduler` (tuple edge list) + the sequential
//!   `step` loop: two virtual RNG calls and a hash-map δ-lookup per
//!   interaction, one serialized cache miss per draw.
//! * `csr_seq` — `CsrScheduler` + the same sequential loop (isolates the
//!   layout change).
//! * `csr_batched` — `run_batched`: monomorphized batch sampling + frozen
//!   dense δ-table (isolates the batching change).
//! * `csr_sharded_t1` / `csr_sharded_t2` — `run_epochs` at 1 and 2 threads.
//!   On a single-core host the 2-thread row measures coordination overhead,
//!   not speedup; its purpose here is the byte-identity guarantee, which is
//!   hard-asserted below at every thread count.
//!
//! Non-smoke, the bench hard-asserts `boxed_seq / csr_batched ≥ 5` at the
//! largest population every engine runs (n ≈ 10⁷ ≥ 10⁶) — the PR's
//! acceptance floor, enforced where the margin is widest (≈7× measured,
//! vs ≈5.1× at n = 10⁶ where shared-host noise could flake a hard gate;
//! the JSON still records the ratio at every n for `ppbench-compare`).
//! Results land in `BENCH_e23_agent_engine.json`.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport};
use pp_core::trace::RunManifest;
use rand::RngCore;
use pp_core::{seeded_rng, AgentSimulation, FnProtocol, Protocol, Welford};
use pp_graphs::{torus2d, torus2d_csr};

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

fn patient_zero(n: usize) -> Vec<bool> {
    (0..n).map(|i| i == 0).collect()
}

/// Times `reps` measured blocks of `k` interactions on one simulation
/// (after a warmup block), returning (mean, std) ns/interaction.
fn time_blocks(
    mut run: impl FnMut(u64),
    k: u64,
    reps: u64,
) -> (f64, f64) {
    run(k / 4); // warmup: interns states, freezes δ, faults in the arrays
    let mut w = Welford::new();
    for _ in 0..reps {
        let start = Instant::now();
        run(k);
        w.push(start.elapsed().as_nanos() as f64 / k as f64);
    }
    (w.mean(), w.std_dev())
}

/// Byte-identity of the sharded trajectory: batched ≡ epochs(t) for every
/// t, including the RNG position afterwards.
fn assert_thread_count_invariance(side: usize, steps: u64) {
    let n = side * side;
    let g = torus2d_csr(side, side);
    let mut reference =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler());
    let mut rng = seeded_rng(2023);
    reference.run_batched(steps, &mut rng).unwrap();
    let ref_word = rng.next_u64();
    for threads in [1usize, 2, 8] {
        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler());
        let mut rng = seeded_rng(2023);
        sim.run_epochs(steps, threads, &mut rng).unwrap();
        assert_eq!(
            reference.agents(),
            sim.agents(),
            "sharded trajectory diverged at threads={threads}"
        );
        assert_eq!(reference.effective_steps(), sim.effective_steps());
        assert_eq!(ref_word, rng.next_u64(), "RNG diverged at threads={threads}");
    }
}

fn main() {
    println!("\nE23: agent/graph engine at scale (epidemic on a 2D torus)\n");
    let smoke = pp_bench::smoke();
    let (k, reps): (u64, u64) = if smoke { (20_000, 2) } else { (2_000_000, 3) };
    // Torus sides: n = side². 10⁸ is CSR-only (see module docs).
    let sides: &[usize] = if smoke { &[100] } else { &[100, 316, 1_000, 3_163] };
    let big_side: Option<usize> = if smoke { None } else { Some(10_000) };

    // The determinism guarantee first: cheap, and a failed identity makes
    // the timing table meaningless.
    assert_thread_count_invariance(100, if smoke { 20_000 } else { 200_000 });
    println!("sharded byte-identity: OK at threads 1/2/8\n");

    let mut report = BenchReport::new("e23_agent_engine");
    report.set_meta("k", k);
    report.set_meta("reps", reps);
    report.set_manifest(
        RunManifest::default()
            .with_protocol(if smoke {
                "epidemic@torus2d(100x100)"
            } else {
                "epidemic@torus2d(up to 10000x10000)"
            })
            .with_population(big_side.unwrap_or(*sides.last().unwrap()).pow(2) as u64)
            .with_master_seed(5)
            .with_threads(2)
            .with_detected_git_rev(),
    );

    print_header(
        &["case", "n", "ns/interaction", "std", "vs boxed"],
        &[16, 14, 14, 9, 9],
    );

    let push = |report: &mut BenchReport, case: &str, n: usize, ns: f64, std: f64, speedup: Option<f64>| {
        println!(
            "{:>16} {:>14} {:>14} {:>9} {:>9}",
            case,
            n,
            fmt(ns),
            fmt(std),
            speedup.map_or(String::new(), fmt),
        );
        let mut row: Vec<(&str, pp_bench::Value)> = vec![
            ("case", case.to_string().into()),
            ("n", (n as u64).into()),
            ("ns_per_step", ns.into()),
            ("ns_per_step_std", std.into()),
        ];
        if let Some(s) = speedup {
            row.push(("speedup_vs_boxed", s.into()));
        }
        report.push_row(row);
    };

    for &side in sides {
        let n = side * side;
        let csr = torus2d_csr(side, side);

        let boxed_sched = torus2d(side, side).scheduler();
        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), boxed_sched);
        let mut rng = seeded_rng(5);
        let (boxed_ns, boxed_std) = time_blocks(
            |steps| {
                for _ in 0..steps {
                    sim.step(&mut rng);
                }
            },
            k,
            reps,
        );
        push(&mut report, "boxed_seq", n, boxed_ns, boxed_std, None);

        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), csr.scheduler());
        let mut rng = seeded_rng(5);
        let (ns, std) = time_blocks(
            |steps| {
                for _ in 0..steps {
                    sim.step(&mut rng);
                }
            },
            k,
            reps,
        );
        push(&mut report, "csr_seq", n, ns, std, Some(boxed_ns / ns));

        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), csr.scheduler());
        let mut rng = seeded_rng(5);
        let (batched_ns, batched_std) = time_blocks(
            |steps| sim.run_batched(steps, &mut rng).unwrap(),
            k,
            reps,
        );
        push(
            &mut report,
            "csr_batched",
            n,
            batched_ns,
            batched_std,
            Some(boxed_ns / batched_ns),
        );

        for threads in [1usize, 2] {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(),
                &patient_zero(n),
                csr.scheduler(),
            );
            let mut rng = seeded_rng(5);
            let (ns, std) = time_blocks(
                |steps| sim.run_epochs(steps, threads, &mut rng).unwrap(),
                k,
                reps,
            );
            let case = if threads == 1 { "csr_sharded_t1" } else { "csr_sharded_t2" };
            push(&mut report, case, n, ns, std, Some(boxed_ns / ns));
        }

        // Acceptance floor: the CSR+batched engine must beat the boxed
        // sequential engine ≥ 5× at n ≥ 10⁶. Hard-asserted at the largest
        // swept population, where the margin is widest (see module docs);
        // skipped in smoke mode, where n and k are toy-sized.
        if !smoke && n >= 1_000_000 && side == *sides.last().unwrap() {
            let speedup = boxed_ns / batched_ns;
            assert!(
                speedup >= 5.0,
                "csr_batched speedup {speedup:.2}x over boxed_seq at n={n} is below the 5x floor"
            );
        }
    }

    if let Some(side) = big_side {
        let n = side * side;
        println!("  (n=10^8: boxed tuple-list build skipped — CSR cases only)");
        let csr = torus2d_csr(side, side);
        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), csr.scheduler());
        let mut rng = seeded_rng(5);
        let (ns, std) = time_blocks(
            |steps| sim.run_batched(steps, &mut rng).unwrap(),
            k,
            reps,
        );
        push(&mut report, "csr_batched", n, ns, std, None);

        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), csr.scheduler());
        let mut rng = seeded_rng(5);
        let (ns, std) = time_blocks(
            |steps| sim.run_epochs(steps, 2, &mut rng).unwrap(),
            k,
            reps,
        );
        push(&mut report, "csr_sharded_t2", n, ns, std, None);
    }

    report.write();
}
