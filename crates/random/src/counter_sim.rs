//! Simulating a counter machine on a population — §6.1 "Simulating
//! counters" / "The benefits of a leader".
//!
//! A designated *leader* stores the finite-state control (the program
//! counter of a [`CounterMachine`]); every other agent except the *timer*
//! stores a vector of small counter shares in `0..=M`. The value of
//! counter `i` is the sum of the `i`-th shares across the population, so a
//! counter holds up to `(n−2)·M = O(n)` — the paper's "counters of
//! capacity O(n)".
//!
//! * **Increment**: the leader waits for an encounter with an agent whose
//!   share is below `M` and increments it (never errs; §6.1 notes the
//!   timer is not used here).
//! * **Decrement / zero test** (`DecJz`): the leader waits for either an
//!   agent with a nonzero share (decrement it, take the nonzero branch) or
//!   `k` consecutive timer encounters (take the zero branch). The zero
//!   branch can be *wrong* with probability `Θ(n^{−k}/m)` (Theorem 9) —
//!   the price of sequencing and iteration in this model.
//!
//! Interactions not involving the leader are no-ops and are sampled in
//! bulk as geometric gaps (a pair involves the leader with probability
//! `2/n`).

use rand::Rng;

use pp_machines::counter::{CounterMachine, Instr};

use crate::zero_test::sample_geometric;

/// Why a population run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopulationRunOutcome {
    /// The program halted; counter values are the population sums.
    Halted {
        /// Final counter values (sums of shares).
        counters: Vec<u128>,
        /// Total population interactions elapsed.
        interactions: u64,
        /// Number of zero-branch decisions that were actually wrong
        /// (known to the simulator, invisible to the agents).
        silent_errors: u64,
    },
    /// An increment found the population at full capacity.
    CapacityExceeded {
        /// The counter being incremented.
        counter: usize,
    },
    /// The interaction budget ran out.
    OutOfInteractions,
}

impl PopulationRunOutcome {
    /// The halted counter values, if the run halted.
    pub fn counters(&self) -> Option<&[u128]> {
        match self {
            Self::Halted { counters, .. } => Some(counters),
            _ => None,
        }
    }
}

/// A population executing a counter machine under uniform random pairing.
#[derive(Debug, Clone)]
pub struct PopulationCounterMachine {
    program: CounterMachine,
    n: usize,
    k: u32,
    max_share: u8,
}

impl PopulationCounterMachine {
    /// Creates a population of `n` agents (1 leader + 1 timer + `n − 2`
    /// share holders) executing `program`, with zero-test waiting
    /// parameter `k` and per-agent share cap `max_share` (the paper's `M`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `k < 1`, or `max_share < 1`.
    pub fn new(program: CounterMachine, n: usize, k: u32, max_share: u8) -> Self {
        assert!(n >= 4, "population must have at least 4 agents");
        assert!(k >= 1, "waiting parameter must be at least 1");
        assert!(max_share >= 1, "share cap must be at least 1");
        Self { program, n, k, max_share }
    }

    /// Total capacity of each simulated counter: `(n−2)·M`.
    pub fn capacity(&self) -> u128 {
        ((self.n - 2) as u128) * u128::from(self.max_share)
    }

    /// The compiled program.
    pub fn program(&self) -> &CounterMachine {
        &self.program
    }

    /// Runs the program with the given initial counter values, for at most
    /// `max_interactions` population interactions.
    ///
    /// # Panics
    ///
    /// Panics if an initial value exceeds [`capacity`](Self::capacity) or
    /// the number of initial values differs from the program's counters.
    pub fn run(
        &self,
        initial: &[u128],
        max_interactions: u64,
        rng: &mut impl Rng,
    ) -> PopulationRunOutcome {
        let nc = self.program.num_counters();
        assert_eq!(initial.len(), nc, "initial value arity mismatch");
        let holders = self.n - 2;
        // shares[a][c] = share of counter c held by agent a.
        let mut shares = vec![vec![0u8; nc]; holders];
        for (c, &v) in initial.iter().enumerate() {
            assert!(v <= self.capacity(), "initial value {v} exceeds capacity");
            let mut rest = v;
            for agent in shares.iter_mut() {
                if rest == 0 {
                    break;
                }
                let take = rest.min(u128::from(self.max_share)) as u8;
                agent[c] = take;
                rest -= u128::from(take);
            }
        }
        // Nonzero/full-agent bookkeeping for fast branch checks.
        let mut totals: Vec<u128> = initial.to_vec();

        let p_leader = 2.0 / self.n as f64;
        let mut interactions = 0u64;
        let mut silent_errors = 0u64;
        let mut pc = 0usize;

        'program: loop {
            match self.program.instructions()[pc] {
                Instr::Halt => {
                    return PopulationRunOutcome::Halted {
                        counters: totals,
                        interactions,
                        silent_errors,
                    };
                }
                Instr::Inc { counter, next } => {
                    if totals[counter] >= self.capacity() {
                        return PopulationRunOutcome::CapacityExceeded { counter };
                    }
                    // Wait for an agent with a non-full share.
                    loop {
                        interactions += sample_geometric(p_leader, rng);
                        if interactions >= max_interactions {
                            return PopulationRunOutcome::OutOfInteractions;
                        }
                        let t = rng.gen_range(0..self.n - 1);
                        if t == 0 {
                            continue; // the timer; irrelevant here
                        }
                        let a = t - 1;
                        if shares[a][counter] < self.max_share {
                            shares[a][counter] += 1;
                            totals[counter] += 1;
                            pc = next;
                            continue 'program;
                        }
                    }
                }
                Instr::DecJz { counter, nonzero, zero } => {
                    let mut streak = 0u32;
                    loop {
                        interactions += sample_geometric(p_leader, rng);
                        if interactions >= max_interactions {
                            return PopulationRunOutcome::OutOfInteractions;
                        }
                        let t = rng.gen_range(0..self.n - 1);
                        if t == 0 {
                            // The timer.
                            streak += 1;
                            if streak >= self.k {
                                if totals[counter] != 0 {
                                    silent_errors += 1;
                                }
                                pc = zero;
                                continue 'program;
                            }
                            continue;
                        }
                        let a = t - 1;
                        if shares[a][counter] > 0 {
                            shares[a][counter] -= 1;
                            totals[counter] -= 1;
                            pc = nonzero;
                            continue 'program;
                        }
                        streak = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_machines::programs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn addition_on_population_matches_direct_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let pcm = PopulationCounterMachine::new(programs::cm_add(), 32, 2, 2);
        for (a, b) in [(0u128, 0u128), (3, 4), (10, 7), (25, 5)] {
            let direct = programs::cm_add().run(&[a, b], 10_000).unwrap();
            let out = pcm.run(&[a, b], 50_000_000, &mut rng);
            match out {
                PopulationRunOutcome::Halted { counters, silent_errors, .. } => {
                    if silent_errors == 0 {
                        assert_eq!(counters, direct.counters, "{a}+{b}");
                    }
                }
                other => panic!("did not halt: {other:?}"),
            }
        }
    }

    #[test]
    fn divmod_on_population() {
        let mut rng = StdRng::seed_from_u64(5);
        let pcm = PopulationCounterMachine::new(programs::cm_divmod(3), 40, 2, 2);
        let mut exact = 0u32;
        let trials = 15;
        for t in 0..trials {
            let n = u128::from(t % 14);
            let out = pcm.run(&[n, 0, 0], 100_000_000, &mut rng);
            if let PopulationRunOutcome::Halted { counters, silent_errors, .. } = out {
                if silent_errors == 0 {
                    assert_eq!(counters[1], n / 3, "quotient of {n}");
                    assert_eq!(counters[2], n % 3, "remainder of {n}");
                    exact += 1;
                }
            } else {
                panic!("did not halt: {out:?}");
            }
        }
        assert!(exact >= trials - 5, "too many erroneous runs: {exact}/{trials}");
    }

    #[test]
    fn capacity_errors_are_detected() {
        // 4 agents → 2 holders × M=1 → capacity 2; incrementing thrice
        // must fail.
        let m = pp_machines::counter::CounterMachine::new(
            vec![
                Instr::Inc { counter: 0, next: 1 },
                Instr::Inc { counter: 0, next: 2 },
                Instr::Inc { counter: 0, next: 3 },
                Instr::Halt,
            ],
            1,
        )
        .unwrap();
        let pcm = PopulationCounterMachine::new(m, 4, 2, 1);
        assert_eq!(pcm.capacity(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let out = pcm.run(&[0], 10_000_000, &mut rng);
        assert_eq!(out, PopulationRunOutcome::CapacityExceeded { counter: 0 });
    }

    #[test]
    fn zero_test_error_rate_decreases_with_k() {
        // Program: single DecJz on a counter holding 1; the zero branch is
        // an error. Measure error frequency for k=1 vs k=3.
        let mk = || {
            pp_machines::counter::CounterMachine::new(
                vec![
                    Instr::DecJz { counter: 0, nonzero: 1, zero: 1 },
                    Instr::Halt,
                ],
                1,
            )
            .unwrap()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let rate = |k: u32, rng: &mut StdRng| {
            let pcm = PopulationCounterMachine::new(mk(), 16, k, 2);
            let trials = 20_000;
            let mut errs = 0u64;
            for _ in 0..trials {
                if let PopulationRunOutcome::Halted { silent_errors, .. } =
                    pcm.run(&[1], 10_000_000, rng)
                {
                    errs += silent_errors;
                }
            }
            errs as f64 / trials as f64
        };
        let r1 = rate(1, &mut rng);
        let r3 = rate(3, &mut rng);
        assert!(
            r3 < r1 / 20.0,
            "error rate must drop sharply with k: k=1 {r1:.5}, k=3 {r3:.5}"
        );
    }

    #[test]
    fn out_of_interactions_reported() {
        let pcm = PopulationCounterMachine::new(programs::cm_add(), 32, 4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            pcm.run(&[20, 20], 5, &mut rng),
            PopulationRunOutcome::OutOfInteractions
        );
    }
}
