//! The [`Protocol`] trait: the paper's `(X, Y, Q, I, O, δ)` tuple (§3.1).

use std::fmt::Debug;
use std::hash::Hash;

/// A population protocol `A = (X, Y, Q, I, O, δ)` (§3.1 of the paper).
///
/// * `X` is the [`Input`](Protocol::Input) alphabet, `Y` the
///   [`Output`](Protocol::Output) alphabet, and `Q` the
///   [`State`](Protocol::State) set — all finite.
/// * [`input`](Protocol::input) is the input function `I : X → Q` applied to
///   each agent's sensor reading at the global start signal.
/// * [`output`](Protocol::output) is the output function `O : Q → Y` read off
///   each agent's current state.
/// * [`delta`](Protocol::delta) is the joint transition function
///   `δ : Q × Q → Q × Q`; when agents `u` (initiator) and `v` (responder)
///   interact in states `(p, q)`, they move to `δ(p, q) = (p', q')`. The
///   asymmetric roles are a fundamental assumption of the model
///   (symmetry-breaking never arises within it).
///
/// Implementations must be *deterministic* and must use a finite state set:
/// every state reachable from the image of `I` by iterating `δ` must belong
/// to a finite set. The runtime interns states dynamically and can enforce a
/// bound (see [`DenseRuntime`](crate::registry::DenseRuntime)).
///
/// # Example
///
/// The parity protocol (is the number of `1` inputs odd?):
///
/// ```
/// use pp_core::Protocol;
///
/// /// State = (is-leader, parity-bit, output-bit).
/// struct Parity;
///
/// impl Protocol for Parity {
///     type State = (bool, bool, bool);
///     type Input = bool;
///     type Output = bool;
///
///     fn input(&self, &b: &bool) -> Self::State {
///         (true, b, b)
///     }
///     fn output(&self, &(_, _, out): &Self::State) -> bool {
///         out
///     }
///     fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State) {
///         match (*p, *q) {
///             // Two leaders merge: initiator keeps the XOR, responder drops out.
///             ((true, a, _), (true, b, _)) => {
///                 let x = a ^ b;
///                 ((true, x, x), (false, false, x))
///             }
///             // A leader broadcasts its current parity.
///             ((true, a, _), (false, _, _)) => ((true, a, a), (false, false, a)),
///             ((false, _, _), (true, b, _)) => ((false, false, b), (true, b, b)),
///             (p, q) => (p, q),
///         }
///     }
/// }
/// ```
pub trait Protocol {
    /// Protocol state set `Q` (finite).
    type State: Clone + Eq + Hash + Debug;
    /// Input alphabet `X` (finite).
    type Input: Clone + Eq + Hash + Debug;
    /// Output alphabet `Y` (finite).
    type Output: Clone + Eq + Hash + Debug;

    /// The input function `I : X → Q`.
    fn input(&self, x: &Self::Input) -> Self::State;

    /// The output function `O : Q → Y`.
    fn output(&self, q: &Self::State) -> Self::Output;

    /// The transition function `δ : Q × Q → Q × Q`, with the first argument
    /// the *initiator* and the second the *responder*.
    fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State);
}

/// A protocol whose transitions may consume one *synthesized coin* per
/// participant — the randomized-transition extension used by the
/// self-stabilizing protocol family (see `pp-protocols`' `ranking` module).
///
/// The model stays finite-state: the coin is not part of `Q`. The agent
/// engine ([`AgentSimulation`](crate::AgentSimulation)) carries one
/// `Option<bool>` coin per agent, passes both participants' coins to
/// [`delta_coined`](Self::delta_coined), and refreshes both coins from the
/// schedule's RNG after every interaction
/// ([`step_coined`](crate::AgentSimulation::step_coined)). A coin is `None`
/// until its agent's first interaction — and after adversarial
/// initialization ([`AdversarialInit`](crate::faults::AdversarialInit)),
/// which deliberately leaves coins unset: a self-stabilizing protocol may
/// not assume anything about coin history. Implementations must treat
/// `None` conservatively (typically: an undecidable duel is a no-op).
///
/// On the count-based engine, which has no per-agent storage, wrap the
/// protocol in [`SyntheticCoins`] to embed
/// a deterministic coin in the state itself.
pub trait CoinProtocol: Protocol {
    /// The coin-consuming transition function
    /// `δ : Q × Q × coin² → Q × Q`; `coins.0` belongs to the initiator,
    /// `coins.1` to the responder.
    fn delta_coined(
        &self,
        p: &Self::State,
        q: &Self::State,
        coins: (Option<bool>, Option<bool>),
    ) -> (Self::State, Self::State);
}

/// Blanket implementation so `&P` and `Box<P>` are protocols too.
impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;
    type Input = P::Input;
    type Output = P::Output;

    fn input(&self, x: &Self::Input) -> Self::State {
        (**self).input(x)
    }
    fn output(&self, q: &Self::State) -> Self::Output {
        (**self).output(q)
    }
    fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State) {
        (**self).delta(p, q)
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    type State = P::State;
    type Input = P::Input;
    type Output = P::Output;

    fn input(&self, x: &Self::Input) -> Self::State {
        (**self).input(x)
    }
    fn output(&self, q: &Self::State) -> Self::Output {
        (**self).output(q)
    }
    fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State) {
        (**self).delta(p, q)
    }
}

/// A protocol assembled from three closures — convenient for tests, examples
/// and one-off protocols.
///
/// # Example
///
/// ```
/// use pp_core::FnProtocol;
///
/// // "Epidemic": one infected agent infects the whole population.
/// let epidemic = FnProtocol::new(
///     |&b: &bool| b,
///     |&q: &bool| q,
///     |&p: &bool, &q: &bool| (p || q, p || q),
/// );
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnProtocol<S, X, Y, FI, FO, FD> {
    input_fn: FI,
    output_fn: FO,
    delta_fn: FD,
    #[allow(clippy::type_complexity)]
    _marker: std::marker::PhantomData<fn(&X, &S) -> (S, Y)>,
}

impl<S, X, Y, FI, FO, FD> FnProtocol<S, X, Y, FI, FO, FD>
where
    FI: Fn(&X) -> S,
    FO: Fn(&S) -> Y,
    FD: Fn(&S, &S) -> (S, S),
{
    /// Creates a protocol from an input map, an output map, and a joint
    /// transition function.
    pub fn new(input_fn: FI, output_fn: FO, delta_fn: FD) -> Self {
        Self { input_fn, output_fn, delta_fn, _marker: std::marker::PhantomData }
    }
}

impl<S, X, Y, FI, FO, FD> Protocol for FnProtocol<S, X, Y, FI, FO, FD>
where
    S: Clone + Eq + Hash + Debug,
    X: Clone + Eq + Hash + Debug,
    Y: Clone + Eq + Hash + Debug,
    FI: Fn(&X) -> S,
    FO: Fn(&S) -> Y,
    FD: Fn(&S, &S) -> (S, S),
{
    type State = S;
    type Input = X;
    type Output = Y;

    fn input(&self, x: &X) -> S {
        (self.input_fn)(x)
    }
    fn output(&self, q: &S) -> Y {
        (self.output_fn)(q)
    }
    fn delta(&self, p: &S, q: &S) -> (S, S) {
        (self.delta_fn)(p, q)
    }
}

/// Runs a [`CoinProtocol`] on the count-based engine by embedding a
/// deterministic coin in each agent's state.
///
/// State is `(S, bool)`: the wrapped protocol's state plus the agent's
/// current coin. Each interaction feeds both coins to
/// [`delta_coined`](CoinProtocol::delta_coined) (always `Some`), then
/// refreshes them *deterministically*: the initiator takes the negation of
/// the responder's coin and the responder takes the initiator's old coin,
/// so a pair that keeps meeting cycles through all four coin combinations
/// — every duel is decided within two encounters. This is derandomization,
/// not randomness: coin quality rests on the schedule's mixing, which is
/// exactly the §6 conjugating-automata assumption. For true per-agent RNG
/// coins use [`AgentSimulation::step_coined`](crate::AgentSimulation::step_coined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticCoins<P>(pub P);

impl<P: CoinProtocol> Protocol for SyntheticCoins<P> {
    type State = (P::State, bool);
    type Input = P::Input;
    type Output = P::Output;

    fn input(&self, x: &Self::Input) -> Self::State {
        (self.0.input(x), false)
    }

    fn output(&self, (q, _): &Self::State) -> Self::Output {
        self.0.output(q)
    }

    fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State) {
        let (ps, cp) = p;
        let (qs, cq) = q;
        let (p2, q2) = self.0.delta_coined(ps, qs, (Some(*cp), Some(*cq)));
        ((p2, !cq), (q2, *cp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct CountToFive;

    impl Protocol for CountToFive {
        type State = u8;
        type Input = bool;
        type Output = bool;

        fn input(&self, &b: &bool) -> u8 {
            u8::from(b)
        }
        fn output(&self, &q: &u8) -> bool {
            q == 5
        }
        fn delta(&self, &p: &u8, &q: &u8) -> (u8, u8) {
            if p + q >= 5 {
                (5, 5)
            } else {
                (p + q, 0)
            }
        }
    }

    #[test]
    fn count_to_five_transitions_match_paper() {
        // §3.1 example: δ(q_i, q_j) = (q_{i+j}, q_0) when i+j < 5.
        let p = CountToFive;
        assert_eq!(p.delta(&1, &1), (2, 0));
        assert_eq!(p.delta(&2, &2), (4, 0));
        assert_eq!(p.delta(&0, &0), (0, 0));
        // ... and (q5, q5) once the sum reaches 5.
        assert_eq!(p.delta(&2, &3), (5, 5));
        assert_eq!(p.delta(&5, &0), (5, 5));
    }

    #[test]
    fn reference_and_box_forward() {
        let p = CountToFive;
        let r: &dyn Protocol<State = u8, Input = bool, Output = bool> = &p;
        assert_eq!(r.delta(&4, &4), (5, 5));
        let b: Box<dyn Protocol<State = u8, Input = bool, Output = bool>> = Box::new(CountToFive);
        assert_eq!(b.input(&true), 1);
        assert!(!b.output(&4));
    }

    #[test]
    fn fn_protocol_epidemic() {
        let epidemic = FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        );
        assert_eq!(epidemic.delta(&true, &false), (true, true));
        assert_eq!(epidemic.delta(&false, &false), (false, false));
        assert!(epidemic.output(&true));
    }
}
