//! The §1 "flock of birds" protocols: absolute and relative count
//! thresholds.

use pp_core::Protocol;

use crate::linear::{LinState, LinearProtocolError, ThresholdProtocol};

/// Count-to-`k`: stably computes "at least `k` agents have input `1`"
/// (the paper's opening scenario with `k = 5`, formalized in §3.1).
///
/// States are `q₀ … q_k`; `q_k` is the alert state, copied by everyone.
/// Transitions: `δ(qᵢ, qⱼ) = (q_{i+j}, q₀)` if `i + j < k`, else
/// `(q_k, q_k)`.
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::CountThreshold;
///
/// let mut sim = Simulation::from_counts(CountThreshold::new(5), [(true, 6), (false, 94)]);
/// let mut rng = seeded_rng(3);
/// let rep = sim.measure_stabilization(&true, 300_000, &mut rng);
/// assert!(rep.converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountThreshold {
    k: u32,
}

impl CountThreshold {
    /// Creates the count-to-`k` protocol.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the predicate would be constantly true and needs
    /// no counting).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "threshold k must be at least 1");
        Self { k }
    }

    /// The threshold `k`.
    pub fn threshold(&self) -> u32 {
        self.k
    }

    /// Ground truth: is the number of `true` inputs at least `k`?
    pub fn eval(&self, ones: u64) -> bool {
        ones >= u64::from(self.k)
    }
}

impl Protocol for CountThreshold {
    /// `0 ..= k`, with `k` the alert state.
    type State = u32;
    type Input = bool;
    type Output = bool;

    fn input(&self, &b: &bool) -> u32 {
        u32::from(b)
    }

    fn output(&self, &q: &u32) -> bool {
        q == self.k
    }

    fn delta(&self, &p: &u32, &q: &u32) -> (u32, u32) {
        if p + q >= self.k {
            (self.k, self.k)
        } else {
            (p + q, 0)
        }
    }
}

/// Relative threshold: stably computes "at least `num/den` of the agents
/// have input `1`" — the paper's "do at least 5% of the birds have elevated
/// temperatures?" question (§1, §4.2 example).
///
/// With `x₀` normal and `x₁` elevated agents, the predicate
/// `x₁ ≥ (num/den)(x₀ + x₁)` rearranges exactly to the Lemma 5 threshold
/// `num·x₀ + (num − den)·x₁ < 1`, so this type is a thin input-relabeling
/// wrapper around [`ThresholdProtocol`].
///
/// # Example
///
/// ```
/// use pp_protocols::PercentThreshold;
///
/// // "At least 5% elevated" = 1/20.
/// let p = PercentThreshold::new(1, 20).unwrap();
/// assert!(p.eval(19, 1));   // exactly 5%
/// assert!(!p.eval(20, 1));  // just below
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PercentThreshold {
    inner: ThresholdProtocol,
    num: i64,
    den: i64,
}

impl PercentThreshold {
    /// Creates the protocol for "at least `num/den` of the agents are `1`".
    ///
    /// # Errors
    ///
    /// Returns an error if `den == 0` or `num > den` (an unsatisfiable
    /// fraction above 1) — both indicate a caller bug surfaced as
    /// [`LinearProtocolError`].
    pub fn new(num: i64, den: i64) -> Result<Self, LinearProtocolError> {
        if den <= 0 || num < 0 || num > den {
            // Reuse the library error type; a fraction outside [0, 1] has no
            // meaningful coefficient encoding.
            return Err(LinearProtocolError::EmptyCoefficients);
        }
        // x1·den ≥ num·(x0+x1)  ⇔  num·x0 + (num−den)·x1 ≤ 0
        //                       ⇔  num·x0 + (num−den)·x1 < 1.
        let inner = ThresholdProtocol::new(vec![num, num - den], 1)?;
        Ok(Self { inner, num, den })
    }

    /// Ground truth on `(normal, elevated)` counts.
    pub fn eval(&self, x0: u64, x1: u64) -> bool {
        let x0 = i64::try_from(x0).expect("count too large");
        let x1 = i64::try_from(x1).expect("count too large");
        x1 * self.den >= self.num * (x0 + x1)
    }
}

impl Protocol for PercentThreshold {
    type State = LinState;
    type Input = bool;
    type Output = bool;

    fn input(&self, &elevated: &bool) -> LinState {
        self.inner.input(&usize::from(elevated))
    }

    /// The inner `Σ < 1` verdict: `true` ⇔ fraction reached.
    fn output(&self, q: &LinState) -> bool {
        q.out
    }

    fn delta(&self, p: &LinState, q: &LinState) -> (LinState, LinState) {
        self.inner.delta(p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn count_threshold_transition_table_matches_paper() {
        let p = CountThreshold::new(5);
        assert_eq!(p.delta(&1, &1), (2, 0));
        assert_eq!(p.delta(&4, &0), (4, 0));
        assert_eq!(p.delta(&4, &1), (5, 5));
        assert_eq!(p.delta(&5, &0), (5, 5));
        assert_eq!(p.delta(&5, &5), (5, 5));
        assert!(p.output(&5));
        assert!(!p.output(&4));
    }

    #[test]
    fn count_threshold_paper_example_execution() {
        // §3.2 worked example: inputs (0,1,0,1,1,1), encounters
        // (2,4), (6,5), (2,6), (3,2) — per-agent simulation via scripted
        // schedule. Agents are 0-indexed here.
        use pp_core::scheduler::ScriptedScheduler;
        use pp_core::AgentSimulation;

        let inputs = [false, true, false, true, true, true];
        let script = vec![(1, 3), (5, 4), (1, 5), (2, 1)];
        let mut sim = AgentSimulation::from_inputs(
            CountThreshold::new(5),
            &inputs,
            ScriptedScheduler::new(6, script),
        );
        let mut rng = seeded_rng(0);
        sim.run(4, &mut rng);
        // Final configuration: agent 2 holds q4, everyone else q0.
        let states: Vec<u32> = (0..6).map(|a| *sim.state_of(a)).collect();
        assert_eq!(states, vec![0, 0, 4, 0, 0, 0]);
        assert_eq!(sim.consensus_output(), Some(&false));
    }

    #[test]
    fn count_threshold_eval() {
        let p = CountThreshold::new(3);
        assert!(!p.eval(2));
        assert!(p.eval(3));
        assert!(p.eval(30));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        CountThreshold::new(0);
    }

    #[test]
    fn percent_threshold_ground_truth_5pct() {
        let p = PercentThreshold::new(1, 20).unwrap();
        assert!(p.eval(0, 1)); // 100%
        assert!(p.eval(19, 1)); // 5%
        assert!(!p.eval(39, 1)); // 2.5%
        assert!(p.eval(38, 2)); // exactly 5%
        assert!(!p.eval(1, 0)); // 0%
    }

    #[test]
    fn percent_threshold_rejects_bad_fractions() {
        assert!(PercentThreshold::new(1, 0).is_err());
        assert!(PercentThreshold::new(3, 2).is_err());
        assert!(PercentThreshold::new(-1, 2).is_err());
    }

    #[test]
    fn percent_threshold_stabilizes_both_ways() {
        let mut rng = seeded_rng(17);
        // 2 elevated of 40 = 5%: true.
        let mut sim =
            Simulation::from_counts(PercentThreshold::new(1, 20).unwrap(), [(false, 38), (true, 2)]);
        let rep = sim.measure_stabilization(&true, 400_000, &mut rng);
        assert!(rep.converged(), "5% case must accept");

        // 1 elevated of 40 = 2.5%: false.
        let mut sim =
            Simulation::from_counts(PercentThreshold::new(1, 20).unwrap(), [(false, 39), (true, 1)]);
        let rep = sim.measure_stabilization(&false, 400_000, &mut rng);
        assert!(rep.converged(), "2.5% case must reject");
    }

    proptest::proptest! {
        #[test]
        fn prop_count_threshold_sum_invariant(p in 0u32..5, q in 0u32..5) {
            // Below the alert threshold the token count i+j is conserved.
            let proto = CountThreshold::new(5);
            let (a, b) = proto.delta(&p, &q);
            if p + q < 5 {
                proptest::prop_assert_eq!(a + b, p + q);
            } else {
                proptest::prop_assert_eq!((a, b), (5, 5));
            }
        }

        #[test]
        fn prop_percent_matches_linear_rearrangement(x0 in 0u64..50, x1 in 0u64..50) {
            let p = PercentThreshold::new(1, 20).unwrap();
            let lhs = p.eval(x0, x1);
            let rhs = 20 * x1 >= x0 + x1; // the paper's 20·x1 ≥ x0 + x1 form
            proptest::prop_assert_eq!(lhs, rhs);
        }
    }
}
