//! E10 — Theorem 7 / Fig. 1: the baton simulator runs complete-graph
//! protocols on arbitrary weakly-connected graphs.
//!
//! Majority on the complete graph (bare protocol) vs the transformed
//! protocol A′ on complete / line / cycle / star / random graphs. The
//! paper proves correctness, not speed — the measured slowdown factors
//! quantify the price of generality.

use pp_bench::{fmt, mean, print_header};
use pp_core::ensemble::Ensemble;
use pp_core::{seeded_rng, AgentSimulation, Simulation};
use pp_graphs as graphs;
use pp_protocols::{majority, GraphSimulator};

fn main() {
    let n = 10usize;
    let ones = 6usize;
    let expected = true;
    println!("\nE10: Theorem 7 — majority via the Fig. 1 simulator, n = {n}, {ones} ones\n");
    print_header(&["graph", "edges", "runs", "E[stabilize]", "slowdown"], &[16, 6, 5, 14, 10]);

    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < ones)).collect();
    let trials = if pp_bench::smoke() { 3u64 } else { 30u64 };

    // Baseline: bare protocol on the complete graph. Trials run on the
    // ensemble executor; offset seeding keeps trial `i` on the former
    // `seeded_rng(i)` stream so the means are unchanged.
    let base_report = Ensemble::new(trials, 0).legacy_offset_seeds().measure_stabilization(
        |_trial| {
            Simulation::from_counts(
                majority(),
                [(0usize, (n - ones) as u64), (1usize, ones as u64)],
            )
        },
        &expected,
        400_000,
    );
    assert_eq!(base_report.converged(), trials, "baseline stabilizes");
    let base = mean(&base_report.values());
    println!(
        "{:>16} {:>6} {:>5} {:>14} {:>10}",
        "bare (complete)",
        n * (n - 1),
        trials,
        fmt(base),
        fmt(1.0)
    );

    let mut rng0 = seeded_rng(99);
    let cases: Vec<(&str, graphs::InteractionGraph)> = vec![
        ("A' complete", graphs::complete(n)),
        ("A' line", graphs::undirected_line(n)),
        ("A' cycle", graphs::undirected_cycle(n)),
        ("A' star", graphs::star(n)),
        ("A' random(0.3)", graphs::erdos_renyi_connected(n, 0.3, &mut rng0)),
    ];
    for (name, g) in cases {
        let report = Ensemble::new(trials, 1000).legacy_offset_seeds().measure_stabilization_agents(
            |_trial| {
                AgentSimulation::from_inputs(
                    GraphSimulator::new(majority()),
                    &inputs,
                    g.scheduler(),
                )
            },
            &expected,
            4_000_000,
        );
        assert_eq!(report.converged(), trials, "{name} stabilizes");
        let m = mean(&report.values());
        println!(
            "{:>16} {:>6} {:>5} {:>14} {:>10}",
            name,
            g.edge_count(),
            trials,
            fmt(m),
            fmt(m / base)
        );
    }

    println!("\npaper: A' stably computes the predicate on every weakly-connected graph;");
    println!("sparser graphs pay a polynomial slowdown (state tokens random-walk)\n");
}
