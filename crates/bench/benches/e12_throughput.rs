//! E12 — engineering throughput of the simulation engines (criterion).
//!
//! Not a paper claim: this table documents the cost of one interaction in
//! the count-based engine (O(|Q|), independent of n) and the agent-based
//! engine, so experiment budgets elsewhere can be sized.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_core::{seeded_rng, AgentSimulation, Simulation};
use pp_core::scheduler::UniformPairScheduler;
use pp_presburger::{compile::compile_parsed, parse};
use pp_protocols::{majority, CountThreshold, GraphSimulator};

fn bench_count_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_engine");
    for &n in &[1_000u64, 100_000, 10_000_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("majority_step", n), &n, |b, &n| {
            let mut sim =
                Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
            let mut rng = seeded_rng(1);
            b.iter(|| sim.step(&mut rng));
        });
    }
    group.bench_function("count_to_5_step_n1e6", |b| {
        let mut sim =
            Simulation::from_counts(CountThreshold::new(5), [(true, 10), (false, 999_990)]);
        let mut rng = seeded_rng(2);
        b.iter(|| sim.step(&mut rng));
    });
    group.bench_function("compiled_formula_step_n1e4", |b| {
        let proto = compile_parsed(&parse("b < a /\\ a = 1 mod 3").unwrap()).unwrap();
        let mut sim = Simulation::from_counts(proto, [(0usize, 5_000), (1usize, 5_001)]);
        let mut rng = seeded_rng(3);
        b.iter(|| sim.step(&mut rng));
    });
    group.finish();
}

fn bench_leap_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("leap_engine");
    // Whole epidemic runs: the leaping engine fast-forwards no-ops, so a
    // full run to quiescence is n−1 leaps regardless of how many
    // interactions they span.
    for &n in &[1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("epidemic_full_run", n), &n, |b, &n| {
            let mut rng = seeded_rng(9);
            b.iter(|| {
                let epidemic = pp_core::FnProtocol::new(
                    |&b: &bool| b,
                    |&q: &bool| q,
                    |&p: &bool, &q: &bool| (p || q, p || q),
                );
                let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, n - 1)]);
                sim.run_to_quiescence(u64::MAX, &mut rng).expect("quiesces")
            });
        });
    }
    group.finish();
}

fn bench_agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_engine");
    for &n in &[100usize, 10_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("graphsim_step", n), &n, |b, &n| {
            let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 2 == 0)).collect();
            let mut sim = AgentSimulation::from_inputs(
                GraphSimulator::new(majority()),
                &inputs,
                UniformPairScheduler::new(n),
            );
            let mut rng = seeded_rng(4);
            b.iter(|| sim.step(&mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_count_engine, bench_leap_engine, bench_agent_engine
}
criterion_main!(benches);
