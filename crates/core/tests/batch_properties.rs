//! Correctness properties of the batched engine (`pp_core::batch`):
//! `run_batched` must preserve the population and the closed state space,
//! keep its counters exact, stay probe-transparent, and — the heart of the
//! exactness claim — produce the *same distribution* over configurations as
//! the sequential `step` path (checked by total-variation distance on a
//! small population, where every batch ends in a collision interaction).

use std::collections::HashMap;

use pp_core::config::CanonicalConfig;
use pp_core::observe::{MetricsProbe, TrajectoryProbe};
use pp_core::{seeded_rng, FnProtocol, Protocol, Simulation};
use proptest::prelude::*;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Three-state approximate majority: transitions in every direction, so the
/// batch sampler's grouping and the collision draw see a rich rule set.
fn approx_majority() -> impl Protocol<State = u8, Input = u8, Output = u8> {
    // 0 = zero, 1 = one, 2 = blank.
    FnProtocol::new(
        |&x: &u8| x,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| match (p, q) {
            (0, 1) => (0, 2),
            (1, 0) => (1, 2),
            (0, 2) => (0, 0),
            (1, 2) => (1, 1),
            _ => (p, q),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `mvhg_ordered_into` marginals at tiny n: whatever the processing
    /// permutation, category `i`'s marginal is `Hypergeometric(n, cᵢ, m)`,
    /// so over many seeded sweeps the empirical mean must track `m·cᵢ/n`
    /// (and the invariants `Σout = m`, `outᵢ ≤ cᵢ` must hold exactly).
    #[test]
    fn mvhg_ordered_marginals_at_tiny_n(
        seed in 0u64..500,
        c0 in 0u64..6,
        c1 in 0u64..6,
        c2 in 0u64..6,
        rev in 0u64..2,
    ) {
        let counts = [c0, c1, c2];
        let n: u64 = counts.iter().sum();
        prop_assume!(n >= 1);
        let draws = n.min(1 + seed % n.max(1));
        let mut perm: Vec<u32> = (0..3).collect();
        let rev = rev == 1;
        if rev {
            perm.reverse();
        }
        let trials = 400u64;
        let mut rng = seeded_rng(seed);
        let mut out = Vec::new();
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            pp_core::batch::mvhg_ordered_into(&mut rng, &counts, draws, &mut out, &perm);
            prop_assert_eq!(out.iter().sum::<u64>(), draws);
            for (i, (&x, &c)) in out.iter().zip(counts.iter()).enumerate() {
                prop_assert!(x <= c, "category {i}: drew {x} of {c}");
                sums[i] += x;
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let mean = s as f64 / trials as f64;
            let expect = draws as f64 * counts[i] as f64 / n as f64;
            // Hypergeometric variance ≤ m/4; 5σ over 400 trials ≈ 0.3·√m.
            let tol = 5.0 * (draws as f64 / 4.0 / trials as f64).sqrt() + 1e-9;
            prop_assert!(
                (mean - expect).abs() < tol,
                "category {} (perm rev={}): mean {} vs {}",
                i, rev, mean, expect
            );
        }
    }

    #[test]
    fn batched_runs_preserve_population_and_state_space(
        seed in 0u64..1_000,
        ones in 1u64..40,
        zeros in 1u64..40,
        steps in 1u64..3_000,
    ) {
        let mut sim = Simulation::from_counts(
            approx_majority(),
            [(1u8, ones), (0u8, zeros)],
        );
        // Close the state space up front so its size is a fixed ceiling.
        sim.reactive_pairs();
        let state_ceiling = sim.runtime().state_count();
        let mut rng = seeded_rng(seed);
        sim.run_batched(steps, &mut rng);
        prop_assert_eq!(sim.population(), ones + zeros);
        prop_assert_eq!(sim.steps(), steps);
        prop_assert!(sim.effective_steps() <= steps);
        // Support never escapes the δ-closure of the initial support.
        for (s, _) in sim.config().support() {
            prop_assert!(s.index() < state_ceiling, "state {s:?} outside closure");
        }
        // Output accounting stayed in sync with the configuration.
        let from_outputs: u64 =
            sim.output_histogram().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(from_outputs, ones + zeros);
    }

    #[test]
    fn batched_probe_accounting_matches_engine_counters(
        seed in 0u64..500,
        ones in 1u64..30,
        zeros in 1u64..30,
        steps in 1u64..2_000,
    ) {
        let mut sim = Simulation::from_counts(
            approx_majority(),
            [(1u8, ones), (0u8, zeros)],
        )
        .with_probe((MetricsProbe::new(), TrajectoryProbe::new()));
        let mut rng = seeded_rng(seed);
        sim.run_batched(steps, &mut rng);
        // The default on_batch replay shows the probe every interaction.
        prop_assert_eq!(sim.probe().0.interactions(), sim.steps());
        prop_assert_eq!(
            sim.probe().0.effective_interactions(),
            sim.effective_steps()
        );
        // The trajectory probe's live occupancy tracked the configuration.
        let occ = sim.probe().1.current_occupancy().to_vec();
        let cfg = sim.config().as_slice();
        for i in 0..occ.len().max(cfg.len()) {
            prop_assert_eq!(
                occ.get(i).copied().unwrap_or(0),
                cfg.get(i).copied().unwrap_or(0),
                "occupancy drift at state {}", i
            );
        }
    }

    #[test]
    fn batched_epidemic_keeps_infection_monotone(
        seed in 0u64..500,
        healthy in 1u64..100,
        steps in 1u64..2_000,
    ) {
        // The epidemic can only grow: a batched run must respect every
        // invariant of δ, interaction by interaction.
        let mut sim = Simulation::from_counts(
            epidemic(),
            [(true, 1), (false, healthy)],
        );
        let mut rng = seeded_rng(seed);
        let mut infected = 1u64;
        for _ in 0..10 {
            sim.run_batched(steps / 10 + 1, &mut rng);
            let now = sim.count_of_state(&true);
            prop_assert!(now >= infected, "infection shrank: {now} < {infected}");
            infected = now;
        }
    }
}

/// Runs `trials` independent copies of `k` interactions through `runner` and
/// histograms the resulting canonical configurations.
fn configuration_histogram<P, F>(
    protocol_factory: impl Fn() -> P,
    init: &[(u8, u64)],
    k: u64,
    trials: u64,
    seed_base: u64,
    runner: F,
) -> HashMap<CanonicalConfig, u64>
where
    P: Protocol<Input = u8>,
    F: Fn(&mut Simulation<P>, u64, &mut rand::rngs::StdRng),
{
    let mut hist: HashMap<CanonicalConfig, u64> = HashMap::new();
    for t in 0..trials {
        let mut sim = Simulation::from_counts(
            protocol_factory(),
            init.iter().copied(),
        );
        // Identical deterministic interning on every run, so canonical
        // configurations are comparable across engines.
        sim.reactive_pairs();
        let mut rng = seeded_rng(seed_base + t);
        runner(&mut sim, k, &mut rng);
        *hist.entry(sim.config().to_canonical()).or_insert(0) += 1;
    }
    hist
}

/// Total-variation distance between two empirical distributions.
fn tv_distance(
    a: &HashMap<CanonicalConfig, u64>,
    b: &HashMap<CanonicalConfig, u64>,
    trials: u64,
) -> f64 {
    let mut keys: Vec<&CanonicalConfig> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    let m = trials as f64;
    keys.iter()
        .map(|k| {
            let pa = a.get(*k).copied().unwrap_or(0) as f64 / m;
            let pb = b.get(*k).copied().unwrap_or(0) as f64 / m;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

/// The exactness claim, empirically: after `k` interactions from a fixed
/// small configuration, the distribution over configurations under
/// `run_batched` matches the sequential `step` distribution up to sampling
/// noise. With n = 8 the batch cap is ⌊√8⌋ = 2, so every batch exercises
/// the collision path; k = 6 spans several batches.
#[test]
fn batched_and_sequential_configurations_agree_in_distribution() {
    let init = [(1u8, 3u64), (0u8, 5u64)];
    let (k, trials) = (6u64, 6_000u64);
    let sequential = configuration_histogram(
        approx_majority,
        &init,
        k,
        trials,
        1_000_000,
        |sim, k, rng| sim.run(k, rng),
    );
    let batched = configuration_histogram(
        approx_majority,
        &init,
        k,
        trials,
        9_000_000,
        |sim, k, rng| sim.run_batched(k, rng),
    );
    let tv = tv_distance(&sequential, &batched, trials);
    // Empirical-vs-empirical TV noise at 6000 trials over this support is
    // ≈ 0.04; a sampler bug (wrong pairing law, broken collision case)
    // shifts whole configuration probabilities by far more.
    assert!(tv < 0.08, "TV distance {tv:.4} between batched and sequential");
}

/// Same check on the epidemic at a size where batches are collision-free
/// with high probability (cap = ⌊√64⌋ = 8), exercising the pure bulk path.
#[test]
fn batched_epidemic_infection_counts_agree_in_distribution() {
    let init = [(1u8, 1u64), (0u8, 63u64)];
    let (k, trials) = (48u64, 4_000u64);
    let infected_hist = |seed_base: u64, batched: bool| {
        let mut hist: HashMap<u64, u64> = HashMap::new();
        for t in 0..trials {
            let mut sim = Simulation::from_counts(
                FnProtocol::new(
                    |&x: &u8| x == 1,
                    |&q: &bool| q,
                    |&p: &bool, &q: &bool| (p || q, p || q),
                ),
                init.iter().copied(),
            );
            let mut rng = seeded_rng(seed_base + t);
            if batched {
                sim.run_batched(k, &mut rng);
            } else {
                sim.run(k, &mut rng);
            }
            *hist.entry(sim.count_of_state(&true)).or_insert(0) += 1;
        }
        hist
    };
    let sequential = infected_hist(500_000, false);
    let batched = infected_hist(7_500_000, true);
    let m = trials as f64;
    let mut keys: Vec<u64> = sequential.keys().chain(batched.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    let tv = keys
        .iter()
        .map(|k| {
            let pa = sequential.get(k).copied().unwrap_or(0) as f64 / m;
            let pb = batched.get(k).copied().unwrap_or(0) as f64 / m;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0;
    assert!(tv < 0.08, "TV distance {tv:.4} on infection counts");
}

/// The batched stabilization measurement agrees with the sequential one up
/// to batch granularity, and both detect convergence.
#[test]
fn batched_stabilization_matches_sequential_semantics() {
    let mut seq = Simulation::from_counts(epidemic(), [(true, 1), (false, 255)]);
    let mut bat = Simulation::from_counts(epidemic(), [(true, 1), (false, 255)]);
    let rep_seq = seq.measure_stabilization(&true, 40_000, &mut seeded_rng(42));
    let rep_bat = bat.measure_stabilization_batched(&true, 40_000, &mut seeded_rng(43));
    assert!(rep_seq.converged() && rep_bat.converged());
    assert_eq!(rep_seq.horizon, rep_bat.horizon);
    // Both runs must have infected all 256 agents with exactly 255
    // effective interactions.
    assert_eq!(seq.effective_steps(), 255);
    assert_eq!(bat.effective_steps(), 255);
    // Batched stabilization time is sane: positive, within the horizon, and
    // on the epidemic's Θ(n log n) scale.
    let t = rep_bat.stabilized_at.unwrap();
    assert!(t >= 255, "needs at least n−1 interactions, got {t}");
    assert!(t < 40_000);
}
