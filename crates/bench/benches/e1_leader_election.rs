//! E1 — §6: the expected number of interactions until a single leader
//! remains is exactly `(n−1)²`.
//!
//! The paper computes `Σ_{i=2}^{n} C(n,2)/C(i,2) = (n−1)²`. We measure the
//! mean over seeded trials and report the ratio to the closed form; the
//! full timer-dance election (§6.1) is measured alongside, with its Θ(n²)
//! unrest phase.

use pp_bench::{fit_exponent, fmt, mean, print_header};
use pp_core::ensemble::Ensemble;
use pp_core::{seeded_rng, Simulation};
use pp_protocols::LeaderElection;
use pp_random::TimerLeaderElection;

fn main() {
    println!("\nE1: leader election — paper: E[interactions to unique leader] = (n-1)^2\n");
    print_header(
        &["n", "trials", "measured", "(n-1)^2", "ratio", "timer-elec total"],
        &[6, 6, 12, 12, 8, 16],
    );

    let mut ns = Vec::new();
    let mut ts = Vec::new();
    let n_list: &[u64] =
        if pp_bench::smoke() { &[8, 16] } else { &[8, 16, 32, 64, 128, 256] };
    for &n in n_list {
        let trials = if pp_bench::smoke() { 5 } else { (200_000 / (n * n)).clamp(20, 400) };
        // Multi-threaded trials; legacy offset seeding keeps trial `i` on
        // the former `seeded_rng(1000 + i)` stream, so the printed means
        // match the old sequential loop byte-for-byte at any thread count.
        let times = Ensemble::new(trials, 1000).legacy_offset_seeds().map(|_trial, rng| {
            let mut sim = Simulation::from_counts(LeaderElection, [((), n)]);
            LeaderElection::run_until_unique(&mut sim, u64::MAX, rng)
                .expect("always converges") as f64
        });
        let measured = mean(&times);
        let expect = ((n - 1) * (n - 1)) as f64;

        // Full §6.1 election with timer marking/retrieval (k = 2; the
        // initialization phase costs O(n^{k+1}) interactions, so large k at
        // large n is prohibitive — exactly the Theorem 9/10 trade-off).
        let timer_trials = if pp_bench::smoke() { 2 } else { trials.min(15) };
        let mut totals = Vec::new();
        let mut rng = seeded_rng(7 + n);
        let election = TimerLeaderElection::new(n as usize, 2);
        for _ in 0..timer_trials {
            let out = election.run(&mut rng, u64::MAX).expect("converges");
            totals.push(out.total_interactions as f64);
        }

        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>8} {:>16}",
            n,
            trials,
            fmt(measured),
            fmt(expect),
            fmt(measured / expect),
            fmt(mean(&totals)),
        );
        ns.push(n as f64);
        ts.push(measured);
    }
    println!(
        "\nfitted exponent of measured time vs n: {:.3} (paper: 2)\n",
        fit_exponent(&ns, &ts)
    );
}
