//! Presburger arithmetic for population protocols.
//!
//! §4 of Angluin et al. (PODC 2004) shows that every predicate definable in
//! Presburger arithmetic — the first-order theory of the integers with
//! addition and order — is stably computable by a population protocol
//! (Theorem 5, Corollary 3). This crate makes that pipeline executable:
//!
//! 1. [`formula`] — linear terms ([`LinExpr`]) and formulas ([`Formula`])
//!    with atoms `t < 0` and `m | t` (the *extended* language of §4.2, whose
//!    `≡ₘ` atoms make quantifier-free formulas complete, Theorem 4);
//! 2. [`parser`] — a small text syntax for formulas;
//! 3. [`qe`] — **Cooper's quantifier elimination**, realizing Theorem 4
//!    constructively: any formula becomes an equivalent quantifier-free one
//!    over threshold and divisibility atoms;
//! 4. [`semilinear`] — linear and semilinear sets, membership testing, the
//!    Parikh map, and the Ginsburg–Spanier conversion to formulas used by
//!    Corollary 4;
//! 5. [`compile`](mod@compile) — the Theorem 5 compiler: quantifier-free formula →
//!    population protocol built from the Lemma 5 atoms and Boolean closure,
//!    plus the Corollary 3 translation for the integer-based input
//!    convention;
//! 6. [`language`] — acceptance of symmetric languages under the string
//!    input convention (Lemma 2, Corollary 4).
//!
//! # Example: the 5%-of-the-flock predicate, end to end
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_presburger::parse;
//! use pp_presburger::compile::compile;
//!
//! // x1 = hot birds, x0 = the rest; at least 5%? (20·x1 ≥ x0 + x1)
//! let parsed = parse("20 * hot >= normal + hot").unwrap();
//! let protocol = compile(&parsed.formula, parsed.vars.len()).unwrap();
//! // 2 hot of 40 = exactly 5%.
//! let hot = parsed.index_of("hot").unwrap();
//! let normal = parsed.index_of("normal").unwrap();
//! let mut counts = vec![0u64; 2];
//! counts[hot] = 2;
//! counts[normal] = 38;
//! let mut sim = Simulation::from_counts(
//!     protocol,
//!     counts.iter().enumerate().map(|(i, &c)| (i, c)),
//! );
//! let mut rng = seeded_rng(0);
//! assert!(sim.measure_stabilization(&true, 500_000, &mut rng).converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod formula;
pub mod language;
pub mod parser;
pub mod qe;
pub mod semilinear;
pub mod spec;

pub use compile::{compile, CompiledProtocol};
pub use formula::{Atom, Formula, LinExpr};
pub use language::SymmetricLanguage;
pub use parser::{parse, ParseError, ParsedFormula};
pub use qe::eliminate_quantifiers;
pub use semilinear::{parikh, LinearSet, SemilinearSet};
pub use spec::{
    backends, compile_spec, compile_spec_with_backend, spec_key, CompiledSpec,
    SpecCompileError, BACKEND_COOPER_PRODUCT,
};
