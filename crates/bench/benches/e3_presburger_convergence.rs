//! E3 — Theorem 8: every Presburger predicate converges in
//! `O(k_ψ · n² log n)` expected interactions under random pairing.
//!
//! Three protocols are swept over n: a Lemma 5 threshold (majority), a
//! Lemma 5 remainder (mod 3), and a compiled two-atom Boolean combination.
//! For each we report the mean stabilization time (the last interaction at
//! which any agent's output was wrong) and the fitted growth exponent,
//! which the paper predicts to be ≈ 2 (with a log factor).

use pp_bench::{fit_exponent, fmt, mean, print_header};
use pp_core::{seeded_rng, Protocol, Simulation};
use pp_presburger::compile::compile_parsed;
use pp_presburger::parse;
use pp_protocols::{majority, RemainderProtocol};

/// Sweeps population sizes; `make` returns the protocol and the
/// ground-truth evaluator for a given zero/one split.
fn sweep<P: Protocol<Input = usize, Output = bool>>(
    label: &str,
    make: impl Fn() -> P,
    truth: impl Fn(u64, u64) -> bool,
) -> f64 {
    let mut ns = Vec::new();
    let mut ts = Vec::new();
    let n_list: &[u64] = if pp_bench::smoke() { &[8, 16] } else { &[8, 16, 32, 64, 128] };
    for &n in n_list {
        let zeros = n * 5 / 8;
        let ones = n - zeros;
        let expected = truth(zeros, ones);
        let trials = if pp_bench::smoke() { 5 } else { (240_000 / (n * n)).clamp(12, 200) };
        let mut times = Vec::new();
        for seed in 0..trials {
            let mut sim =
                Simulation::from_counts(make(), [(0usize, zeros), (1usize, ones)]);
            let mut rng = seeded_rng(seed * 31 + n);
            let rep = sim.measure_stabilization(&expected, 800 * n * n, &mut rng);
            times.push(rep.stabilized_at.expect("must stabilize within horizon") as f64);
        }
        let measured = mean(&times);
        let scale = (n * n) as f64 * (n as f64).ln();
        println!(
            "{:>22} {:>6} {:>6} {:>12} {:>14} {:>10}",
            label,
            n,
            trials,
            fmt(measured),
            fmt(scale),
            fmt(measured / scale),
        );
        ns.push(n as f64);
        ts.push(measured);
    }
    fit_exponent(&ns, &ts)
}

fn main() {
    println!("\nE3: Theorem 8 — Presburger predicates stabilize in O(n² log n) interactions\n");
    print_header(
        &["protocol", "n", "runs", "measured", "n²·ln n", "ratio"],
        &[22, 6, 6, 12, 14, 10],
    );

    let e1 = sweep("threshold (majority)", majority, |zeros, ones| ones > zeros);
    let e2 = sweep(
        "remainder (mod 3)",
        || RemainderProtocol::new(vec![1, 1], 0, 3).unwrap(),
        |zeros, ones| (zeros + ones) % 3 == 0,
    );
    let e3 = sweep(
        "compiled (maj ∧ odd)",
        || compile_parsed(&parse("b < a /\\ a = 1 mod 2").unwrap()).unwrap(),
        // variable order of first appearance: b = 0, a = 1 → symbol 0 is
        // "b" (zeros), symbol 1 is "a" (ones).
        |zeros, ones| ones > zeros && ones % 2 == 1,
    );

    println!("\nfitted exponents vs n (paper: 2 plus a log factor):");
    println!("  threshold: {e1:.3}   remainder: {e2:.3}   compiled: {e3:.3}\n");
}
