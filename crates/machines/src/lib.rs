//! Machine substrates for the §6.1 simulations of Angluin et al.
//! (PODC 2004).
//!
//! Theorem 10 of the paper simulates a logspace Turing machine on a
//! population, by way of Minsky's classical reduction: a TM tape is two
//! stacks, each stack is a Gödel-numbered counter, and a counter machine
//! with `O(1)` counters of capacity `O(n)`-ish runs the whole thing. This
//! crate provides each layer as an ordinary, directly executable machine:
//!
//! * [`counter`] — counter machines (`Inc` / `DecJz` / `Halt`) with
//!   optional capacity limits, matching the paper's "counters of capacity
//!   `O(n)`";
//! * [`tm`] — single-tape Turing machines;
//! * [`minsky`] — the compiler from a Turing machine to a 3-counter
//!   machine (left stack, right stack, accumulator), with push/pop realized
//!   as multiply/divide-by-`b` loops — exactly the operations the
//!   population protocol implements with high probability in §6.1;
//! * [`programs`] — small example machines used by tests, examples and the
//!   Theorem 10 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod minsky;
pub mod programs;
pub mod tm;

pub use counter::{CounterMachine, CounterOutcome, Instr, MachineError};
pub use minsky::compile_tm;
pub use tm::{Move, TmOutcome, TuringMachine};
