//! `ppbench-compare` — the bench regression gate.
//!
//! Diffs freshly produced `BENCH_*.json` reports against checked-in
//! baselines with noise-aware relative thresholds, printing a per-row
//! delta table and exiting nonzero on any regression (see
//! `pp_bench::compare` for the comparison rules).
//!
//! ```text
//! ppbench-compare [--baseline-dir D] [--current-dir D] [--tolerance F]
//! ppbench-compare --self-test [--baseline-dir D] [--tolerance F]
//! ```
//!
//! `--baseline-dir` defaults to the repo checkout (`.`), `--tolerance` to
//! 0.25 (25 % relative floor, widened per row by `3·σ` when the baseline
//! carries a `<metric>_std` cell). `--self-test` loads the baselines,
//! injects a synthetic 50 % slowdown in memory, and succeeds only if the
//! gate trips — CI runs it so a silently toothless gate fails the build.

use std::path::PathBuf;
use std::process::ExitCode;

use population_protocols::bench::compare::{
    compare_files, inflate_metrics, parse_bench_file, DEFAULT_TOLERANCE,
};
use population_protocols::bench::{compare_dirs, render_report, CompareOutcome};

const USAGE: &str = "usage:
  ppbench-compare [--baseline-dir D] [--current-dir D] [--tolerance F]
  ppbench-compare --self-test [--baseline-dir D] [--tolerance F]

Compares every BENCH_*.json in the baseline dir against the same-named
file in the current dir; exits 1 on any regression or structural problem.
--self-test injects a synthetic 1.5x slowdown and succeeds iff the gate
fails on it.";

struct Opts {
    baseline_dir: PathBuf,
    current_dir: Option<PathBuf>,
    tolerance: f64,
    self_test: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        baseline_dir: PathBuf::from("."),
        current_dir: None,
        tolerance: DEFAULT_TOLERANCE,
        self_test: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline-dir" => {
                opts.baseline_dir = PathBuf::from(it.next().ok_or("--baseline-dir needs a value")?);
            }
            "--current-dir" => {
                opts.current_dir = Some(PathBuf::from(it.next().ok_or("--current-dir needs a value")?));
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                opts.tolerance = v.parse::<f64>().map_err(|_| format!("bad tolerance {v:?}"))?;
                if !opts.tolerance.is_finite() || opts.tolerance < 0.0 {
                    return Err(format!("tolerance must be a non-negative finite number, got {v}"));
                }
            }
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Loads the baselines, fakes a uniform 1.5× slowdown, and verifies the
/// gate trips on every file.
fn self_test(opts: &Opts) -> Result<(), String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(&opts.baseline_dir)
        .map_err(|e| format!("cannot read {}: {e}", opts.baseline_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .unwrap_or(false)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", opts.baseline_dir.display()));
    }
    let mut out = CompareOutcome::default();
    let mut files = 0usize;
    for path in &names {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let baseline = parse_bench_file(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut slowed = baseline.clone();
        inflate_metrics(&mut slowed, 1.5);
        compare_files(&baseline, &slowed, opts.tolerance, &mut out);
        files += 1;
    }
    print!("{}", render_report(&out));
    if out.problems.is_empty() && out.regressions() > 0 {
        println!(
            "self-test OK: injected 1.5x slowdown tripped {} regressions across {files} baseline files",
            out.regressions()
        );
        Ok(())
    } else {
        Err(format!(
            "self-test FAILED: injected slowdown produced {} regressions, {} problems — the gate is toothless",
            out.regressions(),
            out.problems.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
                eprintln!();
            }
            eprintln!("{USAGE}");
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    if opts.self_test {
        return match self_test(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(current_dir) = &opts.current_dir else {
        eprintln!("error: --current-dir is required (or pass --self-test)");
        eprintln!();
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let out = compare_dirs(&opts.baseline_dir, current_dir, opts.tolerance);
    print!("{}", render_report(&out));
    if out.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
