//! Shared helpers for the experiment harnesses (benches `e1`–`e22`).
//!
//! Each `benches/eN_*.rs` target regenerates one quantitative claim of
//! Angluin et al. (PODC 2004), printing a paper-vs-measured table; see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded results. The [`report`] module additionally emits each
//! experiment's numbers as a machine-readable `BENCH_<exp>.json` and
//! appends a `BENCH_HISTORY.jsonl` trajectory record; the [`compare`]
//! module diffs fresh reports against checked-in baselines (the
//! `ppbench-compare` regression gate).
//!
//! Every bench honours `PP_BENCH_SMOKE=1` ([`smoke`]): populations and
//! trial counts drop to "does it run" size so CI can execute the whole
//! bench suite in seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod report;

pub use compare::{compare_dirs, parse_bench_file, parse_json, render_report, CompareOutcome, Json, DEFAULT_TOLERANCE};
pub use report::{smoke, unix_now, BenchReport, Value};

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (population form).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Least-squares slope of `log y` against `log x`: the empirical growth
/// exponent of a power law `y ≈ c·xᵃ`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any value is non-positive.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need at least two points");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let mx = mean(&lx);
    let my = mean(&ly);
    let num: f64 = lx.iter().zip(&ly).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let den: f64 = lx.iter().map(|&a| (a - mx).powi(2)).sum();
    num / den
}

/// Prints a header line plus an underline, padding columns to `widths`.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = *w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(std_dev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn exponent_of_square_law() {
        let xs = [8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let a = fit_exponent(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-9, "{a}");
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(123456.0), "123456");
        assert!(fmt(1.0e9).contains('e'));
    }
}
