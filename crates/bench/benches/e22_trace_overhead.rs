//! E22 — tracing overhead and phase breakdown of the batched engine.
//!
//! Not a paper claim: this table quantifies the cost of the `Tracer`
//! observability layer (`pp_core::trace`) on the e19 batched-majority
//! workload. Three configurations per population:
//!
//! * `no_tracer` — the `NoTracer` default. The tracer hooks are guarded by
//!   `Tr::ACTIVE` and monomorphize away, so this must cost the same as the
//!   pre-tracing engine; a hard assertion checks it against the checked-in
//!   e19 baseline.
//! * `span_stats` — [`SpanStats`] aggregation: two `Instant::now()` calls
//!   per batch (phase-level spans, never per-interaction), Welford + log
//!   histogram per span kind.
//! * `chrome` — [`ChromeTracer`]: every span boundary appended as a Chrome
//!   Trace Event; the trace for the largest population is written to
//!   `PP_TRACE_DIR` when set (load it in Perfetto / `chrome://tracing`).
//!
//! The `span_stats` run also yields the phase breakdown rows: deterministic
//! span counts (the RNG stream is seed-pinned) plus amortized self-time per
//! interaction for each span kind — the first trace-derived answer to
//! "where does a batched interaction's time actually go?".
//!
//! The NoTracer assertion allows 2× the e19 baseline: generous enough for
//! cross-host jitter (the tight 25 % gate is `ppbench-compare`'s job), yet
//! far below the 10×+ slowdown an accidentally active hook would cause.
//! Results land in `BENCH_e22_trace_overhead.json`.

use std::path::Path;
use std::time::Instant;

use pp_bench::compare::parse_bench_file;
use pp_bench::{fmt, print_header, BenchReport};
use pp_core::{
    seeded_rng, ChromeTracer, RunManifest, Simulation, SpanKind, SpanStats, Tracer,
};
use pp_protocols::majority;

/// Amortized ns/interaction for `k` batched interactions under `tracer`
/// (after `k/4` warmup), returning the tracer for inspection. Seed and
/// workload match e19's `time_batched` so rows are comparable.
fn time_batched<Tr: Tracer>(n: u64, k: u64, tracer: Tr) -> (f64, Tr) {
    let sim = Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
    let mut sim = sim.with_tracer(tracer);
    let mut rng = seeded_rng(2);
    sim.run_batched(k / 4, &mut rng);
    let start = Instant::now();
    sim.run_batched(k, &mut rng);
    (start.elapsed().as_nanos() as f64 / k as f64, sim.into_tracer())
}

/// The e19 `majority_batched` baseline ns/interaction at `n`, read from the
/// checked-in `BENCH_e19_batched_throughput.json` (workspace root).
fn e19_baseline(n: u64) -> Option<f64> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e19_batched_throughput.json");
    let file = parse_bench_file(&std::fs::read_to_string(path).ok()?).ok()?;
    file.rows.iter().find_map(|row| {
        let case = row.iter().find(|(k, _)| k == "case")?.1.as_str()?;
        let row_n = row.iter().find(|(k, _)| k == "n")?.1.as_f64()?;
        if case == "majority_batched" && row_n == n as f64 {
            row.iter().find(|(k, _)| k == "ns_per_step")?.1.as_f64()
        } else {
            None
        }
    })
}

fn main() {
    println!("\nE22: tracer overhead on the batched engine (majority workload)\n");
    let smoke = pp_bench::smoke();
    let k: u64 = if smoke { 20_000 } else { 4_000_000 };
    let ns_list: &[u64] = if smoke { &[1_000] } else { &[10_000, 1_000_000] };

    let mut report = BenchReport::new("e22_trace_overhead");
    report.set_meta("k", k);
    report.set_manifest(
        RunManifest::default()
            .with_protocol("majority")
            .with_population(*ns_list.last().unwrap())
            .with_master_seed(2)
            .with_detected_git_rev(),
    );

    print_header(&["case", "tracer", "n", "ns/interaction", "overhead"], &[18, 12, 12, 14, 9]);
    for &n in ns_list {
        let (base, _) = time_batched(n, k, pp_core::NoTracer);
        println!("{:>18} {:>12} {:>12} {:>14} {:>9}", "majority_batched", "no_tracer", n, fmt(base), "");
        report.push_row([
            ("case", pp_bench::Value::from("majority_batched")),
            ("tracer", "no_tracer".into()),
            ("n", n.into()),
            ("ns_per_step", base.into()),
        ]);

        // Zero-cost check: NoTracer must stay within 2x of the e19 baseline
        // measured before the tracing layer existed (see module docs for
        // why 2x). Skipped in smoke mode — n and k are toy-sized there.
        if !smoke {
            match e19_baseline(n) {
                Some(e19) => {
                    println!("{:>18} {:>12} {:>12} {:>14} {:>9}", "(e19 baseline)", "-", n, fmt(e19), "");
                    assert!(
                        base <= 2.0 * e19,
                        "NoTracer batched path regressed: {base:.3} ns/interaction at n={n} \
                         vs e19 baseline {e19:.3} (limit 2x) — tracer hooks are not free"
                    );
                }
                None => println!("  (no e19 baseline for n={n}; zero-cost assertion skipped)"),
            }
        }

        let (stats_ns, stats) = time_batched(n, k, SpanStats::new());
        println!(
            "{:>18} {:>12} {:>12} {:>14} {:>8}%",
            "majority_batched", "span_stats", n, fmt(stats_ns),
            fmt((stats_ns / base - 1.0) * 100.0)
        );
        report.push_row([
            ("case", pp_bench::Value::from("majority_batched")),
            ("tracer", "span_stats".into()),
            ("n", n.into()),
            ("ns_per_step", stats_ns.into()),
            ("overhead", (stats_ns / base - 1.0).into()),
        ]);

        let (chrome_ns, chrome) = time_batched(n, k, ChromeTracer::new());
        println!(
            "{:>18} {:>12} {:>12} {:>14} {:>8}%",
            "majority_batched", "chrome", n, fmt(chrome_ns),
            fmt((chrome_ns / base - 1.0) * 100.0)
        );
        report.push_row([
            ("case", pp_bench::Value::from("majority_batched")),
            ("tracer", "chrome".into()),
            ("n", n.into()),
            ("ns_per_step", chrome_ns.into()),
            ("overhead", (chrome_ns / base - 1.0).into()),
        ]);

        // Phase breakdown from the SpanStats run: span counts are
        // deterministic (seed-pinned RNG stream); self-times are amortized
        // per timed+warmup interaction so rows are comparable across runs.
        let total_k = k + k / 4;
        let total_ns: f64 = SpanKind::ALL
            .iter()
            .map(|&kind| stats.total_self_ns(kind))
            .sum::<f64>()
            .max(1.0);
        println!("  phase breakdown (span_stats run, incl. warmup):");
        for kind in SpanKind::ALL {
            let count = stats.count(kind);
            if count == 0 {
                continue;
            }
            let self_ns = stats.total_self_ns(kind);
            let share = self_ns / total_ns;
            println!(
                "    {:>14}: {:>9} spans, {:>10} ns/interaction ({:>5.1}% of traced time)",
                kind.name(), count, fmt(self_ns / total_k as f64), share * 100.0
            );
            report.push_row([
                ("case", pp_bench::Value::from("span")),
                ("kind", kind.name().into()),
                ("n", n.into()),
                ("count", count.into()),
                ("ns_per_step", (self_ns / total_k as f64).into()),
                ("share", share.into()),
            ]);
        }

        // Export the Chrome trace for offline inspection when asked.
        if let Some(dir) = std::env::var_os("PP_TRACE_DIR") {
            let path = Path::new(&dir).join(format!("e22_trace_n{n}.json"));
            let chrome = chrome.with_manifest(
                RunManifest::default()
                    .with_protocol("majority")
                    .with_population(n)
                    .with_master_seed(2)
                    .with_detected_git_rev(),
            );
            chrome
                .write_to(&path)
                .unwrap_or_else(|e| panic!("failed to write trace {}: {e}", path.display()));
            println!("  wrote {} ({} events)", path.display(), chrome.len());
        }
    }
    report.write();
}
