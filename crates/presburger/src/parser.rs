//! A text syntax for Presburger formulas.
//!
//! ```text
//! formula  := iff
//! iff      := imp ('<->' imp)*
//! imp      := or ('->' or)*                    (right-associative)
//! or       := and (('\/' | '||' | 'or') and)*
//! and      := unary (('/\' | '&&' | 'and') unary)*
//! unary    := ('!' | '~' | 'not') unary
//!           | ('exists' | 'forall') ident+ '.' formula
//!           | 'true' | 'false'
//!           | comparison
//!           | '(' formula ')'
//! compare  := term relop term ['mod' number]   ('=' with 'mod' is ≡ₘ)
//!           | number '|' term                  (divisibility)
//! relop    := '<' | '<=' | '=' | '==' | '!=' | '>' | '>='
//! term     := factor (('+' | '-') factor)*
//! factor   := '-' factor | number '*' factor | number | ident | '(' term ')'
//! ```
//!
//! Free variables are numbered `0, 1, 2, …` in order of first appearance;
//! [`ParsedFormula::index_of`] recovers the index of a named variable (this
//! is the input-symbol index under the symbol-count convention).
//!
//! # Example
//!
//! ```
//! use pp_presburger::parse;
//!
//! let p = parse("exists q. hot = 2 * q").unwrap(); // "hot is even"
//! assert_eq!(p.vars, vec!["hot".to_string()]);
//! assert!(p.formula.eval_bounded(&[4], 10));
//! assert!(!p.formula.eval_bounded(&[5], 10));
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::formula::{Formula, LinExpr};

/// A parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

/// Result of parsing: the formula plus the free-variable name table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFormula {
    /// The parsed formula; free variables are `0..vars.len()`.
    pub formula: Formula,
    /// Names of the free variables, indexed by variable number.
    pub vars: Vec<String>,
}

impl ParsedFormula {
    /// The variable index of `name`, if it occurs free in the formula.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }
}

/// Parses a formula from text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse(src: &str) -> Result<ParsedFormula, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, scopes: Vec::new(), free: Vec::new(), next_var: 0 };
    let formula = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing input"));
    }
    // Renumber so free variables are 0..k in order of first appearance and
    // bound variables follow.
    let k = p.free.len() as u32;
    let mut bound_next = k;
    let mut map: HashMap<u32, u32> = HashMap::new();
    for (new, &(old, _)) in p.free.iter().enumerate() {
        map.insert(old, new as u32);
    }
    let formula = rename(&formula, &mut map, &mut bound_next);
    Ok(ParsedFormula { formula, vars: p.free.iter().map(|(_, n)| n.clone()).collect() })
}

/// Renames variables via `map`, assigning fresh indices (from
/// `next`) to variables not yet mapped (the bound ones).
fn rename(f: &Formula, map: &mut HashMap<u32, u32>, next: &mut u32) -> Formula {
    let lookup = |v: u32, map: &mut HashMap<u32, u32>, next: &mut u32| -> u32 {
        *map.entry(v).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        })
    };
    let rename_expr = |e: &LinExpr, map: &mut HashMap<u32, u32>, next: &mut u32| -> LinExpr {
        let mut out = LinExpr::constant(e.constant_term());
        for (v, a) in e.terms() {
            out = out.add(&LinExpr::var_scaled(lookup(v, map, next), a));
        }
        out
    };
    use crate::formula::Atom;
    match f {
        Formula::Const(b) => Formula::Const(*b),
        Formula::Atom(Atom::Lt(e)) => Formula::Atom(Atom::Lt(rename_expr(e, map, next))),
        Formula::Atom(Atom::Dvd(m, e)) => {
            Formula::Atom(Atom::Dvd(*m, rename_expr(e, map, next)))
        }
        Formula::Not(g) => Formula::Not(Box::new(rename(g, map, next))),
        Formula::And(a, b) => Formula::And(
            Box::new(rename(a, map, next)),
            Box::new(rename(b, map, next)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(rename(a, map, next)),
            Box::new(rename(b, map, next)),
        ),
        Formula::Exists(v, g) => {
            let nv = lookup(*v, map, next);
            Formula::Exists(nv, Box::new(rename(g, map, next)))
        }
        Formula::ForAll(v, g) => {
            let nv = lookup(*v, map, next);
            Formula::ForAll(nv, Box::new(rename(g, map, next)))
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Sym(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn tokenize(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let symbols: &[&'static str] = &[
        "<->", "->", "<=", ">=", "==", "!=", "/\\", "\\/", "&&", "||", "<", ">", "=", "+",
        "-", "*", "(", ")", ".", "|", "!", "~", ",",
    ];
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                offset: start,
                message: "integer literal out of range".into(),
            })?;
            out.push(SpannedTok { tok: Tok::Num(n), offset: start });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(SpannedTok { tok: Tok::Ident(src[start..i].to_string()), offset: start });
            continue;
        }
        for s in symbols {
            if src[i..].starts_with(s) {
                out.push(SpannedTok { tok: Tok::Sym(s), offset: i });
                i += s.len();
                continue 'outer;
            }
        }
        return Err(ParseError { offset: i, message: format!("unexpected character {c:?}") });
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    /// Shadowing scopes for quantified variables: (name, index).
    scopes: Vec<(String, u32)>,
    /// Free variables in order of first appearance: (index, name).
    free: Vec<(u32, String)>,
    next_var: u32,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        let offset = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.offset);
        ParseError { offset, message: msg.to_string() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(match_sym(s))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn var_index(&mut self, name: &str) -> u32 {
        // Innermost quantifier scope wins.
        if let Some(&(_, idx)) = self.scopes.iter().rev().find(|(n, _)| n == name) {
            return idx;
        }
        if let Some(&(idx, _)) = self.free.iter().find(|(_, n)| n == name) {
            return idx;
        }
        let idx = self.fresh();
        self.free.push((idx, name.to_string()));
        idx
    }

    fn fresh(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implication()?;
        while self.eat_sym("<->") {
            let rhs = self.implication()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat_sym("->") {
            let rhs = self.implication()?; // right-associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.conjunction()?;
        while self.eat_sym("\\/") || self.eat_sym("||") || self.eat_kw("or") {
            let rhs = self.conjunction()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat_sym("/\\") || self.eat_sym("&&") || self.eat_kw("and") {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat_sym("!") || self.eat_sym("~") || self.eat_kw("not") {
            return Ok(self.unary()?.not());
        }
        if self.eat_kw("true") {
            return Ok(Formula::Const(true));
        }
        if self.eat_kw("false") {
            return Ok(Formula::Const(false));
        }
        for (kw, is_exists) in [("exists", true), ("forall", false)] {
            if self.eat_kw(kw) {
                // One or more bound variables (commas optional).
                let mut names = Vec::new();
                loop {
                    match self.peek().cloned() {
                        Some(Tok::Ident(name)) => {
                            self.pos += 1;
                            names.push(name);
                            let _ = self.eat_sym(",");
                        }
                        _ if names.is_empty() => {
                            return Err(self.err("expected variable name after quantifier"))
                        }
                        _ => break,
                    }
                }
                self.expect_sym(".")?;
                let depth = self.scopes.len();
                let mut indices = Vec::new();
                for name in &names {
                    let idx = self.fresh();
                    self.scopes.push((name.clone(), idx));
                    indices.push(idx);
                }
                let mut body = self.unary_or_rest()?;
                self.scopes.truncate(depth);
                for &idx in indices.iter().rev() {
                    body = if is_exists { body.exists(idx) } else { body.forall(idx) };
                }
                return Ok(body);
            }
        }
        // Comparison or parenthesized formula: try comparison first, then
        // backtrack.
        let save = self.pos;
        match self.comparison() {
            Ok(f) => Ok(f),
            Err(e1) => {
                self.pos = save;
                if self.eat_sym("(") {
                    let f = self.formula()?;
                    self.expect_sym(")")?;
                    Ok(f)
                } else {
                    Err(e1)
                }
            }
        }
    }

    /// Body of a quantifier: extends to the end of the current
    /// (sub)formula, i.e. `exists x. P /\ Q` binds `x` in `P /\ Q`.
    fn unary_or_rest(&mut self) -> Result<Formula, ParseError> {
        self.formula()
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        // Divisibility: number '|' term.
        if let (Some(Tok::Num(m)), Some(SpannedTok { tok: Tok::Sym("|"), .. })) =
            (self.peek().cloned(), self.tokens.get(self.pos + 1).cloned())
        {
            self.pos += 2;
            if m < 1 {
                return Err(self.err("divisibility modulus must be positive"));
            }
            let t = self.term()?;
            return Ok(Formula::Atom(crate::formula::Atom::Dvd(m, t)));
        }
        let lhs = self.term()?;
        let op = match self.peek() {
            Some(Tok::Sym(s @ ("<" | "<=" | "=" | "==" | "!=" | ">" | ">="))) => *s,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.pos += 1;
        let rhs = self.term()?;
        // Optional `mod m` turns equality into congruence.
        if self.eat_kw("mod") {
            let m = match self.peek() {
                Some(&Tok::Num(m)) if m >= 1 => m,
                _ => return Err(self.err("expected positive modulus after 'mod'")),
            };
            self.pos += 1;
            return match op {
                "=" | "==" => Ok(Formula::congruent(lhs, rhs, m)),
                "!=" => Ok(Formula::congruent(lhs, rhs, m).not()),
                _ => Err(self.err("'mod' applies only to = or !=")),
            };
        }
        Ok(match op {
            "<" => Formula::lt(lhs, rhs),
            "<=" => Formula::le(lhs, rhs),
            "=" | "==" => Formula::eq(lhs, rhs),
            "!=" => Formula::ne(lhs, rhs),
            ">" => Formula::gt(lhs, rhs),
            ">=" => Formula::ge(lhs, rhs),
            _ => unreachable!(),
        })
    }

    fn term(&mut self) -> Result<LinExpr, ParseError> {
        let mut acc = self.factor()?;
        loop {
            if self.eat_sym("+") {
                let f = self.factor()?;
                acc = acc.add(&f);
            } else if self.eat_sym("-") {
                let f = self.factor()?;
                acc = acc.sub(&f);
            } else {
                return Ok(acc);
            }
        }
    }

    fn factor(&mut self) -> Result<LinExpr, ParseError> {
        if self.eat_sym("-") {
            return Ok(self.factor()?.scale(-1));
        }
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                if self.eat_sym("*") {
                    Ok(self.factor()?.scale(n))
                } else {
                    Ok(LinExpr::constant(n))
                }
            }
            Some(Tok::Ident(name)) => {
                if ["mod", "and", "or", "not", "exists", "forall", "true", "false"]
                    .contains(&name.as_str())
                {
                    return Err(self.err("keyword used as variable"));
                }
                self.pos += 1;
                let v = self.var_index(&name);
                Ok(LinExpr::var(v))
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                let t = self.term()?;
                self.expect_sym(")")?;
                Ok(t)
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

/// Interns the symbol string so comparisons hit the tokenizer's `&'static`
/// strings.
fn match_sym(s: &str) -> &'static str {
    match s {
        "<->" => "<->",
        "->" => "->",
        "<=" => "<=",
        ">=" => ">=",
        "==" => "==",
        "!=" => "!=",
        "/\\" => "/\\",
        "\\/" => "\\/",
        "&&" => "&&",
        "||" => "||",
        "<" => "<",
        ">" => ">",
        "=" => "=",
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "(" => "(",
        ")" => ")",
        "." => ".",
        "|" => "|",
        "!" => "!",
        "~" => "~",
        "," => ",",
        _ => panic!("unknown symbol {s:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_comparisons() {
        let p = parse("x + 2 < 3 * y").unwrap();
        assert_eq!(p.vars, vec!["x", "y"]);
        assert!(p.formula.eval_qf(&[0, 1])); // 2 < 3
        assert!(!p.formula.eval_qf(&[1, 1])); // 3 < 3
    }

    #[test]
    fn parses_all_relops() {
        for (src, asg, expect) in [
            ("a < b", [1, 2], true),
            ("a <= b", [2, 2], true),
            ("a = b", [2, 2], true),
            ("a == b", [2, 3], false),
            ("a != b", [2, 3], true),
            ("a > b", [3, 2], true),
            ("a >= b", [2, 2], true),
        ] {
            let p = parse(src).unwrap();
            assert_eq!(p.formula.eval_qf(&asg), expect, "{src}");
        }
    }

    #[test]
    fn parses_congruence_and_divisibility() {
        let p = parse("x = 1 mod 3").unwrap();
        assert!(p.formula.eval_qf(&[7]));
        assert!(!p.formula.eval_qf(&[6]));
        let q = parse("3 | x - 1").unwrap();
        assert!(q.formula.eval_qf(&[7]));
        let r = parse("x != 0 mod 2").unwrap();
        assert!(r.formula.eval_qf(&[3]));
        assert!(!r.formula.eval_qf(&[4]));
    }

    #[test]
    fn parses_boolean_structure() {
        let p = parse("x < 1 /\\ y > 2 \\/ x = 5").unwrap();
        // Precedence: ((x<1 /\ y>2) \/ x=5).
        assert!(p.formula.eval_qf(&[0, 3]));
        assert!(p.formula.eval_qf(&[5, 0]));
        assert!(!p.formula.eval_qf(&[0, 0]));
        let q = parse("x < 1 -> y > 2").unwrap();
        assert!(q.formula.eval_qf(&[5, 0]));
        assert!(!q.formula.eval_qf(&[0, 0]));
        let r = parse("x < 1 <-> y < 1").unwrap();
        assert!(r.formula.eval_qf(&[0, 0]));
        assert!(r.formula.eval_qf(&[5, 5]));
        assert!(!r.formula.eval_qf(&[0, 5]));
    }

    #[test]
    fn word_operators() {
        let p = parse("not x < 1 and y < 1 or x = 9").unwrap();
        // ((¬(x<1)) ∧ y<1) ∨ x=9
        assert!(p.formula.eval_qf(&[2, 0]));
        assert!(p.formula.eval_qf(&[9, 5]));
        assert!(!p.formula.eval_qf(&[0, 0]));
    }

    #[test]
    fn quantifiers_bind_and_shadow() {
        // x free; inner x is the bound one.
        let p = parse("exists x. x = 2 * y").unwrap();
        assert_eq!(p.vars, vec!["y"]);
        assert!(p.formula.eval_bounded(&[3], 10));
        // Shadowing: free x plus bound x.
        let q = parse("x > 0 /\\ (exists x. x < 0)").unwrap();
        assert_eq!(q.vars, vec!["x"]);
        assert!(q.formula.eval_bounded(&[1], 5));
        assert!(!q.formula.eval_bounded(&[0], 5));
    }

    #[test]
    fn multi_variable_quantifier() {
        let p = parse("exists a b. x = a + 2 * b /\\ a >= 0 /\\ b >= 0").unwrap();
        assert_eq!(p.vars, vec!["x"]);
        assert!(p.formula.eval_bounded(&[5], 10));
        assert!(!p.formula.eval_bounded(&[-1], 10));
    }

    #[test]
    fn quantifier_scope_extends_right() {
        // exists q. x = 2*q /\ q > 1  — the conjunct is inside the scope.
        let p = parse("exists q. x = 2 * q /\\ q > 1").unwrap();
        assert!(p.formula.eval_bounded(&[6], 10));
        assert!(!p.formula.eval_bounded(&[2], 10)); // q = 1 not > 1
    }

    #[test]
    fn free_variable_order_is_first_appearance() {
        let p = parse("b + a < 2 /\\ a < c").unwrap();
        assert_eq!(p.vars, vec!["b", "a", "c"]);
        assert_eq!(p.index_of("a"), Some(1));
        assert_eq!(p.index_of("zz"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("x <").is_err());
        assert!(parse("x < 1 )").is_err());
        assert!(parse("exists . x < 1").is_err());
        assert!(parse("x @ 1").is_err());
        assert!(parse("x = 1 mod 0").is_err());
        assert!(parse("x < 1 mod 3").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn negative_numbers_and_nested_terms() {
        let p = parse("-x + 2 * (y - 1) >= -3").unwrap();
        assert!(p.formula.eval_qf(&[1, 0])); // -1 - 2 = -3 ≥ -3
        assert!(!p.formula.eval_qf(&[2, 0])); // -2 - 2 = -4
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_linexpr_display_reparses_equivalently(
            a in -5i64..=5, b in -5i64..=5, c in -9i64..=9,
        ) {
            use crate::formula::LinExpr;
            // Build a·x0 + b·x1 + c, render it, and reparse "<expr> < 0".
            let e = LinExpr::var_scaled(0, a)
                .add(&LinExpr::var_scaled(1, b))
                .offset(c);
            let src = format!("{e} < 0");
            // Display writes variables as `x0`, `x1`, which parse as
            // identifiers; indices are assigned by first appearance, so map
            // values through the parsed name table.
            let parsed = parse(&src).unwrap();
            for x0 in -3i64..=3 {
                for x1 in -3i64..=3 {
                    let mut asg = vec![0i64; parsed.vars.len()];
                    if let Some(i) = parsed.index_of("x0") {
                        asg[i] = x0;
                    }
                    if let Some(i) = parsed.index_of("x1") {
                        asg[i] = x1;
                    }
                    proptest::prop_assert_eq!(
                        parsed.formula.eval_qf(&asg),
                        a * x0 + b * x1 + c < 0,
                        "src = {}", src
                    );
                }
            }
        }
    }

    #[test]
    fn paper_example_formula_parses() {
        // §4.3 example: Φ(y1,y2) = (y1 − 2y2 ≡ 0 (mod 3)).
        let p = parse("y1 - 2 * y2 = 0 mod 3").unwrap();
        assert!(p.formula.eval_qf(&[6, 0]));
        assert!(p.formula.eval_qf(&[8, 1]));
        assert!(!p.formula.eval_qf(&[7, 0]));
    }
}
