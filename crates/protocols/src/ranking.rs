//! Self-stabilizing ranking: assign the `n` anonymous agents the ranks
//! `1..=n`, one each, from **any** starting configuration.
//!
//! A simplified port of the phase-structured leader-election + ranking
//! protocol of `icdcs2025/SelfStabilizingRanking` (SNIPPETS.md, Snippet 1),
//! keeping its `Rank/LE/Waiting/Phase/Propagating/Dormant` state family and
//! musical-chairs dynamics while folding the alive-counting phases into
//! small constant countdowns:
//!
//! * [`RankState::Rank`]`(r)` — the agent owns chair `r`. A configuration
//!   where the ranks are a permutation of `1..=n` is *quiescent*: every
//!   interaction between two distinct owners is a no-op, so the legal
//!   configuration is absorbing.
//! * Two claimants of the *same* chair fight a **coin duel** (this is what
//!   makes the protocol a [`CoinProtocol`]): unequal coins pick a winner,
//!   the loser walks away as [`RankState::Propagating`]`(r+1)`; equal or
//!   missing coins are a no-op and the duel repeats at the next meeting.
//! * [`RankState::Propagating`]`(r)` — a walker looking for a free chair:
//!   meeting the owner of `r` it advances to `r+1` (mod `n`, to chair 1);
//!   meeting anyone else it tentatively sits down as
//!   [`RankState::Phase`]`(C_LIVE, r)`, which counts down to full
//!   ownership — a conflict-detection window during which a rightful owner
//!   can still evict it by duel.
//! * [`RankState::LE`] — leader-election contenders (also the image of the
//!   input function): LE agents duel each other by coin, losers back off
//!   as [`RankState::Dormant`], and any LE agent that meets an owner stops
//!   contending and queues as [`RankState::Waiting`] with a hint of the
//!   next chair to try; countdowns turn Dormant → Waiting → Propagating,
//!   so every non-owner eventually hunts for a chair.
//!
//! Out-of-range states (rank 0, rank > n, dead countdowns — all reachable
//! only by adversarial injection) normalize to `LE`, so the state space the
//! adversary of [`AdversarialInit`](pp_core::faults::AdversarialInit) can
//! reach is exactly the space the protocol already cleans up.
//!
//! # Engines
//!
//! On the per-agent engine use
//! [`step_coined`](pp_core::AgentSimulation::step_coined) (true RNG coins,
//! refreshed per interaction). The plain [`Protocol::delta`] runs with both
//! coins absent — every duel is a no-op, so progress needs coins: on the
//! count engine wrap the protocol in
//! [`SyntheticCoins`](pp_core::SyntheticCoins).
//!
//! # Example
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_protocols::{RankState, Ranking};
//!
//! let n = 8;
//! let proto = Ranking::new(n);
//! let inputs = vec![(); n as usize];
//! let mut sim =
//!     AgentSimulation::from_inputs(proto, &inputs, UniformPairScheduler::new(n as usize));
//! let mut rng = seeded_rng(17);
//! let rep = Ranking::measure_recovery(&mut sim, 200_000, 64, &mut rng);
//! assert!(rep.recovered(), "all 8 agents seat themselves");
//! ```

use std::collections::HashSet;

use pp_core::consensus_reached;
use pp_core::faults::RecoveryReport;
use pp_core::observe::Probe;
use pp_core::scheduler::PairSampler;
use pp_core::{AgentSimulation, CoinProtocol, Protocol};
use rand::RngCore;

/// Interactions a tentative claimant ([`RankState::Phase`]) waits before
/// becoming a full owner — the conflict-detection window.
pub const C_LIVE: u32 = 4;
/// Interactions a queued ex-contender ([`RankState::Waiting`]) waits before
/// starting to walk.
pub const C_WAIT: u32 = 2;
/// Interactions a duel loser ([`RankState::Dormant`]) backs off before
/// re-entering the hunt.
pub const C_DELAY: u32 = 4;

/// State family of the self-stabilizing [`Ranking`] protocol; see the
/// [module docs](self) for the life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankState {
    /// Owner of chair `r` (`1..=n`).
    Rank(u32),
    /// Leader-election contender (the initial state).
    LE,
    /// Backed-off duel loser; counts down to `Waiting`.
    Dormant(u32),
    /// Queued chair-hunter `(countdown, next chair to try)`; counts down to
    /// `Propagating`, updating the hint whenever it meets an owner.
    Waiting(u32, u32),
    /// Walker hunting for a free chair starting at `r`.
    Propagating(u32),
    /// Tentative claimant of chair `r`: `(countdown, r)`, counts down to
    /// `Rank(r)`.
    Phase(u32, u32),
}

/// The self-stabilizing ranking protocol over `n` agents; a
/// [`CoinProtocol`] (duels need coins). See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ranking {
    n: u32,
}

impl Ranking {
    /// A ranking protocol for a population of exactly `n >= 2` agents.
    /// (Ranking is inherently non-uniform: `1..=n` must be known to name
    /// the chairs.)
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "ranking needs at least 2 agents, got {n}");
        Self { n }
    }

    /// The population size the protocol ranks.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The chair after `r`, wrapping back to 1.
    fn next(&self, r: u32) -> u32 {
        r % self.n + 1
    }

    /// Folds adversarially injected garbage back into the state family:
    /// anything with an out-of-range rank or countdown becomes `LE`.
    fn norm(&self, s: RankState) -> RankState {
        let rank_ok = |r: u32| (1..=self.n).contains(&r);
        match s {
            RankState::Rank(r) if rank_ok(r) => s,
            RankState::LE => s,
            RankState::Dormant(c) if (1..=C_DELAY).contains(&c) => s,
            RankState::Waiting(c, h) if (1..=C_WAIT).contains(&c) && rank_ok(h) => s,
            RankState::Propagating(r) if rank_ok(r) => s,
            RankState::Phase(c, r) if (1..=C_LIVE).contains(&c) && rank_ok(r) => s,
            _ => RankState::LE,
        }
    }

    /// The chair a state claims, if any (`Rank` and `Phase` are claimants).
    fn claim(s: RankState) -> Option<u32> {
        match s {
            RankState::Rank(r) | RankState::Phase(_, r) => Some(r),
            _ => None,
        }
    }

    /// One side of an interaction, given the partner's (old) state. Duels
    /// are handled before this is called.
    fn advance(&self, me: RankState, partner: RankState) -> RankState {
        match me {
            RankState::Rank(_) => me,
            RankState::Propagating(r) => {
                if Self::claim(partner) == Some(r) {
                    // Chair taken: walk on.
                    RankState::Propagating(self.next(r))
                } else {
                    // Tentatively sit down.
                    RankState::Phase(C_LIVE, r)
                }
            }
            RankState::Phase(c, r) => {
                if c <= 1 {
                    RankState::Rank(r)
                } else {
                    RankState::Phase(c - 1, r)
                }
            }
            RankState::LE => {
                if let Some(r) = Self::claim(partner) {
                    // Ranks exist: stop contending, queue behind chair r.
                    RankState::Waiting(C_WAIT, self.next(r))
                } else {
                    RankState::LE
                }
            }
            RankState::Waiting(c, hint) => {
                let hint = match Self::claim(partner) {
                    Some(r) => self.next(r),
                    None => hint,
                };
                if c <= 1 {
                    RankState::Propagating(hint)
                } else {
                    RankState::Waiting(c - 1, hint)
                }
            }
            RankState::Dormant(c) => {
                if c <= 1 {
                    RankState::Waiting(C_WAIT, 1)
                } else {
                    RankState::Dormant(c - 1)
                }
            }
        }
    }

    /// Representative state universe for
    /// [`AdversarialInit`](pp_core::faults::AdversarialInit): every chair
    /// ownership plus one state from each transient family (including an
    /// out-of-range `Rank(n + 1)` the normalizer must clean up).
    pub fn universe(&self) -> Vec<RankState> {
        let mut u = vec![
            RankState::LE,
            RankState::Dormant(C_DELAY),
            RankState::Waiting(C_WAIT, 1),
            RankState::Propagating(1),
            RankState::Phase(C_LIVE, 1),
            RankState::Rank(self.n + 1),
        ];
        u.extend((1..=self.n).map(RankState::Rank));
        u
    }

    /// Live agents **not** holding a unique in-range rank — the protocol's
    /// residual error (0 iff the live ranks are pairwise distinct chairs,
    /// which for a full population means a permutation of `1..=n`).
    pub fn unranked_agents<S: PairSampler, Pr: Probe>(
        sim: &AgentSimulation<Ranking, S, Pr>,
    ) -> u64 {
        let proto = *sim.runtime().protocol();
        let mut seen = HashSet::new();
        let mut duplicated = HashSet::new();
        let mut holders = 0u64;
        let mut live = 0u64;
        for a in 0..sim.population() as u32 {
            if sim.is_crashed(a) {
                continue;
            }
            live += 1;
            if let RankState::Rank(r) = *sim.state_of(a) {
                if (1..=proto.n).contains(&r) {
                    holders += 1;
                    if !seen.insert(r) {
                        duplicated.insert(r);
                    }
                }
            }
        }
        let mut unique_holders = holders;
        for a in 0..sim.population() as u32 {
            if sim.is_crashed(a) {
                continue;
            }
            if let RankState::Rank(r) = *sim.state_of(a) {
                if duplicated.contains(&r) {
                    unique_holders -= 1;
                }
            }
        }
        live - unique_holders
    }

    /// Whether the live agents' states are exactly `Rank(1..=n)`, one each.
    pub fn is_permutation<S: PairSampler, Pr: Probe>(
        sim: &AgentSimulation<Ranking, S, Pr>,
    ) -> bool {
        Self::unranked_agents(sim) == 0
    }

    /// Runs up to `horizon` coined interactions
    /// ([`step_coined`](AgentSimulation::step_coined)), checking every
    /// `check_every` interactions, and reports recovery to a rank
    /// permutation in the [`RecoveryReport`] convention (`injected_at` 0 —
    /// the damage happened before the call). Because the permutation is
    /// *absorbing*, the run stops early at the first synchronized
    /// checkpoint; `recovered_at` overshoots the true seating time by less
    /// than `check_every` slots.
    ///
    /// # Panics
    ///
    /// Panics if `check_every` is 0.
    pub fn measure_recovery<S: PairSampler, Pr: Probe>(
        sim: &mut AgentSimulation<Ranking, S, Pr>,
        horizon: u64,
        check_every: u64,
        rng: &mut impl RngCore,
    ) -> RecoveryReport {
        assert!(check_every > 0, "check_every must be positive");
        let mut wrong = Self::unranked_agents(sim);
        let mut last_wrong: Option<u64> = (wrong > 0).then_some(0);
        let mut slot = 0u64;
        while slot < horizon && wrong > 0 {
            let chunk = check_every.min(horizon - slot);
            for _ in 0..chunk {
                sim.step_coined(rng);
            }
            slot += chunk;
            wrong = Self::unranked_agents(sim);
            if wrong > 0 {
                last_wrong = Some(slot);
            }
        }
        RecoveryReport {
            injected_at: 0,
            recovered_at: consensus_reached(wrong, last_wrong, 0),
            residual_error: wrong,
        }
    }
}

impl Protocol for Ranking {
    type State = RankState;
    type Input = ();
    type Output = u32;

    fn input(&self, _: &()) -> RankState {
        RankState::LE
    }

    /// Owners output their chair; everyone else outputs 0.
    fn output(&self, &q: &RankState) -> u32 {
        match self.norm(q) {
            RankState::Rank(r) => r,
            _ => 0,
        }
    }

    /// The coinless transition: duels are no-ops, everything else proceeds.
    fn delta(&self, p: &RankState, q: &RankState) -> (RankState, RankState) {
        self.delta_coined(p, q, (None, None))
    }
}

impl CoinProtocol for Ranking {
    fn delta_coined(
        &self,
        p: &RankState,
        q: &RankState,
        coins: (Option<bool>, Option<bool>),
    ) -> (RankState, RankState) {
        let (p, q) = (self.norm(*p), self.norm(*q));
        // Duels first: same-chair claimants, or two LE contenders. Unequal
        // coins decide (initiator wins on its own `true`); equal or missing
        // coins leave the duel for a later meeting.
        let duel_winner_is_initiator = match coins {
            (Some(a), Some(b)) if a != b => Some(a),
            _ => None,
        };
        if let (Some(rp), Some(rq)) = (Self::claim(p), Self::claim(q)) {
            if rp == rq {
                return match duel_winner_is_initiator {
                    Some(true) => (RankState::Rank(rp), RankState::Propagating(self.next(rp))),
                    Some(false) => (RankState::Propagating(self.next(rp)), RankState::Rank(rp)),
                    None => (p, q),
                };
            }
        }
        if p == RankState::LE && q == RankState::LE {
            return match duel_winner_is_initiator {
                Some(true) => (RankState::LE, RankState::Dormant(C_DELAY)),
                Some(false) => (RankState::Dormant(C_DELAY), RankState::LE),
                None => (p, q),
            };
        }
        (self.advance(p, q), self.advance(q, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::scheduler::UniformPairScheduler;
    use pp_core::{seeded_rng, Simulation, SyntheticCoins};

    #[test]
    fn permutation_is_quiescent() {
        let proto = Ranking::new(4);
        for a in 1..=4u32 {
            for b in 1..=4u32 {
                if a == b {
                    continue;
                }
                let (p, q) = (RankState::Rank(a), RankState::Rank(b));
                assert_eq!(
                    proto.delta_coined(&p, &q, (Some(true), Some(false))),
                    (p, q),
                    "distinct owners never move"
                );
            }
        }
    }

    #[test]
    fn same_chair_duel_is_decided_by_unequal_coins_only() {
        let proto = Ranking::new(4);
        let (p, q) = (RankState::Rank(2), RankState::Phase(3, 2));
        assert_eq!(
            proto.delta_coined(&p, &q, (Some(true), Some(false))),
            (RankState::Rank(2), RankState::Propagating(3)),
            "initiator's true coin wins"
        );
        assert_eq!(
            proto.delta_coined(&p, &q, (Some(false), Some(true))),
            (RankState::Propagating(3), RankState::Rank(2)),
            "responder wins; the winner is promoted to full owner"
        );
        for coins in [(None, None), (Some(true), Some(true)), (None, Some(false))] {
            assert_eq!(proto.delta_coined(&p, &q, coins), (p, q), "undecided duel is a no-op");
        }
    }

    #[test]
    fn chair_wraps_from_n_to_one() {
        let proto = Ranking::new(4);
        let (p, q) = (RankState::Rank(4), RankState::Rank(4));
        let (w, l) = proto.delta_coined(&p, &q, (Some(true), Some(false)));
        assert_eq!(w, RankState::Rank(4));
        assert_eq!(l, RankState::Propagating(1), "loser of chair n hunts from chair 1");
    }

    #[test]
    fn walker_advances_past_the_owner_and_sits_elsewhere() {
        let proto = Ranking::new(4);
        // Walker meets the owner of its target chair: advance.
        assert_eq!(
            proto.delta_coined(&RankState::Propagating(2), &RankState::Rank(2), (None, None)),
            (RankState::Propagating(3), RankState::Rank(2))
        );
        // Walker meets anyone else: tentative claim.
        assert_eq!(
            proto.delta_coined(&RankState::Propagating(2), &RankState::Rank(3), (None, None)),
            (RankState::Phase(C_LIVE, 2), RankState::Rank(3))
        );
    }

    #[test]
    fn out_of_range_states_normalize_to_le() {
        let proto = Ranking::new(4);
        for bad in [
            RankState::Rank(0),
            RankState::Rank(5),
            RankState::Dormant(0),
            RankState::Dormant(C_DELAY + 1),
            RankState::Waiting(C_WAIT + 1, 1),
            RankState::Waiting(1, 9),
            RankState::Propagating(99),
            RankState::Phase(C_LIVE + 1, 2),
        ] {
            assert_eq!(proto.norm(bad), RankState::LE, "{bad:?} must fold to LE");
            assert_eq!(proto.output(&bad), 0);
        }
    }

    #[test]
    fn fresh_population_seats_itself() {
        let n = 16u32;
        let proto = Ranking::new(n);
        let inputs = vec![(); n as usize];
        let mut sim = AgentSimulation::from_inputs(
            proto,
            &inputs,
            UniformPairScheduler::new(n as usize),
        );
        let mut rng = seeded_rng(41);
        let rep = Ranking::measure_recovery(&mut sim, 500_000, 64, &mut rng);
        assert!(rep.recovered(), "residual {}", rep.residual_error);
        assert!(Ranking::is_permutation(&sim));
    }

    #[test]
    fn recovers_from_an_all_rank_one_flood() {
        // Everyone claims chair 1 — maximal conflict.
        let n = 12u32;
        let proto = Ranking::new(n);
        let inputs = vec![(); n as usize];
        let mut sim = AgentSimulation::from_inputs(
            proto,
            &inputs,
            UniformPairScheduler::new(n as usize),
        );
        let mut rng = seeded_rng(43);
        sim.overwrite_live_states(|_| RankState::Rank(1));
        let rep = Ranking::measure_recovery(&mut sim, 1_000_000, 64, &mut rng);
        assert!(rep.recovered(), "residual {}", rep.residual_error);
    }

    #[test]
    fn synthetic_coins_run_the_protocol_on_the_count_engine() {
        let n = 8u32;
        let proto = SyntheticCoins(Ranking::new(n));
        let mut sim = Simulation::from_counts(proto, [((), n as u64)]);
        let mut rng = seeded_rng(45);
        sim.run(400_000, &mut rng);
        // Count the owned chairs: a full permutation means each of 1..=n
        // is output by exactly one agent.
        let owned: Vec<u64> = (1..=n).map(|r| sim.count_with_output(&r)).collect();
        assert!(
            owned.iter().all(|&c| c == 1),
            "count engine with synthetic coins must seat all agents, got {owned:?}"
        );
    }
}
