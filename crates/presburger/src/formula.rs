//! Linear terms and Presburger formulas.
//!
//! Formulas are kept in a small normalized vocabulary: atoms are `t < 0`
//! (threshold) and `m | t` (divisibility — the `≡ₘ` relations of the
//! paper's *extended* Presburger language, §4.2), over linear terms
//! `t = Σ aᵢ·xᵢ + c`. Comparisons and modular congruences are provided as
//! constructors that normalize into this vocabulary. Over the integers this
//! loses no generality: `a ≤ b ⇔ a − b − 1 < 0`, `a = b ⇔ a ≤ b ∧ b ≤ a`,
//! and `a ≡ b (mod m) ⇔ m | a − b`.

use std::collections::BTreeMap;
use std::fmt;

/// A linear expression `Σ coeffs[v]·x_v + constant` over integer variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<u32, i64>,
    constant: i64,
}

impl LinExpr {
    /// The constant `c`.
    pub fn constant(c: i64) -> Self {
        Self { coeffs: BTreeMap::new(), constant: c }
    }

    /// The variable `x_v`.
    pub fn var(v: u32) -> Self {
        Self::var_scaled(v, 1)
    }

    /// The scaled variable `a·x_v`.
    pub fn var_scaled(v: u32, a: i64) -> Self {
        let mut coeffs = BTreeMap::new();
        if a != 0 {
            coeffs.insert(v, a);
        }
        Self { coeffs, constant: 0 }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `x_v` (0 if absent).
    pub fn coefficient(&self, v: u32) -> i64 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// Iterates over `(variable, non-zero coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (u32, i64)> + '_ {
        self.coeffs.iter().map(|(&v, &a)| (v, a))
    }

    /// Variables with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.coeffs.keys().copied()
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Sum of two expressions.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.constant += other.constant;
        for (&v, &a) in &other.coeffs {
            let e = out.coeffs.entry(v).or_insert(0);
            *e += a;
            if *e == 0 {
                out.coeffs.remove(&v);
            }
        }
        out
    }

    /// Difference of two expressions.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.scale(-1))
    }

    /// Adds a constant.
    #[must_use]
    pub fn offset(&self, c: i64) -> Self {
        let mut out = self.clone();
        out.constant += c;
        out
    }

    /// Scales by an integer.
    #[must_use]
    pub fn scale(&self, k: i64) -> Self {
        if k == 0 {
            return Self::constant(0);
        }
        let mut out = self.clone();
        out.constant *= k;
        for a in out.coeffs.values_mut() {
            *a *= k;
        }
        out
    }

    /// Replaces `x_v` by the expression `t`.
    #[must_use]
    pub fn substitute(&self, v: u32, t: &Self) -> Self {
        let a = self.coefficient(v);
        if a == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&v);
        out.add(&t.scale(a))
    }

    /// Evaluates under an assignment (`assignment[v]` is the value of
    /// `x_v`; missing variables default to 0).
    pub fn eval(&self, assignment: &[i64]) -> i64 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(&v, &a)| a * assignment.get(v as usize).copied().unwrap_or(0))
                .sum::<i64>()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&v, &a) in &self.coeffs {
            if first {
                match a {
                    1 => write!(f, "x{v}")?,
                    -1 => write!(f, "-x{v}")?,
                    _ => write!(f, "{a}*x{v}")?,
                }
                first = false;
            } else if a >= 0 {
                if a == 1 {
                    write!(f, " + x{v}")?;
                } else {
                    write!(f, " + {a}*x{v}")?;
                }
            } else if a == -1 {
                write!(f, " - x{v}")?;
            } else {
                write!(f, " - {}*x{v}", -a)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// An atomic formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `t < 0`.
    Lt(LinExpr),
    /// `m | t` with `m ≥ 1`.
    Dvd(i64, LinExpr),
}

impl Atom {
    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[i64]) -> bool {
        match self {
            Self::Lt(t) => t.eval(assignment) < 0,
            Self::Dvd(m, t) => t.eval(assignment).rem_euclid(*m) == 0,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lt(t) => write!(f, "{t} < 0"),
            Self::Dvd(m, t) => write!(f, "{m} | {t}"),
        }
    }
}

/// A Presburger formula over atoms [`Atom`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `true` or `false`.
    Const(bool),
    /// An atomic formula.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification over `x_v`.
    Exists(u32, Box<Formula>),
    /// Universal quantification over `x_v`.
    ForAll(u32, Box<Formula>),
}

impl Formula {
    // ---- constructors -------------------------------------------------

    /// `a < b`.
    pub fn lt(a: LinExpr, b: LinExpr) -> Self {
        Self::Atom(Atom::Lt(a.sub(&b)))
    }

    /// `a ≤ b`.
    pub fn le(a: LinExpr, b: LinExpr) -> Self {
        Self::Atom(Atom::Lt(a.sub(&b).offset(-1)))
    }

    /// `a > b`.
    pub fn gt(a: LinExpr, b: LinExpr) -> Self {
        Self::lt(b, a)
    }

    /// `a ≥ b`.
    pub fn ge(a: LinExpr, b: LinExpr) -> Self {
        Self::le(b, a)
    }

    /// `a = b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Self {
        Self::le(a.clone(), b.clone()).and(Self::le(b, a))
    }

    /// `a ≠ b`.
    pub fn ne(a: LinExpr, b: LinExpr) -> Self {
        Self::eq(a, b).not()
    }

    /// `a ≡ b (mod m)` — the extended-language relation `≡ₘ` (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `m < 1`.
    pub fn congruent(a: LinExpr, b: LinExpr, m: i64) -> Self {
        assert!(m >= 1, "modulus must be positive");
        Self::Atom(Atom::Dvd(m, a.sub(&b)))
    }

    /// Negation (with light simplification of double negation).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Self::Const(b) => Self::Const(!b),
            Self::Not(f) => *f,
            f => Self::Not(Box::new(f)),
        }
    }

    /// Conjunction.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Self::Const(true), f) | (f, Self::Const(true)) => f,
            (Self::Const(false), _) | (_, Self::Const(false)) => Self::Const(false),
            (a, b) => Self::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (Self::Const(false), f) | (f, Self::Const(false)) => f,
            (Self::Const(true), _) | (_, Self::Const(true)) => Self::Const(true),
            (a, b) => Self::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Implication `self → other`.
    #[must_use]
    pub fn implies(self, other: Self) -> Self {
        self.not().or(other)
    }

    /// Biconditional `self ↔ other`.
    #[must_use]
    pub fn iff(self, other: Self) -> Self {
        self.clone().and(other.clone()).or(self.not().and(other.not()))
    }

    /// `∃x_v. self`.
    #[must_use]
    pub fn exists(self, v: u32) -> Self {
        Self::Exists(v, Box::new(self))
    }

    /// `∀x_v. self`.
    #[must_use]
    pub fn forall(self, v: u32) -> Self {
        Self::ForAll(v, Box::new(self))
    }

    // ---- queries -------------------------------------------------------

    /// Whether the formula contains quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Self::Const(_) | Self::Atom(_) => true,
            Self::Not(f) => f.is_quantifier_free(),
            Self::And(a, b) | Self::Or(a, b) => {
                a.is_quantifier_free() && b.is_quantifier_free()
            }
            Self::Exists(..) | Self::ForAll(..) => false,
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> std::collections::BTreeSet<u32> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<u32>, out: &mut std::collections::BTreeSet<u32>) {
        match self {
            Self::Const(_) => {}
            Self::Atom(Atom::Lt(t)) | Self::Atom(Atom::Dvd(_, t)) => {
                for v in t.vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Self::Not(f) => f.collect_free(bound, out),
            Self::And(a, b) | Self::Or(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Self::Exists(v, f) | Self::ForAll(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// The largest variable index mentioned anywhere (bound or free), or
    /// `None` for a variable-free formula.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Self::Const(_) => None,
            Self::Atom(Atom::Lt(t)) | Self::Atom(Atom::Dvd(_, t)) => t.vars().max(),
            Self::Not(f) => f.max_var(),
            Self::And(a, b) | Self::Or(a, b) => a.max_var().max(b.max_var()),
            Self::Exists(v, f) | Self::ForAll(v, f) => f.max_var().max(Some(*v)),
        }
    }

    // ---- transformation -------------------------------------------------

    /// Substitutes the *free* occurrences of `x_v` by the term `t`.
    ///
    /// # Panics
    ///
    /// Panics if the substitution would capture a variable of `t` under a
    /// quantifier (callers in this crate always substitute capture-free).
    #[must_use]
    pub fn substitute(&self, v: u32, t: &LinExpr) -> Self {
        match self {
            Self::Const(b) => Self::Const(*b),
            Self::Atom(Atom::Lt(e)) => Self::Atom(Atom::Lt(e.substitute(v, t))),
            Self::Atom(Atom::Dvd(m, e)) => Self::Atom(Atom::Dvd(*m, e.substitute(v, t))),
            Self::Not(f) => Self::Not(Box::new(f.substitute(v, t))),
            Self::And(a, b) => {
                Self::And(Box::new(a.substitute(v, t)), Box::new(b.substitute(v, t)))
            }
            Self::Or(a, b) => {
                Self::Or(Box::new(a.substitute(v, t)), Box::new(b.substitute(v, t)))
            }
            Self::Exists(w, f) | Self::ForAll(w, f) => {
                assert!(
                    t.coefficient(*w) == 0,
                    "substitution would capture bound variable x{w}"
                );
                let inner = if *w == v { f.as_ref().clone() } else { f.substitute(v, t) };
                match self {
                    Self::Exists(..) => Self::Exists(*w, Box::new(inner)),
                    _ => Self::ForAll(*w, Box::new(inner)),
                }
            }
        }
    }

    /// Renames **every** variable occurrence (free and bound) through `f`,
    /// which must be injective on the variables of the formula.
    #[must_use]
    pub fn rename(&self, f: &impl Fn(u32) -> u32) -> Self {
        let rename_expr = |e: &LinExpr| -> LinExpr {
            let mut out = LinExpr::constant(e.constant_term());
            for (v, a) in e.terms() {
                out = out.add(&LinExpr::var_scaled(f(v), a));
            }
            out
        };
        match self {
            Self::Const(b) => Self::Const(*b),
            Self::Atom(Atom::Lt(e)) => Self::Atom(Atom::Lt(rename_expr(e))),
            Self::Atom(Atom::Dvd(m, e)) => Self::Atom(Atom::Dvd(*m, rename_expr(e))),
            Self::Not(g) => Self::Not(Box::new(g.rename(f))),
            Self::And(a, b) => Self::And(Box::new(a.rename(f)), Box::new(b.rename(f))),
            Self::Or(a, b) => Self::Or(Box::new(a.rename(f)), Box::new(b.rename(f))),
            Self::Exists(v, g) => Self::Exists(f(*v), Box::new(g.rename(f))),
            Self::ForAll(v, g) => Self::ForAll(f(*v), Box::new(g.rename(f))),
        }
    }

    // ---- evaluation -------------------------------------------------------

    /// Evaluates a quantifier-free formula under an assignment.
    ///
    /// # Panics
    ///
    /// Panics on a quantifier; use
    /// [`eval_bounded`](Self::eval_bounded) or run
    /// [`eliminate_quantifiers`](crate::qe::eliminate_quantifiers) first.
    pub fn eval_qf(&self, assignment: &[i64]) -> bool {
        match self {
            Self::Const(b) => *b,
            Self::Atom(a) => a.eval(assignment),
            Self::Not(f) => !f.eval_qf(assignment),
            Self::And(a, b) => a.eval_qf(assignment) && b.eval_qf(assignment),
            Self::Or(a, b) => a.eval_qf(assignment) || b.eval_qf(assignment),
            Self::Exists(..) | Self::ForAll(..) => {
                panic!("eval_qf on a quantified formula")
            }
        }
    }

    /// Evaluates with quantifiers ranging over `[-bound, bound]` only.
    ///
    /// This is **approximate** (Presburger quantifiers range over all of
    /// ℤ); it is provided for differential testing of quantifier
    /// elimination, where witness magnitudes can be bounded by inspection
    /// of the tested formulas.
    pub fn eval_bounded(&self, assignment: &[i64], bound: i64) -> bool {
        match self {
            Self::Const(b) => *b,
            Self::Atom(a) => a.eval(assignment),
            Self::Not(f) => !f.eval_bounded(assignment, bound),
            Self::And(a, b) => {
                a.eval_bounded(assignment, bound) && b.eval_bounded(assignment, bound)
            }
            Self::Or(a, b) => {
                a.eval_bounded(assignment, bound) || b.eval_bounded(assignment, bound)
            }
            Self::Exists(v, f) => {
                let mut asg = assignment.to_vec();
                if asg.len() <= *v as usize {
                    asg.resize(*v as usize + 1, 0);
                }
                (-bound..=bound).any(|val| {
                    asg[*v as usize] = val;
                    f.eval_bounded(&asg, bound)
                })
            }
            Self::ForAll(v, f) => {
                let mut asg = assignment.to_vec();
                if asg.len() <= *v as usize {
                    asg.resize(*v as usize + 1, 0);
                }
                (-bound..=bound).all(|val| {
                    asg[*v as usize] = val;
                    f.eval_bounded(&asg, bound)
                })
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Const(b) => write!(f, "{b}"),
            Self::Atom(a) => write!(f, "{a}"),
            Self::Not(g) => write!(f, "!({g})"),
            Self::And(a, b) => write!(f, "({a} /\\ {b})"),
            Self::Or(a, b) => write!(f, "({a} \\/ {b})"),
            Self::Exists(v, g) => write!(f, "exists x{v}. ({g})"),
            Self::ForAll(v, g) => write!(f, "forall x{v}. ({g})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(v: u32) -> LinExpr {
        LinExpr::var(v)
    }

    #[test]
    fn linexpr_arithmetic() {
        let e = x(0).scale(2).add(&x(1)).offset(-3); // 2x0 + x1 - 3
        assert_eq!(e.eval(&[5, 1]), 8);
        assert_eq!(e.coefficient(0), 2);
        assert_eq!(e.coefficient(2), 0);
        assert_eq!(e.constant_term(), -3);
        let z = e.sub(&e);
        assert!(z.is_constant());
        assert_eq!(z.eval(&[9, 9]), 0);
    }

    #[test]
    fn linexpr_substitute() {
        // (2x0 + x1)[x0 := x1 + 1] = 3x1 + 2? No: 2(x1+1) + x1 = 3x1 + 2.
        let e = x(0).scale(2).add(&x(1));
        let s = e.substitute(0, &x(1).offset(1));
        assert_eq!(s.eval(&[0, 4]), 14);
        assert_eq!(s.coefficient(0), 0);
        assert_eq!(s.coefficient(1), 3);
        assert_eq!(s.constant_term(), 2);
    }

    #[test]
    fn comparison_constructors_match_integer_semantics() {
        for a in -4i64..=4 {
            for b in -4i64..=4 {
                let asg = [a, b];
                assert_eq!(Formula::lt(x(0), x(1)).eval_qf(&asg), a < b);
                assert_eq!(Formula::le(x(0), x(1)).eval_qf(&asg), a <= b);
                assert_eq!(Formula::gt(x(0), x(1)).eval_qf(&asg), a > b);
                assert_eq!(Formula::ge(x(0), x(1)).eval_qf(&asg), a >= b);
                assert_eq!(Formula::eq(x(0), x(1)).eval_qf(&asg), a == b);
                assert_eq!(Formula::ne(x(0), x(1)).eval_qf(&asg), a != b);
            }
        }
    }

    #[test]
    fn congruence_semantics() {
        let f = Formula::congruent(x(0), LinExpr::constant(2), 5);
        assert!(f.eval_qf(&[7]));
        assert!(f.eval_qf(&[-3]));
        assert!(!f.eval_qf(&[6]));
    }

    #[test]
    fn boolean_simplifications() {
        let t = Formula::Const(true);
        let f = Formula::Const(false);
        assert_eq!(t.clone().and(f.clone()), Formula::Const(false));
        assert_eq!(t.clone().or(f.clone()), Formula::Const(true));
        assert_eq!(f.clone().not(), t);
        assert_eq!(t.clone().not().not(), t);
        // implies/iff truth table.
        for p in [false, true] {
            for q in [false, true] {
                let fp = Formula::Const(p);
                let fq = Formula::Const(q);
                assert_eq!(fp.clone().implies(fq.clone()).eval_qf(&[]), !p || q);
                assert_eq!(fp.iff(fq).eval_qf(&[]), p == q);
            }
        }
    }

    #[test]
    fn free_vars_respect_binding() {
        // exists x1. (x0 + x1 < 0) — free: {0}.
        let f = Formula::lt(x(0).add(&x(1)), LinExpr::constant(0)).exists(1);
        let fv = f.free_vars();
        assert!(fv.contains(&0));
        assert!(!fv.contains(&1));
        assert_eq!(f.max_var(), Some(1));
        assert!(!f.is_quantifier_free());
    }

    #[test]
    fn formula_substitute_avoids_bound() {
        // (exists x1. x1 < x0)[x0 := 3] — bound x1 untouched.
        let f = Formula::lt(x(1), x(0)).exists(1);
        let g = f.substitute(0, &LinExpr::constant(3));
        assert!(g.eval_bounded(&[], 10));
        // Substituting the bound variable itself is a no-op inside.
        let h = f.substitute(1, &LinExpr::constant(99));
        assert_eq!(h, f);
    }

    #[test]
    fn eval_bounded_finds_witnesses() {
        // exists y. x = 2y  (evenness)
        let even = Formula::eq(x(0), x(1).scale(2)).exists(1);
        assert!(even.eval_bounded(&[4], 10));
        assert!(!even.eval_bounded(&[5], 10));
        // forall y. y < x \/ y >= x (tautology on bounded range)
        let taut = Formula::lt(x(1), x(0)).or(Formula::ge(x(1), x(0))).forall(1);
        assert!(taut.eval_bounded(&[0], 5));
    }

    #[test]
    fn display_roundtrip_smoke() {
        let f = Formula::lt(x(0).scale(2).offset(-1), x(1)).and(Formula::congruent(
            x(0),
            LinExpr::constant(1),
            3,
        ));
        let s = format!("{f}");
        assert!(s.contains("<"), "{s}");
        assert!(s.contains("3 |"), "{s}");
        assert!(!format!("{}", LinExpr::constant(0)).is_empty());
    }
}
