//! E24 — the mean-field ODE fast path against the batched count engine.
//!
//! Not a paper claim: this table validates PR 9's fluid-limit integrator
//! (`pp-analysis::meanfield`) and measures what it buys. Two sections:
//!
//! * **Validation** (`ode_vs_engine` rows): for three protocols whose
//!   dynamics stay macroscopic — the 60/40 approximate majority, the
//!   1 %-seeded epidemic, and the 16-hour phase clock — the ODE trajectory
//!   is compared with one seeded batched-engine run at every overlapping
//!   population `n = 10³…10⁶`. The `tv` cell is the max total-variation
//!   distance over the engine's trajectory samples; non-smoke the bench
//!   hard-asserts `tv ≤ 0.05` at `n = 10⁶` for all three (the fluid limit
//!   is an `O(1/√n)` approximation: at `10⁶` agents the noise floor is
//!   ~10⁻³, so 0.05 is a loose structural bound, not a lucky seed).
//! * **Flat cost** (`flat_cost` rows): the same approximate-majority
//!   question asked at `n = 10⁶, 10⁹, 10¹², 10¹⁵` through
//!   `MeanField::with_population` — the integration is
//!   population-independent (`O(1)` memory; only the log-spaced sample
//!   schedule sees `n`), so non-smoke the bench hard-asserts the `10¹²`
//!   row costs at most 2× the `10⁶` row. The `predicted_tau` cell is the
//!   fluid-limit stabilization time (parallel time, `eps = 10⁻³`).
//!
//! A final `divergence_guard` row pins the refusal path: leader election's
//! last-two-leaders duel is a vanishing×vanishing rate bottleneck, so the
//! run must carry the flag and `predicted_stabilization_time` must return
//! `None` — the fast path refuses to extrapolate where the limit is known
//! to part from the finite-`n` law.
//!
//! `tv` and `predicted_tau` are accuracy cells, hard-asserted here and
//! [`EXCLUDED`](pp_bench::compare::EXCLUDED) from `ppbench-compare` row
//! keys; the compare gate watches `us_per_run` (ODE) and `wall_s`
//! (engine) only. Results land in `BENCH_e24_meanfield.json`.

use std::time::Instant;

use pp_analysis::meanfield::{Divergence, MeanField, MeanFieldOptions, MeanFieldRun};
use pp_bench::{fmt, print_header, BenchReport};
use pp_core::observe::TrajectoryProbe;
use pp_core::trace::RunManifest;
use pp_core::{seeded_rng, FnProtocol, Protocol, Simulation, Welford};
use pp_protocols::{ApproximateMajority, LeaderElection, PhaseClock};

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Times `reps` runs of the ODE and returns (mean µs, std µs, last run).
fn time_ode(mf: &MeanField, opts: &MeanFieldOptions, reps: u64) -> (f64, f64, MeanFieldRun) {
    let mut w = Welford::new();
    let mut last = mf.run(opts); // warmup + keeps a result alive
    for _ in 0..reps {
        let start = Instant::now();
        last = mf.run(opts);
        w.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    (w.mean(), w.std_dev(), last)
}

/// The engine-side evidence one validation case produces: the derived
/// mean field, the probe's `(interaction, occupancy)` samples, and the
/// engine's wall-clock seconds.
type Driven = (MeanField, Vec<(u64, Vec<u64>)>, f64);

/// One validation case: protocol + initial counts + comparison horizon.
struct Case {
    name: &'static str,
    horizon: f64,
    build: fn(u64) -> Driven,
}

/// Builds the simulation, derives the mean field, runs the batched engine
/// under a trajectory probe for `horizon` parallel time, and returns
/// (mean field, engine samples, engine wall seconds).
fn drive<P: Protocol>(
    protocol: P,
    inputs: impl IntoIterator<Item = (P::Input, u64)>,
    horizon: f64,
    seed: u64,
) -> Driven {
    let mut sim = Simulation::from_counts(protocol, inputs);
    let n = sim.population();
    let mf = MeanField::from_simulation(&mut sim);
    let mut probed = sim.with_probe(TrajectoryProbe::new());
    let mut rng = seeded_rng(seed);
    let start = Instant::now();
    probed.run_batched((horizon * n as f64) as u64, &mut rng);
    let wall = start.elapsed().as_secs_f64();
    (mf, probed.probe().samples().to_vec(), wall)
}

fn main() {
    println!("\nE24: mean-field ODE fast path (fluid limit vs batched engine)\n");
    let smoke = pp_bench::smoke();
    let ode_reps: u64 = if smoke { 2 } else { 5 };
    let populations: &[u64] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let flat_populations: &[u64] = if smoke {
        &[1_000_000, 1_000_000_000]
    } else {
        &[1_000_000, 1_000_000_000, 1_000_000_000_000, 1_000_000_000_000_000]
    };

    let cases: &[Case] = &[
        Case {
            name: "approx_majority_60_40",
            horizon: 30.0,
            build: |n| {
                drive(ApproximateMajority, [(true, 6 * n / 10), (false, 4 * n / 10)], 30.0, 240)
            },
        },
        Case {
            name: "epidemic_1pct",
            horizon: 15.0,
            build: |n| drive(epidemic(), [(true, n / 100), (false, n - n / 100)], 15.0, 241),
        },
        Case {
            name: "phase_clock_16",
            horizon: 8.0,
            build: |n| drive(PhaseClock::new(16), [((), n)], 8.0, 242),
        },
    ];

    let mut report = BenchReport::new("e24_meanfield");
    report.set_meta("ode_reps", ode_reps);
    report.set_meta("tv_bound_at_1e6", 0.05);
    report.set_manifest(
        RunManifest::default()
            .with_protocol("meanfield@{approx_majority,epidemic,phase_clock,leader}")
            .with_population(*flat_populations.last().unwrap())
            .with_master_seed(240)
            .with_threads(1)
            .with_detected_git_rev(),
    );

    print_header(
        &["case", "protocol", "n", "us_per_run", "wall_s", "tv"],
        &[14, 22, 17, 12, 9, 9],
    );

    // -- Validation: ODE vs engine at overlapping n ------------------------
    for case in cases {
        for &n in populations {
            let (mf, samples, engine_wall) = (case.build)(n);
            let opts = MeanFieldOptions { horizon: case.horizon, ..Default::default() };
            let (ode_us, ode_std, run) = time_ode(&mf, &opts, ode_reps);
            let tv = run.tv_against(&samples);
            // A 1% seed at n = 10³ is 10 agents < √n — the microscopic-
            // fraction detector is *supposed* to fire there, so the
            // no-false-flag assertion starts where the seeds go
            // macroscopic.
            if n >= 10_000 {
                assert!(
                    run.divergences().is_empty(),
                    "{}: macroscopic case wrongly flagged: {:?}",
                    case.name,
                    run.divergences()
                );
            }
            if !smoke && n >= 1_000_000 {
                assert!(
                    tv <= 0.05,
                    "{}: ODE vs engine TV {tv} exceeds the 0.05 acceptance bound at n={n}",
                    case.name
                );
            }
            println!(
                "{:>14} {:>22} {:>17} {:>12} {:>9} {:>9}",
                "ode_vs_engine",
                case.name,
                n,
                fmt(ode_us),
                fmt(engine_wall),
                fmt(tv),
            );
            let row: Vec<(&str, pp_bench::Value)> = vec![
                ("case", "ode_vs_engine".to_string().into()),
                ("protocol", case.name.to_string().into()),
                ("n", n.into()),
                ("us_per_run", ode_us.into()),
                ("us_per_run_std", ode_std.into()),
                ("wall_s", engine_wall.into()),
                ("tv", tv.into()),
            ];
            report.push_row(row);
        }
    }

    // -- Flat cost: the same ODE at astronomically large n ----------------
    let mut sim = Simulation::from_counts(
        ApproximateMajority,
        [(true, 600_000u64), (false, 400_000)],
    );
    let base_mf = MeanField::from_simulation(&mut sim);
    let opts = MeanFieldOptions::default();
    let mut us_at: Vec<(u64, f64)> = Vec::new();
    for &n in flat_populations {
        let mf = base_mf.with_population(n);
        let (ode_us, ode_std, run) = time_ode(&mf, &opts, ode_reps);
        let tau = run
            .predicted_stabilization_time(1e-3)
            .expect("approximate majority has a trusted fluid limit");
        us_at.push((n, ode_us));
        println!(
            "{:>14} {:>22} {:>17} {:>12} {:>9} {:>9}",
            "flat_cost",
            "approx_majority_60_40",
            n,
            fmt(ode_us),
            "",
            fmt(tau),
        );
        let row: Vec<(&str, pp_bench::Value)> = vec![
            ("case", "flat_cost".to_string().into()),
            ("protocol", "approx_majority_60_40".to_string().into()),
            ("n", n.into()),
            ("us_per_run", ode_us.into()),
            ("us_per_run_std", ode_std.into()),
            ("predicted_tau", tau.into()),
        ];
        report.push_row(row);
    }
    if !smoke {
        let at = |n: u64| us_at.iter().find(|&&(m, _)| m == n).unwrap().1;
        let (small, big) = (at(1_000_000), at(1_000_000_000_000));
        assert!(
            big <= 2.0 * small,
            "flat-cost violated: n=10^12 at {big:.1} µs vs n=10^6 at {small:.1} µs (>2x)"
        );
    }

    // -- Divergence guard: leader election refuses to extrapolate ----------
    let mut sim = Simulation::from_counts(LeaderElection, [((), 1_000_000u64)]);
    let run = MeanField::from_simulation(&mut sim).run(&MeanFieldOptions::default());
    let bottlenecked = run
        .divergences()
        .iter()
        .any(|d| matches!(d, Divergence::VanishingRateBottleneck { .. }));
    assert!(
        bottlenecked,
        "leader election must be flagged as a rate bottleneck, got {:?}",
        run.divergences()
    );
    assert_eq!(
        run.predicted_stabilization_time(1e-3),
        None,
        "a flagged run must refuse to predict a stabilization time"
    );
    println!(
        "{:>14} {:>22} {:>17} {:>12} {:>9} {:>9}",
        "divergence", "leader_election", 1_000_000u64, "", "", "refused",
    );
    let row: Vec<(&str, pp_bench::Value)> = vec![
        ("case", "divergence_guard".to_string().into()),
        ("protocol", "leader_election".to_string().into()),
        ("n", 1_000_000u64.into()),
        ("flag", "vanishing_rate_bottleneck".to_string().into()),
        ("prediction", "refused".to_string().into()),
    ];
    report.push_row(row);

    report.write();
}
