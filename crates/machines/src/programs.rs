//! Example machines: the concrete workloads run through the Minsky
//! reduction and the population simulations of §6.1/Theorem 10.
//!
//! All Turing machines here take unary inputs (`1^n`), matching the
//! paper's "input `x` represented in unary" setting, and use tiny state
//! tables so the Gödel-numbered counters stay within capacity at
//! population scale.

use crate::counter::{Assembler, CounterMachine};
use crate::tm::{Action, Move, TuringMachine};

/// `1^n ↦ 1^{n+1}` — scan right, append a `1`.
pub fn tm_unary_increment() -> TuringMachine {
    TuringMachine::new(
        2,
        2,
        0,
        1,
        [
            ((0, 1), Action { write: 1, mv: Move::Right, next: 0 }),
            ((0, 0), Action { write: 1, mv: Move::Stay, next: 1 }),
        ],
    )
    .expect("static table is valid")
}

/// `1^n ↦ 1` if `n` is odd, empty tape otherwise — erase while toggling a
/// parity state, then write the verdict.
pub fn tm_unary_parity() -> TuringMachine {
    TuringMachine::new(
        3,
        2,
        0,
        2,
        [
            // even-so-far
            ((0, 1), Action { write: 0, mv: Move::Right, next: 1 }),
            ((0, 0), Action { write: 0, mv: Move::Stay, next: 2 }),
            // odd-so-far
            ((1, 1), Action { write: 0, mv: Move::Right, next: 0 }),
            ((1, 0), Action { write: 1, mv: Move::Stay, next: 2 }),
        ],
    )
    .expect("static table is valid")
}

/// `1^n ↦` a tape with `⌊n/2⌋` ones (gaps allowed) — erase every other `1`.
pub fn tm_unary_half() -> TuringMachine {
    TuringMachine::new(
        3,
        2,
        0,
        2,
        [
            // erase-mode
            ((0, 1), Action { write: 0, mv: Move::Right, next: 1 }),
            ((0, 0), Action { write: 0, mv: Move::Stay, next: 2 }),
            // keep-mode
            ((1, 1), Action { write: 1, mv: Move::Right, next: 0 }),
            ((1, 0), Action { write: 0, mv: Move::Stay, next: 2 }),
        ],
    )
    .expect("static table is valid")
}

/// Binary increment, LSB first: alphabet `{blank, '0' = 1, '1' = 2}`.
/// `101…` on tape (LSB at the head) becomes its successor. Exercises the
/// base-3 Gödel encoding in the Minsky reduction.
pub fn tm_binary_increment() -> TuringMachine {
    TuringMachine::new(
        2,
        3,
        0,
        1,
        [
            // Carry propagation: '1' → '0', keep moving right.
            ((0, 2), Action { write: 1, mv: Move::Right, next: 0 }),
            // '0' → '1': done.
            ((0, 1), Action { write: 2, mv: Move::Stay, next: 1 }),
            // Past the end: append a '1'.
            ((0, 0), Action { write: 2, mv: Move::Stay, next: 1 }),
        ],
    )
    .expect("static table is valid")
}

/// Counter program: `c0 ← c0 + c1` (destroying `c1`), 2 counters.
pub fn cm_add() -> CounterMachine {
    let mut asm = Assembler::new();
    let head = asm.here();
    let done = asm.fresh_label();
    let body = asm.fresh_label();
    asm.dec_jz(1, body, done);
    asm.bind(body);
    asm.inc(0, head);
    asm.bind(done);
    asm.halt();
    asm.assemble(2).expect("static program is valid")
}

/// Counter program: `c1 ← 2·c0` (destroying `c0`), 2 counters.
pub fn cm_double() -> CounterMachine {
    let mut asm = Assembler::new();
    let head = asm.here();
    let done = asm.fresh_label();
    let body = asm.fresh_label();
    asm.dec_jz(0, body, done);
    asm.bind(body);
    let second = asm.fresh_label();
    asm.inc(1, second);
    asm.bind(second);
    asm.inc(1, head);
    asm.bind(done);
    asm.halt();
    asm.assemble(2).expect("static program is valid")
}

/// Counter program: `c1 ← ⌊c0 / b⌋`, `c2 ← c0 mod b` (destroying `c0`),
/// 3 counters.
///
/// # Panics
///
/// Panics if `b < 1`.
pub fn cm_divmod(b: u32) -> CounterMachine {
    assert!(b >= 1, "divisor must be positive");
    let mut asm = Assembler::new();
    let done = asm.fresh_label();
    let head = asm.here();
    // Try to subtract b from c0, one unit at a time. If c0 runs out after
    // i < b units, the remainder is i.
    let mut exit_fixups: Vec<(crate::counter::Target, u32)> = Vec::new();
    for i in 0..b {
        let next = asm.fresh_label();
        let exit = asm.fresh_label();
        asm.dec_jz(0, next, exit);
        exit_fixups.push((exit, i));
        asm.bind(next);
    }
    // Subtracted a full b: increment the quotient, loop.
    asm.inc(1, head);
    // Exits: remainder i is known statically; emit i increments of c2.
    for (exit, i) in exit_fixups {
        asm.bind(exit);
        for _ in 0..i {
            let nxt = asm.fresh_label();
            asm.inc(2, nxt);
            asm.bind(nxt);
        }
        asm.jump_via_zero(0, done); // c0 is exhausted here, so it is zero
    }
    asm.bind(done);
    asm.halt();
    asm.assemble(3).expect("static program is valid")
}

/// Counter program: `c0 ← c0 ∸ c1` (truncated subtraction, destroying
/// `c1`), 2 counters.
pub fn cm_sub() -> CounterMachine {
    let mut asm = Assembler::new();
    let head = asm.here();
    let done = asm.fresh_label();
    let body = asm.fresh_label();
    asm.dec_jz(1, body, done);
    asm.bind(body);
    asm.dec_jz(0, head, head); // decrement c0 if possible; loop either way
    asm.bind(done);
    asm.halt();
    asm.assemble(2).expect("static program is valid")
}

/// Counter program: `c1 ← c0` preserving `c0` (via scratch `c2`),
/// 3 counters.
pub fn cm_copy() -> CounterMachine {
    let mut asm = Assembler::new();
    // Move c0 → c1 and c2 simultaneously.
    let head = asm.here();
    let restore = asm.fresh_label();
    let body = asm.fresh_label();
    asm.dec_jz(0, body, restore);
    asm.bind(body);
    let t = asm.fresh_label();
    asm.inc(1, t);
    asm.bind(t);
    asm.inc(2, head);
    // Move c2 back → c0.
    asm.bind(restore);
    let done = asm.fresh_label();
    let rbody = asm.fresh_label();
    let rhead = asm.here();
    asm.dec_jz(2, rbody, done);
    asm.bind(rbody);
    asm.inc(0, rhead);
    asm.bind(done);
    asm.halt();
    asm.assemble(3).expect("static program is valid")
}

/// Counter program: `c2 ← c0 · c1` (preserving `c1`, destroying `c0`),
/// 4 counters (`c3` is scratch).
pub fn cm_multiply() -> CounterMachine {
    let mut asm = Assembler::new();
    let outer = asm.here();
    let done = asm.fresh_label();
    let outer_body = asm.fresh_label();
    asm.dec_jz(0, outer_body, done);
    asm.bind(outer_body);
    // Move c1 → c3 while adding to c2.
    let inner1 = asm.here();
    let inner1_body = asm.fresh_label();
    let restore = asm.fresh_label();
    asm.dec_jz(1, inner1_body, restore);
    asm.bind(inner1_body);
    let t = asm.fresh_label();
    asm.inc(2, t);
    asm.bind(t);
    asm.inc(3, inner1);
    // Move c3 back → c1.
    asm.bind(restore);
    let restore_body = asm.fresh_label();
    asm.dec_jz(3, restore_body, outer);
    asm.bind(restore_body);
    asm.inc(1, restore);
    asm.bind(done);
    asm.halt();
    asm.assemble(4).expect("static program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_program() {
        let out = cm_add().run(&[5, 7], 1000).unwrap();
        assert_eq!(out.counters[0], 12);
    }

    #[test]
    fn double_program() {
        let out = cm_double().run(&[9, 0], 1000).unwrap();
        assert_eq!(out.counters[1], 18);
    }

    #[test]
    fn divmod_program() {
        for b in [1u32, 2, 3, 5] {
            for n in 0u128..20 {
                let out = cm_divmod(b).run(&[n, 0, 0], 10_000).unwrap();
                assert_eq!(out.counters[1], n / u128::from(b), "n={n} b={b}");
                assert_eq!(out.counters[2], n % u128::from(b), "n={n} b={b}");
            }
        }
    }

    #[test]
    fn sub_program() {
        for (a, b) in [(7u128, 3u128), (3, 7), (5, 5), (0, 4), (4, 0)] {
            let out = cm_sub().run(&[a, b], 1000).unwrap();
            assert_eq!(out.counters[0], a.saturating_sub(b), "{a}∸{b}");
            assert_eq!(out.counters[1], 0);
        }
    }

    #[test]
    fn copy_program() {
        for a in 0u128..8 {
            let out = cm_copy().run(&[a, 0, 0], 1000).unwrap();
            assert_eq!(out.counters[0], a, "c0 preserved");
            assert_eq!(out.counters[1], a, "c1 copied");
            assert_eq!(out.counters[2], 0, "scratch drained");
        }
    }

    #[test]
    fn binary_increment_tm() {
        let tm = tm_binary_increment();
        // LSB-first encodings: digits '0' = 1, '1' = 2.
        let enc = |mut v: u64| -> Vec<u8> {
            let mut out = Vec::new();
            if v == 0 {
                out.push(1);
            }
            while v > 0 {
                out.push(if v & 1 == 1 { 2 } else { 1 });
                v >>= 1;
            }
            out
        };
        let dec = |tape: &[u8]| -> u64 {
            tape.iter()
                .enumerate()
                .map(|(i, &d)| if d == 2 { 1u64 << i } else { 0 })
                .sum()
        };
        for v in 0u64..20 {
            let out = tm.run(&enc(v), 1000).unwrap();
            assert_eq!(dec(&out.tape), v + 1, "increment of {v}");
        }
    }

    #[test]
    fn multiply_program() {
        for a in 0u128..6 {
            for b in 0u128..6 {
                let out = cm_multiply().run(&[a, b, 0, 0], 10_000).unwrap();
                assert_eq!(out.counters[2], a * b, "{a}*{b}");
                assert_eq!(out.counters[1], b, "c1 preserved");
            }
        }
    }
}
