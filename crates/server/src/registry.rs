//! The named-protocol registry: the protocols a [`RunSpec`] can reference
//! by name instead of by Presburger formula.
//!
//! Every entry is a protocol from `pp-protocols` with `Output = bool`,
//! together with its input-symbol table and its ground-truth predicate on
//! symbol counts — everything the resolver needs to run a spec and report
//! the expected verdict.
//!
//! [`RunSpec`]: pp_core::spec::RunSpec

use pp_core::spec::{ProtocolRef, SpecError};
use pp_protocols::ext::ApproximateMajority;
use pp_protocols::{majority, parity, CountThreshold, RemainderProtocol, ThresholdProtocol};

/// A protocol resolved from a registry name. Variants carry the concrete
/// protocol value; the resolver matches on this to enter the generic
/// engine dispatchers with a statically-typed protocol.
#[derive(Debug, Clone)]
pub enum NamedProtocol {
    /// Exact majority (Lemma 5 threshold `x₀ − x₁ < 0`): more `1`s than
    /// `0`s?
    Majority(ThresholdProtocol),
    /// Parity (Lemma 5 remainder `x₁ ≡ 1 (mod 2)`): odd number of `1`s?
    Parity(RemainderProtocol),
    /// The 3-state approximate-majority protocol (DISC 2007 ablation):
    /// fast, but can err — its ground truth is still the exact majority.
    ApproximateMajority(ApproximateMajority),
    /// The flock-of-birds count-to-`k` protocol (§1): at least `k` agents
    /// with input `1`?
    CountTo(CountThreshold),
}

/// Registry names, in listing order.
pub fn names() -> &'static [&'static str] {
    &["majority", "parity", "approximate-majority", "count-to-k"]
}

/// Resolves a [`ProtocolRef::Name`] against the registry.
///
/// # Errors
///
/// [`SpecError::UnknownProtocol`] for names not in [`names`],
/// [`SpecError::BadField`] for missing or invalid parameters.
pub fn resolve_named(name: &str, params: &[(String, u64)]) -> Result<NamedProtocol, SpecError> {
    let no_params = |p: &NamedProtocol| -> Result<NamedProtocol, SpecError> {
        match params {
            [] => Ok(p.clone()),
            [(k, _), ..] => Err(SpecError::BadField {
                field: k.clone(),
                detail: format!("protocol {name:?} takes no parameters"),
            }),
        }
    };
    match name {
        "majority" => no_params(&NamedProtocol::Majority(majority())),
        "parity" => no_params(&NamedProtocol::Parity(parity())),
        "approximate-majority" => {
            no_params(&NamedProtocol::ApproximateMajority(ApproximateMajority))
        }
        "count-to-k" => {
            let k = match params {
                [(key, k)] if key == "k" => *k,
                [] => {
                    return Err(SpecError::BadField {
                        field: "k".to_string(),
                        detail: "count-to-k needs an integer parameter \"k\"".to_string(),
                    })
                }
                [(key, _), ..] => {
                    return Err(SpecError::BadField {
                        field: key.clone(),
                        detail: "count-to-k takes exactly one parameter, \"k\"".to_string(),
                    })
                }
            };
            let k = u32::try_from(k).ok().filter(|&k| k >= 1).ok_or_else(|| {
                SpecError::BadField {
                    field: "k".to_string(),
                    detail: "k must be an integer in 1..=2^32-1".to_string(),
                }
            })?;
            Ok(NamedProtocol::CountTo(CountThreshold::new(k)))
        }
        other => Err(SpecError::UnknownProtocol(other.to_string())),
    }
}

impl NamedProtocol {
    /// The identity / cache key reported for this protocol.
    pub fn key(&self) -> String {
        match self {
            Self::Majority(_) => "majority".to_string(),
            Self::Parity(_) => "parity".to_string(),
            Self::ApproximateMajority(_) => "approximate-majority".to_string(),
            Self::CountTo(p) => format!("count-to-k:k={}", p.threshold()),
        }
    }

    /// Input symbols, in symbol-index order. Every registry protocol is
    /// binary-input: symbol `"0"` / `"1"`.
    pub fn symbols(&self) -> Vec<String> {
        vec!["0".to_string(), "1".to_string()]
    }

    /// Ground truth of the predicate on symbol counts `[x₀, x₁]`.
    pub fn ground_truth(&self, counts: &[u64]) -> bool {
        match self {
            Self::Majority(p) => p.eval(counts),
            Self::Parity(p) => p.eval(counts),
            // Approximate majority *aims at* the exact majority; ties
            // count as "0 wins", matching the threshold convention.
            Self::ApproximateMajority(_) => counts[1] > counts[0],
            Self::CountTo(p) => p.eval(counts[1]),
        }
    }
}

/// Resolves any [`ProtocolRef::Name`]; formula refs are handled by the
/// compile cache in [`crate::api`], not here.
///
/// # Errors
///
/// See [`resolve_named`]; passing a formula ref is an internal error.
pub fn resolve(r: &ProtocolRef) -> Result<NamedProtocol, SpecError> {
    match r {
        ProtocolRef::Name { name, params } => resolve_named(name, params),
        ProtocolRef::Formula(_) => Err(SpecError::Internal(
            "formula refs resolve through the compile cache".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_listed_name() {
        for &name in names() {
            let params: Vec<(String, u64)> = if name == "count-to-k" {
                vec![("k".to_string(), 5)]
            } else {
                vec![]
            };
            let p = resolve_named(name, &params).unwrap();
            assert_eq!(p.symbols().len(), 2);
        }
    }

    #[test]
    fn ground_truths() {
        let m = resolve_named("majority", &[]).unwrap();
        assert!(m.ground_truth(&[3, 4]));
        assert!(!m.ground_truth(&[4, 4])); // tie -> "0 wins"
        let p = resolve_named("parity", &[]).unwrap();
        assert!(p.ground_truth(&[9, 3]));
        assert!(!p.ground_truth(&[9, 4]));
        let c = resolve_named("count-to-k", &[("k".to_string(), 5)]).unwrap();
        assert!(c.ground_truth(&[95, 5]));
        assert!(!c.ground_truth(&[96, 4]));
    }

    #[test]
    fn rejects_bad_refs() {
        assert!(matches!(
            resolve_named("no-such", &[]),
            Err(SpecError::UnknownProtocol(_))
        ));
        assert!(resolve_named("majority", &[("k".to_string(), 1)]).is_err());
        assert!(resolve_named("count-to-k", &[]).is_err());
        assert!(resolve_named("count-to-k", &[("k".to_string(), 0)]).is_err());
    }
}
