//! Randomized leader election with timer marking and retrieval — §6.1
//! "How to elect a leader".
//!
//! Every agent starts with its leader bit set. Leaders eliminate each
//! other pairwise; each leader tries to mark one *timer* agent and uses
//! `k` consecutive timer encounters to decide its initialization phase is
//! over. When a leader defeats a rival that had marked a timer, it owes
//! one timer *retrieval*: it converts the next timer(s) it meets back to
//! ordinary agents before proceeding, so the population ends with exactly
//! one leader and exactly one timer.
//!
//! The paper: "After a period of unrest lasting an expected Θ(n²)
//! interactions, there will be just one agent with leader bit equal to 1",
//! and the surviving leader then initializes everyone with high
//! probability. Experiment E1 measures the `(n−1)²` unrest time for the
//! bare protocol (`pp-protocols`' `LeaderElection`); this module measures
//! the full timer dance.

use rand::Rng;

/// Phase of a leader agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still initializing (streak counts consecutive timer encounters).
    Initializing {
        /// Consecutive timer encounters so far.
        streak: u32,
    },
    /// Initialization complete; computing.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Agent {
    leader: bool,
    timer: bool,
    /// Leaders only: marked a timer already?
    has_timer: bool,
    /// Leaders only: timers owed for retrieval from defeated rivals.
    pending_retrieval: u32,
    phase: Phase,
}

/// Outcome of a full leader-election run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElectionOutcome {
    /// Interactions until a single leader remained (the "period of
    /// unrest", expected Θ(n²)).
    pub unrest_interactions: u64,
    /// Interactions until the surviving leader also finished its
    /// initialization phase (including timer retrievals).
    pub total_interactions: u64,
    /// Number of timers left in the population (should be exactly 1).
    pub final_timers: u64,
}

/// The §6.1 leader-election system over `n` agents with waiting
/// parameter `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerLeaderElection {
    n: usize,
    k: u32,
}

impl TimerLeaderElection {
    /// Creates an election over `n ≥ 3` agents (a leader, a timer, and at
    /// least one ordinary agent) with waiting parameter `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `k < 1`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n >= 3, "need at least 3 agents");
        assert!(k >= 1, "waiting parameter must be at least 1");
        Self { n, k }
    }

    /// Runs the election to completion (single leader, initialization
    /// done, all surplus timers retrieved), or until `max_interactions`.
    ///
    /// Returns `None` on timeout.
    pub fn run(&self, rng: &mut impl Rng, max_interactions: u64) -> Option<LeaderElectionOutcome> {
        let mut agents = vec![
            Agent {
                leader: true,
                timer: false,
                has_timer: false,
                pending_retrieval: 0,
                phase: Phase::Initializing { streak: 0 },
            };
            self.n
        ];
        let mut leaders = self.n as u64;
        let mut interactions = 0u64;
        let mut unrest = None;

        while interactions < max_interactions {
            interactions += 1;
            let u = rng.gen_range(0..self.n);
            let mut v = rng.gen_range(0..self.n - 1);
            if v >= u {
                v += 1;
            }
            self.interact(&mut agents, u, v, &mut leaders);
            if leaders == 1 && unrest.is_none() {
                unrest = Some(interactions);
            }
            if leaders == 1 {
                // Finished when the unique leader is Done with no pending
                // retrievals.
                let l = agents.iter().find(|a| a.leader).expect("one leader");
                if l.phase == Phase::Done && l.pending_retrieval == 0 {
                    let timers = agents.iter().filter(|a| a.timer).count() as u64;
                    return Some(LeaderElectionOutcome {
                        unrest_interactions: unrest.unwrap_or(interactions),
                        total_interactions: interactions,
                        final_timers: timers,
                    });
                }
            }
        }
        None
    }

    fn interact(&self, agents: &mut [Agent], u: usize, v: usize, leaders: &mut u64) {
        match (agents[u].leader, agents[v].leader) {
            (true, true) => {
                // The responder demotes; the winner inherits a retrieval
                // obligation if the loser had marked a timer, and restarts
                // its initialization phase.
                let loser_had_timer = agents[v].has_timer;
                agents[v].leader = false;
                agents[v].has_timer = false;
                let inherited = agents[v].pending_retrieval;
                agents[v].pending_retrieval = 0;
                *leaders -= 1;
                let w = &mut agents[u];
                if loser_had_timer {
                    w.pending_retrieval += 1;
                }
                w.pending_retrieval += inherited;
                w.phase = Phase::Initializing { streak: 0 };
            }
            (true, false) => self.leader_meets(agents, u, v),
            (false, true) => self.leader_meets(agents, v, u),
            (false, false) => {}
        }
    }

    /// Leader `l` encounters non-leader `o`.
    fn leader_meets(&self, agents: &mut [Agent], l: usize, o: usize) {
        let other_is_timer = agents[o].timer;
        let leader = &mut agents[l];
        if leader.pending_retrieval > 0 && other_is_timer {
            // Retrieve a surplus timer.
            leader.pending_retrieval -= 1;
            agents[o].timer = false;
            if let Phase::Initializing { streak } = &mut agents[l].phase {
                *streak = 0;
            }
            return;
        }
        if !leader.has_timer && !other_is_timer {
            // Mark the first non-timer agent encountered as the timer.
            leader.has_timer = true;
            agents[o].timer = true;
            if let Phase::Initializing { streak } = &mut agents[l].phase {
                *streak = 0;
            }
            return;
        }
        match &mut leader.phase {
            Phase::Initializing { streak } => {
                if other_is_timer {
                    *streak += 1;
                    if *streak >= self.k {
                        leader.phase = Phase::Done;
                    }
                } else {
                    // Initialize the agent; streak broken.
                    *streak = 0;
                }
            }
            Phase::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_one_leader_one_timer() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [3usize, 8, 32, 100] {
            let e = TimerLeaderElection::new(n, 3);
            let out = e.run(&mut rng, 200_000_000).expect("must converge");
            assert_eq!(out.final_timers, 1, "n={n}");
            assert!(out.unrest_interactions <= out.total_interactions);
        }
    }

    #[test]
    fn unrest_time_scales_quadratically() {
        // E[unrest] for the bare merge process is (n−1)²; the timer dance
        // only perturbs constants. Check the n² slope across a doubling.
        let mut rng = StdRng::seed_from_u64(23);
        let mean_unrest = |n: usize, rng: &mut StdRng| {
            let e = TimerLeaderElection::new(n, 2);
            let trials = 60;
            let total: u64 = (0..trials)
                .map(|_| e.run(rng, 500_000_000).unwrap().unrest_interactions)
                .sum();
            total as f64 / trials as f64
        };
        let m32 = mean_unrest(32, &mut rng);
        let m64 = mean_unrest(64, &mut rng);
        let ratio = m64 / m32;
        assert!(
            (2.5..6.5).contains(&ratio),
            "expected ≈4x growth for 2x population, got {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_population_rejected() {
        TimerLeaderElection::new(2, 1);
    }

    #[test]
    fn timeout_returns_none() {
        let e = TimerLeaderElection::new(50, 3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(e.run(&mut rng, 10), None);
    }
}
