//! The Theorem 2 output-convention transformation.
//!
//! Theorem 2: a predicate is stably computable under the *all-agents*
//! output convention iff it is stably computable under the weaker
//! *zero/non-zero* convention (`false` iff every agent outputs 0). The
//! interesting direction wraps a zero/non-zero protocol `B` with a leader
//! subprotocol that monitors `B`'s outputs and distributes the correct bit:
//! leadership is handed to an agent whose `B`-output is 1 whenever one
//! exists, the leader's bit follows its own `B`-output, and non-leaders
//! copy the bit of the last leader they met.

use pp_core::Protocol;

/// State of [`AllAgentsAdapter`]: a leader bit, a distributed output bit,
/// and the wrapped protocol's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdapterState<S> {
    /// Leader bit `ℓ`.
    pub leader: bool,
    /// Output bit `b` distributed by leaders.
    pub out: bool,
    /// Embedded state of the wrapped protocol `B`.
    pub inner: S,
}

/// Wraps a protocol `B` that stably computes a predicate under the
/// zero/non-zero convention into a protocol that stably computes the same
/// predicate under the all-agents convention (Theorem 2).
///
/// # Example
///
/// The "epidemic" protocol (any agent with input 1 infects nobody — in
/// fact it does nothing at all!) computes "some input is 1" under the
/// zero/non-zero convention. The adapter turns it into an all-agents
/// protocol:
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::AllAgentsAdapter;
///
/// // B: output = own input; zero/non-zero verdict = "any 1 input?".
/// let b = FnProtocol::new(|&x: &bool| x, |&q: &bool| q, |&p: &bool, &q: &bool| (p, q));
/// let a = AllAgentsAdapter::new(b);
/// let mut sim = Simulation::from_counts(a, [(true, 1), (false, 30)]);
/// let mut rng = seeded_rng(9);
/// // Now *every* agent converges to output 1.
/// assert!(sim.measure_stabilization(&true, 300_000, &mut rng).converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllAgentsAdapter<B> {
    inner: B,
}

impl<B> AllAgentsAdapter<B>
where
    B: Protocol<Output = bool>,
{
    /// Wraps `inner`, which must stably compute its predicate under the
    /// zero/non-zero output convention.
    pub fn new(inner: B) -> Self {
        Self { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B> Protocol for AllAgentsAdapter<B>
where
    B: Protocol<Output = bool>,
{
    type State = AdapterState<B::State>;
    type Input = B::Input;
    type Output = bool;

    /// Initially `ℓ = 1`, `b = 0`, inner state per `B`'s input map.
    fn input(&self, x: &B::Input) -> Self::State {
        AdapterState { leader: true, out: false, inner: self.inner.input(x) }
    }

    fn output(&self, q: &Self::State) -> bool {
        q.out
    }

    fn delta(&self, p: &Self::State, q: &Self::State) -> (Self::State, Self::State) {
        // 1. Advance the embedded B computation.
        let (ip, iq) = self.inner.delta(&p.inner, &q.inner);
        let (op, oq) = (self.inner.output(&ip), self.inner.output(&iq));

        // 2. Resolve leadership.
        let (mut lp, mut lq) = (p.leader, q.leader);
        if lp && lq {
            // Usual leader election: the responder demotes itself.
            lq = false;
        } else if lp && !lq && !op && oq {
            // Leader with B-output 0 meets non-leader with B-output 1: swap.
            (lp, lq) = (false, true);
        } else if lq && !lp && !oq && op {
            (lp, lq) = (true, false);
        }

        // 3. Distribute output bits: a leader's bit follows its own
        //    B-output; a non-leader copies the bit of a leader it meets.
        let (mut bp, mut bq) = (p.out, q.out);
        if lp {
            bp = op;
            bq = bp;
        } else if lq {
            bq = oq;
            bp = bq;
        }

        (
            AdapterState { leader: lp, out: bp, inner: ip },
            AdapterState { leader: lq, out: bq, inner: iq },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, FnProtocol, Simulation};

    /// B computes "at least one input is 1" under zero/non-zero: each agent
    /// simply outputs its own (remembered) input, never changing state.
    fn witness() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(|&x: &bool| x, |&q: &bool| q, |&p: &bool, &q: &bool| (p, q))
    }

    #[test]
    fn positive_instance_spreads_one() {
        let mut sim =
            Simulation::from_counts(AllAgentsAdapter::new(witness()), [(true, 2), (false, 40)]);
        let mut rng = seeded_rng(1);
        let rep = sim.measure_stabilization(&true, 500_000, &mut rng);
        assert!(rep.converged());
    }

    #[test]
    fn negative_instance_spreads_zero() {
        let mut sim =
            Simulation::from_counts(AllAgentsAdapter::new(witness()), [(false, 42)]);
        let mut rng = seeded_rng(2);
        let rep = sim.measure_stabilization(&false, 500_000, &mut rng);
        assert!(rep.converged());
    }

    #[test]
    fn leadership_transfers_to_a_one_agent() {
        let a = AllAgentsAdapter::new(witness());
        // Leader with B-output 0 (initiator) meets non-leader with B-output 1.
        let leader0 = AdapterState { leader: true, out: false, inner: false };
        let plain1 = AdapterState { leader: false, out: false, inner: true };
        let (x, y) = a.delta(&leader0, &plain1);
        assert!(!x.leader && y.leader, "leadership must swap");
        assert!(y.out, "new leader's bit follows its B-output 1");
        assert!(x.out, "demoted agent copies the new leader's bit");
        // And in the mirrored roles.
        let (x, y) = a.delta(&plain1, &leader0);
        assert!(x.leader && !y.leader);
        assert!(x.out && y.out);
    }

    #[test]
    fn two_leaders_merge() {
        let a = AllAgentsAdapter::new(witness());
        let l1 = AdapterState { leader: true, out: false, inner: false };
        let l2 = AdapterState { leader: true, out: true, inner: false };
        let (x, y) = a.delta(&l1, &l2);
        assert!(x.leader && !y.leader);
    }

    #[test]
    fn leader_count_never_zero_nor_increasing() {
        let a = AllAgentsAdapter::new(witness());
        for &(lp, ip) in &[(true, true), (true, false), (false, true), (false, false)] {
            for &(lq, iq) in &[(true, true), (true, false), (false, true), (false, false)] {
                let p = AdapterState { leader: lp, out: false, inner: ip };
                let q = AdapterState { leader: lq, out: false, inner: iq };
                let (x, y) = a.delta(&p, &q);
                let before = usize::from(lp) + usize::from(lq);
                let after = usize::from(x.leader) + usize::from(y.leader);
                assert!(after <= before.max(1), "leaders grew: {p:?} {q:?}");
                if before >= 1 {
                    assert!(after >= 1, "leaders vanished: {p:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn works_with_a_real_computation() {
        // B = "some agent saw input 1", via epidemic under zero/non-zero:
        // infected agents spread. (Epidemic actually stabilizes all-agents
        // anyway; the adapter must not break it.)
        let epidemic = FnProtocol::new(
            |&x: &bool| x,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        );
        let mut sim =
            Simulation::from_counts(AllAgentsAdapter::new(epidemic), [(true, 1), (false, 25)]);
        let mut rng = seeded_rng(3);
        assert!(sim.measure_stabilization(&true, 400_000, &mut rng).converged());
    }
}
