//! Exact analysis of population protocols on the standard population.
//!
//! The paper's Theorem 6 observes that a population configuration is just a
//! multiset of states — representable with `|Q|` counters of `⌈log n⌉` bits
//! — and that stable computation is decidable by reachability over the
//! finite configuration graph. This crate makes that analysis concrete and
//! executable:
//!
//! * [`reach`] — enumerate the configurations reachable from an initial
//!   configuration and the transition relation between them (the paper's
//!   transition graph `G(A, P)`);
//! * [`scc`] — Tarjan's strongly connected components; a configuration is
//!   *final* iff its component has no outgoing edges (Lemma 1: fair
//!   computations end up cycling inside a final component);
//! * [`verify`] — the stable-computation decision procedure: does protocol
//!   `A` stably compute output `y` on input `x`? (Every reachable final
//!   component must be output-uniform with value `y`.)
//! * [`markov`] — the §6.2 Markov-chain view of conjugating automata:
//!   transition probabilities under uniform random pairing, expected time
//!   to reach the output-committed set, and absorption probabilities —
//!   the polynomial-time algorithm inside Theorem 11;
//! * [`linalg`] — the dense linear solver behind [`markov`];
//! * [`meanfield`] — the other end of the scale axis: the fluid-limit ODE
//!   of a protocol's transition table, integrated with an adaptive RK45 so
//!   `n = 10¹²` costs the same as `n = 10⁶` — with divergence detection
//!   for protocols whose finite-`n` law parts from the limit.
//!
//! # Example
//!
//! Verify exhaustively (not statistically!) that the count-to-3 protocol
//! stably computes its predicate for every input of size 6:
//!
//! ```
//! use pp_analysis::verify::verify_predicate;
//! use pp_protocols::CountThreshold;
//!
//! for ones in 0..=6u64 {
//!     let inputs = [(true, ones), (false, 6 - ones)];
//!     let report = verify_predicate(CountThreshold::new(3), inputs, ones >= 3);
//!     assert!(report.holds(), "failed at ones={ones}: {report:?}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod markov;
pub mod meanfield;
pub mod reach;
pub mod scc;
pub mod verify;

pub use markov::MarkovAnalysis;
pub use meanfield::{
    Divergence, DriftCache, DriftField, MeanField, MeanFieldOptions, MeanFieldRun,
};
pub use reach::ConfigGraph;
pub use verify::{verify_all_inputs, verify_predicate, StableComputation, Verdict};
