//! Replayability properties of the fault-injection subsystem: every
//! faulted run is a deterministic function of `(protocol, initial
//! configuration, plan, seed)`. Same seed + same [`FaultPlan`] ⇒ identical
//! [`FaultRunReport`], bit for bit, on both engines.

use pp_core::faults::{
    Churn, CorruptionMode, CrashFaults, FaultPlan, FaultRunReport, InteractionDrop,
    TransientCorruption,
};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{seeded_rng, AgentSimulation, FnProtocol, Protocol, Simulation};
use proptest::prelude::*;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// One faulted run on the count engine from a fresh simulation.
fn count_run(
    n: u64,
    plan: &mut (impl FaultPlan<bool> + ?Sized),
    horizon: u64,
    seed: u64,
) -> (FaultRunReport, u64) {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
    let mut rng = seeded_rng(seed);
    let rep = sim.run_with_faults(plan, &true, horizon, &mut rng);
    (rep, sim.population())
}

/// One faulted run on the per-agent engine from a fresh simulation.
fn agent_run(
    n: usize,
    plan: &mut (impl FaultPlan<bool> + ?Sized),
    horizon: u64,
    seed: u64,
) -> (FaultRunReport, usize) {
    let inputs: Vec<bool> = (0..n).map(|i| i == 0).collect();
    let mut sim = AgentSimulation::from_inputs(
        epidemic(),
        &inputs,
        UniformPairScheduler::new(n),
    );
    let mut rng = seeded_rng(seed);
    let rep = sim.run_with_faults(plan, &true, horizon, &mut rng);
    (rep, sim.live_population())
}

/// Builds the composite plan under test; called once per replay so each
/// run gets an identically-configured plan value.
fn composite_plan(
    burst_step: u64,
    crashes: u64,
    corruptions: u64,
    churn_period: u64,
    drop_p: f64,
) -> impl FaultPlan<bool> {
    (
        CrashFaults::at(burst_step, crashes),
        (
            TransientCorruption::schedule(
                vec![(burst_step, corruptions)],
                CorruptionMode::UniformKnown,
            ),
            (Churn::new(churn_period, 1, false), InteractionDrop::new(drop_p)),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn count_engine_reports_replay_exactly(
        seed in 0u64..1_000,
        n in 8u64..64,
        burst in 1u64..2_000,
        crashes in 0u64..4,
        corruptions in 0u64..6,
        drop_p in 0.0f64..0.5,
    ) {
        let horizon = 4_000;
        let mut plan_a = composite_plan(burst, crashes, corruptions, 700, drop_p);
        let mut plan_b = composite_plan(burst, crashes, corruptions, 700, drop_p);
        let (rep_a, pop_a) = count_run(n, &mut plan_a, horizon, seed);
        let (rep_b, pop_b) = count_run(n, &mut plan_b, horizon, seed);
        prop_assert_eq!(&rep_a, &rep_b);
        prop_assert_eq!(pop_a, pop_b);
        // A different seed must produce a different interaction history;
        // drops alone make identical reports astronomically unlikely.
        if drop_p > 0.05 {
            let mut plan_c = composite_plan(burst, crashes, corruptions, 700, drop_p);
            let (rep_c, _) = count_run(n, &mut plan_c, horizon, seed ^ 0xdead_beef);
            prop_assert!(rep_c.dropped != rep_a.dropped || rep_c.segments != rep_a.segments);
        }
    }

    #[test]
    fn agent_engine_reports_replay_exactly(
        seed in 0u64..1_000,
        n in 8usize..48,
        burst in 1u64..2_000,
        crashes in 0u64..4,
        corruptions in 0u64..6,
        drop_p in 0.0f64..0.5,
    ) {
        let horizon = 4_000;
        let mut plan_a = composite_plan(burst, crashes, corruptions, 900, drop_p);
        let mut plan_b = composite_plan(burst, crashes, corruptions, 900, drop_p);
        let (rep_a, live_a) = agent_run(n, &mut plan_a, horizon, seed);
        let (rep_b, live_b) = agent_run(n, &mut plan_b, horizon, seed);
        prop_assert_eq!(&rep_a, &rep_b);
        prop_assert_eq!(live_a, live_b);
    }

    #[test]
    fn fault_counts_match_the_schedule(
        seed in 0u64..1_000,
        n in 16u64..64,
        burst in 1u64..1_000,
        corruptions in 1u64..8,
    ) {
        // Corruption bursts never fizzle (unlike crashes, which stop at 2
        // live agents), so the report's tally is exactly the schedule's.
        let mut plan = TransientCorruption::<bool>::uniform_at(burst, corruptions);
        let (rep, pop) = count_run(n, &mut plan, 2_000, seed);
        prop_assert_eq!(rep.faults_injected, corruptions);
        prop_assert_eq!(pop, n);
        prop_assert_eq!(rep.segments.len(), 2);
        prop_assert_eq!(rep.segments[1].injected_at, burst);
    }
}
