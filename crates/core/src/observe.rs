//! Zero-cost observability: probes that watch a simulation from inside.
//!
//! The paper's claims are statements about *trajectories* — which rules of
//! `δ` fire, how state occupancies evolve, when the output assignment last
//! changes (§3.2, §6) — but an engine that only returns end-of-run
//! aggregates forces every experiment to re-derive its own bookkeeping.
//! This module adds a [`Probe`] trait to both engines: the engine emits one
//! [`InteractionEvent`] per interaction (sequential step, leap, or matched
//! pair of a parallel round) plus callbacks for output-assignment changes
//! and fault bursts, and the probe folds them into whatever statistic the
//! experiment needs.
//!
//! # Zero cost by monomorphization
//!
//! The probe is a type parameter of the simulation
//! (`Simulation<P, Pr = NoProbe>`), not a trait object. Every hook site is
//! guarded by the associated constant [`Probe::ACTIVE`]; for the default
//! [`NoProbe`] (`ACTIVE = false`) the compiler removes event construction
//! and dispatch entirely, so an unprobed run compiles to the same machine
//! code as before the probe layer existed — same wall-clock, and (because
//! probes never touch the RNG) the *same random stream* for the same seed,
//! probed or not.
//!
//! # Built-in probes
//!
//! * [`MetricsProbe`] — per-rule firing counts, per-state occupancy
//!   integrals, effective-interaction ratio;
//! * [`TrajectoryProbe`] — state-histogram time series on a logarithmic
//!   sampling schedule, bounded memory;
//! * [`ConvergenceProbe`] — running last-output-change tracker: the online
//!   form of the retrospective logic in
//!   [`measure_stabilization`](crate::Simulation::measure_stabilization);
//! * [`JsonlSink`] — streams events to JSON Lines for offline analysis;
//! * [`TimingProbe`] — self-timed wall-clock profiling (ns/interaction);
//! * [`OccupancyFieldProbe`] — spatial occupancy/entropy field over agent
//!   trajectories (pull-based: the interaction stream is anonymous, so the
//!   agent engine snapshots its state column into the field instead).
//!
//! Probes compose: `(a, b)` is a probe that feeds both, and `&mut p`
//! attaches a borrowed probe so the caller keeps ownership.
//!
//! # Example
//!
//! Count which rules fire while an epidemic spreads:
//!
//! ```
//! use pp_core::observe::MetricsProbe;
//! use pp_core::{seeded_rng, FnProtocol, Simulation};
//!
//! let epidemic = FnProtocol::new(
//!     |&b: &bool| b,
//!     |&q: &bool| q,
//!     |&p: &bool, &q: &bool| (p || q, p || q),
//! );
//! let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, 31)])
//!     .with_probe(MetricsProbe::new());
//! let mut rng = seeded_rng(7);
//! sim.run(10_000, &mut rng);
//! let metrics = sim.probe();
//! // Exactly n − 1 = 31 interactions changed a state: each infects one agent.
//! assert_eq!(metrics.effective_interactions(), 31);
//! assert_eq!(metrics.interactions(), 10_000);
//! assert!(metrics.effective_ratio() < 0.01);
//! ```

use std::io::{self, Write};
use std::time::{Duration, Instant};

use crate::fxhash::FxHashMap;
use crate::registry::{OutputId, StateId};

/// One executed interaction, as seen by a [`Probe`].
///
/// Covers all three execution paths of the count engine (sequential
/// [`step`](crate::Simulation::step), [`leap`](crate::Simulation::leap),
/// one matched pair of a
/// [`parallel_round`](crate::Simulation::parallel_round)) and the agent
/// engine's [`step_transitions`](crate::AgentSimulation::step_transitions).
/// For a parallel round the `before` states are the pre-round states (all
/// pairs of a round are computed simultaneously).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteractionEvent {
    /// Engine interaction counter *after* this interaction (so the first
    /// interaction of a fresh simulation has `step == 1`).
    pub step: u64,
    /// No-op interactions fast-forwarded in closed form immediately before
    /// this one ([`leap`](crate::Simulation::leap) only; `0` elsewhere).
    /// The occupancy was constant during the skipped interactions.
    pub noops_skipped: u64,
    /// `(initiator, responder)` states before the interaction.
    pub before: (StateId, StateId),
    /// `(initiator, responder)` states after: `δ(before)`.
    pub after: (StateId, StateId),
    /// Output ids of the `before` states.
    pub outputs_before: (OutputId, OutputId),
    /// Output ids of the `after` states.
    pub outputs_after: (OutputId, OutputId),
    /// Whether at least one state changed (the §8 energy criterion).
    pub effective: bool,
}

impl InteractionEvent {
    /// Whether this interaction changed the *multiset* of outputs (not
    /// merely swapped outputs between the two agents).
    pub fn output_multiset_changed(&self) -> bool {
        let (b0, b1) = self.outputs_before;
        let (a0, a1) = self.outputs_after;
        (b0, b1) != (a0, a1) && (b0, b1) != (a1, a0)
    }
}

/// One group of identical interactions inside a [`BatchEvent`]: `count`
/// pairs whose initiator/responder were in `before` and moved to `after`.
///
/// The batched engine ([`crate::batch`]) samples the whole multiset of
/// interacting pairs of a batch at once, so it naturally reports them
/// grouped by `(initiator, responder)` state pair rather than one event per
/// interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPair {
    /// `(initiator, responder)` states before the interaction.
    pub before: (StateId, StateId),
    /// `(initiator, responder)` states after: `δ(before)`.
    pub after: (StateId, StateId),
    /// Output ids of the `before` states.
    pub outputs_before: (OutputId, OutputId),
    /// Output ids of the `after` states.
    pub outputs_after: (OutputId, OutputId),
    /// How many interactions of the batch had exactly this transition.
    pub count: u64,
    /// Whether at least one state changed.
    pub effective: bool,
}

/// One sampled batch of interactions
/// ([`Simulation::run_batched`](crate::Simulation::run_batched)), as seen by
/// a [`Probe`].
///
/// The batch spans engine steps `first_step ..= first_step + len - 1`; all
/// `2·len` participating agents are distinct (the batch is collision-free by
/// construction), so the interactions commute and their order within the
/// batch is not part of the sampled law. `pairs` reports them grouped by
/// transition.
#[derive(Debug, Clone, Copy)]
pub struct BatchEvent<'a> {
    /// Engine step index of the first interaction of the batch.
    pub first_step: u64,
    /// Number of interactions in the batch (`Σ pairs[i].count`).
    pub len: u64,
    /// The batch's interactions, grouped by `(before, after)` transition.
    pub pairs: &'a [BatchPair],
}

/// A configuration snapshot handed to probes at attachment and after fault
/// bursts (the only times occupancy changes outside an interaction).
#[derive(Debug, Clone, Copy)]
pub struct Snapshot<'a> {
    /// Engine interaction counter at the snapshot.
    pub step: u64,
    /// Live agents per state id (`occupancy[s]` agents in state `s`).
    pub occupancy: &'a [u64],
    /// Live agents per output id.
    pub outputs: &'a [u64],
}

impl Snapshot<'_> {
    /// Live population at the snapshot.
    pub fn population(&self) -> u64 {
        self.occupancy.iter().sum()
    }
}

/// An observer wired into the simulation inner loop.
///
/// All methods have empty defaults, so a probe implements only the hooks it
/// needs. Implementations must not assume `occupancy`/`outputs` slices keep
/// their length between calls: the runtime interns states lazily, so the
/// slices grow as new states appear.
pub trait Probe {
    /// Whether the engine should construct and deliver events at all.
    ///
    /// Hook sites are guarded by `if Pr::ACTIVE { … }`; with the default
    /// `true` everything is delivered, and [`NoProbe`] sets `false` so the
    /// whole observability layer compiles away.
    const ACTIVE: bool = true;

    /// The probe was attached to a simulation (or a fresh segment began):
    /// `snap` is the current configuration.
    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        let _ = snap;
    }

    /// One interaction executed.
    fn on_interaction(&mut self, ev: &InteractionEvent) {
        let _ = ev;
    }

    /// The interaction at `step` changed the multiset of outputs.
    ///
    /// Derivable from [`InteractionEvent::output_multiset_changed`]; this
    /// dedicated hook lets output-only probes ignore the event stream.
    fn on_output_change(&mut self, step: u64) {
        let _ = step;
    }

    /// A fault plan injected `injected` faults before the interaction at
    /// `snap.step`; `snap` is the configuration *after* the damage, so
    /// occupancy-tracking probes can resynchronize.
    fn on_fault_burst(&mut self, injected: u64, snap: &Snapshot<'_>) {
        let _ = (injected, snap);
    }

    /// The batched engine executed a whole collision-free batch of
    /// interactions at once (see [`crate::batch`]).
    ///
    /// The default implementation replays the batch as `ev.len` ordinary
    /// [`on_interaction`](Self::on_interaction) events (plus
    /// [`on_output_change`](Self::on_output_change) whenever a replayed
    /// interaction changed the output multiset), so existing probes work
    /// under batching unchanged. Because the batch's agents are all
    /// distinct, the replay — which visits the interactions grouped by
    /// transition rather than in sampled order — is a valid ordering of the
    /// batch. Probes that can fold a whole batch in `O(|pairs|)` (instead of
    /// `O(len)`) should override this hook; overriders take on the
    /// output-change accounting themselves.
    fn on_batch(&mut self, ev: &BatchEvent<'_>) {
        let mut step = ev.first_step;
        for pair in ev.pairs {
            for _ in 0..pair.count {
                let iev = InteractionEvent {
                    step,
                    noops_skipped: 0,
                    before: pair.before,
                    after: pair.after,
                    outputs_before: pair.outputs_before,
                    outputs_after: pair.outputs_after,
                    effective: pair.effective,
                };
                self.on_interaction(&iev);
                if iev.output_multiset_changed() {
                    self.on_output_change(step);
                }
                step += 1;
            }
        }
    }
}

/// The default probe: observes nothing, costs nothing.
///
/// With `ACTIVE = false`, every hook site in the engines is statically dead
/// code, so `Simulation<P, NoProbe>` is byte-for-byte the pre-probe engine
/// (same wall-clock, same RNG stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ACTIVE: bool = false;
}

/// Two probes compose into one that feeds both.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        self.0.on_attach(snap);
        self.1.on_attach(snap);
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        self.0.on_interaction(ev);
        self.1.on_interaction(ev);
    }

    fn on_output_change(&mut self, step: u64) {
        self.0.on_output_change(step);
        self.1.on_output_change(step);
    }

    fn on_fault_burst(&mut self, injected: u64, snap: &Snapshot<'_>) {
        self.0.on_fault_burst(injected, snap);
        self.1.on_fault_burst(injected, snap);
    }

    fn on_batch(&mut self, ev: &BatchEvent<'_>) {
        self.0.on_batch(ev);
        self.1.on_batch(ev);
    }
}

/// A mutable borrow is a probe: attach `&mut probe` to keep ownership (and
/// read the results without consuming the simulation).
impl<Pr: Probe> Probe for &mut Pr {
    const ACTIVE: bool = Pr::ACTIVE;

    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        (**self).on_attach(snap);
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        (**self).on_interaction(ev);
    }

    fn on_output_change(&mut self, step: u64) {
        (**self).on_output_change(step);
    }

    fn on_fault_burst(&mut self, injected: u64, snap: &Snapshot<'_>) {
        (**self).on_fault_burst(injected, snap);
    }

    fn on_batch(&mut self, ev: &BatchEvent<'_>) {
        (**self).on_batch(ev);
    }
}

// ---------------------------------------------------------------------------
// MergeProbe
// ---------------------------------------------------------------------------

/// Probes whose observations from *independent trials* can be combined into
/// one aggregate — the contract [`crate::ensemble`] needs to merge each
/// worker's per-trial probes at join.
///
/// The ensemble folds probes in ascending trial order, so even a merge that
/// is order-sensitive in floating point yields thread-count-independent
/// results; implementations only need `merge` to be deterministic.
pub trait MergeProbe: Probe + Sized {
    /// Absorbs `other`'s observations (from an independent trial) into
    /// `self`.
    fn merge(&mut self, other: Self);
}

impl MergeProbe for NoProbe {
    fn merge(&mut self, _other: Self) {}
}

impl<A: MergeProbe, B: MergeProbe> MergeProbe for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

// ---------------------------------------------------------------------------
// MetricsProbe
// ---------------------------------------------------------------------------

/// Per-rule firing counts, per-state occupancy integrals, and the
/// effective-interaction ratio (§8's energy measure as a rate).
///
/// A *rule* is an ordered reactive pair `(p, q)` with `δ(p, q) ≠ (p, q)`;
/// the probe counts how often each fired. The *occupancy integral* of a
/// state is `Σ_t count_t(s)` over interactions `t` — divided by elapsed
/// interactions it is the mean occupancy, the quantity phase analyses plot.
/// Updates are `O(1)` per interaction: integrals accrue lazily per state,
/// only when that state's count changes.
#[derive(Debug, Clone, Default)]
pub struct MetricsProbe {
    rule_firings: FxHashMap<(StateId, StateId), u64>,
    occupancy: Vec<u64>,
    /// `integral[s]` accrued through `last_accrual[s]`.
    integral: Vec<u128>,
    last_accrual: Vec<u64>,
    start_step: u64,
    last_step: u64,
    interactions: u64,
    effective: u64,
    output_changes: u64,
    fault_bursts: u64,
    faults_injected: u64,
}

impl MetricsProbe {
    /// A fresh metrics probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_state(&mut self, s: StateId) {
        if s.index() >= self.occupancy.len() {
            self.occupancy.resize(s.index() + 1, 0);
            self.integral.resize(s.index() + 1, 0);
            self.last_accrual.resize(s.index() + 1, self.last_step);
        }
    }

    /// Brings `integral[s]` up to date through `step`.
    fn accrue(&mut self, s: StateId, step: u64) {
        self.ensure_state(s);
        let dt = step - self.last_accrual[s.index()];
        self.integral[s.index()] += u128::from(self.occupancy[s.index()]) * u128::from(dt);
        self.last_accrual[s.index()] = step;
    }

    fn resync(&mut self, snap: &Snapshot<'_>) {
        for i in 0..self.occupancy.len().max(snap.occupancy.len()) {
            self.accrue(StateId(i as u32), snap.step);
        }
        self.occupancy.clear();
        self.occupancy.extend_from_slice(snap.occupancy);
        self.ensure_state(StateId(snap.occupancy.len().max(1) as u32 - 1));
        self.last_step = snap.step;
    }

    /// Interactions observed (including leap-skipped no-ops).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed at least one state.
    pub fn effective_interactions(&self) -> u64 {
        self.effective
    }

    /// Fraction of observed interactions that changed a state.
    pub fn effective_ratio(&self) -> f64 {
        if self.interactions == 0 {
            return 0.0;
        }
        self.effective as f64 / self.interactions as f64
    }

    /// Interactions that changed the output multiset.
    pub fn output_changes(&self) -> u64 {
        self.output_changes
    }

    /// Fault bursts observed and total faults they injected.
    pub fn faults(&self) -> (u64, u64) {
        (self.fault_bursts, self.faults_injected)
    }

    /// Firing count of the rule `(p, q)` (ordered initiator/responder pair).
    pub fn rule_count(&self, p: StateId, q: StateId) -> u64 {
        self.rule_firings.get(&(p, q)).copied().unwrap_or(0)
    }

    /// All fired rules with their counts, most-fired first.
    pub fn rules_by_count(&self) -> Vec<((StateId, StateId), u64)> {
        let mut v: Vec<_> = self.rule_firings.iter().map(|(&r, &c)| (r, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Occupancy integral of `s`: `Σ` over observed interactions of the
    /// number of agents in `s` (state-interactions).
    pub fn occupancy_integral(&self, s: StateId) -> u128 {
        let mut v = self.integral.get(s.index()).copied().unwrap_or(0);
        if let Some(&c) = self.occupancy.get(s.index()) {
            v += u128::from(c)
                * u128::from(self.last_step - self.last_accrual.get(s.index()).copied().unwrap_or(self.last_step));
        }
        v
    }

    /// Mean occupancy of `s` over the observed window (0 if nothing was
    /// observed yet).
    pub fn mean_occupancy(&self, s: StateId) -> f64 {
        let span = self.last_step - self.start_step;
        if span == 0 {
            return 0.0;
        }
        self.occupancy_integral(s) as f64 / span as f64
    }

    /// Resets all counters and re-anchors the observation window at the
    /// current configuration — call between phases to get per-phase tables.
    pub fn reset_window(&mut self) {
        let occupancy = self.occupancy.clone();
        let last_step = self.last_step;
        *self = Self::default();
        self.occupancy = occupancy;
        self.integral = vec![0; self.occupancy.len()];
        self.last_accrual = vec![last_step; self.occupancy.len()];
        self.start_step = last_step;
        self.last_step = last_step;
    }
}

impl Probe for MetricsProbe {
    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        self.occupancy = snap.occupancy.to_vec();
        self.integral = vec![0; snap.occupancy.len()];
        self.last_accrual = vec![snap.step; snap.occupancy.len()];
        self.start_step = snap.step;
        self.last_step = snap.step;
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        self.interactions += ev.noops_skipped + 1;
        if ev.effective {
            self.effective += 1;
            *self.rule_firings.entry(ev.before).or_insert(0) += 1;
            // Occupancy changes at ev.step; it was constant through the
            // skipped no-ops, so accrue the old counts first.
            for s in [ev.before.0, ev.before.1, ev.after.0, ev.after.1] {
                self.accrue(s, ev.step);
            }
            self.occupancy[ev.before.0.index()] -= 1;
            self.occupancy[ev.before.1.index()] -= 1;
            self.occupancy[ev.after.0.index()] += 1;
            self.occupancy[ev.after.1.index()] += 1;
        }
        self.last_step = ev.step;
    }

    fn on_output_change(&mut self, _step: u64) {
        self.output_changes += 1;
    }

    fn on_fault_burst(&mut self, injected: u64, snap: &Snapshot<'_>) {
        self.fault_bursts += 1;
        self.faults_injected += injected;
        self.resync(snap);
    }
}

impl MergeProbe for MetricsProbe {
    /// Counters and rule firings sum; occupancy integrals sum per state;
    /// observation spans concatenate, so [`mean_occupancy`](Self::mean_occupancy)
    /// becomes the trial-weighted mean. The merged probe is an aggregate of
    /// several populations, not a live view of one — re-attaching it resets
    /// it (`on_attach` re-anchors the window), which is the intended
    /// behaviour.
    fn merge(&mut self, other: Self) {
        let states = self
            .occupancy
            .len()
            .max(self.integral.len())
            .max(other.occupancy.len())
            .max(other.integral.len());
        // Flush both lazily-accrued integrals, then sum per state.
        let merged: Vec<u128> = (0..states)
            .map(|i| {
                let s = StateId(i as u32);
                self.occupancy_integral(s) + other.occupancy_integral(s)
            })
            .collect();
        let span =
            (self.last_step - self.start_step) + (other.last_step - other.start_step);
        self.integral = merged;
        self.occupancy = vec![0; states];
        self.last_accrual = vec![span; states];
        self.start_step = 0;
        self.last_step = span;
        self.interactions += other.interactions;
        self.effective += other.effective;
        self.output_changes += other.output_changes;
        self.fault_bursts += other.fault_bursts;
        self.faults_injected += other.faults_injected;
        for (rule, count) in other.rule_firings {
            *self.rule_firings.entry(rule).or_insert(0) += count;
        }
    }
}

// ---------------------------------------------------------------------------
// TrajectoryProbe
// ---------------------------------------------------------------------------

/// State-histogram time series on a logarithmic sampling schedule.
///
/// Records the full occupancy vector at interaction indices that grow
/// geometrically (factor [`growth`](Self::with_growth), default 1.25), so a
/// horizon of `T` interactions costs `O(log T)` samples — bounded memory
/// regardless of run length. If the sample buffer still fills (tiny growth
/// factor, enormous horizon), every other sample is dropped and the factor
/// doubles, keeping memory bounded while preserving log-spaced coverage.
///
/// Fault bursts force an extra sample (the damaged configuration), so
/// recovery curves show the injection edge.
#[derive(Debug, Clone)]
pub struct TrajectoryProbe {
    occupancy: Vec<u64>,
    samples: Vec<(u64, Vec<u64>)>,
    next_sample: u64,
    growth: f64,
    max_samples: usize,
}

impl Default for TrajectoryProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl TrajectoryProbe {
    /// Sampling factor 1.25, at most 1024 retained samples.
    pub fn new() -> Self {
        Self::with_growth(1.25, 1024)
    }

    /// Custom geometric factor (> 1) and sample cap (≥ 8).
    ///
    /// # Panics
    ///
    /// Panics if `growth <= 1.0` or `max_samples < 8`.
    pub fn with_growth(growth: f64, max_samples: usize) -> Self {
        assert!(growth > 1.0, "sampling factor must exceed 1, got {growth}");
        assert!(max_samples >= 8, "need at least 8 samples, got {max_samples}");
        Self {
            occupancy: Vec::new(),
            samples: Vec::new(),
            next_sample: 0,
            growth,
            max_samples,
        }
    }

    /// The recorded `(interaction index, occupancy)` series, in order.
    pub fn samples(&self) -> &[(u64, Vec<u64>)] {
        &self.samples
    }

    /// The occupancy tracked live (current configuration).
    pub fn current_occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    fn push_sample(&mut self, step: u64) {
        if self.samples.len() >= self.max_samples {
            // Decimate: keep every other sample, coarsen the schedule.
            let kept: Vec<_> =
                self.samples.iter().step_by(2).cloned().collect();
            self.samples = kept;
            self.growth = self.growth * self.growth;
        }
        self.samples.push((step, self.occupancy.clone()));
        let geometric = (step as f64 * self.growth).ceil() as u64;
        self.next_sample = geometric.max(step + 1);
    }

    fn ensure_len(&mut self, len: usize) {
        if self.occupancy.len() < len {
            self.occupancy.resize(len, 0);
        }
    }
}

impl Probe for TrajectoryProbe {
    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        self.occupancy = snap.occupancy.to_vec();
        self.samples.clear();
        self.push_sample(snap.step);
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        // Sample points crossed by leap-skipped no-ops see the pre-event
        // occupancy (nothing changed during the skips).
        while self.next_sample < ev.step {
            let at = self.next_sample;
            self.push_sample(at);
        }
        if ev.effective {
            let max = ev.after.0.index().max(ev.after.1.index()) + 1;
            self.ensure_len(max);
            self.occupancy[ev.before.0.index()] -= 1;
            self.occupancy[ev.before.1.index()] -= 1;
            self.occupancy[ev.after.0.index()] += 1;
            self.occupancy[ev.after.1.index()] += 1;
        }
        if self.next_sample == ev.step {
            self.push_sample(ev.step);
        }
    }

    fn on_fault_burst(&mut self, _injected: u64, snap: &Snapshot<'_>) {
        self.occupancy = snap.occupancy.to_vec();
        self.push_sample(snap.step);
    }
}

// ---------------------------------------------------------------------------
// ConvergenceProbe
// ---------------------------------------------------------------------------

/// Running last-output-change tracker: the online form of the retrospective
/// logic in [`measure_stabilization`](crate::Simulation::measure_stabilization).
///
/// Tracks, against an expected output id, how many live agents currently
/// output something else (`wrong_now`), the last interaction after which
/// any did (`last_wrong`), and the last interaction that changed the output
/// multiset at all (`last_output_change`). From these,
/// [`stabilized_at`](Self::stabilized_at) reproduces the
/// [`StabilizationReport`](crate::StabilizationReport) convention without a
/// second pass over the run.
#[derive(Debug, Clone)]
pub struct ConvergenceProbe {
    expected: OutputId,
    population: u64,
    wrong: u64,
    last_wrong: Option<u64>,
    last_output_change: Option<u64>,
}

impl ConvergenceProbe {
    /// Tracks convergence to the output with the given id (obtain one with
    /// [`Simulation::output_id`](crate::Simulation::output_id)).
    pub fn for_output(expected: OutputId) -> Self {
        Self {
            expected,
            population: 0,
            wrong: 0,
            last_wrong: None,
            last_output_change: None,
        }
    }

    /// Number of live agents currently outputting something other than the
    /// expected value.
    pub fn wrong_now(&self) -> u64 {
        self.wrong
    }

    /// Whether every live agent currently outputs the expected value.
    pub fn converged(&self) -> bool {
        self.wrong == 0
    }

    /// Last interaction index after which some agent's output was wrong
    /// (`None` if never).
    pub fn last_wrong(&self) -> Option<u64> {
        self.last_wrong
    }

    /// Last interaction index that changed the output multiset.
    pub fn last_output_change(&self) -> Option<u64> {
        self.last_output_change
    }

    /// The first interaction index after which the output assignment was
    /// continuously the expected one through the present — `None` while any
    /// agent is still wrong. Matches
    /// [`StabilizationReport::stabilized_at`](crate::StabilizationReport)
    /// when the probe rode along a `measure_stabilization` call on a fresh
    /// simulation. Delegates to the shared
    /// [`consensus_reached`](crate::consensus_reached) predicate.
    pub fn stabilized_at(&self) -> Option<u64> {
        crate::engine::consensus_reached(self.wrong, self.last_wrong, 0)
    }
}

impl Probe for ConvergenceProbe {
    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        self.population = snap.population();
        let right = snap.outputs.get(self.expected.index()).copied().unwrap_or(0);
        self.wrong = self.population - right;
        self.last_wrong = (self.wrong > 0).then_some(snap.step);
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        // Wrongness held unchanged through the leap-skipped no-ops.
        if self.wrong > 0 && ev.noops_skipped > 0 {
            self.last_wrong = Some(ev.step - 1);
        }
        if ev.effective {
            for (was, is) in [
                (ev.outputs_before.0, ev.outputs_after.0),
                (ev.outputs_before.1, ev.outputs_after.1),
            ] {
                match (was == self.expected, is == self.expected) {
                    (true, false) => self.wrong += 1,
                    (false, true) => self.wrong -= 1,
                    _ => {}
                }
            }
        }
        if self.wrong > 0 {
            self.last_wrong = Some(ev.step);
        }
    }

    fn on_output_change(&mut self, step: u64) {
        self.last_output_change = Some(step);
    }

    fn on_fault_burst(&mut self, _injected: u64, snap: &Snapshot<'_>) {
        self.population = snap.population();
        let right = snap.outputs.get(self.expected.index()).copied().unwrap_or(0);
        self.wrong = self.population - right;
        if self.wrong > 0 {
            self.last_wrong = Some(snap.step);
        }
    }
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

/// Streams probe callbacks to a writer as JSON Lines, one object per line,
/// for offline analysis.
///
/// Schema (`"ev"` discriminates): `attach` and `fault` carry the occupancy
/// and output histograms; `step` carries the dense-id transition; `out`
/// marks an output-multiset change. Interaction lines can be thinned with
/// [`with_stride`](Self::with_stride) (every k-th event; attach/fault/out
/// lines are always written), since a full event stream is one line per
/// interaction.
///
/// I/O errors are counted ([`io_errors`](Self::io_errors)) and otherwise
/// ignored: a probe must never abort the simulation it watches. Wrap the
/// writer in [`std::io::BufWriter`] — the sink writes many small lines.
///
/// On drop (or [`into_inner`](Self::into_inner)) the sink appends one final
/// `summary` line carrying `lines_written`/`io_errors` and flushes the
/// writer, so swallowed write failures are visible in the stream itself and
/// a sink dropped mid-run loses no buffered lines.
pub struct JsonlSink<W: Write> {
    /// `None` only after [`into_inner`](Self::into_inner) took the writer
    /// (so the `Drop` impl knows the summary was already written).
    out: Option<W>,
    stride: u64,
    events_seen: u64,
    lines: u64,
    io_errors: u64,
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("stride", &self.stride)
            .field("lines", &self.lines)
            .field("io_errors", &self.io_errors)
            .finish_non_exhaustive()
    }
}

impl<W: Write> JsonlSink<W> {
    /// Writes every event to `out`.
    pub fn new(out: W) -> Self {
        Self::with_stride(out, 1)
    }

    /// Writes every `stride`-th interaction event (and every attach, fault,
    /// and output-change line).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    pub fn with_stride(out: W, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self { out: Some(out), stride, events_seen: 0, lines: 0, io_errors: 0 }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Write errors swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Writes the summary line, flushes, and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.write_summary();
        self.out.take().expect("writer present until into_inner")
    }

    /// Appends the final `summary` record (the counters *before* the
    /// summary line itself) and flushes the writer.
    fn write_summary(&mut self) {
        let (lines, errs) = (self.lines, self.io_errors);
        let out = self.out.as_mut().expect("writer present until into_inner");
        let res = writeln!(
            out,
            "{{\"ev\":\"summary\",\"lines_written\":{lines},\"io_errors\":{errs}}}"
        );
        self.emit(res);
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }

    fn emit(&mut self, res: io::Result<()>) {
        match res {
            Ok(()) => self.lines += 1,
            Err(_) => self.io_errors += 1,
        }
    }

    fn write_hist(out: &mut W, key: &str, hist: &[u64]) -> io::Result<()> {
        write!(out, ",\"{key}\":[")?;
        for (i, c) in hist.iter().enumerate() {
            if i > 0 {
                write!(out, ",")?;
            }
            write!(out, "{c}")?;
        }
        write!(out, "]")
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // `into_inner` already wrote the summary and took the writer.
        if self.out.is_some() {
            self.write_summary();
        }
    }
}

impl<W: Write> Probe for JsonlSink<W> {
    fn on_attach(&mut self, snap: &Snapshot<'_>) {
        let res = (|| {
            let out = self.out.as_mut().expect("writer present until into_inner");
            write!(out, "{{\"ev\":\"attach\",\"step\":{}", snap.step)?;
            Self::write_hist(out, "occupancy", snap.occupancy)?;
            Self::write_hist(out, "outputs", snap.outputs)?;
            writeln!(out, "}}")
        })();
        self.emit(res);
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        self.events_seen += 1;
        if !self.events_seen.is_multiple_of(self.stride) {
            return;
        }
        let out = self.out.as_mut().expect("writer present until into_inner");
        let res = writeln!(
            out,
            "{{\"ev\":\"step\",\"step\":{},\"skipped\":{},\"before\":[{},{}],\"after\":[{},{}],\"effective\":{}}}",
            ev.step,
            ev.noops_skipped,
            ev.before.0 .0,
            ev.before.1 .0,
            ev.after.0 .0,
            ev.after.1 .0,
            ev.effective,
        );
        self.emit(res);
    }

    fn on_output_change(&mut self, step: u64) {
        let out = self.out.as_mut().expect("writer present until into_inner");
        let res = writeln!(out, "{{\"ev\":\"out\",\"step\":{step}}}");
        self.emit(res);
    }

    fn on_fault_burst(&mut self, injected: u64, snap: &Snapshot<'_>) {
        let res = (|| {
            let out = self.out.as_mut().expect("writer present until into_inner");
            write!(
                out,
                "{{\"ev\":\"fault\",\"step\":{},\"injected\":{injected}",
                snap.step
            )?;
            Self::write_hist(out, "occupancy", snap.occupancy)?;
            Self::write_hist(out, "outputs", snap.outputs)?;
            writeln!(out, "}}")
        })();
        self.emit(res);
    }
}

// ---------------------------------------------------------------------------
// TimingProbe
// ---------------------------------------------------------------------------

/// Self-timed wall-clock profiling: the workspace dropped external
/// benchmarking harnesses (offline build), so ns-per-interaction
/// measurement lives here.
///
/// The clock starts at attachment; [`lap`](Self::lap) closes a timing
/// window and returns `(interactions, elapsed)` for it, so a bench can
/// time phases without re-attaching.
#[derive(Debug, Clone)]
pub struct TimingProbe {
    started: Option<Instant>,
    lap_start_interactions: u64,
    interactions: u64,
    effective: u64,
}

impl Default for TimingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingProbe {
    /// A fresh timing probe; the clock starts when it is attached.
    pub fn new() -> Self {
        Self { started: None, lap_start_interactions: 0, interactions: 0, effective: 0 }
    }

    /// Interactions observed since attachment.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Effective (state-changing) interactions observed.
    pub fn effective_interactions(&self) -> u64 {
        self.effective
    }

    /// Wall-clock elapsed since attachment (zero if never attached).
    pub fn elapsed(&self) -> Duration {
        self.started.map_or(Duration::ZERO, |s| s.elapsed())
    }

    /// Mean nanoseconds per observed interaction (NaN before attachment).
    pub fn ns_per_interaction(&self) -> f64 {
        if self.interactions == 0 {
            return f64::NAN;
        }
        self.elapsed().as_nanos() as f64 / self.interactions as f64
    }

    /// Closes the current timing window: returns `(interactions, elapsed)`
    /// since the last lap (or attachment) and restarts the window clock.
    pub fn lap(&mut self) -> (u64, Duration) {
        let elapsed = self.elapsed();
        let n = self.interactions - self.lap_start_interactions;
        self.started = Some(Instant::now());
        self.lap_start_interactions = self.interactions;
        (n, elapsed)
    }
}

impl Probe for TimingProbe {
    fn on_attach(&mut self, _snap: &Snapshot<'_>) {
        self.started = Some(Instant::now());
        self.lap_start_interactions = self.interactions;
    }

    fn on_interaction(&mut self, ev: &InteractionEvent) {
        self.interactions += ev.noops_skipped + 1;
        if ev.effective {
            self.effective += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// OccupancyFieldProbe
// ---------------------------------------------------------------------------

/// Spatial occupancy and entropy field over agent trajectories: coarse-grid
/// binning of the agent engine's state column.
///
/// The interaction stream is anonymous by design — an [`InteractionEvent`]
/// carries states, not agent ids, so spatial structure cannot be folded
/// from the `Probe` hooks alone. This aggregator is therefore *pull-based*:
/// construct it with an agent → cell assignment (e.g. [`grid2d`](Self::grid2d)
/// over a torus id layout), then snapshot the population whenever the
/// experiment wants a field sample.
/// [`AgentSimulation::record_field`](crate::AgentSimulation::record_field)
/// does one pass over the SoA state column, skipping crashed agents.
///
/// Per snapshot the probe keeps the per-cell state histogram plus a
/// Shannon-entropy summary `(step, mean cell entropy in bits)` appended to
/// [`entropy_series`](Self::entropy_series), so a run's spatial
/// mixing curve (e.g. an epidemic front sweeping a lattice: entropy rises
/// where the front sits, falls back to zero behind it) costs
/// `O(cells · |Q|)` memory regardless of population size.
#[derive(Debug, Clone)]
pub struct OccupancyFieldProbe {
    cell_of: Vec<u32>,
    cells: usize,
    state_dim: usize,
    /// Flattened `[cell][state]` histogram of the latest snapshot.
    counts: Vec<u64>,
    entropy_series: Vec<(u64, f64)>,
    records: u64,
}

impl OccupancyFieldProbe {
    /// A field over `cells` bins with the given per-agent cell assignment.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or any assignment is out of range.
    pub fn new(cells: usize, cell_of: Vec<u32>) -> Self {
        assert!(cells > 0, "field needs at least one cell");
        assert!(
            cell_of.iter().all(|&c| (c as usize) < cells),
            "cell assignment out of range"
        );
        Self {
            cell_of,
            cells,
            state_dim: 0,
            counts: Vec::new(),
            entropy_series: Vec::new(),
            records: 0,
        }
    }

    /// Bins the row-major `w × h` lattice id layout (`id = y·w + x`, the
    /// convention of `pp-graphs`' grid and torus generators) into coarse
    /// cells of `cw × ch` sites; edge cells are smaller when the coarse
    /// size does not divide the lattice.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn grid2d(w: usize, h: usize, cw: usize, ch: usize) -> Self {
        assert!(w > 0 && h > 0 && cw > 0 && ch > 0, "dimensions must be positive");
        let cx = w.div_ceil(cw);
        let cy = h.div_ceil(ch);
        let cell_of = (0..w * h)
            .map(|id| ((id / w / ch) * cx + (id % w) / cw) as u32)
            .collect();
        Self::new(cx * cy, cell_of)
    }

    /// Bins the row-major `w × h × d` lattice id layout
    /// (`id = (z·h + y)·w + x`, the convention of `torus3d_csr` in
    /// `pp-graphs`) into coarse cells of `cw × ch × cd` sites.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn grid3d(w: usize, h: usize, d: usize, cw: usize, ch: usize, cd: usize) -> Self {
        assert!(
            w > 0 && h > 0 && d > 0 && cw > 0 && ch > 0 && cd > 0,
            "dimensions must be positive"
        );
        let cx = w.div_ceil(cw);
        let cy = h.div_ceil(ch);
        let cell_of = (0..w * h * d)
            .map(|id| {
                let (x, y, z) = (id % w, id / w % h, id / (w * h));
                ((z / cd * cy + y / ch) * cx + x / cw) as u32
            })
            .collect();
        Self::new(cx * cy * (d.div_ceil(cd)), cell_of)
    }

    /// Records one spatial snapshot: `agents` yields `(agent id, state)`
    /// pairs (any order, each id at most once); agents not yielded — e.g.
    /// crashed ones — are simply absent from this snapshot's histogram.
    ///
    /// # Panics
    ///
    /// Panics if an agent id has no cell assignment.
    pub fn record(&mut self, step: u64, agents: impl IntoIterator<Item = (u32, StateId)>) {
        self.counts.fill(0);
        for (a, s) in agents {
            let cell = self.cell_of[a as usize] as usize;
            if s.index() >= self.state_dim {
                self.grow_state_dim(s.index() + 1);
            }
            self.counts[cell * self.state_dim + s.index()] += 1;
        }
        self.records += 1;
        let mean = self.mean_entropy();
        self.entropy_series.push((step, mean));
    }

    fn grow_state_dim(&mut self, dim: usize) {
        let mut wide = vec![0u64; self.cells * dim];
        for cell in 0..self.cells {
            for s in 0..self.state_dim {
                wide[cell * dim + s] = self.counts[cell * self.state_dim + s];
            }
        }
        self.counts = wide;
        self.state_dim = dim;
    }

    /// Number of cells in the field.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Snapshots recorded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The latest snapshot's state histogram for one cell (empty before the
    /// first record).
    pub fn cell_counts(&self, cell: usize) -> &[u64] {
        &self.counts[cell * self.state_dim..(cell + 1) * self.state_dim]
    }

    /// Agents binned into `cell` at the latest snapshot.
    pub fn cell_population(&self, cell: usize) -> u64 {
        self.cell_counts(cell).iter().sum()
    }

    /// Shannon entropy (bits) of the state distribution inside one cell at
    /// the latest snapshot; `0` for an empty or single-state cell.
    pub fn cell_entropy(&self, cell: usize) -> f64 {
        let total = self.cell_population(cell);
        if total == 0 {
            return 0.0;
        }
        -self
            .cell_counts(cell)
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Population-weighted mean cell entropy (bits) at the latest snapshot.
    pub fn mean_entropy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (0..self.cells)
            .map(|c| self.cell_entropy(c) * self.cell_population(c) as f64)
            .sum::<f64>()
            / total as f64
    }

    /// The `(step, mean cell entropy)` series, one point per record.
    pub fn entropy_series(&self) -> &[(u64, f64)] {
        &self.entropy_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        step: u64,
        before: (u32, u32),
        after: (u32, u32),
        ob: (u32, u32),
        oa: (u32, u32),
    ) -> InteractionEvent {
        InteractionEvent {
            step,
            noops_skipped: 0,
            before: (StateId(before.0), StateId(before.1)),
            after: (StateId(after.0), StateId(after.1)),
            outputs_before: (OutputId(ob.0), OutputId(ob.1)),
            outputs_after: (OutputId(oa.0), OutputId(oa.1)),
            effective: before != after,
        }
    }

    #[test]
    fn occupancy_field_bins_and_entropy() {
        // 4×2 lattice, 2×2 coarse cells → 2 cells: ids {0,1,4,5} and {2,3,6,7}.
        let mut field = OccupancyFieldProbe::grid2d(4, 2, 2, 2);
        assert_eq!(field.cells(), 2);
        // Left cell all state 0, right cell an even 0/1 split.
        field.record(
            7,
            (0..8u32).map(|a| {
                let s = u32::from(a % 4 >= 2 && a % 2 == 1);
                (a, StateId(s))
            }),
        );
        assert_eq!(field.records(), 1);
        assert_eq!(field.cell_counts(0), &[4, 0]);
        assert_eq!(field.cell_counts(1), &[2, 2]);
        assert_eq!(field.cell_entropy(0), 0.0);
        assert!((field.cell_entropy(1) - 1.0).abs() < 1e-12, "even split = 1 bit");
        assert!((field.mean_entropy() - 0.5).abs() < 1e-12);
        assert_eq!(field.entropy_series(), &[(7, 0.5)]);
    }

    #[test]
    fn occupancy_field_3d_binning_and_missing_agents() {
        // 2×2×2 lattice, coarse 2×2×1 cells → one cell per z-layer.
        let mut field = OccupancyFieldProbe::grid3d(2, 2, 2, 2, 2, 1);
        assert_eq!(field.cells(), 2);
        // Only the upper layer (ids 4..8) reports; lower layer is absent
        // (crashed agents behave exactly like this).
        field.record(0, (4..8u32).map(|a| (a, StateId(0))));
        assert_eq!(field.cell_population(0), 0);
        assert_eq!(field.cell_population(1), 4);
        assert_eq!(field.mean_entropy(), 0.0);
        // A later snapshot with a wider state space regrows the histogram.
        field.record(9, (0..8u32).map(|a| (a, StateId(a % 3))));
        assert_eq!(field.cell_counts(0), &[2, 1, 1]);
        assert_eq!(field.records(), 2);
    }

    #[test]
    fn output_multiset_change_ignores_swaps() {
        let e = ev(1, (0, 1), (1, 0), (0, 1), (1, 0));
        assert!(!e.output_multiset_changed(), "swap preserves the multiset");
        let e = ev(1, (0, 1), (1, 1), (0, 1), (1, 1));
        assert!(e.output_multiset_changed());
    }

    #[test]
    fn metrics_probe_counts_and_integrates() {
        let mut m = MetricsProbe::new();
        m.on_attach(&Snapshot { step: 0, occupancy: &[2, 1], outputs: &[2, 1] });
        // Interaction 1: (1, 0) -> (1, 1): state 0 loses one, state 1 gains.
        m.on_interaction(&ev(1, (1, 0), (1, 1), (1, 0), (1, 1)));
        // Interaction 2: ineffective.
        m.on_interaction(&ev(2, (1, 1), (1, 1), (1, 1), (1, 1)));
        assert_eq!(m.interactions(), 2);
        assert_eq!(m.effective_interactions(), 1);
        assert_eq!(m.rule_count(StateId(1), StateId(0)), 1);
        assert_eq!(m.rule_count(StateId(0), StateId(1)), 0);
        // State 0: 2 agents for step 1, then 1 agent for step 2 → ∫ = 3.
        assert_eq!(m.occupancy_integral(StateId(0)), 3);
        // State 1: 1 agent for step 1, then 2 agents for step 2 → ∫ = 3.
        assert_eq!(m.occupancy_integral(StateId(1)), 3);
        assert!((m.mean_occupancy(StateId(0)) - 1.5).abs() < 1e-12);
        assert!((m.effective_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_probe_window_reset() {
        let mut m = MetricsProbe::new();
        m.on_attach(&Snapshot { step: 0, occupancy: &[3], outputs: &[3] });
        m.on_interaction(&ev(1, (0, 0), (0, 0), (0, 0), (0, 0)));
        m.reset_window();
        assert_eq!(m.interactions(), 0);
        m.on_interaction(&ev(2, (0, 0), (0, 0), (0, 0), (0, 0)));
        assert_eq!(m.interactions(), 1);
        assert_eq!(m.occupancy_integral(StateId(0)), 3);
    }

    #[test]
    fn metrics_probe_accounts_leap_skips() {
        let mut m = MetricsProbe::new();
        m.on_attach(&Snapshot { step: 0, occupancy: &[1, 1], outputs: &[1, 1] });
        let mut e = ev(10, (0, 1), (1, 1), (0, 1), (1, 1));
        e.noops_skipped = 9;
        m.on_interaction(&e);
        assert_eq!(m.interactions(), 10);
        assert_eq!(m.effective_interactions(), 1);
        // State 0 occupied by 1 agent through interactions 1..=10.
        assert_eq!(m.occupancy_integral(StateId(0)), 10);
    }

    #[test]
    fn trajectory_probe_log_schedule_is_sparse_and_bounded() {
        let mut t = TrajectoryProbe::with_growth(1.5, 16);
        t.on_attach(&Snapshot { step: 0, occupancy: &[4, 0], outputs: &[4] });
        for step in 1..=100_000u64 {
            t.on_interaction(&ev(step, (0, 0), (0, 0), (0, 0), (0, 0)));
        }
        let n = t.samples().len();
        assert!(n <= 16, "decimation must bound memory, got {n}");
        assert!(n >= 8, "log schedule keeps coverage, got {n}");
        // Sample steps strictly increase.
        let steps: Vec<u64> = t.samples().iter().map(|s| s.0).collect();
        assert!(steps.windows(2).all(|w| w[0] < w[1]), "{steps:?}");
        assert!(*steps.last().unwrap() <= 100_000);
    }

    #[test]
    fn trajectory_probe_tracks_occupancy_through_events() {
        let mut t = TrajectoryProbe::new();
        t.on_attach(&Snapshot { step: 0, occupancy: &[2, 0], outputs: &[2] });
        t.on_interaction(&ev(1, (0, 0), (1, 1), (0, 0), (1, 1)));
        assert_eq!(t.current_occupancy(), &[0, 2]);
        // The step-1 sample caught the post-interaction histogram.
        let (at, hist) = t.samples().last().unwrap();
        assert_eq!((*at, hist.as_slice()), (1, &[0u64, 2][..]));
    }

    #[test]
    fn convergence_probe_tracks_wrongness() {
        let expected = OutputId(1);
        let mut c = ConvergenceProbe::for_output(expected);
        c.on_attach(&Snapshot { step: 0, occupancy: &[3, 1], outputs: &[3, 1] });
        assert_eq!(c.wrong_now(), 3);
        assert!(!c.converged());
        // Convert two wrong agents.
        c.on_interaction(&ev(1, (1, 0), (1, 1), (1, 0), (1, 1)));
        c.on_interaction(&ev(2, (1, 0), (1, 1), (1, 0), (1, 1)));
        assert_eq!(c.wrong_now(), 1);
        assert_eq!(c.stabilized_at(), None);
        c.on_interaction(&ev(3, (1, 0), (1, 1), (1, 0), (1, 1)));
        assert!(c.converged());
        assert_eq!(c.stabilized_at(), Some(3));
        assert_eq!(c.last_wrong(), Some(2));
    }

    #[test]
    fn convergence_probe_initially_converged() {
        let mut c = ConvergenceProbe::for_output(OutputId(0));
        c.on_attach(&Snapshot { step: 0, occupancy: &[4], outputs: &[4] });
        assert_eq!(c.stabilized_at(), Some(0));
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_attach(&Snapshot { step: 0, occupancy: &[2, 1], outputs: &[3] });
        sink.on_interaction(&ev(1, (0, 1), (1, 1), (0, 0), (0, 0)));
        sink.on_output_change(1);
        sink.on_fault_burst(2, &Snapshot { step: 5, occupancy: &[3, 0], outputs: &[3] });
        assert_eq!(sink.lines_written(), 4);
        assert_eq!(sink.io_errors(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "4 event lines plus the final summary");
        assert_eq!(
            lines[0],
            "{\"ev\":\"attach\",\"step\":0,\"occupancy\":[2,1],\"outputs\":[3]}"
        );
        assert_eq!(
            lines[1],
            "{\"ev\":\"step\",\"step\":1,\"skipped\":0,\"before\":[0,1],\"after\":[1,1],\"effective\":true}"
        );
        assert_eq!(lines[2], "{\"ev\":\"out\",\"step\":1}");
        assert!(lines[3].starts_with("{\"ev\":\"fault\",\"step\":5,\"injected\":2"));
        // The summary reports the counters as of the moment it was written.
        assert_eq!(lines[4], "{\"ev\":\"summary\",\"lines_written\":4,\"io_errors\":0}");
    }

    #[test]
    fn jsonl_sink_summarizes_and_flushes_on_drop() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        /// Shared-buffer writer so the test can inspect what a dropped
        /// sink's BufWriter actually flushed to the underlying sink.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut sink = JsonlSink::new(BufWriter::new(shared.clone()));
            sink.on_output_change(7);
            // Dropped mid-run without into_inner: the line is still in the
            // BufWriter here.
        }
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "event line plus summary, both flushed by drop");
        assert_eq!(lines[0], "{\"ev\":\"out\",\"step\":7}");
        assert_eq!(lines[1], "{\"ev\":\"summary\",\"lines_written\":1,\"io_errors\":0}");
    }

    #[test]
    fn jsonl_sink_stride_thins_steps_only() {
        let mut sink = JsonlSink::with_stride(Vec::new(), 10);
        sink.on_attach(&Snapshot { step: 0, occupancy: &[2], outputs: &[2] });
        for step in 1..=25u64 {
            sink.on_interaction(&ev(step, (0, 0), (0, 0), (0, 0), (0, 0)));
        }
        sink.on_output_change(25);
        // attach + steps 10, 20 + output change.
        assert_eq!(sink.lines_written(), 4);
    }

    #[test]
    fn tuple_probe_feeds_both() {
        let mut pair = (MetricsProbe::new(), TrajectoryProbe::new());
        pair.on_attach(&Snapshot { step: 0, occupancy: &[2], outputs: &[2] });
        pair.on_interaction(&ev(1, (0, 0), (0, 0), (0, 0), (0, 0)));
        assert_eq!(pair.0.interactions(), 1);
        assert_eq!(pair.1.samples().len(), 2);
        // NoProbe composition stays inactive; any live probe activates.
        const { assert!(!<(NoProbe, NoProbe) as Probe>::ACTIVE) };
        const { assert!(<(NoProbe, MetricsProbe) as Probe>::ACTIVE) };
    }

    #[test]
    fn batch_replay_feeds_per_interaction_hooks() {
        let mut m = MetricsProbe::new();
        m.on_attach(&Snapshot { step: 0, occupancy: &[3, 2], outputs: &[3, 2] });
        // A batch of 2 interactions: two (0, 1) -> (1, 1) conversions.
        let pairs = [BatchPair {
            before: (StateId(0), StateId(1)),
            after: (StateId(1), StateId(1)),
            outputs_before: (OutputId(0), OutputId(1)),
            outputs_after: (OutputId(1), OutputId(1)),
            count: 2,
            effective: true,
        }];
        m.on_batch(&BatchEvent { first_step: 1, len: 2, pairs: &pairs });
        assert_eq!(m.interactions(), 2);
        assert_eq!(m.effective_interactions(), 2);
        assert_eq!(m.rule_count(StateId(0), StateId(1)), 2);
        // Replay derives output changes: both conversions changed the multiset.
        assert_eq!(m.output_changes(), 2);
        // Occupancy after the batch: both state-0 agents converted.
        let mut t = TrajectoryProbe::new();
        t.on_attach(&Snapshot { step: 0, occupancy: &[3, 2], outputs: &[3, 2] });
        t.on_batch(&BatchEvent { first_step: 1, len: 2, pairs: &pairs });
        assert_eq!(t.current_occupancy(), &[1, 4]);
    }

    #[test]
    fn batch_replay_forwards_through_compositions() {
        let pairs = [BatchPair {
            before: (StateId(0), StateId(0)),
            after: (StateId(0), StateId(0)),
            outputs_before: (OutputId(0), OutputId(0)),
            outputs_after: (OutputId(0), OutputId(0)),
            count: 3,
            effective: false,
        }];
        let mut m = MetricsProbe::new();
        {
            let mut pair = (&mut m, NoProbe);
            pair.on_attach(&Snapshot { step: 0, occupancy: &[4], outputs: &[4] });
            pair.on_batch(&BatchEvent { first_step: 1, len: 3, pairs: &pairs });
        }
        assert_eq!(m.interactions(), 3);
        assert_eq!(m.effective_interactions(), 0);
    }

    #[test]
    fn timing_probe_laps() {
        let mut t = TimingProbe::new();
        t.on_attach(&Snapshot { step: 0, occupancy: &[2], outputs: &[2] });
        t.on_interaction(&ev(1, (0, 0), (0, 0), (0, 0), (0, 0)));
        let mut e2 = ev(5, (0, 0), (0, 0), (0, 0), (0, 0));
        e2.noops_skipped = 3;
        t.on_interaction(&e2);
        assert_eq!(t.interactions(), 5);
        let (n, d) = t.lap();
        assert_eq!(n, 5);
        assert!(d >= Duration::ZERO);
        let (n, _) = t.lap();
        assert_eq!(n, 0);
        assert!(t.ns_per_interaction().is_finite());
    }
}
