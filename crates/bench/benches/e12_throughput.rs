//! E12 — engineering throughput of the simulation engines.
//!
//! Not a paper claim: this table documents the cost of one interaction in
//! the count-based engine (O(|Q|), independent of n) and the agent-based
//! engine, so experiment budgets elsewhere can be sized.
//!
//! Each row reports nanoseconds per interaction, measured with a warmup
//! batch followed by timed batches (no external benchmarking harness: the
//! build environment is offline, so this target self-times with
//! `std::time::Instant`).

use std::time::Instant;

use pp_bench::{fmt, print_header};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{seeded_rng, AgentSimulation, Simulation};
use pp_presburger::{compile::compile_parsed, parse};
use pp_protocols::{majority, CountThreshold, GraphSimulator};

/// Times `batch` invocations of `f` after a warmup batch; returns ns/call.
fn time_per_call(batch: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..batch / 4 {
        f();
    }
    let start = Instant::now();
    for _ in 0..batch {
        f();
    }
    start.elapsed().as_nanos() as f64 / batch as f64
}

fn bench_count_engine() {
    println!("count engine (one `step`, O(|Q|) per interaction):");
    print_header(&["case", "n", "ns/step"], &[28, 12, 10]);
    for &n in &[1_000u64, 100_000, 10_000_000] {
        let mut sim =
            Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
        let mut rng = seeded_rng(1);
        let ns = time_per_call(400_000, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "majority_step", n, fmt(ns));
    }
    {
        let mut sim =
            Simulation::from_counts(CountThreshold::new(5), [(true, 10), (false, 999_990)]);
        let mut rng = seeded_rng(2);
        let ns = time_per_call(400_000, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "count_to_5_step", 1_000_000, fmt(ns));
    }
    {
        let proto = compile_parsed(&parse("b < a /\\ a = 1 mod 3").unwrap()).unwrap();
        let mut sim = Simulation::from_counts(proto, [(0usize, 5_000), (1usize, 5_001)]);
        let mut rng = seeded_rng(3);
        let ns = time_per_call(200_000, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "compiled_formula_step", 10_001, fmt(ns));
    }
}

fn bench_leap_engine() {
    // Whole epidemic runs: the leaping engine fast-forwards no-ops, so a
    // full run to quiescence is n−1 leaps regardless of how many
    // interactions they span.
    println!("\nleap engine (full epidemic run to quiescence):");
    print_header(&["case", "n", "µs/run"], &[28, 12, 10]);
    for &n in &[1_000u64, 100_000] {
        let mut rng = seeded_rng(9);
        let runs = if n >= 100_000 { 40 } else { 400 };
        let start = Instant::now();
        for _ in 0..runs {
            let epidemic = pp_core::FnProtocol::new(
                |&b: &bool| b,
                |&q: &bool| q,
                |&p: &bool, &q: &bool| (p || q, p || q),
            );
            let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, n - 1)]);
            sim.run_to_quiescence(u64::MAX, &mut rng).expect("quiesces");
        }
        let us = start.elapsed().as_micros() as f64 / f64::from(runs);
        println!("{:>28} {:>12} {:>10}", "epidemic_full_run", n, fmt(us));
    }
}

fn bench_agent_engine() {
    println!("\nagent engine (one `step` through the Theorem 7 baton simulator):");
    print_header(&["case", "n", "ns/step"], &[28, 12, 10]);
    for &n in &[100usize, 10_000] {
        let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 2 == 0)).collect();
        let mut sim = AgentSimulation::from_inputs(
            GraphSimulator::new(majority()),
            &inputs,
            UniformPairScheduler::new(n),
        );
        let mut rng = seeded_rng(4);
        let ns = time_per_call(400_000, || {
            sim.step(&mut rng);
        });
        println!("{:>28} {:>12} {:>10}", "graphsim_step", n, fmt(ns));
    }
}

fn main() {
    println!("\nE12: engine throughput (self-timed; offline build has no criterion)\n");
    bench_count_engine();
    bench_leap_engine();
    bench_agent_engine();
}
