//! The batched / epoch-sharded agent engine against a real workload: the
//! epidemic on a 2D torus (§5's restricted interaction graphs at the
//! topology the e23 bench scales to), driven through the Probe and Tracer
//! layers and cross-checked against the sequential engine.

use pp_core::observe::MetricsProbe;
use pp_core::trace::{SpanKind, SpanStats};
use pp_core::{seeded_rng, AgentSimulation, FnProtocol, Protocol};
use pp_graphs::{torus2d, torus2d_csr, torus3d_csr};
use rand::RngCore;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// One infected agent in the torus corner, the rest susceptible.
fn patient_zero(n: usize) -> Vec<bool> {
    (0..n).map(|i| i == 0).collect()
}

#[test]
fn epidemic_on_torus_converges_batched() {
    let side = 16usize;
    let n = side * side;
    let g = torus2d_csr(side, side);
    assert_eq!(g.population(), n);
    assert_eq!(g.edge_count(), 4 * n);
    let mut sim =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler());
    let mut rng = seeded_rng(23);
    // On a torus the epidemic needs O(n · diameter) interactions; 400n is
    // comfortable at side 16.
    let rep = sim
        .measure_stabilization_batched(&true, 400 * n as u64, &mut rng)
        .unwrap();
    assert!(rep.converged(), "epidemic must cover the torus");
    assert_eq!(sim.consensus_output(), Some(&true));
    // The epidemic infects exactly n − 1 agents, one per effective step.
    assert_eq!(sim.effective_steps(), n as u64 - 1);
}

#[test]
fn epidemic_on_3d_torus_converges_batched() {
    // The 6-neighbor lattice rides the same CsrScheduler stencil path as
    // the 2D torus: nothing in the engine knows the dimension, and the
    // sort-free torus3d_csr layout must behave identically at equal n.
    let side = 8usize;
    let n = side * side * side;
    let g = torus3d_csr(side, side, side);
    assert_eq!(g.population(), n);
    assert_eq!(g.edge_count(), 6 * n);
    let mut sim =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler());
    let mut rng = seeded_rng(24);
    let rep = sim
        .measure_stabilization_batched(&true, 400 * n as u64, &mut rng)
        .unwrap();
    assert!(rep.converged(), "epidemic must cover the 3D torus");
    assert_eq!(sim.consensus_output(), Some(&true));
    assert_eq!(sim.effective_steps(), n as u64 - 1);
}

#[test]
fn occupancy_field_tracks_the_3d_epidemic_front() {
    // Spatial probe satellite meets the 3D generator satellite: the
    // mean cell entropy starts at ~0 (one infected corner), rises while
    // the front crosses cells, and returns to 0 at full infection.
    let side = 6usize;
    let n = side * side * side;
    let g = torus3d_csr(side, side, side);
    let mut field =
        pp_core::OccupancyFieldProbe::grid3d(side, side, side, 3, 3, 3);
    assert_eq!(field.cells(), 8);
    let mut sim =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler());
    let mut rng = seeded_rng(25);
    sim.record_field(&mut field);
    assert_eq!(field.cell_population(0), 27);
    let mut peak = 0.0f64;
    while sim.effective_steps() < n as u64 - 1 {
        sim.run_batched(500, &mut rng).unwrap();
        sim.record_field(&mut field);
        peak = peak.max(field.mean_entropy());
    }
    assert!(peak > 0.1, "the sweeping front must raise cell entropy, got {peak}");
    assert_eq!(field.mean_entropy(), 0.0, "full infection is a pure field");
    let series = field.entropy_series();
    assert_eq!(series.len() as u64, field.records());
    // One infected corner: the initial field is nearly pure.
    assert!(series.first().unwrap().1 < 0.05);
}

#[test]
fn torus_batched_run_matches_sequential_with_probe() {
    let side = 8usize;
    let n = side * side;
    let steps = 40_000u64;
    let g = torus2d_csr(side, side);

    let mut seq =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler())
            .with_probe(MetricsProbe::new());
    let mut rng = seeded_rng(7);
    seq.run(steps, &mut rng);
    let seq_word = rng.next_u64();

    let mut bat =
        AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler())
            .with_probe(MetricsProbe::new());
    let mut rng = seeded_rng(7);
    bat.run_batched(steps, &mut rng).unwrap();

    assert_eq!(seq.agents(), bat.agents());
    assert_eq!(rng.next_u64(), seq_word, "RNG streams diverged");
    // The probe saw the identical interaction sequence.
    assert_eq!(seq.probe().interactions(), bat.probe().interactions());
    assert_eq!(
        seq.probe().effective_interactions(),
        bat.probe().effective_interactions()
    );
}

#[test]
fn torus_sharded_run_is_thread_count_invariant_under_tracer() {
    let side = 8usize;
    let n = side * side;
    let steps = 30_000u64;
    let g = torus2d_csr(side, side);

    let mut reference: Option<Vec<bool>> = None;
    for threads in [1usize, 2, 8] {
        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &patient_zero(n), g.scheduler())
                .with_tracer(SpanStats::new());
        let mut rng = seeded_rng(97);
        sim.run_epochs(steps, threads, &mut rng).unwrap();
        let states: Vec<bool> =
            (0..n as u32).map(|a| *sim.state_of(a)).collect();
        match &reference {
            None => reference = Some(states),
            Some(r) => assert_eq!(r, &states, "threads={threads}"),
        }
        // The tracer recorded both pipeline stages, covering every step.
        let stats = sim.tracer();
        assert_eq!(stats.items(SpanKind::BatchSample), steps);
        assert_eq!(stats.items(SpanKind::BatchApply), steps);
    }
}

#[test]
fn torus_tuple_and_csr_schedulers_agree() {
    // The same torus through the boxed edge-list path and the CSR path must
    // produce the same trajectory on the same seed: the CSR build preserves
    // the (sorted, deduplicated) edge order the edge list defines.
    let side = 6usize;
    let n = side * side;
    let tuple_graph = torus2d(side, side);
    let csr_graph = torus2d_csr(side, side);
    assert_eq!(tuple_graph.edge_count(), csr_graph.edge_count());

    let mut a = AgentSimulation::from_inputs(
        epidemic(),
        &patient_zero(n),
        tuple_graph.scheduler(),
    );
    let mut b = AgentSimulation::from_inputs(
        epidemic(),
        &patient_zero(n),
        csr_graph.scheduler(),
    );
    let mut rng_a = seeded_rng(41);
    let mut rng_b = seeded_rng(41);
    a.run(20_000, &mut rng_a);
    b.run_batched(20_000, &mut rng_b).unwrap();
    assert_eq!(a.agents(), b.agents());
}
