//! The Minsky reduction: Turing machine → 3-counter machine.
//!
//! §6.1 of the paper ("Simulating a Turing machine"): represent the tape as
//! two stacks, and each stack as a counter holding the Gödel number
//! `Σ xᵢ·bⁱ` of its symbol sequence, where `b` is the alphabet size and
//! digit = symbol (blank = 0, so an empty stack and an all-blank stack
//! coincide, exactly the unbounded-tape semantics). Pushing is
//! `c ← c·b + x`; popping is `c ← ⌊c/b⌋` returning the remainder — both
//! implemented with an accumulator counter, which is why the compiled
//! machine uses **three counters**: left stack, right stack, accumulator.
//! The remainder of a pop lives in the finite control ("or in our
//! simulation, the leader agent"), realized here as statically-known
//! branches of the division loop.

use crate::counter::{Assembler, CounterMachine, MachineError, Target};
use crate::tm::{Move, TmError, TmOutcome, TuringMachine};

/// Counter index of the left tape stack.
pub const LEFT: usize = 0;
/// Counter index of the right tape stack (top = cell under the head).
pub const RIGHT: usize = 1;
/// Counter index of the accumulator.
pub const AUX: usize = 2;

/// A Turing machine compiled to a counter machine.
#[derive(Debug, Clone)]
pub struct CompiledTm {
    machine: CounterMachine,
    base: u128,
}

impl CompiledTm {
    /// The compiled 3-counter machine.
    pub fn machine(&self) -> &CounterMachine {
        &self.machine
    }

    /// The Gödel base `b` (= TM alphabet size).
    pub fn base(&self) -> u128 {
        self.base
    }

    /// Encodes a TM input as initial counter values `[left, right, aux]`.
    pub fn encode_input(&self, input: &[u8]) -> [u128; 3] {
        [0, encode_stack(input, self.base), 0]
    }

    /// Decodes final counters back into a (trimmed) tape.
    pub fn decode_tape(&self, counters: &[u128]) -> Vec<u8> {
        let mut left = decode_stack(counters[LEFT], self.base);
        left.reverse();
        let mut tape = left;
        tape.extend(decode_stack(counters[RIGHT], self.base));
        while tape.first() == Some(&0) {
            tape.remove(0);
        }
        while tape.last() == Some(&0) {
            tape.pop();
        }
        tape
    }

    /// Runs the compiled machine on a TM input, returning the final tape.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::OutOfFuel`] if the counter machine does not halt
    /// within `fuel` counter-machine steps.
    pub fn run(&self, input: &[u8], fuel: u64) -> Result<TmOutcome, TmError> {
        let init = self.encode_input(input);
        match self.machine.run(&init, fuel) {
            Ok(out) => Ok(TmOutcome { tape: self.decode_tape(&out.counters), steps: out.steps }),
            Err(MachineError::OutOfFuel { fuel }) => Err(TmError::OutOfFuel { fuel }),
            Err(e) => panic!("compiled machine failed unexpectedly: {e}"),
        }
    }
}

/// Gödel-encodes a stack (`symbols[0]` on top) in base `b`.
pub fn encode_stack(symbols: &[u8], b: u128) -> u128 {
    let mut v = 0u128;
    for &s in symbols.iter().rev() {
        v = v * b + u128::from(s);
    }
    v
}

/// Decodes a Gödel number into stack symbols, top first (stops at 0).
pub fn decode_stack(mut v: u128, b: u128) -> Vec<u8> {
    let mut out = Vec::new();
    while v > 0 {
        out.push((v % b) as u8);
        v /= b;
    }
    out
}

/// Emits `to += from; from = 0`.
fn emit_move(asm: &mut Assembler, from: usize, to: usize) {
    let done = asm.fresh_label();
    let head = asm.here();
    let body = asm.fresh_label();
    asm.dec_jz(from, body, done);
    asm.bind(body);
    asm.inc(to, head);
    asm.bind(done);
}

/// Emits `counter ← counter·b + digit`, using AUX (which must be 0).
fn emit_push(asm: &mut Assembler, counter: usize, digit: u8, b: u8) {
    let done = asm.fresh_label();
    let head = asm.here();
    let body = asm.fresh_label();
    asm.dec_jz(counter, body, done);
    asm.bind(body);
    for k in 0..b {
        if k + 1 < b {
            asm.inc_next(AUX);
        } else {
            asm.inc(AUX, head);
        }
    }
    asm.bind(done);
    for _ in 0..digit {
        asm.inc_next(AUX);
    }
    emit_move(asm, AUX, counter);
}

/// Emits the division loop `counter ← ⌊counter/b⌋` with quotient
/// accumulating in AUX; returns one exit label per remainder value. At
/// each exit the counter is drained (0) and AUX holds the quotient; the
/// caller must bind each exit, restore `AUX → counter`, and emit the
/// remainder-specific continuation.
fn emit_pop(asm: &mut Assembler, counter: usize, b: u8) -> Vec<Target> {
    let head = asm.here();
    let mut exits = Vec::with_capacity(b as usize);
    for _ in 0..b {
        let cont = asm.fresh_label();
        let exit = asm.fresh_label();
        asm.dec_jz(counter, cont, exit);
        exits.push(exit);
        asm.bind(cont);
    }
    asm.inc(AUX, head);
    exits
}

/// Compiles a Turing machine into a 3-counter machine (Minsky).
///
/// The compiled machine starts at the block of the TM's start state, with
/// counters `[0, encode(input), 0]`, and halts with the tape encoded in
/// the `LEFT`/`RIGHT` counters. A `(state, symbol)` pair without a
/// transition (other than the halt state) compiles to an infinite loop, so
/// stuck TMs surface as `OutOfFuel`.
///
/// # Panics
///
/// Panics if the TM alphabet has fewer than 2 symbols (no non-blank
/// symbol).
pub fn compile_tm(tm: &TuringMachine) -> CompiledTm {
    let b = tm.num_symbols();
    assert!(b >= 2, "alphabet must contain a non-blank symbol");
    let mut asm = Assembler::new();

    // One label per TM state block.
    let blocks: Vec<Target> = (0..tm.num_states()).map(|_| asm.fresh_label()).collect();

    // Entry: jump to the start state's block. (AUX is 0 initially.)
    asm.jump_via_zero(AUX, blocks[tm.start_state()]);

    // Stuck trap: spin forever.
    let stuck = asm.fresh_label();

    for s in 0..tm.num_states() {
        asm.bind(blocks[s]);
        if s == tm.halt_state() {
            asm.halt();
            continue;
        }
        // Pop the current symbol off the right stack.
        let exits = emit_pop(&mut asm, RIGHT, b);
        for (d, exit) in exits.into_iter().enumerate() {
            asm.bind(exit);
            emit_move(&mut asm, AUX, RIGHT); // RIGHT ← quotient
            match tm.action(s, d as u8) {
                None => {
                    // RIGHT was just drained; AUX is 0. Spin.
                    asm.jump_via_zero(AUX, stuck);
                }
                Some(a) => {
                    match a.mv {
                        Move::Right => emit_push(&mut asm, LEFT, a.write, b),
                        Move::Stay => emit_push(&mut asm, RIGHT, a.write, b),
                        Move::Left => {
                            emit_push(&mut asm, RIGHT, a.write, b);
                            // Pop the left stack and push that symbol onto
                            // the right stack.
                            let lexits = emit_pop(&mut asm, LEFT, b);
                            let join = asm.fresh_label();
                            for (l, lexit) in lexits.into_iter().enumerate() {
                                asm.bind(lexit);
                                emit_move(&mut asm, AUX, LEFT);
                                emit_push(&mut asm, RIGHT, l as u8, b);
                                asm.jump_via_zero(AUX, join);
                            }
                            asm.bind(join);
                        }
                    }
                    // AUX is 0 after every push/move.
                    asm.jump_via_zero(AUX, blocks[a.next]);
                }
            }
        }
    }

    asm.bind(stuck);
    // Infinite loop on AUX = 0: jump to self.
    let here = asm.here();
    asm.jump_via_zero(AUX, here);

    let machine = asm.assemble(3).expect("compiler emits valid programs");
    CompiledTm { machine, base: u128::from(b) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn stack_encoding_roundtrip() {
        for v in [vec![], vec![1], vec![1, 0, 1], vec![2, 1, 2]] {
            let e = encode_stack(&v, 3);
            let mut d = decode_stack(e, 3);
            // Trailing (bottom) blanks vanish in the encoding.
            let mut expect = v.clone();
            while expect.last() == Some(&0) {
                expect.pop();
            }
            while d.last() == Some(&0) {
                d.pop();
            }
            assert_eq!(d, expect, "{v:?}");
        }
    }

    #[test]
    fn encode_matches_paper_formula() {
        // Σ xᵢ bⁱ with x₀ the top.
        assert_eq!(encode_stack(&[2, 1], 3), 2 + 3);
        assert_eq!(encode_stack(&[1, 2, 1], 3), 1 + 2 * 3 + 9);
    }

    /// The compiled machine must produce the same tape as direct TM
    /// execution on every input in range.
    fn check_equivalence(tm: &TuringMachine, max_n: usize, fuel: u64) {
        let compiled = compile_tm(tm);
        for n in 0..=max_n {
            let input = vec![1u8; n];
            let direct = tm.run(&input, fuel).expect("direct run halts");
            let via_cm = compiled.run(&input, fuel * 10_000).expect("compiled run halts");
            assert_eq!(via_cm.tape, direct.tape, "n={n}");
        }
    }

    #[test]
    fn increment_machine_equivalent() {
        check_equivalence(&programs::tm_unary_increment(), 8, 10_000);
    }

    #[test]
    fn parity_machine_equivalent() {
        check_equivalence(&programs::tm_unary_parity(), 9, 10_000);
    }

    #[test]
    fn half_machine_equivalent() {
        check_equivalence(&programs::tm_unary_half(), 9, 10_000);
    }

    #[test]
    fn binary_increment_equivalent_base3() {
        // Alphabet size 3 exercises non-binary Gödel bases.
        let tm = programs::tm_binary_increment();
        let compiled = compile_tm(&tm);
        assert_eq!(compiled.base(), 3);
        for input in [vec![], vec![2u8], vec![1, 2], vec![2, 2, 1], vec![2, 2, 2]] {
            let direct = tm.run(&input, 1000).unwrap();
            let via = compiled.run(&input, 10_000_000).unwrap();
            assert_eq!(via.tape, direct.tape, "{input:?}");
        }
    }

    #[test]
    fn left_moving_machine_equivalent() {
        // Writes 1s leftward from the origin: exercises left-stack pops of
        // blanks.
        let tm = TuringMachine::new(
            3,
            2,
            0,
            2,
            [
                ((0, 0), crate::tm::Action { write: 1, mv: Move::Left, next: 1 }),
                ((1, 0), crate::tm::Action { write: 1, mv: Move::Left, next: 2 }),
            ],
        )
        .unwrap();
        check_equivalence(&tm, 0, 1000);
    }

    #[test]
    fn stuck_tm_compiles_to_nontermination() {
        // No transition on symbol 1 from state 0.
        let tm = TuringMachine::new(
            2,
            2,
            0,
            1,
            [((0, 0), crate::tm::Action { write: 0, mv: Move::Stay, next: 1 })],
        )
        .unwrap();
        let compiled = compile_tm(&tm);
        assert!(matches!(
            compiled.run(&[1], 5_000),
            Err(TmError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn three_counters_only() {
        let compiled = compile_tm(&programs::tm_unary_parity());
        assert_eq!(compiled.machine().num_counters(), 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(20))]
        #[test]
        fn prop_compiled_parity_matches(n in 0usize..16) {
            let tm = programs::tm_unary_parity();
            let compiled = compile_tm(&tm);
            let input = vec![1u8; n];
            let direct = tm.run(&input, 10_000).unwrap();
            let via = compiled.run(&input, 100_000_000).unwrap();
            proptest::prop_assert_eq!(via.tape, direct.tape);
        }
    }
}
