#!/usr/bin/env bash
# Golden-request gate for the pp-server HTTP service.
#
# Boots a release pp-server on loopback, fires the scripted request set —
# a named-protocol run, a formula compile-and-run, a fault ensemble, and
# a mean-field query — and diffs each response body byte-for-byte against
# the checked-in goldens in tests/goldens/server/. Because reports carry
# no wall-clock fields and every request is seeded, the bodies are stable
# across machines, thread counts, and restarts; any diff is a real
# determinism or wire-format regression.
#
# Usage:
#   scripts/server_goldens.sh                 # assert against goldens
#   PP_UPDATE_GOLDENS=1 scripts/server_goldens.sh   # regenerate goldens

set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_DIR=tests/goldens/server
ADDR=127.0.0.1:7878
BASE="http://$ADDR"

cargo build --release --bin pp-server

./target/release/pp-server --addr "$ADDR" --threads 2 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listener (the binary prints its banner after binding).
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

# The scripted request set. Each entry: golden file name + request body.
# Population order is semantic (it fixes the interning order, hence the
# RNG stream) — do not reorder keys inside "population".
declare -A REQUESTS
REQUESTS[protocol_run]='{
    "protocol": {"name": "majority"},
    "population": {"1": 6, "0": 4},
    "seed": 7,
    "engine": "batched",
    "trials": 4,
    "horizon": 30000
}'
REQUESTS[formula_run]='{
    "protocol": {"formula": "a > b"},
    "population": {"a": 6, "b": 4},
    "seed": 42,
    "engine": "batched",
    "trials": 8,
    "horizon": 30000
}'
REQUESTS[fault_ensemble]='{
    "protocol": {"name": "majority"},
    "population": {"1": 6, "0": 4},
    "seed": 11,
    "trials": 4,
    "horizon": 60000,
    "faults": {"crash": [[500, 1]]}
}'
REQUESTS[mean_field]='{
    "protocol": {"name": "majority"},
    "population": {"1": 600, "0": 400},
    "engine": "mean-field",
    "mean_field": {"horizon": 50.0}
}'

mkdir -p "$GOLDEN_DIR"
status=0
for name in protocol_run formula_run fault_ensemble mean_field; do
    got=$(curl -sf -X POST "$BASE/v1/run" \
        -H 'Content-Type: application/json' \
        -d "${REQUESTS[$name]}")
    golden="$GOLDEN_DIR/$name.json"
    if [ "${PP_UPDATE_GOLDENS:-0}" = "1" ]; then
        printf '%s' "$got" > "$golden"
        echo "updated $golden"
    elif [ ! -f "$golden" ]; then
        echo "MISSING golden $golden (run with PP_UPDATE_GOLDENS=1)" >&2
        status=1
    elif printf '%s' "$got" | diff -u "$golden" - >/dev/null; then
        echo "ok $name"
    else
        echo "DIFF in $name:" >&2
        printf '%s' "$got" | diff -u "$golden" - >&2 || true
        status=1
    fi
done

# A second pass over the same set must hit the compile cache without
# moving a byte — replay the formula request and re-diff.
replay=$(curl -sf -X POST "$BASE/v1/run" \
    -H 'Content-Type: application/json' \
    -d "${REQUESTS[formula_run]}")
if [ "${PP_UPDATE_GOLDENS:-0}" != "1" ]; then
    if printf '%s' "$replay" | diff -u "$GOLDEN_DIR/formula_run.json" - >/dev/null; then
        echo "ok formula_run (cache-hit replay)"
    else
        echo "DIFF in formula_run cache-hit replay" >&2
        status=1
    fi
fi

exit "$status"
