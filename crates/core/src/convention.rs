//! Input and output encoding conventions (§3.4, §3.6 of the paper).
//!
//! Population protocols compute on *assignments* (one symbol per agent);
//! encoding conventions map those assignments to and from richer domains:
//!
//! * **symbol-count**: a tuple in `ℕᵏ` counting how many agents carry each
//!   input/output symbol;
//! * **integer-based**: each agent carries a small integer tuple and the
//!   represented value is the sum across the population;
//! * **all-agents predicate**: output `true`/`false` only when *every* agent
//!   agrees, `⊥` otherwise;
//! * **zero/non-zero predicate**: `false` iff all agents output `0`
//!   (Theorem 2 shows this convention computes the same predicates).
//!
//! The functions here operate on output histograms (`(value, count)` pairs)
//! as produced by
//! [`Simulation::output_histogram`](crate::engine::Simulation::output_histogram),
//! so they apply to both simulation engines.

/// Decodes the **all-agents predicate output convention**: `Some(b)` when
/// every agent outputs `b`, `None` (the paper's `⊥`) otherwise.
///
/// # Example
///
/// ```
/// use pp_core::convention::all_agents_output;
///
/// assert_eq!(all_agents_output(&[(true, 10)]), Some(true));
/// assert_eq!(all_agents_output(&[(true, 9), (false, 1)]), None);
/// ```
pub fn all_agents_output(histogram: &[(bool, u64)]) -> Option<bool> {
    let mut result = None;
    for &(y, c) in histogram {
        if c == 0 {
            continue;
        }
        match result {
            None => result = Some(y),
            Some(r) if r != y => return None,
            _ => {}
        }
    }
    result
}

/// Decodes the **zero/non-zero predicate output convention** (§3.6):
/// `false` iff every agent outputs `false`.
///
/// # Example
///
/// ```
/// use pp_core::convention::zero_nonzero_output;
///
/// assert!(zero_nonzero_output(&[(false, 9), (true, 1)]));
/// assert!(!zero_nonzero_output(&[(false, 10)]));
/// ```
pub fn zero_nonzero_output(histogram: &[(bool, u64)]) -> bool {
    histogram.iter().any(|&(y, c)| y && c > 0)
}

/// Decodes the **symbol-count output convention**: the number of agents
/// outputting each symbol in `symbols`, in order.
///
/// # Example
///
/// ```
/// use pp_core::convention::symbol_count_output;
///
/// let hist = [('a', 3), ('b', 2)];
/// assert_eq!(symbol_count_output(&hist, &['a', 'b', 'c']), vec![3, 2, 0]);
/// ```
pub fn symbol_count_output<Y: PartialEq>(histogram: &[(Y, u64)], symbols: &[Y]) -> Vec<u64> {
    symbols
        .iter()
        .map(|s| {
            histogram
                .iter()
                .filter(|(y, _)| y == s)
                .map(|&(_, c)| c)
                .sum()
        })
        .collect()
}

/// Decodes the **integer-based output convention** (§3.4): the represented
/// integer is the sum of every agent's output value.
///
/// # Example
///
/// The `⌊m/3⌋` protocol of §3.4 outputs bit `j` per agent; the quotient is
/// the population sum of those bits:
///
/// ```
/// use pp_core::convention::integer_output;
///
/// assert_eq!(integer_output(&[(0, 5), (1, 4)]), 4);
/// assert_eq!(integer_output(&[(2, 3), (-1, 2)]), 4);
/// ```
pub fn integer_output(histogram: &[(i64, u64)]) -> i64 {
    histogram
        .iter()
        .map(|&(y, c)| y * i64::try_from(c).expect("count exceeds i64"))
        .sum()
}

/// Decodes a vector-valued integer-based output: component-wise population
/// sums of `k`-tuples.
pub fn integer_vector_output(histogram: &[(Vec<i64>, u64)], k: usize) -> Vec<i64> {
    let mut sums = vec![0i64; k];
    for (y, c) in histogram {
        assert_eq!(y.len(), k, "output tuple arity mismatch");
        let c = i64::try_from(*c).expect("count exceeds i64");
        for (acc, &v) in sums.iter_mut().zip(y) {
            *acc += v * c;
        }
    }
    sums
}

/// Validates a symbol-count input against a population size: the tuple
/// `(n_1, …, n_k)` is representable in a population of size `n` only when
/// `Σ n_i = n` (§3.4).
///
/// # Errors
///
/// Returns [`crate::PopulationError::UnrepresentableInput`] on mismatch.
pub fn validate_symbol_count(
    n: u64,
    counts: &[u64],
) -> Result<(), crate::error::PopulationError> {
    let total: u64 = counts.iter().sum();
    if total == n {
        Ok(())
    } else {
        Err(crate::error::PopulationError::UnrepresentableInput {
            reason: format!("symbol counts sum to {total}, population is {n}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_agents_requires_unanimity() {
        assert_eq!(all_agents_output(&[]), None);
        assert_eq!(all_agents_output(&[(false, 4)]), Some(false));
        assert_eq!(all_agents_output(&[(false, 4), (true, 0)]), Some(false));
        assert_eq!(all_agents_output(&[(false, 4), (true, 1)]), None);
    }

    #[test]
    fn zero_nonzero_semantics() {
        assert!(!zero_nonzero_output(&[]));
        assert!(!zero_nonzero_output(&[(false, 7)]));
        assert!(!zero_nonzero_output(&[(true, 0), (false, 7)]));
        assert!(zero_nonzero_output(&[(true, 1), (false, 6)]));
    }

    #[test]
    fn symbol_count_orders_by_requested_symbols() {
        let hist = [(2u8, 5), (0u8, 1)];
        assert_eq!(symbol_count_output(&hist, &[0, 1, 2]), vec![1, 0, 5]);
    }

    #[test]
    fn integer_output_sums_signed_values() {
        assert_eq!(integer_output(&[]), 0);
        assert_eq!(integer_output(&[(-3, 2), (3, 2)]), 0);
        assert_eq!(integer_output(&[(7, 1), (-1, 5)]), 2);
    }

    #[test]
    fn integer_vector_output_componentwise() {
        let hist = vec![(vec![1, 0], 3), (vec![0, -2], 2)];
        assert_eq!(integer_vector_output(&hist, 2), vec![3, -4]);
    }

    #[test]
    fn validate_symbol_count_checks_sum() {
        assert!(validate_symbol_count(5, &[2, 3]).is_ok());
        assert!(validate_symbol_count(5, &[2, 2]).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_all_agents_iff_single_support(t in 0u64..9, f in 0u64..9) {
            let hist = [(true, t), (false, f)];
            let got = all_agents_output(&hist);
            let want = match (t > 0, f > 0) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                (true, true) => None,
                (false, false) => None,
            };
            proptest::prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_integer_output_is_linear(
            a in -5i64..=5, ca in 0u64..9, b in -5i64..=5, cb in 0u64..9,
        ) {
            let hist = [(a, ca), (b, cb)];
            proptest::prop_assert_eq!(
                integer_output(&hist),
                a * ca as i64 + b * cb as i64
            );
        }

        #[test]
        fn prop_symbol_count_partitions_population(x in 0u64..9, y in 0u64..9) {
            let hist = [(0u8, x), (1u8, y)];
            let counts = symbol_count_output(&hist, &[0, 1]);
            proptest::prop_assert_eq!(counts.iter().sum::<u64>(), x + y);
        }
    }
}
