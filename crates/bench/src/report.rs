//! Machine-readable experiment reports: every bench emits, next to its
//! human-readable table, a `BENCH_<experiment>.json` file so the perf and
//! accuracy trajectory of the repo can be tracked across commits without
//! scraping stdout.
//!
//! The format is deliberately tiny (the build is offline — no serde):
//!
//! ```json
//! {"schema":"pp-bench/v1","experiment":"e12_throughput","unix_time":1754300000,
//!  "meta":{"smoke":false,"threads":8,"wall_s":12.34},
//!  "rows":[{"case":"majority_step","n":1000,"ns_per_step":12.5}]}
//! ```
//!
//! Every report header records `threads` (the worker-thread count ensemble
//! runs resolve from the environment, see
//! [`pp_core::ensemble::default_threads`]) and `wall_s` (wall-clock seconds
//! from report construction to serialization) automatically; a bench may
//! override either with [`BenchReport::set_meta`].
//!
//! Files land in the workspace root (override with `PP_BENCH_DIR`). Under
//! `PP_BENCH_SMOKE=1` ([`smoke`]) reports are still assembled — so the
//! serialization path is exercised in CI — but not written to disk,
//! keeping smoke runs side-effect free.
//!
//! Alongside each `BENCH_<exp>.json`, every non-smoke [`BenchReport::write`]
//! appends one compact `pp-bench-history/v1` record — the same header,
//! optional [`pp_core::RunManifest`], metadata and rows on a single line —
//! to `BENCH_HISTORY.jsonl`, giving the repo an append-only perf trajectory
//! across commits. All wall-clock stamps come from [`unix_now`], which
//! honours `PP_BENCH_FAKE_TIME` for reproducible fixtures.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use pp_core::RunManifest;

/// Whether this bench run is a CI smoke run (`PP_BENCH_SMOKE` set to
/// anything but `0` or the empty string): populations and trial counts
/// should be scaled down to "does it run at all" size, and reports are not
/// written to disk.
pub fn smoke() -> bool {
    std::env::var("PP_BENCH_SMOKE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Seconds since the Unix epoch, as stamped into every report header.
///
/// All wall-clock stamping in this crate goes through this one helper so
/// tests and CI fixtures can pin it: when `PP_BENCH_FAKE_TIME` is set to an
/// integer, that value is returned instead of the real clock, making report
/// and history output byte-reproducible.
pub fn unix_now() -> u64 {
    if let Ok(v) = std::env::var("PP_BENCH_FAKE_TIME") {
        if let Ok(t) = v.trim().parse::<u64>() {
            return t;
        }
    }
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// A JSON-serializable scalar or list cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A float; non-finite values serialize as `null`.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// A homogeneous or heterogeneous list.
    List(Vec<Value>),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::F64(v) if !v.is_finite() => out.push_str("null"),
            Value::F64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => push_json_str(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::List(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.push_json(out);
                }
                out.push(']');
            }
        }
    }
}

fn push_json_object(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        v.push_json(out);
    }
    out.push('}');
}

/// One experiment's machine-readable report: free-form metadata plus a list
/// of uniform-ish rows (each row is an ordered set of `name: value` cells).
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    experiment: String,
    meta: Vec<(String, Value)>,
    rows: Vec<Vec<(String, Value)>>,
    started: Option<Instant>,
    manifest: Option<RunManifest>,
}

impl BenchReport {
    /// A new report for `experiment` (e.g. `"e12_throughput"`); the
    /// experiment name becomes the `BENCH_<experiment>.json` file name.
    /// Smoke mode and the resolved ensemble thread count are recorded in
    /// the metadata automatically; wall-clock time since this call is
    /// recorded at serialization.
    pub fn new(experiment: &str) -> Self {
        let mut r = Self {
            experiment: experiment.to_owned(),
            meta: Vec::new(),
            rows: Vec::new(),
            started: Some(Instant::now()),
            manifest: None,
        };
        r.set_meta("smoke", smoke());
        r.set_meta("threads", pp_core::ensemble::default_threads());
        r
    }

    /// Attaches a [`RunManifest`] (schema `pp-run/v1`) identifying the run:
    /// master seed, protocol, population, thread count, fault plan, git
    /// revision. Serialized under the `"manifest"` key in both the report
    /// and its `BENCH_HISTORY.jsonl` record.
    pub fn set_manifest(&mut self, manifest: RunManifest) -> &mut Self {
        self.manifest = Some(manifest);
        self
    }

    /// Sets a metadata field (population size, trial count, …), replacing
    /// any earlier value under the same key.
    pub fn set_meta(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        let value = value.into();
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_owned(), value));
        }
        self
    }

    /// Appends one measurement row from `(name, value)` cells.
    pub fn push_row<K: Into<String>, V: Into<Value>>(
        &mut self,
        cells: impl IntoIterator<Item = (K, V)>,
    ) -> &mut Self {
        self.rows
            .push(cells.into_iter().map(|(k, v)| (k.into(), v.into())).collect());
        self
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the report to a single-object JSON string.
    pub fn to_json(&self) -> String {
        self.serialize("pp-bench/v1", true)
    }

    /// One compact line for `BENCH_HISTORY.jsonl`: the same payload as
    /// [`to_json`](Self::to_json) under schema `pp-bench-history/v1`, with
    /// no interior newlines so the file stays valid JSONL.
    pub fn to_history_line(&self) -> String {
        self.serialize("pp-bench-history/v1", false)
    }

    fn serialize(&self, schema: &str, pretty: bool) -> String {
        let unix_time = unix_now();
        let mut out = String::with_capacity(256 + 64 * self.rows.len());
        out.push_str("{\"schema\":");
        push_json_str(&mut out, schema);
        out.push_str(",\"experiment\":");
        push_json_str(&mut out, &self.experiment);
        let _ = write!(out, ",\"unix_time\":{unix_time}");
        if let Some(m) = &self.manifest {
            out.push_str(",\"manifest\":");
            out.push_str(&m.to_json());
        }
        out.push_str(",\"meta\":");
        let mut meta = self.meta.clone();
        if let Some(t0) = self.started {
            if !meta.iter().any(|(k, _)| k == "wall_s") {
                meta.push(("wall_s".to_owned(), Value::F64(t0.elapsed().as_secs_f64())));
            }
        }
        push_json_object(&mut out, &meta);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if pretty {
                out.push_str("\n  ");
            }
            push_json_object(&mut out, row);
        }
        if pretty {
            out.push_str("\n]}\n");
        } else {
            out.push_str("]}");
        }
        out
    }

    /// Directory reports are written to: `PP_BENCH_DIR` if set, else the
    /// workspace root (two levels up from the bench crate).
    pub fn output_dir() -> PathBuf {
        match std::env::var_os("PP_BENCH_DIR") {
            Some(d) => PathBuf::from(d),
            None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
        }
    }

    /// Serializes the report and — outside smoke mode — writes it to
    /// `BENCH_<experiment>.json` in [`output_dir`](Self::output_dir),
    /// printing the destination, and appends one compact
    /// `pp-bench-history/v1` record to `BENCH_HISTORY.jsonl` in the same
    /// directory so the repo accumulates a perf trajectory across runs. In
    /// smoke mode the JSON is still built (serialization bugs fail the
    /// smoke job) but nothing touches disk.
    ///
    /// # Panics
    ///
    /// Panics if either file cannot be written — a bench that silently
    /// loses its report would defeat the trajectory tracking.
    pub fn write(&self) {
        let json = self.to_json();
        let history = self.to_history_line();
        if smoke() {
            println!("[smoke] skipping write of BENCH_{}.json ({} rows)", self.experiment, self.rows.len());
            return;
        }
        let dir = Self::output_dir();
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("wrote {}", path.display());
        let hist_path = dir.join("BENCH_HISTORY.jsonl");
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&hist_path)
            .and_then(|mut f| writeln!(f, "{history}"))
            .unwrap_or_else(|e| panic!("failed to append {}: {e}", hist_path.display()));
        println!("appended {}", hist_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_schema_meta_and_rows() {
        let mut r = BenchReport::new("e0_demo");
        r.set_meta("n", 64u64);
        r.set_meta("n", 128u64); // replaces
        r.push_row([("case", Value::from("fast")), ("ns", Value::from(12.5))]);
        r.push_row([("case", Value::from("slow")), ("ns", Value::from(f64::NAN))]);
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"pp-bench/v1\",\"experiment\":\"e0_demo\""));
        assert!(json.contains("\"n\":128"));
        assert!(!json.contains("\"n\":64"));
        assert!(json.contains("{\"case\":\"fast\",\"ns\":12.5}"));
        assert!(json.contains("{\"case\":\"slow\",\"ns\":null}"), "NaN must map to null");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn header_records_threads_and_wall_clock() {
        let r = BenchReport::new("e0_header");
        let json = r.to_json();
        assert!(json.contains("\"threads\":"), "{json}");
        assert!(json.contains("\"wall_s\":"), "{json}");

        // An explicit wall_s wins over the automatic one.
        let mut r = BenchReport::new("e0_header");
        r.set_meta("wall_s", 42.0);
        let json = r.to_json();
        assert!(json.contains("\"wall_s\":42"), "{json}");
        assert_eq!(json.matches("\"wall_s\":").count(), 1);
    }

    #[test]
    fn fake_time_pins_unix_now_and_history_line() {
        std::env::set_var("PP_BENCH_FAKE_TIME", "1754300000");
        assert_eq!(unix_now(), 1754300000);
        let mut r = BenchReport::new("e0_hist");
        r.set_meta("wall_s", 1.0); // suppress the nondeterministic auto stamp
        r.set_manifest(RunManifest::default().with_protocol("majority").with_master_seed(7));
        r.push_row([("case", Value::from("a")), ("ns_per_step", Value::from(2.5))]);
        let line = r.to_history_line();
        std::env::remove_var("PP_BENCH_FAKE_TIME");
        assert!(!line.contains('\n'), "history record must be one line: {line}");
        assert!(line.starts_with("{\"schema\":\"pp-bench-history/v1\",\"experiment\":\"e0_hist\""));
        assert!(line.contains("\"unix_time\":1754300000"), "{line}");
        assert!(line.contains("\"manifest\":{\"schema\":\"pp-run/v1\""), "{line}");
        assert!(line.contains("\"protocol\":\"majority\""), "{line}");
        assert!(line.contains("\"master_seed\":7"), "{line}");
        assert!(line.contains("{\"case\":\"a\",\"ns_per_step\":2.5}"), "{line}");
    }

    #[test]
    fn manifest_appears_in_report_json() {
        let mut r = BenchReport::new("e0_manifest");
        r.set_manifest(RunManifest::default().with_population(1000).with_threads(4));
        let json = r.to_json();
        assert!(json.contains("\"manifest\":{\"schema\":\"pp-run/v1\""), "{json}");
        assert!(json.contains("\"population\":1000"), "{json}");
        // Reports without a manifest omit the key entirely.
        let json = BenchReport::new("e0_bare").to_json();
        assert!(!json.contains("\"manifest\""), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn lists_and_ints_serialize() {
        let mut out = String::new();
        Value::from(vec![1u64, 2, 3]).push_json(&mut out);
        assert_eq!(out, "[1,2,3]");
        let mut out = String::new();
        Value::from(-5i64).push_json(&mut out);
        assert_eq!(out, "-5");
        let mut out = String::new();
        Value::from(true).push_json(&mut out);
        assert_eq!(out, "true");
    }
}
