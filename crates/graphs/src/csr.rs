//! Compressed-sparse-row storage for large interaction graphs.
//!
//! [`InteractionGraph`] keeps an explicit sorted `(u, v)` edge list — ideal
//! for small graphs and exact set queries, but at 10⁸ agents the 8-byte
//! tuples and the sort dominate. [`CsrGraph`] stores the same directed graph
//! as `offsets` (length `n + 1`) plus a flat `edges` array of targets
//! grouped by initiator: half the memory, no per-edge tuple, and `O(1)`
//! neighbor slicing. [`CsrGraph::scheduler`] hands the arrays straight to
//! [`pp_core::scheduler::CsrScheduler`] for uniform edge sampling.
//!
//! Edge and offset indices are `u32`: populations up to `u32::MAX` agents
//! and graphs up to `u32::MAX` directed edges (a 10⁸-agent torus has
//! `4 × 10⁸` edges, comfortably inside).

use pp_core::scheduler::CsrScheduler;

use crate::graph::InteractionGraph;

/// A directed, irreflexive interaction graph in compressed-sparse-row form:
/// the targets of agent `u`'s out-edges are
/// `edges[offsets[u] .. offsets[u + 1]]`, sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrGraph {
    /// Converts an [`InteractionGraph`] (whose edge list is already sorted
    /// and deduplicated) into CSR form in one counting pass.
    pub fn from_graph(g: &InteractionGraph) -> Self {
        let n = g.population();
        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in g.edges() {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = g.edges().iter().map(|&(_, v)| v).collect();
        Self { n, offsets, edges }
    }

    /// Builds a CSR graph over `n` agents from an arbitrary directed edge
    /// list (counting sort by initiator; targets sorted and deduplicated per
    /// row).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, any edge is a self-loop, an endpoint is out of
    /// range, or the edge count overflows `u32`.
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)]) -> Self {
        assert!(n >= 2, "population must have at least 2 agents");
        u32::try_from(edge_list.len()).expect("edge count exceeds u32::MAX");
        let mut counts = vec![0u32; n + 1];
        for &(u, v) in edge_list {
            assert!(u != v, "self-loop on agent {u}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for population of size {n}"
            );
            counts[u as usize + 1] += 1;
        }
        let mut offsets = counts;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut edges = vec![0u32; edge_list.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in edge_list {
            edges[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        // Sort and dedup each row in place, then compact.
        let mut write = 0usize;
        let mut new_offsets = vec![0u32; n + 1];
        for u in 0..n {
            let (start, end) = (offsets[u] as usize, offsets[u + 1] as usize);
            let row = &mut edges[start..end];
            row.sort_unstable();
            let mut prev: Option<u32> = None;
            let row_start = write;
            for i in start..end {
                let v = edges[i];
                if prev != Some(v) {
                    edges[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            new_offsets[u] = row_start as u32;
        }
        new_offsets[n] = write as u32;
        edges.truncate(write);
        Self { n, offsets: new_offsets, edges }
    }

    /// Assembles a CSR graph from pre-built arrays; the caller guarantees
    /// the invariants (monotone offsets, per-row sorted targets, no
    /// self-loops). Used by sort-free builders like
    /// [`torus2d_csr`](crate::generators::torus2d_csr).
    pub(crate) fn from_raw_parts(n: usize, offsets: Vec<u32>, edges: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(*offsets.last().unwrap() as usize, edges.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { n, offsets, edges }
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of agent `u`.
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Sorted out-neighbors of agent `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.edges[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The row-offset array (length `population() + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat target array, grouped by initiator.
    pub fn targets(&self) -> &[u32] {
        &self.edges
    }

    /// Whether `(u, v)` is a permitted encounter.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// A uniform-random-edge sampler over this graph — the scalable
    /// counterpart of [`InteractionGraph::scheduler`].
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn scheduler(&self) -> CsrScheduler {
        CsrScheduler::from_csr(self.n, self.offsets.clone(), self.edges.clone())
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl From<&InteractionGraph> for CsrGraph {
    fn from(g: &InteractionGraph) -> Self {
        Self::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_matches_edge_list() {
        let g = InteractionGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.population(), 4);
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.neighbors(1), &[2, 3]);
        assert_eq!(c.degree(0), 1);
        assert!(c.has_edge(3, 0));
        assert!(!c.has_edge(0, 3));
    }

    #[test]
    fn from_edges_sorts_and_dedups_rows() {
        let c = CsrGraph::from_edges(3, &[(2, 0), (0, 2), (0, 1), (0, 2), (2, 1)]);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(1), &[] as &[u32]);
        assert_eq!(c.neighbors(2), &[0, 1]);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.offsets(), &[0, 2, 2, 4]);
    }

    #[test]
    fn csr_agrees_with_interaction_graph_on_random_family() {
        let g = crate::generators::undirected_cycle(9);
        let c = CsrGraph::from_graph(&g);
        for &(u, v) in g.edges() {
            assert!(c.has_edge(u, v));
        }
        assert_eq!(c.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loop() {
        CsrGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    fn scheduler_population_matches() {
        let c = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let s = c.scheduler();
        assert_eq!(pp_core::scheduler::PairSampler::population(&s), 5);
    }
}
