//! Leaderless self-stabilizing phase clock (after Kosowski–Uznański,
//! *Population Protocols Are Fast*, PAPERS.md).
//!
//! Every agent carries an *hour hand*: a counter mod `m`. When two agents
//! with equal hours meet, both tick forward one hour; when their hours
//! differ, both adopt whichever hand is *ahead* on the shorter circular
//! arc. The population behaves like a cyclic voter model with a drift:
//! hour values coalesce, and from then on the whole population ticks
//! around the dial together, its hands spanning a short arc. No leader,
//! no junta bootstrap, `O(1)` states per agent for fixed `m` — the
//! phase-structure primitive the self-stabilizing `ranking` protocol
//! family builds on.
//!
//! # Self-stabilization
//!
//! The clock has no distinguished initial state to defend: *every*
//! configuration is a multiset of hours, so the adversary of
//! [`AdversarialInit`](pp_core::faults::AdversarialInit) can at worst
//! spread the hands uniformly around the dial — and coalescence erases
//! that too. The legality predicate is
//! [`is_synchronized`](PhaseClock::is_synchronized): the occupied hours
//! fit in a circular arc *strictly shorter than half the dial*, so there
//! is an unambiguous front hand and no antipodal tie. Because the clock
//! never stops ticking it has no stable *output*, so recovery is measured
//! with the bespoke [`measure_resync`](PhaseClock::measure_resync) helper
//! rather than `run_with_faults`.
//!
//! # Choosing the period
//!
//! After coalescing, the population travels around the dial as a wave
//! whose width is `Θ(log n)` hours *independent of `m`* (empirically
//! ~5–13 hours for `n ≤ 256`): new front-runners are minted whenever two
//! front agents meet at the same hour, while the back tail is erased
//! epidemically. The dial must dwarf that width — `m = 32` is
//! comfortable up to `n = 64` and `m = 64` up to `n = 256`; `m = 16` is
//! too small at `n = 256` (the wave wraps the whole dial and the clock
//! can never look synchronized).
//!
//! # Example
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_core::faults::AdversarialInit;
//! use pp_protocols::PhaseClock;
//!
//! let clock = PhaseClock::new(32);
//! let mut sim = Simulation::from_counts(clock, [((), 64)]);
//! let mut rng = seeded_rng(9);
//! // Adversary scatters the hands uniformly around the dial...
//! sim.apply_adversarial_init(&AdversarialInit::uniform_random(clock.dial()), &mut rng);
//! // ...and the clock re-synchronizes anyway.
//! let rep = PhaseClock::measure_resync(&mut sim, 400_000, 256, &mut rng);
//! assert!(rep.recovered());
//! ```

use pp_core::consensus_reached;
use pp_core::faults::RecoveryReport;
use pp_core::observe::Probe;
use pp_core::{Protocol, Simulation};
use rand::Rng;

/// The leaderless phase clock: state is an hour `0..m`, equal hands tick,
/// unequal hands adopt the one ahead on the shorter arc. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseClock {
    period: u32,
}

impl PhaseClock {
    /// A clock with `period` hours on the dial.
    ///
    /// The synchronization arc is anything strictly shorter than half the
    /// dial, and the post-coalescence wave is `Θ(log n)` hours wide
    /// regardless of `period`, so pick `period` large relative to
    /// `log₂ n` (see the [module docs](self) for calibration).
    ///
    /// # Panics
    ///
    /// Panics if `period < 4` — smaller dials make the half-dial legality
    /// arc degenerate.
    pub fn new(period: u32) -> Self {
        assert!(period >= 4, "phase-clock period must be at least 4, got {period}");
        Self { period }
    }

    /// Hours on the dial.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// All `m` hour states — the state universe handed to
    /// [`AdversarialInit`](pp_core::faults::AdversarialInit) modes.
    pub fn dial(&self) -> Vec<u32> {
        (0..self.period).collect()
    }

    /// Occupancy per hour (length `m`) of the current configuration;
    /// out-of-dial states (possible only via adversarial injection of raw
    /// `u32`s) are folded in mod `m`, matching the transition function.
    pub fn hour_histogram<Pr: Probe>(sim: &Simulation<PhaseClock, Pr>) -> Vec<u64> {
        let m = sim.runtime().protocol().period;
        let mut hist = vec![0u64; m as usize];
        for (id, count) in sim.config().support() {
            hist[(*sim.runtime().state(id) % m) as usize] += count;
        }
        hist
    }

    /// Span of the minimal circular arc covering every occupied hour, in
    /// hour steps (`0` when at most one hour is occupied). Computed as
    /// `m −` the largest circular gap between consecutive occupied hours.
    pub fn spread(hist: &[u64]) -> u32 {
        let m = hist.len() as u32;
        let occupied: Vec<u32> = hist
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(h, _)| h as u32)
            .collect();
        if occupied.len() <= 1 {
            return 0;
        }
        let mut max_gap = occupied[0] + m - occupied[occupied.len() - 1];
        for w in occupied.windows(2) {
            max_gap = max_gap.max(w[1] - w[0]);
        }
        m - max_gap
    }

    /// The legality predicate: all occupied hours fit in an arc strictly
    /// shorter than half the dial (so the "front" hand is unambiguous and
    /// antipodal configurations are illegal).
    pub fn is_synchronized(hist: &[u64]) -> bool {
        2 * Self::spread(hist) < hist.len() as u32
    }

    /// Agents *outside* the best legal arc (the `m/2` consecutive hours
    /// covering the most agents) — the clock's residual error (0 iff
    /// [`is_synchronized`](Self::is_synchronized)).
    pub fn desynchronized_agents(hist: &[u64]) -> u64 {
        let m = hist.len();
        // Largest legal span: 2·span < m  ⇔  span ≤ (m − 1) / 2.
        let span = (m - 1) / 2;
        let total: u64 = hist.iter().sum();
        let best = (0..m)
            .map(|start| (0..=span).map(|j| hist[(start + j) % m]).sum::<u64>())
            .max()
            .unwrap_or(0);
        total - best
    }

    /// Runs up to `horizon` interactions, checking synchronization every
    /// `check_every` interactions, and reports recovery in the
    /// [`RecoveryReport`] convention (`injected_at` is 0: the damage, if
    /// any, happened before the call — typically
    /// [`apply_adversarial_init`](pp_core::Simulation::apply_adversarial_init)).
    ///
    /// Checkpointing trades resolution for speed: `recovered_at` is the
    /// first *checkpoint* after which every later checkpoint was
    /// synchronized, so it overshoots the true resync time by less than
    /// `check_every` slots. Unlike a stable-output protocol the clock can
    /// in principle desynchronize again (a burst of equal-pair ticks at
    /// the arc's front), so the whole horizon is always run.
    ///
    /// # Panics
    ///
    /// Panics if `check_every` is 0.
    pub fn measure_resync<Pr: Probe>(
        sim: &mut Simulation<PhaseClock, Pr>,
        horizon: u64,
        check_every: u64,
        rng: &mut impl Rng,
    ) -> RecoveryReport {
        assert!(check_every > 0, "check_every must be positive");
        let mut wrong = Self::desynchronized_agents(&Self::hour_histogram(sim));
        let mut last_wrong: Option<u64> = (wrong > 0).then_some(0);
        let mut slot = 0u64;
        while slot < horizon {
            let chunk = check_every.min(horizon - slot);
            sim.run(chunk, rng);
            slot += chunk;
            wrong = Self::desynchronized_agents(&Self::hour_histogram(sim));
            if wrong > 0 {
                last_wrong = Some(slot);
            }
        }
        RecoveryReport {
            injected_at: 0,
            recovered_at: consensus_reached(wrong, last_wrong, 0),
            residual_error: wrong,
        }
    }
}

impl Protocol for PhaseClock {
    type State = u32;
    type Input = ();
    type Output = u32;

    fn input(&self, _: &()) -> u32 {
        0
    }

    fn output(&self, &h: &u32) -> u32 {
        h % self.period
    }

    fn delta(&self, &p: &u32, &q: &u32) -> (u32, u32) {
        let m = self.period;
        let (p, q) = (p % m, q % m);
        if p == q {
            let h = (p + 1) % m;
            return (h, h);
        }
        // Cyclic distance from p forward to q: q is "ahead" iff it is
        // within half a dial in front of p.
        let diff = (q + m - p) % m;
        if diff <= m / 2 {
            (q, q)
        } else {
            (p, p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::faults::AdversarialInit;
    use pp_core::seeded_rng;

    #[test]
    fn delta_ticks_and_adopts_the_leading_hand() {
        let c = PhaseClock::new(8);
        assert_eq!(c.delta(&3, &3), (4, 4), "equal hands tick");
        assert_eq!(c.delta(&7, &7), (0, 0), "tick wraps the dial");
        assert_eq!(c.delta(&2, &4), (4, 4), "4 is ahead of 2");
        assert_eq!(c.delta(&4, &2), (4, 4), "role order does not matter");
        assert_eq!(c.delta(&7, &1), (1, 1), "ahead across the wrap");
        // 10 normalizes to 2, and 1 is 7 hours "ahead" of 2 — i.e. one
        // behind on the short arc — so both hands settle on 2.
        assert_eq!(c.delta(&10, &1), (2, 2), "out-of-dial states normalize mod m");
    }

    #[test]
    fn spread_measures_the_minimal_covering_arc() {
        assert_eq!(PhaseClock::spread(&[5, 0, 0, 0, 0, 0, 0, 0]), 0);
        assert_eq!(PhaseClock::spread(&[3, 2, 0, 0, 0, 0, 0, 0]), 1);
        assert_eq!(PhaseClock::spread(&[1, 0, 0, 0, 0, 0, 0, 1]), 1, "adjacent across wrap");
        assert_eq!(PhaseClock::spread(&[1, 0, 0, 0, 1, 0, 0, 0]), 4, "antipodal");
        assert!(PhaseClock::is_synchronized(&[3, 2, 1, 0, 0, 0, 0, 0]));
        assert!(!PhaseClock::is_synchronized(&[1, 0, 0, 1, 0, 0, 1, 0]));
        assert!(
            !PhaseClock::is_synchronized(&[1, 0, 0, 0, 1, 0, 0, 0]),
            "an exactly antipodal pair has no unambiguous front and is illegal"
        );
    }

    #[test]
    fn desynchronized_agents_counts_the_tail_outside_the_best_arc() {
        // m = 8 ⇒ best window of m/2 = 4 consecutive hours. Hours 0..=3
        // cover 3+2+1+0 = 6 of 7 agents; the straggler at hour 4 is out.
        assert_eq!(PhaseClock::desynchronized_agents(&[3, 2, 1, 0, 1, 0, 0, 0]), 1);
        assert_eq!(PhaseClock::desynchronized_agents(&[5, 0, 0, 0, 0, 0, 0, 0]), 0);
    }

    #[test]
    fn fresh_start_is_already_synchronized_and_stays_so() {
        let clock = PhaseClock::new(32);
        let mut sim = Simulation::from_counts(clock, [((), 32)]);
        let mut rng = seeded_rng(4);
        let rep = PhaseClock::measure_resync(&mut sim, 50_000, 100, &mut rng);
        assert!(rep.recovered());
        assert_eq!(rep.recovered_at, Some(0), "never desynchronized");
    }

    #[test]
    fn resynchronizes_from_uniform_random_init() {
        let clock = PhaseClock::new(32);
        let mut sim = Simulation::from_counts(clock, [((), 64)]);
        let mut rng = seeded_rng(21);
        sim.apply_adversarial_init(&AdversarialInit::uniform_random(clock.dial()), &mut rng);
        assert!(
            !PhaseClock::is_synchronized(&PhaseClock::hour_histogram(&sim)),
            "64 uniform hands over 32 hours should start desynchronized"
        );
        let rep = PhaseClock::measure_resync(&mut sim, 400_000, 256, &mut rng);
        assert!(rep.recovered(), "clock must coalesce");
        assert!(rep.recovery_time().unwrap() > 0);
    }

    #[test]
    fn resynchronizes_from_antipodal_flood_pair() {
        // Worst two-value split: half the dial apart, so each cluster sees
        // the other at exactly m/2 distance and adopts it — a fair voter
        // race that must nevertheless break symmetry and coalesce.
        let clock = PhaseClock::new(32);
        let mut sim = Simulation::from_states(clock, [(0u32, 32), (16u32, 32)]);
        let mut rng = seeded_rng(33);
        let rep = PhaseClock::measure_resync(&mut sim, 400_000, 256, &mut rng);
        assert!(rep.recovered(), "antipodal halves must coalesce");
    }
}
