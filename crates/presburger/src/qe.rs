//! Cooper's quantifier elimination.
//!
//! Theorem 4 of the paper (after Presburger 1929) states that every
//! Presburger-definable predicate is definable by a *quantifier-free*
//! formula of the extended language with `≡ₘ` atoms. The paper cites the
//! result as folklore; this module realizes it constructively with
//! Cooper's algorithm (D.C. Cooper, "Theorem proving in arithmetic without
//! multiplication", 1972), the standard effective procedure:
//!
//! to eliminate `∃x` from a quantifier-free `F(x)`:
//!
//! 1. put `F` in negation normal form with atoms `t < 0`, `m | t`, `¬(m | t)`
//!    (`¬(t < 0)` becomes `−t − 1 < 0`);
//! 2. let `δ` be the lcm of the `x`-coefficients; homogenize every atom so
//!    the `x`-coefficient is `±1` (replacing `δx` by a fresh `x` constrained
//!    by `δ | x`);
//! 3. let `D` be the lcm of all moduli of divisibility atoms mentioning `x`;
//!    then
//!    `∃x F  ⇔  ⋁_{j=1}^{D} F_{−∞}[x≔j]  ∨  ⋁_{b ∈ B} ⋁_{j=1}^{D} F[x≔b+j]`,
//!    where `F_{−∞}` replaces upper-bound atoms by *true* and lower-bound
//!    atoms by *false*, and `B` collects the lower-bound terms.
//!
//! Universal quantifiers are handled by `∀x F ⇔ ¬∃x ¬F`. The output of
//! [`eliminate_quantifiers`] is quantifier-free and equivalent over ℤ, and
//! feeds directly into the Theorem 5 compiler
//! ([`crate::compile::compile`]).
//!
//! Formula size can grow exponentially in the number of quantifier
//! alternations — inherent to Presburger arithmetic (the theory has
//! super-exponential worst-case complexity, Fischer–Rabin 1974, cited as
//! \[9\] in the paper).

use crate::formula::{Atom, Formula, LinExpr};

/// Eliminates every quantifier, returning an equivalent quantifier-free
/// formula over `t < 0` and `m | t` atoms.
///
/// # Example
///
/// ```
/// use pp_presburger::{eliminate_quantifiers, parse};
///
/// // Evenness: exists q. x = 2q.
/// let even = parse("exists q. x = 2 * q").unwrap().formula;
/// let qf = eliminate_quantifiers(&even);
/// assert!(qf.is_quantifier_free());
/// for x in -6i64..=6 {
///     assert_eq!(qf.eval_qf(&[x]), x % 2 == 0, "x = {x}");
/// }
/// ```
pub fn eliminate_quantifiers(f: &Formula) -> Formula {
    let out = match f {
        Formula::Const(_) | Formula::Atom(_) => f.clone(),
        Formula::Not(g) => eliminate_quantifiers(g).not(),
        Formula::And(a, b) => eliminate_quantifiers(a).and(eliminate_quantifiers(b)),
        Formula::Or(a, b) => eliminate_quantifiers(a).or(eliminate_quantifiers(b)),
        Formula::Exists(v, g) => cooper_exists(*v, &eliminate_quantifiers(g)),
        Formula::ForAll(v, g) => cooper_exists(*v, &eliminate_quantifiers(g).not()).not(),
    };
    simplify(&out)
}

/// Simplifies a quantifier-free formula: evaluates ground atoms and folds
/// Boolean constants. (Best-effort; not a canonical form.)
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::Const(_) => f.clone(),
        Formula::Atom(a) => match a {
            Atom::Lt(t) if t.is_constant() => Formula::Const(t.constant_term() < 0),
            Atom::Dvd(m, t) if t.is_constant() => {
                Formula::Const(t.constant_term().rem_euclid(*m) == 0)
            }
            Atom::Dvd(1, _) => Formula::Const(true),
            _ => f.clone(),
        },
        Formula::Not(g) => simplify(g).not(),
        Formula::And(a, b) => simplify(a).and(simplify(b)),
        Formula::Or(a, b) => simplify(a).or(simplify(b)),
        Formula::Exists(v, g) => Formula::Exists(*v, Box::new(simplify(g))),
        Formula::ForAll(v, g) => Formula::ForAll(*v, Box::new(simplify(g))),
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        a.abs().max(b.abs()).max(1)
    } else {
        (a / gcd(a, b)).abs() * b.abs()
    }
}

/// Negation normal form with atoms `t < 0`, `m | t`, `¬(m | t)`.
///
/// # Panics
///
/// Panics on quantifiers (callers eliminate innermost-first).
fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(*b != neg),
        Formula::Atom(Atom::Lt(t)) => {
            if neg {
                // ¬(t < 0) ⇔ t ≥ 0 ⇔ −t − 1 < 0.
                Formula::Atom(Atom::Lt(t.scale(-1).offset(-1)))
            } else {
                f.clone()
            }
        }
        Formula::Atom(Atom::Dvd(..)) => {
            if neg {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf(g, !neg),
        Formula::And(a, b) => {
            if neg {
                Formula::Or(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Formula::And(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
        Formula::Or(a, b) => {
            if neg {
                Formula::And(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Formula::Or(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
        Formula::Exists(..) | Formula::ForAll(..) => {
            panic!("nnf applied to a quantified formula")
        }
    }
}

/// Visits every atom, reporting the coefficient of `v`.
fn for_each_atom(f: &Formula, visit: &mut impl FnMut(&Atom)) {
    match f {
        Formula::Const(_) => {}
        Formula::Atom(a) => visit(a),
        Formula::Not(g) => for_each_atom(g, visit),
        Formula::And(a, b) | Formula::Or(a, b) => {
            for_each_atom(a, visit);
            for_each_atom(b, visit);
        }
        Formula::Exists(_, g) | Formula::ForAll(_, g) => for_each_atom(g, visit),
    }
}

/// Rewrites every atom through `map`.
fn map_atoms(f: &Formula, map: &impl Fn(&Atom) -> Formula) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(*b),
        Formula::Atom(a) => map(a),
        Formula::Not(g) => map_atoms(g, map).not(),
        Formula::And(a, b) => map_atoms(a, map).and(map_atoms(b, map)),
        Formula::Or(a, b) => map_atoms(a, map).or(map_atoms(b, map)),
        Formula::Exists(..) | Formula::ForAll(..) => {
            panic!("map_atoms applied to a quantified formula")
        }
    }
}

/// Eliminates `∃x_v` from the quantifier-free formula `f`.
fn cooper_exists(v: u32, f: &Formula) -> Formula {
    debug_assert!(f.is_quantifier_free());
    let f = nnf(f, false);
    if !f.free_vars().contains(&v) {
        return f;
    }

    // δ = lcm of |coefficients of v|.
    let mut delta = 1i64;
    for_each_atom(&f, &mut |a| {
        let t = match a {
            Atom::Lt(t) | Atom::Dvd(_, t) => t,
        };
        let c = t.coefficient(v);
        if c != 0 {
            delta = lcm(delta, c);
        }
    });

    // Homogenize: make every v-coefficient ±1 (replacing δ·v by v) and
    // conjoin δ | v.
    let homog = map_atoms(&f, &|a| {
        let (t, mk): (&LinExpr, Box<dyn Fn(LinExpr) -> Formula>) = match a {
            Atom::Lt(t) => (t, Box::new(|e| Formula::Atom(Atom::Lt(e)))),
            Atom::Dvd(m, t) => {
                let m = *m;
                let c = t.coefficient(v);
                let lambda = if c == 0 { 1 } else { delta / c.abs() };
                (t, Box::new(move |e| Formula::Atom(Atom::Dvd(m * lambda, e))))
            }
        };
        let c = t.coefficient(v);
        if c == 0 {
            return Formula::Atom(a.clone());
        }
        let lambda = delta / c.abs();
        let scaled = t.scale(lambda); // v-coefficient now ±δ
        let sign = if c > 0 { 1 } else { -1 };
        let replaced = scaled
            .sub(&LinExpr::var_scaled(v, sign * delta))
            .add(&LinExpr::var_scaled(v, sign));
        mk(replaced)
    });
    let homog = homog.and(Formula::Atom(Atom::Dvd(delta, LinExpr::var(v))));

    // D = lcm of moduli of divisibility atoms mentioning v.
    let mut d = 1i64;
    for_each_atom(&homog, &mut |a| {
        if let Atom::Dvd(m, t) = a {
            if t.coefficient(v) != 0 {
                d = lcm(d, *m);
            }
        }
    });

    // Lower-bound terms B: atoms −v + e' < 0 contribute b = t + v.
    let mut b_terms: Vec<LinExpr> = Vec::new();
    for_each_atom(&homog, &mut |a| {
        if let Atom::Lt(t) = a {
            if t.coefficient(v) == -1 {
                let b = t.add(&LinExpr::var(v)); // cancels v
                if !b_terms.contains(&b) {
                    b_terms.push(b);
                }
            }
        }
    });

    // F_{−∞}: upper-bound atoms → true, lower-bound atoms → false.
    let f_minus_inf = map_atoms(&homog, &|a| match a {
        Atom::Lt(t) if t.coefficient(v) == 1 => Formula::Const(true),
        Atom::Lt(t) if t.coefficient(v) == -1 => Formula::Const(false),
        other => Formula::Atom(other.clone()),
    });

    let mut result = Formula::Const(false);
    for j in 1..=d {
        let inst = f_minus_inf.substitute(v, &LinExpr::constant(j));
        result = result.or(simplify(&inst));
    }
    for b in &b_terms {
        for j in 1..=d {
            let inst = homog.substitute(v, &b.offset(j));
            result = result.or(simplify(&inst));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Checks that QE output agrees with bounded evaluation of the original
    /// on a grid of assignments. `bound` must dominate witness sizes for
    /// the formula at the tested assignments.
    fn check_qe(src: &str, lo: i64, hi: i64, bound: i64) {
        let parsed = parse(src).unwrap();
        let qf = eliminate_quantifiers(&parsed.formula);
        assert!(qf.is_quantifier_free(), "{src} -> {qf}");
        let k = parsed.vars.len();
        let mut asg = vec![lo; k];
        loop {
            let want = parsed.formula.eval_bounded(&asg, bound);
            let got = qf.eval_qf(&asg);
            assert_eq!(got, want, "{src} at {asg:?}\nQF: {qf}");
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == k {
                    return;
                }
                asg[i] += 1;
                if asg[i] <= hi {
                    break;
                }
                asg[i] = lo;
                i += 1;
            }
        }
    }

    #[test]
    fn evenness() {
        check_qe("exists q. x = 2 * q", -8, 8, 20);
    }

    #[test]
    fn divisibility_by_three_via_quantifier() {
        // The paper's ξ_m trick (§4.2): x ≡ y (mod 3) defined with ∃.
        check_qe("exists z q. x + z = y /\\ q + q + q = z", -5, 5, 40);
    }

    #[test]
    fn strict_bound_with_coefficient() {
        check_qe("exists y. 2 * y < x /\\ x < 2 * y + 4", -6, 6, 20);
    }

    #[test]
    fn forall_translates_via_negation() {
        // ∀y. y ≥ x → y ≥ 3   ⇔   x ≥ 3.
        check_qe("forall y. y >= x -> y >= 3", -3, 8, 30);
    }

    #[test]
    fn alternating_quantifiers() {
        // ∃a ∀b. b > a → b ≥ x  ⇔ true for any x (pick a = x−1… over ℤ).
        let parsed = parse("exists a. forall b. b > a -> b >= x").unwrap();
        let qf = eliminate_quantifiers(&parsed.formula);
        assert!(qf.is_quantifier_free());
        for x in -4i64..=4 {
            assert!(qf.eval_qf(&[x]), "x = {x}");
        }
    }

    #[test]
    fn unsatisfiable_and_valid_sentences() {
        // ∃x. x < 0 ∧ x > 0 — unsatisfiable sentence.
        let f = parse("exists x. x < 0 /\\ x > 0").unwrap().formula;
        assert_eq!(eliminate_quantifiers(&f), Formula::Const(false));
        // ∃x. x = 5 — valid.
        let g = parse("exists x. x = 5").unwrap().formula;
        assert_eq!(eliminate_quantifiers(&g), Formula::Const(true));
        // ∀x. 2 | x — false.
        let h = parse("forall x. 2 | x").unwrap().formula;
        assert_eq!(eliminate_quantifiers(&h), Formula::Const(false));
        // ∀x. 2 | x \/ 2 | x + 1 — true.
        let i = parse("forall x. 2 | x \\/ 2 | x + 1").unwrap().formula;
        assert_eq!(eliminate_quantifiers(&i), Formula::Const(true));
    }

    #[test]
    fn interval_projection() {
        // ∃y. x ≤ y ∧ y ≤ x + 1 ∧ 3 | y  —  "some multiple of 3 in [x, x+1]".
        check_qe("exists y. x <= y /\\ y <= x + 1 /\\ 3 | y", -7, 7, 30);
    }

    #[test]
    fn semilinear_style_membership() {
        // x ∈ {2 + 3k + 5l : k,l ≥ 0}.
        check_qe(
            "exists k l. k >= 0 /\\ l >= 0 /\\ x = 2 + 3 * k + 5 * l",
            0,
            20,
            40,
        );
    }

    #[test]
    fn no_occurrence_quantifier_dropped() {
        let f = parse("exists y. x < 3").unwrap().formula;
        let qf = eliminate_quantifiers(&f);
        assert!(qf.is_quantifier_free());
        assert!(qf.eval_qf(&[2]));
        assert!(!qf.eval_qf(&[3]));
    }

    #[test]
    fn simplify_folds_ground_atoms() {
        let f = parse("1 < 2 /\\ 3 | 6").unwrap().formula;
        assert_eq!(simplify(&f), Formula::Const(true));
        let g = parse("2 < 1 \\/ 3 | 7").unwrap().formula;
        assert_eq!(simplify(&g), Formula::Const(false));
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 0), 1);
        assert_eq!(lcm(-4, 6), 12);
    }

    /// A strategy producing random quantifier-free formulas over variables
    /// `x0, x1` with small coefficients.
    fn qf_formula_strategy() -> impl proptest::strategy::Strategy<Value = Formula> {
        use proptest::prelude::*;
        let linexpr = (-3i64..=3, -3i64..=3, -4i64..=4).prop_map(|(a, b, c)| {
            LinExpr::var_scaled(0, a)
                .add(&LinExpr::var_scaled(1, b))
                .offset(c)
        });
        let atom = prop_oneof![
            linexpr.clone().prop_map(|e| Formula::Atom(Atom::Lt(e))),
            (2i64..=4, linexpr).prop_map(|(m, e)| Formula::Atom(Atom::Dvd(m, e))),
        ];
        atom.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Formula::not),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
            ]
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        #[test]
        fn prop_qe_of_exists_over_random_qf_bodies(f in qf_formula_strategy()) {
            // ∃x1. f(x0, x1): eliminate and compare against bounded search.
            // Coefficients ≤ 3, constants ≤ 4, moduli ≤ 4 over x0 ∈ [-4, 4]
            // keep witnesses small; ±400 dominates δ·D and every shifted bound.
            let q = f.clone().exists(1);
            let qf = eliminate_quantifiers(&q);
            proptest::prop_assert!(qf.is_quantifier_free());
            for x0 in -4i64..=4 {
                let want = q.eval_bounded(&[x0], 400);
                proptest::prop_assert_eq!(
                    qf.eval_qf(&[x0]), want, "x0={} f={}", x0, f
                );
            }
        }

        #[test]
        fn prop_simplify_preserves_semantics(f in qf_formula_strategy()) {
            let s = simplify(&f);
            for x0 in -3i64..=3 {
                for x1 in -3i64..=3 {
                    proptest::prop_assert_eq!(
                        s.eval_qf(&[x0, x1]),
                        f.eval_qf(&[x0, x1]),
                        "at ({}, {}) f={}", x0, x1, f
                    );
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_qe_agrees_on_random_linear_projections(
            a in 1i64..4, b in 1i64..4, c in -5i64..5, m in 2i64..5,
        ) {
            // ∃y. a·y ≤ x ∧ x < a·y + b ∧ m | x + c  over x ∈ [-10, 10].
            let src = format!(
                "exists y. {a} * y <= x /\\ x < {a} * y + {b} /\\ {m} | x + {c}"
            );
            let parsed = parse(&src).unwrap();
            let qf = eliminate_quantifiers(&parsed.formula);
            proptest::prop_assert!(qf.is_quantifier_free());
            for x in -10i64..=10 {
                let want = parsed.formula.eval_bounded(&[x], 30);
                proptest::prop_assert_eq!(qf.eval_qf(&[x]), want, "x={} src={}", x, src);
            }
        }
    }
}
