//! Theorem 10: simulating a Turing machine on a population, with high
//! probability.
//!
//! The pipeline is exactly the paper's: the TM tape becomes two
//! Gödel-numbered stacks (Minsky, `pp-machines`), giving a 3-counter
//! machine; the counters live as distributed shares across the population
//! and the leader runs the control, using the randomized zero test for
//! every `DecJz`. Theorem 10 bounds the end-to-end error by
//! `O(n^{−c} log n)` and the expected interactions by
//! `O(n^{d+2} log n + n^{2d+c+1})` for a `T(n) = O(n^d)` machine.
//!
//! Capacity note: a tape of `t` cells over alphabet size `b` Gödel-encodes
//! to counters up to `bᵗ`, and the population provides capacity
//! `(n−2)·M`. [`PopulationTm::max_tape_cells`] exposes the resulting tape
//! budget; inputs must respect it (the paper's machines are logspace, so
//! their tapes are short by construction).

use rand::Rng;

use pp_machines::minsky::{compile_tm, CompiledTm};
use pp_machines::tm::TuringMachine;

use crate::counter_sim::{PopulationCounterMachine, PopulationRunOutcome};

/// Outcome of one population TM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmSimOutcome {
    /// The simulation halted with this tape (possibly wrong if
    /// `silent_errors > 0`).
    Halted {
        /// Final tape, trimmed.
        tape: Vec<u8>,
        /// Total population interactions.
        interactions: u64,
        /// Erroneous zero-test decisions along the way.
        silent_errors: u64,
    },
    /// A counter overflowed the population capacity (tape too long for
    /// this population).
    CapacityExceeded,
    /// The interaction budget ran out.
    OutOfInteractions,
}

/// A Turing machine executed by a population of `n` agents (Theorem 10).
#[derive(Debug, Clone)]
pub struct PopulationTm {
    compiled: CompiledTm,
    population: PopulationCounterMachine,
    n: usize,
    max_share: u8,
}

impl PopulationTm {
    /// Compiles `tm` and prepares a population of `n` agents with waiting
    /// parameter `k` and per-agent share cap `max_share`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `k < 1`, or `max_share < 1`.
    pub fn new(tm: &TuringMachine, n: usize, k: u32, max_share: u8) -> Self {
        let compiled = compile_tm(tm);
        let population =
            PopulationCounterMachine::new(compiled.machine().clone(), n, k, max_share);
        Self { compiled, population, n, max_share }
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// The largest number of tape cells whose Gödel number fits the
    /// population's counter capacity.
    pub fn max_tape_cells(&self) -> u32 {
        let capacity = ((self.n - 2) as u128) * u128::from(self.max_share);
        let b = self.compiled.base();
        let mut cells = 0u32;
        let mut v = 1u128;
        while let Some(next) = v.checked_mul(b) {
            if next - 1 > capacity {
                break;
            }
            v = next;
            cells += 1;
        }
        cells
    }

    /// Runs the TM on `input` (unary-ish symbol string) for at most
    /// `max_interactions` population interactions.
    ///
    /// # Panics
    ///
    /// Panics if the encoded input exceeds the population capacity — check
    /// [`max_tape_cells`](Self::max_tape_cells) first.
    pub fn run(
        &self,
        input: &[u8],
        max_interactions: u64,
        rng: &mut impl Rng,
    ) -> TmSimOutcome {
        let init = self.compiled.encode_input(input);
        match self.population.run(init.as_ref(), max_interactions, rng) {
            PopulationRunOutcome::Halted { counters, interactions, silent_errors } => {
                TmSimOutcome::Halted {
                    tape: self.compiled.decode_tape(&counters),
                    interactions,
                    silent_errors,
                }
            }
            PopulationRunOutcome::CapacityExceeded { .. } => TmSimOutcome::CapacityExceeded,
            PopulationRunOutcome::OutOfInteractions => TmSimOutcome::OutOfInteractions,
        }
    }

    /// Reference run: the same compiled machine executed exactly (no
    /// randomness), for error-rate measurements.
    ///
    /// # Panics
    ///
    /// Panics if the exact machine does not halt within `fuel` steps.
    pub fn reference_tape(&self, input: &[u8], fuel: u64) -> Vec<u8> {
        self.compiled.run(input, fuel).expect("reference run halts").tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_machines::programs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parity_tm_on_population_clean_runs_are_correct() {
        // Every zero test errs with probability Θ(n^{−k}/m), and a TM run
        // performs many, so individual runs may err; clean runs (no silent
        // zero-test errors) must reproduce the reference tape exactly, and
        // with k = 3 a decent fraction of runs is clean.
        let tm = programs::tm_unary_parity();
        let sim = PopulationTm::new(&tm, 16, 3, 2);
        assert!(sim.max_tape_cells() >= 4, "capacity too small for the test");
        let mut rng = StdRng::seed_from_u64(8);
        let mut clean = 0u32;
        let trials = 10;
        for t in 0..trials {
            let n_ones = (t % 4) as usize;
            let input = vec![1u8; n_ones];
            let want = sim.reference_tape(&input, 1_000_000);
            match sim.run(&input, 4_000_000_000, &mut rng) {
                TmSimOutcome::Halted { tape, silent_errors, .. } => {
                    if silent_errors == 0 {
                        assert_eq!(tape, want, "n_ones={n_ones}");
                        clean += 1;
                    }
                }
                other => panic!("did not halt: {other:?}"),
            }
        }
        assert!(clean >= 2, "expected some clean runs, got {clean}/{trials}");
    }

    #[test]
    fn increment_tm_on_population() {
        let tm = programs::tm_unary_increment();
        let sim = PopulationTm::new(&tm, 24, 2, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let input = vec![1u8; 3];
        match sim.run(&input, 2_000_000_000, &mut rng) {
            TmSimOutcome::Halted { tape, silent_errors, .. } => {
                if silent_errors == 0 {
                    assert_eq!(tape, vec![1u8; 4]);
                }
            }
            other => panic!("did not halt: {other:?}"),
        }
    }

    #[test]
    fn max_tape_cells_respects_capacity() {
        let tm = programs::tm_unary_parity(); // base 2
        let sim = PopulationTm::new(&tm, 10, 1, 1);
        // capacity = 8 → 2^t − 1 ≤ 8 → t = 3.
        assert_eq!(sim.max_tape_cells(), 3);
    }

    #[test]
    fn capacity_exceeded_detected() {
        // A TM that walks left forever writing 1s: its right stack's Gödel
        // number doubles every step and must overflow the population.
        let tm = pp_machines::tm::TuringMachine::new(
            2,
            2,
            0,
            1,
            [((0, 0), pp_machines::tm::Action {
                write: 1,
                mv: pp_machines::tm::Move::Left,
                next: 0,
            })],
        )
        .unwrap();
        // k = 4 keeps the zero tests reliable enough that the simulation
        // follows the real (overflowing) execution path.
        let sim = PopulationTm::new(&tm, 6, 4, 1); // capacity 4 → 2 cells
        let mut rng = StdRng::seed_from_u64(1);
        let out = sim.run(&[], 1_000_000_000, &mut rng);
        assert!(
            matches!(out, TmSimOutcome::CapacityExceeded),
            "expected capacity error, got {out:?}"
        );
    }
}
