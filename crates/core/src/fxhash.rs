//! A small, fast, non-cryptographic hasher for interning hot paths.
//!
//! The simulation inner loop interns protocol states and looks up memoized
//! transitions millions of times per second; the standard library's SipHash
//! is needlessly defensive for that use (keys are trusted, in-process
//! values). This is the well-known Fx multiply-rotate hash used by rustc,
//! reimplemented here to stay within the approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx multiply-rotate hasher (as used by the Rust compiler).
///
/// Not cryptographically secure and not DoS-resistant; use only for
/// in-process interning of trusted values.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"population"), hash_of(&"population"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn distinguishes_length_extensions() {
        // The remainder path mixes in the length, so a short key is not a
        // prefix-collision of a padded longer key.
        assert_ne!(hash_of(&[1u8, 0, 0][..]), hash_of(&[1u8, 0, 0, 0][..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 2)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn reasonable_spread() {
        // Hashes of consecutive integers should land in many distinct
        // buckets of a 256-bucket table.
        let mut buckets = FxHashSet::default();
        for i in 0..256u64 {
            buckets.insert(hash_of(&i) % 256);
        }
        assert!(buckets.len() > 128, "only {} distinct buckets", buckets.len());
    }
}
