//! `pp` — command-line front end to the population-protocols workspace.
//!
//! ```text
//! pp qe       "<formula>"                         print the quantifier-free form (Cooper)
//! pp simulate "<formula>" name=count... [opts]    compile & run under random pairing
//! pp verify   "<formula>" [--max-n N]             exhaustive stable-computation check
//! pp analyze  "<formula>" name=count...           exact Markov-chain expected commit time
//! pp graph    --kind K --n N "<formula>" name=count...
//!                                                 run on a restricted graph via Theorem 7
//! ```
//!
//! Options: `--seed S` (default 0), `--horizon H` (default 200·n²·ln n).
//! Formulas use the `pp-presburger` syntax, e.g. `"20 * hot >= hot + normal"`.

use std::process::ExitCode;

use population_protocols::analysis::verify::verify_predicate;
use population_protocols::analysis::MarkovAnalysis;
use population_protocols::core::prelude::*;
use population_protocols::core::ProtocolRef;
use population_protocols::presburger::compile::compile_parsed;
use population_protocols::presburger::{eliminate_quantifiers, parse, ParsedFormula};
use population_protocols::server::{execute, CompiledCache, ExecOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pp qe       \"<formula>\"
  pp simulate \"<formula>\" name=count... [--seed S] [--horizon H]
  pp verify   \"<formula>\" [--max-n N]
  pp analyze  \"<formula>\" name=count...
  pp graph    --kind {line|cycle|star|complete} --n N \"<formula>\" name=count... [--seed S]";

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "qe" => cmd_qe(rest),
        "simulate" => cmd_simulate(rest),
        "verify" => cmd_verify(rest),
        "analyze" => cmd_analyze(rest),
        "graph" => cmd_graph(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Parsed command-line tail: positional args and `--flag value` options.
#[derive(Debug, Default, PartialEq, Eq)]
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            out.flags.push((name.to_string(), v.clone()));
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Opts {
    fn flag_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, v)) => v.parse().map_err(|_| format!("--{name} must be an integer")),
        }
    }

    fn flag_str(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Parses `name=count` assignments into a count vector aligned with the
/// formula's variables.
fn parse_counts(parsed: &ParsedFormula, assignments: &[String]) -> Result<Vec<u64>, String> {
    let mut counts = vec![0u64; parsed.vars.len().max(1)];
    for a in assignments {
        let (name, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected name=count, got {a:?}"))?;
        let v: u64 = v.parse().map_err(|_| format!("count in {a:?} must be a non-negative integer"))?;
        match parsed.index_of(name) {
            Some(i) => counts[i] = v,
            None => return Err(format!("variable {name:?} does not occur in the formula")),
        }
    }
    Ok(counts)
}

fn default_horizon(n: u64) -> u64 {
    RunSpec::default_horizon(n)
}

/// The spec-order population for a parsed formula: every variable, in
/// variable-index order, **including zero counts** — the interning order
/// is semantic (it fixes the RNG stream), and the historical CLI interned
/// all variables.
fn population_of(parsed: &ParsedFormula, counts: &[u64]) -> Vec<(String, u64)> {
    let symbols: Vec<String> = if parsed.vars.is_empty() {
        vec!["x0".to_string()]
    } else {
        parsed.vars.clone()
    };
    symbols.into_iter().zip(counts.iter().copied()).collect()
}

/// Runs a spec through the shared dispatcher (the same entry point
/// `pp-server` serves), with a one-shot artifact cache.
fn execute_spec(spec: &RunSpec) -> Result<RunReport, String> {
    let cache = CompiledCache::new();
    execute(spec, &cache, &ExecOptions::default())
        .map(|(report, _)| report)
        .map_err(|e| e.to_string())
}

fn cmd_qe(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let [src] = opts.positional.as_slice() else {
        return Err("qe takes exactly one formula".into());
    };
    let parsed = parse(src).map_err(|e| e.to_string())?;
    println!("variables (input symbols): {:?}", parsed.vars);
    println!("quantifier-free form:      {}", eliminate_quantifiers(&parsed.formula));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (src, assignments) = opts
        .positional
        .split_first()
        .ok_or("simulate needs a formula and name=count assignments")?;
    let parsed = parse(src).map_err(|e| e.to_string())?;
    let counts = parse_counts(&parsed, assignments)?;
    let n: u64 = counts.iter().sum();
    if n < 2 {
        return Err("population must have at least 2 agents".into());
    }
    let mut spec = RunSpec::new(
        ProtocolRef::Formula(src.clone()),
        population_of(&parsed, &counts),
        opts.flag_u64("seed", 0)?,
    );
    spec.horizon = Some(opts.flag_u64("horizon", default_horizon(n))?);
    let report = execute_spec(&spec)?;
    let expected = report.ground_truth.unwrap_or(false);
    println!("population n = {n}, counts {counts:?}, ground truth = {expected}");
    let run = report.single().ok_or("dispatcher returned a non-single outcome")?;
    match run.stabilized_at {
        Some(t) => println!(
            "stabilized to {expected} after {t} interactions \
             ({} effective) with a {}-interaction confirmed tail",
            run.effective_steps.unwrap_or(0),
            run.silent_tail
        ),
        None => println!(
            "NOT stabilized within {} interactions (raise --horizon)",
            run.horizon
        ),
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let [src] = opts.positional.as_slice() else {
        return Err("verify takes exactly one formula".into());
    };
    let max_n = opts.flag_u64("max-n", 5)?;
    let parsed = parse(src).map_err(|e| e.to_string())?;
    let protocol = compile_parsed(&parsed).map_err(|e| e.to_string())?;
    let k = parsed.vars.len().max(1);
    let mut verified = 0u64;
    let mut counts = vec![0u64; k];
    loop {
        let n: u64 = counts.iter().sum();
        if (2..=max_n).contains(&n) {
            let expected = protocol.eval(&counts);
            let report = verify_predicate(
                protocol.clone(),
                counts.iter().enumerate().map(|(i, &c)| (i, c)),
                expected,
            );
            if !report.holds() {
                return Err(format!(
                    "FAILED at {counts:?}: expected {expected}, verdict {:?}",
                    report.verdict
                ));
            }
            verified += 1;
        }
        let mut i = 0;
        while i < k {
            counts[i] += 1;
            if counts[i] <= max_n {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
        if i == k {
            break;
        }
    }
    println!(
        "verified exhaustively: {verified} input(s) with 2 ≤ n ≤ {max_n}, all stably correct"
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (src, assignments) = opts
        .positional
        .split_first()
        .ok_or("analyze needs a formula and name=count assignments")?;
    let parsed = parse(src).map_err(|e| e.to_string())?;
    let protocol = compile_parsed(&parsed).map_err(|e| e.to_string())?;
    let counts = parse_counts(&parsed, assignments)?;
    let n: u64 = counts.iter().sum();
    if n < 2 {
        return Err("population must have at least 2 agents".into());
    }
    let m = MarkovAnalysis::analyze(
        protocol,
        counts.iter().enumerate().map(|(i, &c)| (i, c)),
    );
    println!("reachable configurations: {}", m.graph().len());
    match m.expected_steps_to_commit() {
        Some(t) => println!("exact E[interactions to output commitment] = {t:.3}"),
        None => println!("the population does not almost-surely commit from this input"),
    }
    for (cls, p) in m.classes().iter().zip(m.commit_probabilities()) {
        println!("  commits to {cls:?} with probability {p:.6}");
    }
    Ok(())
}

fn cmd_graph(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (src, assignments) = opts
        .positional
        .split_first()
        .ok_or("graph needs a formula and name=count assignments")?;
    let n = opts.flag_u64("n", 0)?;
    let kind = opts.flag_str("kind").ok_or("--kind is required")?;
    let parsed = parse(src).map_err(|e| e.to_string())?;
    let counts = parse_counts(&parsed, assignments)?;
    let total: u64 = counts.iter().sum();
    let n = if n == 0 { total } else { n };
    if n != total {
        return Err(format!("counts sum to {total} but --n is {n}"));
    }
    if n < 4 {
        return Err("the Theorem 7 construction assumes n ≥ 4".into());
    }
    let topology = match kind {
        "line" => TopologySpec::Line,
        "cycle" => TopologySpec::Cycle,
        "star" => TopologySpec::Star,
        "complete" => TopologySpec::Complete,
        other => return Err(format!("unknown graph kind {other:?}")),
    };
    let mut spec = RunSpec::new(
        ProtocolRef::Formula(src.clone()),
        population_of(&parsed, &counts),
        opts.flag_u64("seed", 0)?,
    );
    spec.engine = EngineSel::Agents;
    spec.topology = Some(topology);
    spec.horizon =
        Some(opts.flag_u64("horizon", default_horizon(n).saturating_mul(20))?);
    let report = execute_spec(&spec)?;
    let expected = report.ground_truth.unwrap_or(false);
    println!(
        "running A' (Theorem 7) on {kind} graph, n = {n}, {} edges, ground truth = {expected}",
        report.edges.unwrap_or(0)
    );
    let run = report.single().ok_or("dispatcher returned a non-single outcome")?;
    match run.stabilized_at {
        Some(t) => println!("stabilized to {expected} after {t} interactions"),
        None => println!(
            "NOT stabilized within {} interactions (raise --horizon)",
            run.horizon
        ),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opts_parser_splits_flags_and_positionals() {
        let o = parse_opts(&s(&["a=1", "--seed", "7", "b", "--max-n", "4"])).unwrap();
        assert_eq!(o.positional, vec!["a=1", "b"]);
        assert_eq!(o.flag_u64("seed", 0).unwrap(), 7);
        assert_eq!(o.flag_u64("max-n", 5).unwrap(), 4);
        assert_eq!(o.flag_u64("horizon", 99).unwrap(), 99);
        assert!(parse_opts(&s(&["--seed"])).is_err());
    }

    #[test]
    fn counts_align_with_variables() {
        let parsed = parse("a + b < 3").unwrap();
        let counts = parse_counts(&parsed, &s(&["b=4", "a=1"])).unwrap();
        assert_eq!(counts, vec![1, 4]);
        assert!(parse_counts(&parsed, &s(&["zz=1"])).is_err());
        assert!(parse_counts(&parsed, &s(&["a"])).is_err());
        assert!(parse_counts(&parsed, &s(&["a=-3"])).is_err());
    }

    #[test]
    fn subcommands_run_end_to_end() {
        run(&s(&["qe", "exists q. x = 2 * q"])).unwrap();
        run(&s(&["verify", "a = b", "--max-n", "4"])).unwrap();
        run(&s(&["simulate", "a > b", "a=4", "b=2", "--seed", "1"])).unwrap();
        run(&s(&["analyze", "a > b", "a=3", "b=2"])).unwrap();
        run(&s(&["graph", "--kind", "line", "a > b", "a=3", "b=2", "--seed", "2"])).unwrap();
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&[])).is_err());
    }
}
