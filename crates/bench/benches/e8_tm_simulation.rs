//! E8 — Theorem 10: simulating a Turing machine on a population.
//!
//! A unary-parity TM is compiled via the Minsky reduction and executed by
//! populations of increasing size. The paper predicts total error
//! `O(n^{−c} log n)` (shrinking with population size for fixed input) and
//! expected interactions `O(n^{d+2} log n + n^{2d+c+1})`.

use pp_bench::{fmt, mean, print_header};
use pp_core::seeded_rng;
use pp_machines::programs;
use pp_random::tm_sim::TmSimOutcome;
use pp_random::PopulationTm;

fn main() {
    println!("\nE8: Theorem 10 — unary parity TM on populations (input 1^3, k = 3)\n");
    print_header(
        &["n", "trials", "wrong runs", "err rate", "E[interactions]"],
        &[5, 7, 11, 10, 16],
    );

    let tm = programs::tm_unary_parity();
    let input = vec![1u8; 3];

    let n_list: &[usize] = if pp_bench::smoke() { &[12] } else { &[12, 16, 24, 32] };
    for &n in n_list {
        let sim = PopulationTm::new(&tm, n, 3, 2);
        let reference = sim.reference_tape(&input, 1_000_000);
        let trials = if pp_bench::smoke() { 3 } else { 30 };
        let mut rng = seeded_rng(8 + n as u64);
        let mut wrong = 0u64;
        let mut inter = Vec::new();
        for _ in 0..trials {
            match sim.run(&input, u64::MAX / 2, &mut rng) {
                TmSimOutcome::Halted { tape, interactions, .. } => {
                    if tape != reference {
                        wrong += 1;
                    }
                    inter.push(interactions as f64);
                }
                other => panic!("n={n}: {other:?}"),
            }
        }
        println!(
            "{:>5} {:>7} {:>11} {:>10} {:>16}",
            n,
            trials,
            wrong,
            fmt(wrong as f64 / trials as f64),
            fmt(mean(&inter)),
        );
    }

    println!("\npaper shape: error rate falls polynomially in n; interactions grow");
    println!("polynomially (n^(d+2) log n + n^(2d+c+1) for a T(n)=O(n^d) machine)\n");
}
