//! Differential testing: the exact analyzer versus the simulator on
//! *randomly generated* protocols.
//!
//! The strongest internal check in the workspace: for arbitrary transition
//! tables (not hand-written protocols), the configuration-chain analysis
//! and Monte-Carlo simulation must agree on (a) which output classes the
//! population can commit to and with what probabilities, and (b) the
//! expected number of interactions until commitment.

use std::collections::HashSet;

use population_protocols::analysis::MarkovAnalysis;
use population_protocols::core::prelude::*;
use rand::Rng;

const Q: u8 = 3;

/// A protocol with a pseudo-random transition table over states `0..Q`.
fn random_protocol(
    seed: u64,
) -> impl pp_core::Protocol<State = u8, Input = bool, Output = bool> + Clone {
    let mut rng = seeded_rng(seed);
    // The top state is epidemic-absorbing (so most tables eventually
    // commit); the rest of the table is uniformly random.
    let table: Vec<(u8, u8)> = (0..Q * Q)
        .map(|i| {
            let (p, q) = (i / Q, i % Q);
            if p == Q - 1 || q == Q - 1 {
                (Q - 1, Q - 1)
            } else {
                (rng.gen_range(0..Q), rng.gen_range(0..Q))
            }
        })
        .collect();
    FnProtocol::new(
        |&b: &bool| u8::from(b),
        |&q: &u8| q % 2 == 0,
        move |&p: &u8, &q: &u8| table[(p * Q + q) as usize],
    )
}

/// The multiset of state *values* in a configuration (interner-independent).
fn value_multiset<P: pp_core::Protocol<State = u8>>(
    rt: &pp_core::DenseRuntime<P>,
    config: &pp_core::CountConfig,
) -> Vec<(u8, u64)> {
    let mut v: Vec<(u8, u64)> = config.support().map(|(id, c)| (*rt.state(id), c)).collect();
    v.sort_unstable();
    v
}

#[test]
fn random_protocols_exact_vs_monte_carlo() {
    let inputs = [(true, 3u64), (false, 3u64)];
    let mut committed_cases = 0u32;
    for seed in 0..12u64 {
        let proto = random_protocol(seed);
        let m = MarkovAnalysis::analyze(proto.clone(), inputs);
        let Some(exact_time) = m.expected_steps_to_commit() else {
            continue; // this random table never commits; nothing to compare
        };
        committed_cases += 1;

        // The committed configurations, as interner-independent multisets.
        let committed: HashSet<Vec<(u8, u64)>> = (0..m.graph().len())
            .filter(|&i| m.is_committed(i))
            .map(|i| value_multiset(m.graph().runtime(), &m.graph().config(i).to_counts()))
            .collect();

        // Monte-Carlo: steps until the trajectory enters the committed set.
        // (Fewer trials under the debug profile to keep `cargo test` quick;
        // tolerances below are set for the release trial count.)
        let trials: u64 = if cfg!(debug_assertions) { 400 } else { 1500 };
        let mut total = 0u64;
        let mut class_hits = vec![0u64; m.classes().len()];
        for t in 0..trials {
            let mut sim = Simulation::from_counts(proto.clone(), inputs);
            let mut rng = seeded_rng(1_000_000 + seed * 10_000 + t);
            while !committed.contains(&value_multiset(sim.runtime(), sim.config())) {
                sim.step(&mut rng);
                assert!(sim.steps() < 3_000_000, "seed {seed}: no commitment in MC");
            }
            total += sim.steps();
            // Which class did we land in?
            let mut hist: Vec<(bool, u64)> = sim.output_histogram();
            hist.sort_by_key(|&(o, _)| o);
            let ci = m
                .classes()
                .iter()
                .position(|cls| {
                    let mut c = cls.clone();
                    c.sort_by_key(|&(o, _)| o);
                    c == hist
                })
                .expect("landed in a known class");
            class_hits[ci] += 1;
        }
        let mc_time = total as f64 / trials as f64;
        let rel = (mc_time - exact_time).abs() / exact_time.max(1.0);
        let tol = if cfg!(debug_assertions) { 0.3 } else { 0.15 };
        assert!(
            rel < tol,
            "seed {seed}: exact E[T] {exact_time:.2} vs MC {mc_time:.2}"
        );

        let probs = m.commit_probabilities();
        for (ci, &hits) in class_hits.iter().enumerate() {
            let mc_p = hits as f64 / trials as f64;
            let se = (probs[ci] * (1.0 - probs[ci]) / trials as f64).sqrt();
            assert!(
                (mc_p - probs[ci]).abs() < 5.0 * se + 0.02,
                "seed {seed} class {ci}: exact {} vs MC {mc_p}",
                probs[ci]
            );
        }
    }
    assert!(
        committed_cases >= 4,
        "too few random tables committed ({committed_cases}/12) for the test to be meaningful"
    );
}
