//! E21 — self-stabilization under adversarial initialization.
//!
//! The defining adversary of self-stabilization does its damage *before*
//! the run starts: it hands the population an arbitrary configuration and
//! the protocol must reach a legal one anyway. This bench sweeps the
//! `AdversarialInit` modes (uniform-random scatter, single-state flood,
//! worst-case enumeration over a small universe) against three protocols:
//!
//! * **phase clock** (count engine) — legal iff the occupied hours fit in
//!   an arc strictly shorter than half the dial;
//! * **ranking** (agent engine, synthesized coins) — legal iff the
//!   population holds exactly the chairs `1..=n`;
//! * **exact majority** (Lemma 5) — the negative control: a leaderless
//!   flood freezes it on the wrong verdict forever, pinning the contrast
//!   between the paper's exact constructions and the self-stabilizing
//!   family.
//!
//! Every row is an ensemble of seeded trials run **twice**, at 1 and 2
//! worker threads; per-trial `RecoveryReport`s fold into an `Mttr` summary
//! in trial order, and the `identical` column asserts the two runs' MTTR
//! JSON matched byte-for-byte (the mergeable-statistics guarantee). MTTR
//! is in interactions from the corrupted start; `recovery_rate` is the
//! fraction of trials that ended legal and stayed legal.
//!
//! The sweep is also emitted as `BENCH_e21_self_stabilization.json`.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport, Value};
use pp_core::ensemble::Ensemble;
use pp_core::faults::{enumeration_count, AdversarialInit, Mttr};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{AgentSimulation, Simulation};
use pp_protocols::linear::LinState;
use pp_protocols::{majority, PhaseClock, RankState, Ranking};

struct Params {
    trials: u64,
    clock_ns: Vec<u64>,
    rank_ns: Vec<u32>,
}

impl Params {
    fn get() -> Self {
        if pp_bench::smoke() {
            Self { trials: 4, clock_ns: vec![64], rank_ns: vec![8] }
        } else {
            Self { trials: 16, clock_ns: vec![64, 256], rank_ns: vec![16, 32] }
        }
    }
}

const PERIOD: u32 = 64;
const MASTER_SEED: u64 = 2121;

fn main() {
    let p = Params::get();
    let mut report = BenchReport::new("e21_self_stabilization");
    report
        .set_meta("trials", p.trials)
        .set_meta("master_seed", MASTER_SEED)
        .set_meta("clock_period", u64::from(PERIOD));

    println!("\nE21: self-stabilization — MTTR from adversarial initialization");
    println!("T = {} trials per row, master seed {MASTER_SEED}; every row runs at", p.trials);
    println!("1 and 2 threads and identical=1 asserts byte-equal MTTR JSON\n");
    print_header(
        &["case", "mode", "n", "recovery", "mttr_mean", "mttr_max", "identical", "wall_s"],
        &[14, 16, 6, 9, 11, 11, 10, 8],
    );

    for &n in &p.clock_ns {
        let horizon = 6_000 * n + 200 * n * (n as f64).ln() as u64;
        for (mode, init) in clock_inits(n) {
            run_row(&mut report, "phase_clock", &mode, n, |threads| {
                clock_mttr(n, &init, p.trials, horizon, threads)
            });
        }
    }

    for &n in &p.rank_ns {
        // The phased alive-counting walk is the bottleneck: generous
        // Θ(n² log² n)-scale horizon; recovered trials early-exit anyway.
        let nf = f64::from(n);
        let horizon = (400.0 * nf * nf * nf.ln().powi(2)) as u64;
        for (mode, init) in rank_inits(n) {
            run_row(&mut report, "ranking", &mode, u64::from(n), |threads| {
                ranking_mttr(n, &init, p.trials, horizon, threads)
            });
        }
    }

    // Negative control: exact majority, flooded leaderless with the wrong
    // verdict. Nothing can ever change state again, so recovery is 0.
    let maj_n = 63u64;
    let maj = run_row(&mut report, "exact_majority", "flood", maj_n, |threads| {
        majority_flood_mttr(maj_n, p.trials, threads)
    });
    assert_eq!(maj.recovered(), 0, "exact majority must not self-stabilize");

    println!("\nreading: the self-stabilizing pair recovers in every trial from every");
    println!("init mode (recovery = 1); exact majority never does (recovery = 0) —");
    println!("the paper's exactness/self-stabilization trade-off, made machine-checked\n");
    report.write();
}

/// The three init modes for a clock over `PERIOD` hours and `n` agents.
fn clock_inits(n: u64) -> Vec<(String, AdversarialInit<u32>)> {
    // Enumerated universe: four hours evenly around the dial, so the
    // mid-index configuration is a hostile multi-cluster split.
    let quarters: Vec<u32> = (0..4).map(|i| i * PERIOD / 4).collect();
    let mid = enumeration_count(quarters.len(), n) / 2;
    vec![
        ("uniform-random".into(), AdversarialInit::uniform_random((0..PERIOD).collect())),
        ("flood".into(), AdversarialInit::flood(PERIOD / 3)),
        ("enumerated".into(), AdversarialInit::enumerated(quarters, mid)),
    ]
}

/// The three init modes for ranking `n` agents.
fn rank_inits(n: u32) -> Vec<(String, AdversarialInit<RankState>)> {
    let universe = Ranking::new(n).universe();
    // Enumerated universe: every agent claims chair 1 or 2 or defers — the
    // mid-index configuration over-subscribes the low chairs.
    let contested = vec![RankState::LE, RankState::Rank(1), RankState::Rank(2)];
    let mid = enumeration_count(contested.len(), u64::from(n)) / 2;
    vec![
        ("uniform-random".into(), AdversarialInit::uniform_random(universe)),
        ("flood".into(), AdversarialInit::flood(RankState::Rank(1))),
        ("enumerated".into(), AdversarialInit::enumerated(contested, mid)),
    ]
}

/// Phase-clock resync ensemble on the count engine → trial-order MTTR.
fn clock_mttr(n: u64, init: &AdversarialInit<u32>, trials: u64, horizon: u64, threads: usize) -> Mttr {
    let reports = Ensemble::new(trials, MASTER_SEED).with_threads(threads).map(|_, rng| {
        let clock = PhaseClock::new(PERIOD);
        let mut sim = Simulation::from_counts(clock, [((), n)]);
        sim.apply_adversarial_init(init, rng);
        PhaseClock::measure_resync(&mut sim, horizon, 512, rng)
    });
    fold(&reports)
}

/// Ranking recovery ensemble on the coin-aware agent engine.
fn ranking_mttr(
    n: u32,
    init: &AdversarialInit<RankState>,
    trials: u64,
    horizon: u64,
    threads: usize,
) -> Mttr {
    let reports = Ensemble::new(trials, MASTER_SEED).with_threads(threads).map(|_, rng| {
        let mut sim = AgentSimulation::from_inputs(
            Ranking::new(n),
            &vec![(); n as usize],
            UniformPairScheduler::new(n as usize),
        );
        sim.apply_adversarial_init(init, rng);
        Ranking::measure_recovery(&mut sim, horizon, 1_024, rng)
    });
    fold(&reports)
}

/// Exact majority flooded with a leaderless false verdict (expected answer
/// is `true`: the ones outnumber the zeros).
fn majority_flood_mttr(n: u64, trials: u64, threads: usize) -> Mttr {
    let ones = n / 2 + 1;
    Ensemble::new(trials, MASTER_SEED)
        .with_threads(threads)
        .run_with_faults(
            move |_| {
                let sim =
                    Simulation::from_counts(majority(), [(0usize, n - ones), (1usize, ones)]);
                (sim, AdversarialInit::flood(LinState::new(false, false, 0)))
            },
            &true,
            50_000,
        )
        .final_mttr()
}

fn fold(reports: &[pp_core::faults::RecoveryReport]) -> Mttr {
    let mut m = Mttr::new();
    for r in reports {
        m.absorb(r);
    }
    m
}

/// Runs one (protocol, mode, n) cell at 1 and 2 threads, asserts the MTTR
/// JSON is byte-identical, prints and records the row, and returns the
/// summary for further assertions.
fn run_row(
    report: &mut BenchReport,
    case: &str,
    mode: &str,
    n: u64,
    run: impl Fn(usize) -> Mttr,
) -> Mttr {
    let t0 = Instant::now();
    let one = run(1);
    let two = run(2);
    let wall = t0.elapsed().as_secs_f64();
    let identical = one.to_json() == two.to_json();
    assert!(identical, "{case}/{mode} n={n}: MTTR JSON differs between 1 and 2 threads");
    println!(
        "{:>14} {:>16} {:>6} {:>9} {:>11} {:>11} {:>10} {:>8}",
        case,
        mode,
        n,
        fmt(one.recovery_probability()),
        fmt(one.mean()),
        fmt(one.time_stats().max()),
        u64::from(identical),
        fmt(wall),
    );
    report.push_row([
        ("case", Value::from(case)),
        ("mode", Value::from(mode)),
        ("n", n.into()),
        ("trials", one.trials().into()),
        ("recovery_rate", one.recovery_probability().into()),
        ("mttr_mean", one.mean().into()),
        ("mttr_std", one.time_stats().std_dev().into()),
        ("mttr_max", one.time_stats().max().into()),
        ("residual_mean", one.residual_stats().mean().into()),
        ("residual_max", one.residual_stats().max().into()),
        ("identical", identical.into()),
        ("wall_s", wall.into()),
    ]);
    one
}
