//! One-way communication (§8): interactions that change only the
//! responder.
//!
//! The paper's discussion section singles out the restriction where
//! `δ` keeps the initiator's state fixed — the responder merely *observes*
//! the initiator ("immediate observation" in the follow-up literature) —
//! and notes that threshold predicates ("at least k ones") remain
//! computable while the restriction "appears to restrict the class of
//! stably computable predicates severely".
//!
//! This module provides:
//!
//! * [`ObservationProtocol`], a builder for protocols whose transitions are
//!   structurally one-way: the implementor only supplies the *responder's*
//!   update `observe(observed, responder) → responder'`;
//! * [`one_way_count_threshold`], the one-way count-to-`k` protocol: agents
//!   with input 1 climb levels `1 → 2 → … → k` by observing another agent
//!   at *their own* level (two distinct agents are needed per level, so the
//!   maximum level reached is exactly `min(k, #ones)`), and an alert flag
//!   spreads — also one-way — once level `k` appears;
//! * [`is_one_way`], a checker that a protocol's explored transition table
//!   never changes the initiator.

use pp_core::registry::DenseRuntime;
use pp_core::{Protocol, StateId};

/// A protocol defined purely by an observation rule: the initiator is
/// never changed.
///
/// # Example
///
/// One-way epidemic: observers of an infected agent become infected.
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::oneway::ObservationProtocol;
///
/// let epidemic = ObservationProtocol::new(
///     |&b: &bool| b,
///     |&q: &bool| q,
///     |observed: &bool, me: &bool| *me || *observed,
/// );
/// let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, 40)]);
/// let mut rng = seeded_rng(3);
/// assert!(sim.measure_stabilization(&true, 200_000, &mut rng).converged());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ObservationProtocol<S, X, Y, FI, FO, FB> {
    input_fn: FI,
    output_fn: FO,
    observe_fn: FB,
    #[allow(clippy::type_complexity)]
    _marker: std::marker::PhantomData<fn(&X, &S) -> (S, Y)>,
}

impl<S, X, Y, FI, FO, FB> ObservationProtocol<S, X, Y, FI, FO, FB>
where
    FI: Fn(&X) -> S,
    FO: Fn(&S) -> Y,
    FB: Fn(&S, &S) -> S,
{
    /// Builds a one-way protocol from an input map, an output map, and the
    /// responder's observation rule `observe(observed_state, my_state)`.
    pub fn new(input_fn: FI, output_fn: FO, observe_fn: FB) -> Self {
        Self { input_fn, output_fn, observe_fn, _marker: std::marker::PhantomData }
    }
}

impl<S, X, Y, FI, FO, FB> Protocol for ObservationProtocol<S, X, Y, FI, FO, FB>
where
    S: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    X: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    Y: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    FI: Fn(&X) -> S,
    FO: Fn(&S) -> Y,
    FB: Fn(&S, &S) -> S,
{
    type State = S;
    type Input = X;
    type Output = Y;

    fn input(&self, x: &X) -> S {
        (self.input_fn)(x)
    }

    fn output(&self, q: &S) -> Y {
        (self.output_fn)(q)
    }

    /// The initiator is observed, the responder updates.
    fn delta(&self, p: &S, q: &S) -> (S, S) {
        (p.clone(), (self.observe_fn)(p, q))
    }
}

/// State of the one-way count-to-`k` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelState {
    /// Climbing level: `0` for input-0 agents; input-1 agents start at 1.
    pub level: u32,
    /// Whether this agent has (transitively) observed level `k`.
    pub alert: bool,
}

/// The one-way count-to-`k` protocol (§8): stably computes "at least `k`
/// agents have input 1" with transitions that never change the initiator.
///
/// Correctness sketch: a level-`i` observer of a level-`i` agent (`i ≥ 1`)
/// climbs to `i + 1`, so producing level `i + 1` requires two *distinct*
/// agents at level `i`; by induction the maximum level reached equals
/// `min(k, #ones)`. An agent observing level `≥ k` (or an alerted agent)
/// raises its alert flag, which spreads one-way to everyone.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::oneway::one_way_count_threshold;
///
/// let mut sim = Simulation::from_counts(
///     one_way_count_threshold(3),
///     [(true, 3), (false, 10)],
/// );
/// let mut rng = seeded_rng(5);
/// assert!(sim.measure_stabilization(&true, 500_000, &mut rng).converged());
/// ```
pub fn one_way_count_threshold(
    k: u32,
) -> impl Protocol<State = LevelState, Input = bool, Output = bool> + Clone {
    assert!(k >= 1, "threshold k must be at least 1");
    ObservationProtocol::new(
        move |&one: &bool| LevelState { level: u32::from(one), alert: one && k == 1 },
        |s: &LevelState| s.alert,
        move |observed: &LevelState, me: &LevelState| {
            let mut next = *me;
            if observed.alert || observed.level >= k {
                next.alert = true;
            }
            if me.level >= 1 && me.level < k && observed.level == me.level {
                next.level = me.level + 1;
                if next.level >= k {
                    next.alert = true;
                }
            }
            next
        },
    )
}

/// Checks that every transition in the (explored) table leaves the
/// initiator unchanged. Explores the state space reachable from the given
/// inputs by closing under `δ`.
pub fn is_one_way<P: Protocol>(protocol: P, inputs: &[P::Input]) -> bool {
    let mut rt = DenseRuntime::new(protocol);
    let seeds: Vec<StateId> = inputs.iter().map(|x| rt.intern_input(x)).collect();
    let n = rt.close_under_delta(&seeds);
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            let (p2, _) = rt.transition(StateId(a), StateId(b));
            if p2 != StateId(a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn observation_protocols_are_one_way() {
        assert!(is_one_way(one_way_count_threshold(3), &[true, false]));
        assert!(is_one_way(one_way_count_threshold(1), &[true, false]));
        // The ordinary two-way count-to-5 is not one-way.
        assert!(!is_one_way(crate::CountThreshold::new(5), &[true, false]));
    }

    #[test]
    fn climbing_requires_two_distinct_agents_per_level() {
        let p = one_way_count_threshold(3);
        let l1 = LevelState { level: 1, alert: false };
        let l2 = LevelState { level: 2, alert: false };
        // Equal levels: the observer climbs.
        let (a, b) = p.delta(&l1, &l1);
        assert_eq!(a, l1, "initiator unchanged");
        assert_eq!(b.level, 2);
        // Unequal levels: no climb.
        let (_, b) = p.delta(&l2, &l1);
        assert_eq!(b.level, 1);
        let (_, b) = p.delta(&l1, &l2);
        assert_eq!(b.level, 2);
    }

    #[test]
    fn alert_raises_at_level_k_and_spreads() {
        let p = one_way_count_threshold(2);
        let l1 = LevelState { level: 1, alert: false };
        let (_, climbed) = p.delta(&l1, &l1);
        assert_eq!(climbed.level, 2);
        assert!(climbed.alert, "reaching level k raises the alert");
        let zero = LevelState { level: 0, alert: false };
        let (_, observer) = p.delta(&climbed, &zero);
        assert!(observer.alert, "alert spreads by observation");
    }

    #[test]
    fn stabilizes_to_correct_verdict_simulated() {
        let mut rng = seeded_rng(11);
        for (ones, k, expected) in
            [(3u64, 3u32, true), (2, 3, false), (5, 3, true), (0, 1, false), (1, 1, true)]
        {
            let mut sim = Simulation::from_counts(
                one_way_count_threshold(k),
                [(true, ones), (false, 12 - ones)],
            );
            let rep = sim.measure_stabilization(&expected, 400_000, &mut rng);
            assert!(rep.converged(), "ones={ones} k={k} expected={expected}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(20))]
        #[test]
        fn prop_one_way_threshold_matches_ground_truth(
            ones in 0u64..7, zeros in 0u64..7, k in 1u32..5, seed in 0u64..3,
        ) {
            proptest::prop_assume!(ones + zeros >= 2);
            let expected = ones >= u64::from(k);
            let mut sim = Simulation::from_counts(
                one_way_count_threshold(k),
                [(true, ones), (false, zeros)],
            );
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&expected, 300_000, &mut rng);
            proptest::prop_assert!(rep.converged(), "ones={} k={}", ones, k);
        }
    }
}
