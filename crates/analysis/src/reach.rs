//! Reachable-configuration enumeration: the transition graph `G(A, P)`
//! restricted to the configurations reachable from a given initial one.

use std::collections::HashMap;

use pp_core::config::{CanonicalConfig, CountConfig};
use pp_core::registry::{DenseRuntime, OutputId, StateId};
use pp_core::Protocol;

/// The reachable part of the transition graph of a protocol on the
/// standard population, with configurations as multisets of states.
///
/// Node `0` is always the initial configuration.
#[derive(Debug)]
pub struct ConfigGraph<P: Protocol> {
    runtime: DenseRuntime<P>,
    configs: Vec<CanonicalConfig>,
    /// Deduplicated successor lists (excluding self-loops produced by no-op
    /// transitions — a configuration can always "go to itself").
    succ: Vec<Vec<usize>>,
}

/// Default bound on explored configurations, protecting against state-space
/// explosion.
pub const DEFAULT_CONFIG_BOUND: usize = 2_000_000;

impl<P: Protocol> ConfigGraph<P> {
    /// Explores all configurations reachable from the symbol-count input
    /// `inputs`, with the default exploration bound.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 agents or exploration
    /// exceeds the bound.
    pub fn explore<I>(protocol: P, inputs: I) -> Self
    where
        I: IntoIterator<Item = (P::Input, u64)>,
    {
        Self::explore_bounded(protocol, inputs, DEFAULT_CONFIG_BOUND)
    }

    /// Explores with an explicit bound on the number of configurations.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 agents or exploration
    /// exceeds `bound` configurations.
    pub fn explore_bounded<I>(protocol: P, inputs: I, bound: usize) -> Self
    where
        I: IntoIterator<Item = (P::Input, u64)>,
    {
        let mut rt = DenseRuntime::new(protocol);
        let mut init = CountConfig::empty();
        for (x, k) in inputs {
            let s = rt.intern_input(&x);
            init.add(s, k);
        }
        assert!(init.population() >= 2, "population must have at least 2 agents");
        Self::explore_from(rt, init, bound)
    }

    /// Explores from an explicit initial configuration (e.g. one with a
    /// designated leader state).
    ///
    /// # Panics
    ///
    /// Panics if exploration exceeds `bound` configurations.
    pub fn explore_from(
        mut rt: DenseRuntime<P>,
        init: CountConfig,
        bound: usize,
    ) -> Self {
        let mut configs: Vec<CanonicalConfig> = Vec::new();
        let mut index: HashMap<CanonicalConfig, usize> = HashMap::new();
        let mut succ: Vec<Vec<usize>> = Vec::new();
        let mut work: Vec<usize> = Vec::new();

        let c0 = init.to_canonical();
        index.insert(c0.clone(), 0);
        configs.push(c0);
        succ.push(Vec::new());
        work.push(0);

        while let Some(i) = work.pop() {
            let counts = configs[i].to_counts();
            let support: Vec<(StateId, u64)> = counts.support().collect();
            let mut outs: Vec<usize> = Vec::new();
            for &(p, cp) in &support {
                for &(q, cq) in &support {
                    if p == q && cp < 2 {
                        continue;
                    }
                    let _ = cq;
                    let (p2, q2) = rt.transition(p, q);
                    if (p2, q2) == (p, q) {
                        continue; // no-op: self-loop, not recorded
                    }
                    let mut next = counts.clone();
                    next.ensure_len(rt.state_count());
                    next.apply((p, q), (p2, q2));
                    let canon = next.to_canonical();
                    let j = match index.get(&canon) {
                        Some(&j) => j,
                        None => {
                            let j = configs.len();
                            assert!(
                                j < bound,
                                "configuration exploration exceeded bound {bound}"
                            );
                            index.insert(canon.clone(), j);
                            configs.push(canon);
                            succ.push(Vec::new());
                            work.push(j);
                            j
                        }
                    };
                    if j != i && !outs.contains(&j) {
                        outs.push(j);
                    }
                }
            }
            outs.sort_unstable();
            succ[i] = outs;
        }

        Self { runtime: rt, configs, succ }
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the graph is empty (never: the initial configuration is
    /// always present).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configuration at node `i` (node 0 is the initial configuration).
    pub fn config(&self, i: usize) -> &CanonicalConfig {
        &self.configs[i]
    }

    /// Successor node indices of node `i` (deduplicated, no self-loops).
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// The dense protocol runtime used during exploration.
    pub fn runtime(&self) -> &DenseRuntime<P> {
        &self.runtime
    }

    /// The output histogram of node `i` as `(output id, agent count)`.
    pub fn output_histogram(&self, i: usize) -> Vec<(OutputId, u64)> {
        let mut hist: Vec<(OutputId, u64)> = Vec::new();
        for &(s, c) in self.configs[i].pairs() {
            let o = self.runtime.output_of(s);
            match hist.iter_mut().find(|(oo, _)| *oo == o) {
                Some((_, acc)) => *acc += c,
                None => hist.push((o, c)),
            }
        }
        hist.sort_unstable_by_key(|&(o, _)| o);
        hist
    }

    /// If all agents in node `i` share an output, that output id.
    pub fn consensus_output(&self, i: usize) -> Option<OutputId> {
        let h = self.output_histogram(i);
        if h.len() == 1 {
            Some(h[0].0)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::FnProtocol;

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    #[test]
    fn epidemic_reachable_configs_are_infection_levels() {
        // From (1 infected, 4 healthy): reachable = 1..=5 infected.
        let g = ConfigGraph::explore(epidemic(), [(true, 1), (false, 4)]);
        assert_eq!(g.len(), 5);
        // The fully-infected configuration has no successors.
        let terminal = (0..g.len())
            .filter(|&i| g.successors(i).is_empty())
            .collect::<Vec<_>>();
        assert_eq!(terminal.len(), 1);
        assert_eq!(g.config(terminal[0]).population(), 5);
        let h = g.output_histogram(terminal[0]);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].1, 5);
    }

    #[test]
    fn healthy_population_is_inert() {
        let g = ConfigGraph::explore(epidemic(), [(false, 6)]);
        assert_eq!(g.len(), 1);
        assert!(g.successors(0).is_empty());
        assert!(g.consensus_output(0).is_some());
    }

    #[test]
    fn same_state_pair_requires_two_agents() {
        // A protocol where (a, a) interactions matter: token merging.
        let merge = FnProtocol::new(
            |&(): &()| 1u8,
            |&q: &u8| q,
            |&p: &u8, &q: &u8| if p == 1 && q == 1 { (2, 0) } else { (p, q) },
        );
        // One agent in state 1, one in state 0 (via crafted inputs): no
        // (1,1) pair possible.
        let mut rt = DenseRuntime::new(merge);
        let s1 = rt.intern(1u8);
        let s0 = rt.intern(0u8);
        let mut init = CountConfig::empty();
        init.add(s1, 1);
        init.add(s0, 1);
        let g = ConfigGraph::explore_from(rt, init, 1000);
        assert_eq!(g.len(), 1, "no transition should fire with a single token");
    }

    #[test]
    fn output_histogram_orders_by_output_id() {
        let g = ConfigGraph::explore(epidemic(), [(true, 2), (false, 2)]);
        let h = g.output_histogram(0);
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "exceeded bound")]
    fn bound_is_enforced() {
        // Count-to-many has lots of configurations; tiny bound trips.
        let count = FnProtocol::new(
            |&b: &bool| u32::from(b),
            |&q: &u32| q >= 50,
            |&p: &u32, &q: &u32| if p + q >= 50 { (50, 50) } else { (p + q, 0) },
        );
        let _ = ConfigGraph::explore_bounded(count, [(true, 12), (false, 0)], 8);
    }
}
