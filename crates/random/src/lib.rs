//! Conjugating automata: the probabilistic layer of §6 of Angluin et al.
//! (PODC 2004).
//!
//! Adding uniform random pairing to the population model lets protocols
//! trade a small error probability for the ability to *sequence* and
//! *iterate* — the paper's route from "semilinear predicates" all the way
//! up to simulating logspace Turing machines with high probability. This
//! crate implements every stage of that construction:
//!
//! * [`urn`] — the Lemma 11 urn process (timer token vs counter tokens)
//!   with both Monte-Carlo simulation and the paper's closed-form loss
//!   probability and draw-count bounds;
//! * [`zero_test`] — the Theorem 9 population zero test: a leader decides
//!   "is counter *i* zero?" by waiting for either a counter token or `k`
//!   consecutive timer encounters;
//! * [`leader`] — randomized leader election with timer marking and
//!   retrieval (§6.1 "How to elect a leader"), measured at the claimed
//!   Θ(n²) unrest time;
//! * [`counter_protocol`] — the same designated-leader counter machine as
//!   a literal `δ`-table [`pp_core::Protocol`], exactly analyzable by
//!   `pp-analysis`;
//! * [`urn_automaton`] — the §8 companion storage model (reference \[2\]):
//!   a finite control sampling tokens from an urn;
//! * [`counter_sim`] — a population that simulates a counter machine with
//!   `O(1)` counters of capacity `O(n)` (§6.1 "Simulating counters" /
//!   "Simulating a Turing machine"): distributed counter shares,
//!   increment/decrement/zero-test, and the multiply/divide-by-`b` loops;
//! * [`tm_sim`] — the Theorem 10 pipeline: a Turing machine is compiled to
//!   counters (Minsky, from `pp-machines`) and executed on the population,
//!   with measured error rates and interaction counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter_protocol;
pub mod counter_sim;
pub mod leader;
pub mod tm_sim;
pub mod urn;
pub mod urn_automaton;
pub mod zero_test;

pub use counter_protocol::{CounterAgent, CounterProtocol};
pub use counter_sim::{PopulationCounterMachine, PopulationRunOutcome};
pub use leader::TimerLeaderElection;
pub use tm_sim::PopulationTm;
pub use urn::{UrnOutcome, UrnProcess};
pub use urn_automaton::{UrnAutomaton, UrnRun};
pub use zero_test::{ZeroTest, ZeroTestOutcome};
