//! The Theorem 7 simulator: run any complete-graph protocol on any
//! weakly-connected interaction graph.
//!
//! §5 proves the complete interaction graph is the *weakest* structure for
//! stable predicate computation: a protocol `A` for the standard population
//! can be transformed into `A′` that stably computes the same predicate on
//! every weakly-connected population. Simulated agent states migrate from
//! node to node; two *batons* `S` (initiator) and `R` (responder) control
//! what an encounter does. The transition function `δ′` is the paper's
//! Fig. 1, reproduced verbatim by [`GraphSimulator::delta`]:
//!
//! ```text
//! Group (a):  (xD, yD) → (xS, yR)     consume initial D batons
//!             (xD, y*) → (x-, y*)     (* = any non-D baton)
//!             (x*, yD) → (x*, y-)
//! Group (b):  (xS, yS) → (xS, y-)     eliminate duplicate batons
//!             (xR, yR) → (xR, y-)
//! Group (c):  (xS, y-) ↔ (x-, yS)     baton movement
//!             (xR, y-) ↔ (x-, yR)
//! Group (d):  (x-, y-) ↔ (y-, x-)     state swapping
//! Group (e):  (xS, yR) → (x'R, y'S)   simulate an A-transition,
//!             (yR, xS) ↦ (y'S, x'R)   where (x', y') = δ(x, y)
//! ```
//!
//! Note group (e) also swaps the batons, letting `S` and `R` pass each
//! other in narrow graphs.
//!
//! The construction assumes `n ≥ 4` (the paper handles `n < 4` by a
//! side-channel table lookup); tests here use `n ≥ 4`.

use pp_core::Protocol;

/// The baton field added to each simulated state (Theorem 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Baton {
    /// Default initial marker, consumed by group (a).
    D,
    /// The initiator baton.
    S,
    /// The responder baton.
    R,
    /// No baton.
    Blank,
}

/// The Theorem 7 transformed protocol `A′ = (X, Y, Q×{D,S,R,-}, I′, O′, δ′)`.
///
/// # Example
///
/// Run majority on an undirected line instead of the complete graph:
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::{majority, GraphSimulator};
///
/// let n = 8;
/// let line = pp_graphs::undirected_line(n);
/// let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 3 != 0)).collect();
/// let mut sim = AgentSimulation::from_inputs(
///     GraphSimulator::new(majority()),
///     &inputs,
///     line.scheduler(),
/// );
/// let mut rng = seeded_rng(10);
/// // 5 ones vs 3 zeros: majority holds on the line too.
/// let rep = sim.measure_stabilization(&true, 3_000_000, &mut rng);
/// assert!(rep.converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSimulator<P> {
    inner: P,
}

impl<P: Protocol> GraphSimulator<P> {
    /// Wraps a protocol written for the complete interaction graph.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The simulated protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for GraphSimulator<P> {
    type State = (P::State, Baton);
    type Input = P::Input;
    type Output = P::Output;

    /// `I′(x) = I(x)D`.
    fn input(&self, x: &P::Input) -> Self::State {
        (self.inner.input(x), Baton::D)
    }

    /// `O′(qB) = O(q)`.
    fn output(&self, (q, _): &Self::State) -> P::Output {
        self.inner.output(q)
    }

    fn delta(&self, (x, bx): &Self::State, (y, by): &Self::State) -> (Self::State, Self::State) {
        use Baton::{Blank, D, R, S};
        let (x, y) = (x.clone(), y.clone());
        match (*bx, *by) {
            // Group (a).
            (D, D) => ((x, S), (y, R)),
            (D, b) => ((x, Blank), (y, b)),
            (b, D) => ((x, b), (y, Blank)),
            // Group (b).
            (S, S) => ((x, S), (y, Blank)),
            (R, R) => ((x, R), (y, Blank)),
            // Group (e): the S-holder's state is δ's initiator argument.
            (S, R) => {
                let (x2, y2) = self.inner.delta(&x, &y);
                ((x2, R), (y2, S))
            }
            (R, S) => {
                let (y2, x2) = self.inner.delta(&y, &x);
                ((x2, S), (y2, R))
            }
            // Group (c): batons hop across the interacting edge.
            (S, Blank) => ((x, Blank), (y, S)),
            (Blank, S) => ((x, S), (y, Blank)),
            (R, Blank) => ((x, Blank), (y, R)),
            (Blank, R) => ((x, R), (y, Blank)),
            // Group (d): swap simulated states.
            (Blank, Blank) => ((y, Blank), (x, Blank)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountThreshold;
    use crate::majority::majority;
    use pp_core::{seeded_rng, AgentSimulation};
    use pp_graphs::{directed_cycle, star, undirected_line};

    type SimState = (u32, Baton);

    fn sim_protocol() -> GraphSimulator<CountThreshold> {
        GraphSimulator::new(CountThreshold::new(3))
    }

    #[test]
    fn fig1_group_a() {
        use Baton::{Blank, D, R, S};
        let p = sim_protocol();
        let mk = |q: u32, b| (q, b);
        // (xD, yD) → (xS, yR)
        assert_eq!(p.delta(&mk(1, D), &mk(2, D)), (mk(1, S), mk(2, R)));
        // (xD, y*) → (x-, y*) for * ∈ {S, R, -}
        for b in [S, R, Blank] {
            assert_eq!(p.delta(&mk(1, D), &mk(2, b)), (mk(1, Blank), mk(2, b)));
            assert_eq!(p.delta(&mk(1, b), &mk(2, D)), (mk(1, b), mk(2, Blank)));
        }
    }

    #[test]
    fn fig1_group_b() {
        use Baton::{Blank, R, S};
        let p = sim_protocol();
        assert_eq!(p.delta(&(1, S), &(2, S)), ((1, S), (2, Blank)));
        assert_eq!(p.delta(&(1, R), &(2, R)), ((1, R), (2, Blank)));
    }

    #[test]
    fn fig1_group_c_batons_hop() {
        use Baton::{Blank, R, S};
        let p = sim_protocol();
        assert_eq!(p.delta(&(1, S), &(2, Blank)), ((1, Blank), (2, S)));
        assert_eq!(p.delta(&(1, Blank), &(2, S)), ((1, S), (2, Blank)));
        assert_eq!(p.delta(&(1, R), &(2, Blank)), ((1, Blank), (2, R)));
        assert_eq!(p.delta(&(1, Blank), &(2, R)), ((1, R), (2, Blank)));
    }

    #[test]
    fn fig1_group_d_swaps_states() {
        use Baton::Blank;
        let p = sim_protocol();
        assert_eq!(p.delta(&(1, Blank), &(2, Blank)), ((2, Blank), (1, Blank)));
    }

    #[test]
    fn fig1_group_e_simulates_and_swaps_batons() {
        use Baton::{R, S};
        let p = sim_protocol();
        // δ(1, 2) for CountThreshold(3): 1+2 ≥ 3 ⇒ (3, 3).
        assert_eq!(p.delta(&(1, S), &(2, R)), ((3, R), (3, S)));
        // Initiator holds R: the S-holder (responder, state 2) is δ's
        // initiator argument: δ(2, 1) = (3, 3).
        let ((a, ba), (b, bb)): (SimState, SimState) = p.delta(&(1, R), &(2, S));
        assert_eq!((a, b), (3, 3));
        assert_eq!((ba, bb), (S, R));
        // A non-alerting interaction: δ(1, 1) = (2, 0).
        assert_eq!(p.delta(&(1, S), &(1, R)), ((2, R), (0, S)));
    }

    /// Counts batons of each kind in an agent simulation.
    fn baton_census<P: Protocol<State = (Q, Baton)>, Q, Sch>(
        sim: &AgentSimulation<P, Sch>,
    ) -> (usize, usize, usize)
    where
        Q: Clone + std::fmt::Debug + Eq + std::hash::Hash,
        Sch: pp_core::scheduler::PairSampler,
    {
        let (mut d, mut s, mut r) = (0, 0, 0);
        for a in 0..sim.population() as u32 {
            match sim.state_of(a).1 {
                Baton::D => d += 1,
                Baton::S => s += 1,
                Baton::R => r += 1,
                Baton::Blank => {}
            }
        }
        (d, s, r)
    }

    #[test]
    fn reaches_clean_configuration() {
        // Lemma 6/7: reachable final configurations are clean (one S, one R,
        // no D). Under random scheduling the population should clean up.
        let n = 12;
        let g = undirected_line(n);
        let inputs: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let mut sim = AgentSimulation::from_inputs(sim_protocol(), &inputs, g.scheduler());
        let mut rng = seeded_rng(77);
        sim.run(500_000, &mut rng);
        let (d, s, r) = baton_census(&sim);
        assert_eq!(d, 0, "D batons must be consumed");
        assert_eq!(s, 1, "exactly one S baton");
        assert_eq!(r, 1, "exactly one R baton");
    }

    #[test]
    fn baton_invariants_along_execution() {
        // Once the first (D,D) fires there is ≥1 S and ≥1 R; S/R counts
        // never increase; D count never increases.
        let n = 8;
        let g = directed_cycle(n);
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut sim = AgentSimulation::from_inputs(sim_protocol(), &inputs, g.scheduler());
        let mut rng = seeded_rng(5);
        let (mut pd, mut ps, mut pr) = baton_census(&sim);
        for _ in 0..20_000 {
            sim.step(&mut rng);
            let (d, s, r) = baton_census(&sim);
            assert!(d <= pd, "D count increased");
            if pd == 0 {
                assert!(s <= ps && r <= pr, "S/R counts increased after D drained");
                assert!(s >= 1 && r >= 1, "S or R vanished");
            }
            (pd, ps, pr) = (d, s, r);
        }
    }

    #[test]
    fn computes_count_threshold_on_line() {
        let n = 10;
        let g = undirected_line(n);
        let mut rng = seeded_rng(3);
        // Positive: 3 hot agents.
        let inputs: Vec<bool> = (0..n).map(|i| i < 3).collect();
        let mut sim = AgentSimulation::from_inputs(sim_protocol(), &inputs, g.scheduler());
        let rep = sim.measure_stabilization(&true, 4_000_000, &mut rng);
        assert!(rep.converged(), "count-to-3 must accept on the line");
        // Negative: 2 hot agents.
        let inputs: Vec<bool> = (0..n).map(|i| i < 2).collect();
        let mut sim = AgentSimulation::from_inputs(sim_protocol(), &inputs, g.scheduler());
        let rep = sim.measure_stabilization(&false, 4_000_000, &mut rng);
        assert!(rep.converged(), "count-to-3 must reject on the line");
    }

    #[test]
    fn computes_majority_on_star() {
        let n = 9;
        let g = star(n);
        let mut rng = seeded_rng(19);
        let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 2 == 0)).collect(); // 5 ones, 4 zeros
        let mut sim =
            AgentSimulation::from_inputs(GraphSimulator::new(majority()), &inputs, g.scheduler());
        let rep = sim.measure_stabilization(&true, 6_000_000, &mut rng);
        assert!(rep.converged(), "majority must hold on the star");
    }
}
