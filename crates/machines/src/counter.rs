//! Counter machines: finite control plus a fixed number of non-negative
//! counters with increment, decrement and zero-test.
//!
//! §6.1 of the paper: "the leader can organize the rest of the population
//! to simulate a counter machine with `O(1)` counters of capacity `O(n)`".
//! This module provides the machine being simulated. Counters are `u128`
//! (Gödel numbers grow fast); an optional per-counter *capacity* models the
//! paper's `O(n)` bound and turns overflow into an explicit error.

use std::error::Error;
use std::fmt;

/// A counter-machine instruction. The program counter advances by explicit
/// jump targets, making arbitrary control flow expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Increment `counter`, then jump to `next`.
    Inc {
        /// Counter index.
        counter: usize,
        /// Next instruction.
        next: usize,
    },
    /// If `counter > 0`, decrement it and jump to `nonzero`; otherwise jump
    /// to `zero`. (The combined decrement-or-jump-on-zero of Minsky.)
    DecJz {
        /// Counter index.
        counter: usize,
        /// Target when the counter was positive (after decrementing).
        nonzero: usize,
        /// Target when the counter was zero.
        zero: usize,
    },
    /// Stop; the counters hold the output.
    Halt,
}

/// Errors from construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// An instruction refers to a counter index out of range.
    BadCounter {
        /// Instruction index.
        at: usize,
        /// The offending counter.
        counter: usize,
    },
    /// A jump target is out of range.
    BadTarget {
        /// Instruction index.
        at: usize,
        /// The offending target.
        target: usize,
    },
    /// The program is empty.
    EmptyProgram,
    /// Execution exceeded the step budget without halting.
    OutOfFuel {
        /// The budget that was exhausted.
        fuel: u64,
    },
    /// A counter exceeded its configured capacity.
    CapacityExceeded {
        /// The counter that overflowed.
        counter: usize,
        /// The configured capacity.
        capacity: u128,
    },
    /// Wrong number of initial counter values supplied to `run`.
    BadInput {
        /// Expected count.
        expected: usize,
        /// Supplied count.
        got: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadCounter { at, counter } => {
                write!(f, "instruction {at} uses counter {counter} out of range")
            }
            Self::BadTarget { at, target } => {
                write!(f, "instruction {at} jumps to {target} out of range")
            }
            Self::EmptyProgram => write!(f, "program has no instructions"),
            Self::OutOfFuel { fuel } => write!(f, "no halt within {fuel} steps"),
            Self::CapacityExceeded { counter, capacity } => {
                write!(f, "counter {counter} exceeded capacity {capacity}")
            }
            Self::BadInput { expected, got } => {
                write!(f, "expected {expected} initial counter values, got {got}")
            }
        }
    }
}

impl Error for MachineError {}

/// Result of a halted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterOutcome {
    /// Final counter values.
    pub counters: Vec<u128>,
    /// Executed instruction count.
    pub steps: u64,
}

/// A validated counter machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterMachine {
    instrs: Vec<Instr>,
    num_counters: usize,
    capacity: Option<u128>,
}

impl CounterMachine {
    /// Creates a machine, validating instruction operands.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program is empty or refers to
    /// out-of-range counters/targets.
    pub fn new(instrs: Vec<Instr>, num_counters: usize) -> Result<Self, MachineError> {
        if instrs.is_empty() {
            return Err(MachineError::EmptyProgram);
        }
        let n = instrs.len();
        for (at, ins) in instrs.iter().enumerate() {
            match *ins {
                Instr::Inc { counter, next } => {
                    if counter >= num_counters {
                        return Err(MachineError::BadCounter { at, counter });
                    }
                    if next >= n {
                        return Err(MachineError::BadTarget { at, target: next });
                    }
                }
                Instr::DecJz { counter, nonzero, zero } => {
                    if counter >= num_counters {
                        return Err(MachineError::BadCounter { at, counter });
                    }
                    for target in [nonzero, zero] {
                        if target >= n {
                            return Err(MachineError::BadTarget { at, target });
                        }
                    }
                }
                Instr::Halt => {}
            }
        }
        Ok(Self { instrs, num_counters, capacity: None })
    }

    /// Sets a per-counter capacity (the paper's `O(n)` bound); exceeding it
    /// during a run yields [`MachineError::CapacityExceeded`].
    #[must_use]
    pub fn with_capacity(mut self, capacity: u128) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Number of counters.
    pub fn num_counters(&self) -> usize {
        self.num_counters
    }

    /// The program.
    pub fn instructions(&self) -> &[Instr] {
        &self.instrs
    }

    /// Runs from instruction 0 with the given initial counter values.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfFuel`] if no `Halt` executes within
    /// `fuel` steps, [`MachineError::CapacityExceeded`] on counter
    /// overflow, or [`MachineError::BadInput`] on an input arity mismatch.
    pub fn run(&self, inputs: &[u128], fuel: u64) -> Result<CounterOutcome, MachineError> {
        if inputs.len() != self.num_counters {
            return Err(MachineError::BadInput {
                expected: self.num_counters,
                got: inputs.len(),
            });
        }
        let mut counters = inputs.to_vec();
        let mut pc = 0usize;
        let mut steps = 0u64;
        loop {
            if steps >= fuel {
                return Err(MachineError::OutOfFuel { fuel });
            }
            steps += 1;
            match self.instrs[pc] {
                Instr::Inc { counter, next } => {
                    counters[counter] += 1;
                    if let Some(cap) = self.capacity {
                        if counters[counter] > cap {
                            return Err(MachineError::CapacityExceeded { counter, capacity: cap });
                        }
                    }
                    pc = next;
                }
                Instr::DecJz { counter, nonzero, zero } => {
                    if counters[counter] > 0 {
                        counters[counter] -= 1;
                        pc = nonzero;
                    } else {
                        pc = zero;
                    }
                }
                Instr::Halt => return Ok(CounterOutcome { counters, steps }),
            }
        }
    }
}

/// A tiny assembler for building counter-machine programs with forward
/// labels.
///
/// # Example
///
/// ```
/// use pp_machines::counter::{Assembler, CounterMachine, Instr};
///
/// // Move counter 0 into counter 1.
/// let mut asm = Assembler::new();
/// let loop_head = asm.here();
/// let done = asm.fresh_label();
/// let body = asm.fresh_label();
/// asm.dec_jz(0, body, done);
/// asm.bind(body);
/// asm.inc(1, loop_head);
/// asm.bind(done);
/// asm.halt();
/// let m = asm.assemble(2).unwrap();
/// let out = m.run(&[5, 0], 1000).unwrap();
/// assert_eq!(out.counters, vec![0, 5]);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<AsmInstr>,
    labels: Vec<Option<usize>>,
}

#[derive(Debug, Clone, Copy)]
enum AsmInstr {
    Inc { counter: usize, next: Target },
    DecJz { counter: usize, nonzero: Target, zero: Target },
    Halt,
}

/// A jump target: a concrete address or a label to be bound later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// An absolute instruction index.
    Addr(usize),
    /// A label created by [`Assembler::fresh_label`].
    Label(usize),
}

impl From<usize> for Target {
    fn from(addr: usize) -> Self {
        Target::Addr(addr)
    }
}

impl Assembler {
    /// A fresh, empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The address of the next emitted instruction.
    pub fn here(&self) -> Target {
        Target::Addr(self.instrs.len())
    }

    /// Creates an unbound label.
    pub fn fresh_label(&mut self) -> Target {
        self.labels.push(None);
        Target::Label(self.labels.len() - 1)
    }

    /// Binds a label to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not a label or is already bound.
    pub fn bind(&mut self, label: Target) {
        match label {
            Target::Label(l) => {
                assert!(self.labels[l].is_none(), "label bound twice");
                self.labels[l] = Some(self.instrs.len());
            }
            Target::Addr(_) => panic!("cannot bind an absolute address"),
        }
    }

    /// Emits `Inc`.
    pub fn inc(&mut self, counter: usize, next: impl Into<Target>) {
        self.instrs.push(AsmInstr::Inc { counter, next: next.into() });
    }

    /// Emits `Inc` falling through to the next emitted instruction.
    pub fn inc_next(&mut self, counter: usize) {
        let next = Target::Addr(self.instrs.len() + 1);
        self.instrs.push(AsmInstr::Inc { counter, next });
    }

    /// Emits `DecJz`.
    pub fn dec_jz(
        &mut self,
        counter: usize,
        nonzero: impl Into<Target>,
        zero: impl Into<Target>,
    ) {
        self.instrs
            .push(AsmInstr::DecJz { counter, nonzero: nonzero.into(), zero: zero.into() });
    }

    /// Emits `Halt`.
    pub fn halt(&mut self) {
        self.instrs.push(AsmInstr::Halt);
    }

    /// Emits an unconditional jump (a `DecJz` on a counter that is
    /// irrelevant — encoded as `DecJz` with both arms equal... which would
    /// decrement! Instead, `Inc`-free jumps use `DecJz` on a scratch
    /// counter known to be zero). Prefer structuring code to fall through;
    /// when a jump is unavoidable use [`Assembler::jump_via_zero`].
    pub fn jump_via_zero(&mut self, zero_counter: usize, to: impl Into<Target>) {
        let to = to.into();
        // When the counter is zero this always takes the `zero` arm; the
        // `nonzero` arm also goes to `to` for safety (it would decrement a
        // nonzero scratch, which callers must not allow).
        self.instrs.push(AsmInstr::DecJz { counter: zero_counter, nonzero: to, zero: to });
    }

    /// Resolves labels and validates.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on invalid operands.
    ///
    /// # Panics
    ///
    /// Panics if an unbound label is referenced.
    pub fn assemble(self, num_counters: usize) -> Result<CounterMachine, MachineError> {
        let resolve = |t: Target| -> usize {
            match t {
                Target::Addr(a) => a,
                Target::Label(l) => self.labels[l].expect("unbound label"),
            }
        };
        let instrs: Vec<Instr> = self
            .instrs
            .iter()
            .map(|ins| match *ins {
                AsmInstr::Inc { counter, next } => {
                    Instr::Inc { counter, next: resolve(next) }
                }
                AsmInstr::DecJz { counter, nonzero, zero } => Instr::DecJz {
                    counter,
                    nonzero: resolve(nonzero),
                    zero: resolve(zero),
                },
                AsmInstr::Halt => Instr::Halt,
            })
            .collect();
        CounterMachine::new(instrs, num_counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_operands() {
        assert_eq!(CounterMachine::new(vec![], 1), Err(MachineError::EmptyProgram));
        let bad_counter = vec![Instr::Inc { counter: 3, next: 0 }];
        assert!(matches!(
            CounterMachine::new(bad_counter, 2),
            Err(MachineError::BadCounter { .. })
        ));
        let bad_target = vec![Instr::DecJz { counter: 0, nonzero: 5, zero: 0 }];
        assert!(matches!(
            CounterMachine::new(bad_target, 1),
            Err(MachineError::BadTarget { .. })
        ));
    }

    #[test]
    fn addition_program() {
        // c0 += c1 (destroying c1): loop { c1-- or exit; c0++ }.
        let m = CounterMachine::new(
            vec![
                Instr::DecJz { counter: 1, nonzero: 1, zero: 2 },
                Instr::Inc { counter: 0, next: 0 },
                Instr::Halt,
            ],
            2,
        )
        .unwrap();
        let out = m.run(&[3, 4], 100).unwrap();
        assert_eq!(out.counters, vec![7, 0]);
        assert_eq!(out.steps, 10);
    }

    #[test]
    fn fuel_exhaustion() {
        // Infinite loop.
        let m = CounterMachine::new(
            vec![Instr::Inc { counter: 0, next: 0 }],
            1,
        )
        .unwrap();
        assert_eq!(m.run(&[0], 50), Err(MachineError::OutOfFuel { fuel: 50 }));
    }

    #[test]
    fn capacity_limit() {
        let m = CounterMachine::new(
            vec![Instr::Inc { counter: 0, next: 0 }],
            1,
        )
        .unwrap()
        .with_capacity(10);
        assert_eq!(
            m.run(&[0], 1000),
            Err(MachineError::CapacityExceeded { counter: 0, capacity: 10 })
        );
    }

    #[test]
    fn bad_input_arity() {
        let m = CounterMachine::new(vec![Instr::Halt], 2).unwrap();
        assert!(matches!(m.run(&[1], 10), Err(MachineError::BadInput { .. })));
    }

    #[test]
    fn assembler_forward_labels() {
        // Double counter 0 into counter 1: loop { c0-- or done; c1 += 2 }.
        let mut asm = Assembler::new();
        let head = asm.here();
        let done = asm.fresh_label();
        let body = asm.fresh_label();
        asm.dec_jz(0, body, done);
        asm.bind(body);
        let step2 = asm.fresh_label();
        asm.inc(1, step2);
        asm.bind(step2);
        asm.inc(1, head);
        asm.bind(done);
        asm.halt();
        let m = asm.assemble(2).unwrap();
        let out = m.run(&[6, 0], 1000).unwrap();
        assert_eq!(out.counters, vec![0, 12]);
    }

    #[test]
    fn jump_via_zero_counter() {
        let mut asm = Assembler::new();
        let end = asm.fresh_label();
        asm.jump_via_zero(1, end);
        asm.inc(0, 0); // skipped
        asm.bind(end);
        asm.halt();
        let m = asm.assemble(2).unwrap();
        let out = m.run(&[0, 0], 10).unwrap();
        assert_eq!(out.counters[0], 0, "jump must skip the increment");
    }
}
