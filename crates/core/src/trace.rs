//! Zero-cost span tracing: *where wall-clock time goes* inside a run.
//!
//! The [`Probe`](crate::observe::Probe) layer answers what a protocol did —
//! rule firings, occupancy, convergence — in *interaction* time. This module
//! answers the orthogonal question of *wall-clock* time: how long the engine
//! spends drawing pairs, sampling batch sweeps, applying transitions in
//! bulk, scheduling ensemble trials, and servicing probes. That phase-level
//! structure is exactly what fast-simulation analyses (Kosowski–Uznański,
//! "Population Protocols Are Fast") reason about, and what a profiler of the
//! batched engine needs to see.
//!
//! # Design: a sibling of `Probe`
//!
//! A [`Tracer`] is monomorphized into the engines as a defaulted type
//! parameter (`Simulation<P, Pr = NoProbe, Tr = NoTracer>`), never a trait
//! object. Every hook site is guarded by `if Tr::ACTIVE { … }` with
//! `ACTIVE` an associated `const`, so the default [`NoTracer`] compiles the
//! whole layer away: `Simulation<P, NoProbe, NoTracer>` is byte-for-byte
//! the untraced engine, including its RNG stream (tracers never draw
//! randomness — property-tested in `trace_properties.rs` on the step, leap,
//! batched, ensemble, and faulted paths).
//!
//! Unlike probes, tracers hook *phases*, not interactions: a span covers a
//! whole sequential draw loop, one batch sweep's sampling or bulk-apply
//! stage, or one ensemble trial — so even an active tracer costs two clock
//! reads per `Θ(√n)`-interaction sweep, not per interaction.
//!
//! # Built-ins
//!
//! * [`NoTracer`] — the default; compiles tracing away entirely.
//! * [`SpanStats`] — per-[`SpanKind`] self-time statistics (Welford moments
//!   plus a log-histogram, both from [`crate::ensemble`]), mergeable across
//!   ensemble workers in trial order for deterministic folding.
//! * [`ChromeTracer`] — records every span as a Chrome Trace Event Format
//!   JSON event, loadable in Perfetto / `chrome://tracing` (hand-rolled,
//!   zero dependencies).
//!
//! Every trace carries a [`RunManifest`] header (schema `pp-run/v1`):
//! master seed, protocol id, population, thread count, fault plan, git
//! revision — the provenance stamp `pp-bench` reuses for its
//! `BENCH_HISTORY.jsonl` trajectory and a future `pp-server` would attach
//! to per-request traces.
//!
//! # Example
//!
//! ```
//! use pp_core::prelude::*;
//! use pp_core::trace::{SpanKind, SpanStats};
//!
//! let epidemic = FnProtocol::new(
//!     |&b: &bool| b,
//!     |&q: &bool| q,
//!     |&p: &bool, &q: &bool| (p || q, p || q),
//! );
//! let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, 9999)])
//!     .with_tracer(SpanStats::new());
//! let mut rng = seeded_rng(7);
//! sim.run_batched(50_000, &mut rng);
//! let stats = sim.into_tracer();
//! assert!(stats.count(SpanKind::BatchSample) > 0);
//! assert!(stats.count(SpanKind::BatchApply) > 0);
//! ```

use std::time::Instant;

use crate::ensemble::{LogHistogram, Welford};

// ---------------------------------------------------------------------------
// Span kinds
// ---------------------------------------------------------------------------

/// The engine phases a [`Tracer`] can observe. Discriminants are dense so
/// [`SpanStats`] indexes a fixed array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpanKind {
    /// A sequential draw-and-apply loop ([`run`](crate::Simulation::run),
    /// [`measure_stabilization`](crate::Simulation::measure_stabilization),
    /// a [`leap`](crate::Simulation::leap), a parallel round, or a faulted
    /// slot loop); `items` counts the interactions it covered.
    SchedulerDraw = 0,
    /// The sampling stage of one batched sweep: run-length inversion,
    /// descending-count permutation, and the hypergeometric state sweeps;
    /// `items` counts the pairs sampled.
    BatchSample = 1,
    /// The bulk transition-apply stage of one batched sweep (including its
    /// collision interactions); `items` counts the interactions executed.
    BatchApply = 2,
    /// Probe overhead: time spent inside
    /// [`Probe::on_batch`](crate::observe::Probe::on_batch) replay when both
    /// a probe and a tracer are attached; `items` counts replayed
    /// interactions.
    Probe = 3,
    /// Statistics folding: [`SpanStats::fold`] self-times its own trial-order
    /// merge under this kind; `items` counts the parts folded.
    Fold = 4,
    /// One ensemble trial, from RNG construction to result; recorded by
    /// [`Ensemble::map_traced`](crate::ensemble::Ensemble::map_traced) and
    /// tagged with the worker thread via [`Tracer::tag_worker`].
    Trial = 5,
    /// A fault-injection burst — an *instant* event (no duration); the
    /// `detail` argument carries the number of faults injected.
    FaultBurst = 6,
}

/// Number of [`SpanKind`] variants (array-index bound).
pub const SPAN_KINDS: usize = 7;

impl SpanKind {
    /// Every kind, in discriminant order (the deterministic report order).
    pub const ALL: [SpanKind; SPAN_KINDS] = [
        SpanKind::SchedulerDraw,
        SpanKind::BatchSample,
        SpanKind::BatchApply,
        SpanKind::Probe,
        SpanKind::Fold,
        SpanKind::Trial,
        SpanKind::FaultBurst,
    ];

    /// Stable snake_case name used in every JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::SchedulerDraw => "scheduler_draw",
            SpanKind::BatchSample => "batch_sample",
            SpanKind::BatchApply => "batch_apply",
            SpanKind::Probe => "probe",
            SpanKind::Fold => "fold",
            SpanKind::Trial => "trial",
            SpanKind::FaultBurst => "fault_burst",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// The Tracer trait
// ---------------------------------------------------------------------------

/// Observer of engine *phases* (see [`SpanKind`]), monomorphized into the
/// engines like [`Probe`](crate::observe::Probe).
///
/// Hook invariants the engines guarantee:
///
/// * [`enter`](Self::enter)/[`exit`](Self::exit) calls are properly nested
///   per simulation (a stack discipline), and every `enter` is matched by an
///   `exit` of the same kind on every control-flow path.
/// * A tracer is never handed the RNG: attaching one cannot perturb the
///   simulated trajectory.
///
/// All methods default to no-ops, so a tracer implements only what it
/// needs. Implementors that can be folded across ensemble workers should be
/// merged in trial order (see [`SpanStats::fold`]) for deterministic
/// reports.
pub trait Tracer {
    /// Whether the engine's hook sites are live. [`NoTracer`] overrides
    /// this to `false`, turning every `if Tr::ACTIVE { … }` guard into dead
    /// code the optimizer removes.
    const ACTIVE: bool = true;

    /// A phase of the given kind begins now.
    fn enter(&mut self, _kind: SpanKind) {}

    /// The innermost open phase (which has kind `kind`) ends now; `items`
    /// is the number of work units (interactions, pairs, parts) it covered.
    fn exit(&mut self, _kind: SpanKind, _items: u64) {}

    /// A point event of the given kind (e.g. a fault burst); `detail` is
    /// kind-specific (injected fault count for
    /// [`FaultBurst`](SpanKind::FaultBurst)).
    fn instant(&mut self, _kind: SpanKind, _detail: u64) {}

    /// Tags subsequent events with the ensemble worker-thread index that
    /// produced them (Chrome traces map it to `tid`).
    fn tag_worker(&mut self, _worker: u32) {}
}

/// The default tracer: tracing compiled away (`ACTIVE = false`), zero cost,
/// byte-identical code and RNG stream to the pre-trace engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTracer;

impl Tracer for NoTracer {
    const ACTIVE: bool = false;
}

/// Tracing through a mutable reference, so a bench can keep ownership of
/// its tracer while the simulation holds `&mut` to it.
impl<T: Tracer> Tracer for &mut T {
    const ACTIVE: bool = T::ACTIVE;

    fn enter(&mut self, kind: SpanKind) {
        (**self).enter(kind);
    }

    fn exit(&mut self, kind: SpanKind, items: u64) {
        (**self).exit(kind, items);
    }

    fn instant(&mut self, kind: SpanKind, detail: u64) {
        (**self).instant(kind, detail);
    }

    fn tag_worker(&mut self, worker: u32) {
        (**self).tag_worker(worker);
    }
}

/// Fan-out to two tracers (compose nested tuples for more); `ACTIVE` if
/// either side is, and an inactive side still costs nothing.
impl<A: Tracer, B: Tracer> Tracer for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    fn enter(&mut self, kind: SpanKind) {
        if A::ACTIVE {
            self.0.enter(kind);
        }
        if B::ACTIVE {
            self.1.enter(kind);
        }
    }

    fn exit(&mut self, kind: SpanKind, items: u64) {
        if A::ACTIVE {
            self.0.exit(kind, items);
        }
        if B::ACTIVE {
            self.1.exit(kind, items);
        }
    }

    fn instant(&mut self, kind: SpanKind, detail: u64) {
        if A::ACTIVE {
            self.0.instant(kind, detail);
        }
        if B::ACTIVE {
            self.1.instant(kind, detail);
        }
    }

    fn tag_worker(&mut self, worker: u32) {
        if A::ACTIVE {
            self.0.tag_worker(worker);
        }
        if B::ACTIVE {
            self.1.tag_worker(worker);
        }
    }
}

// ---------------------------------------------------------------------------
// Run manifest (schema pp-run/v1)
// ---------------------------------------------------------------------------

/// Provenance header emitted with every trace (schema `pp-run/v1`): which
/// run, of what, where. All fields are optional so harnesses stamp what
/// they know; unknown fields serialize as `null` to keep the field set
/// stable for downstream parsers (`ppbench-compare`, a future `pp-server`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Protocol identifier (e.g. `"majority"`).
    pub protocol: Option<String>,
    /// Population size `n`.
    pub population: Option<u64>,
    /// Master seed the run (or ensemble) was keyed by.
    pub master_seed: Option<u64>,
    /// Worker-thread count (see
    /// [`default_threads`](crate::ensemble::default_threads)).
    pub threads: Option<u64>,
    /// Human-readable fault-plan description, `None` for fault-free runs.
    pub fault_plan: Option<String>,
    /// Git revision of the tree that produced the run.
    pub git_rev: Option<String>,
}

impl RunManifest {
    /// An empty manifest (every field `null`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the protocol identifier.
    pub fn with_protocol(mut self, protocol: &str) -> Self {
        self.protocol = Some(protocol.to_owned());
        self
    }

    /// Sets the population size.
    pub fn with_population(mut self, n: u64) -> Self {
        self.population = Some(n);
        self
    }

    /// Sets the master seed.
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = Some(seed);
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: u64) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the fault-plan description.
    pub fn with_fault_plan(mut self, plan: &str) -> Self {
        self.fault_plan = Some(plan.to_owned());
        self
    }

    /// Sets the git revision explicitly.
    pub fn with_git_rev(mut self, rev: &str) -> Self {
        self.git_rev = Some(rev.to_owned());
        self
    }

    /// Stamps the git revision from the environment: `PP_GIT_REV` if set
    /// (deterministic tests, CI), else `git rev-parse HEAD` if a git
    /// binary and repository are reachable, else leaves the field `null`.
    pub fn with_detected_git_rev(mut self) -> Self {
        self.git_rev = detect_git_rev();
        self
    }

    /// Deterministic JSON rendering (schema `pp-run/v1`); field order and
    /// set are fixed, missing values are `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"pp-run/v1\"");
        push_field_str(&mut s, "protocol", self.protocol.as_deref());
        push_field_u64(&mut s, "population", self.population);
        push_field_u64(&mut s, "master_seed", self.master_seed);
        push_field_u64(&mut s, "threads", self.threads);
        push_field_str(&mut s, "fault_plan", self.fault_plan.as_deref());
        push_field_str(&mut s, "git_rev", self.git_rev.as_deref());
        s.push('}');
        s
    }
}

/// The git revision of the working tree: `PP_GIT_REV` wins (lets tests and
/// CI pin a deterministic value), else one `git rev-parse HEAD` subprocess,
/// else `None` (no git — manifests must still work from a tarball).
pub fn detect_git_rev() -> Option<String> {
    if let Ok(v) = std::env::var("PP_GIT_REV") {
        let v = v.trim().to_owned();
        if !v.is_empty() {
            return Some(v);
        }
    }
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_owned();
    (!rev.is_empty()).then_some(rev)
}

fn push_field_str(out: &mut String, key: &str, v: Option<&str>) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    match v {
        Some(s) => push_json_string(out, s),
        None => out.push_str("null"),
    }
}

fn push_field_u64(out: &mut String, key: &str, v: Option<u64>) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    match v {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

/// Minimal JSON string escaping (same escapes as `pp-bench`'s writer).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// SpanStats
// ---------------------------------------------------------------------------

/// One open span on the [`SpanStats`] stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    kind: SpanKind,
    start: Instant,
    /// Nanoseconds spent in already-closed child spans (subtracted from the
    /// span's duration to get *self* time).
    child_ns: u64,
}

/// Accumulated statistics of one [`SpanKind`].
#[derive(Debug, Clone, Default)]
struct KindStats {
    /// Closed spans of this kind.
    count: u64,
    /// Sum of the `items` arguments (work units covered).
    items: u64,
    /// Instant events of this kind.
    instants: u64,
    /// Welford moments of per-span *self* nanoseconds.
    self_ns: Welford,
    /// Log-histogram of per-span self nanoseconds.
    hist: LogHistogram,
}

impl KindStats {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.instants == 0
    }

    fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.items += other.items;
        self.instants += other.instants;
        self.self_ns.merge(other.self_ns);
        self.hist.merge(&other.hist);
    }
}

/// Per-[`SpanKind`] self-time statistics: Welford moments plus a
/// log-histogram of each span's *self* nanoseconds (duration minus closed
/// child spans), and the total work items covered.
///
/// Merging ([`merge`](Self::merge)) composes two accumulators; the ensemble
/// folds per-trial instances **in trial order** ([`fold`](Self::fold)), so
/// for a given multiset of per-trial statistics the folded
/// [`to_json`](Self::to_json) is byte-identical at any worker-thread count
/// (the histogram merge is exactly associative; the Welford merge is fixed
/// by the fold order).
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    stack: Vec<Frame>,
    per: Vec<KindStats>,
    manifest: Option<RunManifest>,
}

impl SpanStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { stack: Vec::new(), per: (0..SPAN_KINDS).map(|_| KindStats::default()).collect(), manifest: None }
    }

    /// Attaches a [`RunManifest`] emitted with
    /// [`to_json`](Self::to_json).
    pub fn with_manifest(mut self, manifest: RunManifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// The attached manifest, if any.
    pub fn manifest(&self) -> Option<&RunManifest> {
        self.manifest.as_ref()
    }

    /// Records one closed span synthetically (no clock involved): `self_ns`
    /// of self time covering `items` work units. This is the deterministic
    /// entry point merge/fold tests build fixtures with; the engine hooks
    /// go through [`enter`](Tracer::enter)/[`exit`](Tracer::exit) instead.
    pub fn record(&mut self, kind: SpanKind, self_ns: u64, items: u64) {
        let k = &mut self.per[kind.index()];
        k.count += 1;
        k.items += items;
        k.self_ns.push(self_ns as f64);
        k.hist.push(self_ns as f64);
    }

    /// Closed spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.per[kind.index()].count
    }

    /// Total work items covered by closed spans of `kind`.
    pub fn items(&self, kind: SpanKind) -> u64 {
        self.per[kind.index()].items
    }

    /// Instant events of `kind`.
    pub fn instants(&self, kind: SpanKind) -> u64 {
        self.per[kind.index()].instants
    }

    /// Welford moments of per-span self nanoseconds of `kind`.
    pub fn self_ns(&self, kind: SpanKind) -> &Welford {
        &self.per[kind.index()].self_ns
    }

    /// Total self nanoseconds attributed to `kind` (count × mean).
    pub fn total_self_ns(&self, kind: SpanKind) -> f64 {
        let w = &self.per[kind.index()].self_ns;
        if w.count() == 0 {
            0.0
        } else {
            w.mean() * w.count() as f64
        }
    }

    /// Absorbs another accumulator: counters and histograms add exactly,
    /// Welford moments merge by Chan's update. Any open spans in `other`
    /// are ignored (merging mid-span is a caller bug, guarded by
    /// `debug_assert`).
    pub fn merge(&mut self, other: &Self) {
        debug_assert!(other.stack.is_empty(), "merging a SpanStats with open spans");
        for (a, b) in self.per.iter_mut().zip(&other.per) {
            a.merge(b);
        }
        if self.manifest.is_none() {
            self.manifest = other.manifest.clone();
        }
    }

    /// Folds per-trial accumulators **in iteration order** (the ensemble
    /// passes trial order) into one, self-timing the fold itself as a
    /// [`Fold`](SpanKind::Fold) span whose `items` is the number of parts.
    pub fn fold(parts: impl IntoIterator<Item = SpanStats>) -> SpanStats {
        let start = Instant::now();
        let mut acc = SpanStats::new();
        let mut n = 0u64;
        for p in parts {
            acc.merge(&p);
            n += 1;
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        acc.record(SpanKind::Fold, ns, n);
        acc
    }

    /// Deterministic-given-the-data JSON rendering (schema `pp-trace/v1`):
    /// the manifest header plus one entry per non-empty span kind in
    /// discriminant order, with count/items/instants, self-time moments in
    /// nanoseconds, and the non-empty half-octave histogram buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"pp-trace/v1\",\"manifest\":");
        match &self.manifest {
            Some(m) => s.push_str(&m.to_json()),
            None => s.push_str("null"),
        }
        s.push_str(",\"spans\":[");
        let mut first = true;
        for kind in SpanKind::ALL {
            let k = &self.per[kind.index()];
            if k.is_empty() {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"kind\":\"{}\",\"count\":{},\"items\":{},\"instants\":{}",
                kind.name(),
                k.count,
                k.items,
                k.instants
            ));
            s.push_str(&format!(
                ",\"self_ns\":{{\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{}}}",
                json_f64(k.self_ns.mean()),
                json_f64(k.self_ns.std_dev()),
                json_f64(k.self_ns.min()),
                json_f64(k.self_ns.max()),
            ));
            s.push_str(",\"hist\":[");
            for (j, (i, c)) in k.hist.nonzero().into_iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{i},{c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Shortest round-trip float, `null` when non-finite (the workspace JSON
/// convention).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl Tracer for SpanStats {
    fn enter(&mut self, kind: SpanKind) {
        self.stack.push(Frame { kind, start: Instant::now(), child_ns: 0 });
    }

    fn exit(&mut self, kind: SpanKind, items: u64) {
        let frame = self.stack.pop().expect("SpanStats::exit without a matching enter");
        debug_assert_eq!(frame.kind, kind, "span enter/exit kind mismatch");
        let dur = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = dur.saturating_sub(frame.child_ns);
        self.record(kind, self_ns, items);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(dur);
        }
    }

    fn instant(&mut self, kind: SpanKind, detail: u64) {
        let k = &mut self.per[kind.index()];
        k.instants += 1;
        k.items += detail;
    }
}

// ---------------------------------------------------------------------------
// ChromeTracer
// ---------------------------------------------------------------------------

/// One recorded Chrome trace event.
#[derive(Debug, Clone, Copy)]
struct ChromeEvent {
    kind: SpanKind,
    /// `b'B'` (begin), `b'E'` (end), or `b'i'` (instant).
    ph: u8,
    /// Nanoseconds since the tracer was constructed.
    ts_ns: u64,
    /// Worker-thread tag (`tid` in the trace).
    tid: u32,
    /// `items` for `E` events, `detail` for `i` events, 0 for `B`.
    arg: u64,
}

/// Records spans as Chrome Trace Event Format JSON — open the output in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see the
/// engine's phase structure on a timeline. Hand-rolled writer, no
/// dependencies.
///
/// Timestamps are microseconds (with nanosecond fraction) since
/// construction; `pid` is fixed at 1 and `tid` is the ensemble worker tag
/// (see [`Tracer::tag_worker`]), so ensemble trials lay out one lane per
/// worker thread. The attached [`RunManifest`] is emitted under the
/// top-level `"metadata"` key.
#[derive(Debug, Clone)]
pub struct ChromeTracer {
    start: Instant,
    tid: u32,
    events: Vec<ChromeEvent>,
    manifest: Option<RunManifest>,
}

impl Default for ChromeTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTracer {
    /// A fresh tracer; the timeline zero is this call.
    pub fn new() -> Self {
        Self { start: Instant::now(), tid: 0, events: Vec::new(), manifest: None }
    }

    /// Attaches a [`RunManifest`] emitted under the trace's `"metadata"`.
    pub fn with_manifest(mut self, manifest: RunManifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Renders the trace as a Chrome Trace Event Format JSON object
    /// (`{"traceEvents":[…],"metadata":{…}}`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 * self.events.len() + 256);
        s.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let ts_us = ev.ts_ns as f64 / 1_000.0;
            s.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"pp\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                ev.kind.name(),
                ev.ph as char,
                json_f64(ts_us),
                ev.tid
            ));
            match ev.ph {
                b'E' => s.push_str(&format!(",\"args\":{{\"items\":{}}}", ev.arg)),
                b'i' => s.push_str(&format!(",\"s\":\"t\",\"args\":{{\"detail\":{}}}", ev.arg)),
                _ => {}
            }
            s.push('}');
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\",\"metadata\":{\"manifest\":");
        match &self.manifest {
            Some(m) => s.push_str(&m.to_json()),
            None => s.push_str("null"),
        }
        s.push_str("}}");
        s
    }

    /// Writes the trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl Tracer for ChromeTracer {
    fn enter(&mut self, kind: SpanKind) {
        let ts_ns = self.now_ns();
        self.events.push(ChromeEvent { kind, ph: b'B', ts_ns, tid: self.tid, arg: 0 });
    }

    fn exit(&mut self, kind: SpanKind, items: u64) {
        let ts_ns = self.now_ns();
        self.events.push(ChromeEvent { kind, ph: b'E', ts_ns, tid: self.tid, arg: items });
    }

    fn instant(&mut self, kind: SpanKind, detail: u64) {
        let ts_ns = self.now_ns();
        self.events.push(ChromeEvent { kind, ph: b'i', ts_ns, tid: self.tid, arg: detail });
    }

    fn tag_worker(&mut self, worker: u32) {
        self.tid = worker;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stats_nesting_attributes_self_time() {
        let mut st = SpanStats::new();
        st.enter(SpanKind::Trial);
        st.enter(SpanKind::BatchSample);
        std::thread::sleep(std::time::Duration::from_millis(2));
        st.exit(SpanKind::BatchSample, 10);
        st.exit(SpanKind::Trial, 1);
        assert_eq!(st.count(SpanKind::Trial), 1);
        assert_eq!(st.count(SpanKind::BatchSample), 1);
        assert_eq!(st.items(SpanKind::BatchSample), 10);
        // The child's time is excluded from the parent's self time.
        let child = st.self_ns(SpanKind::BatchSample).mean();
        let parent_self = st.self_ns(SpanKind::Trial).mean();
        assert!(child >= 2_000_000.0, "slept 2ms, got {child}ns");
        assert!(parent_self < child, "parent self {parent_self} vs child {child}");
    }

    #[test]
    fn span_stats_merge_is_exact_on_counters() {
        let mut a = SpanStats::new();
        a.record(SpanKind::BatchSample, 100, 5);
        a.instant(SpanKind::FaultBurst, 3);
        let mut b = SpanStats::new();
        b.record(SpanKind::BatchSample, 300, 7);
        a.merge(&b);
        assert_eq!(a.count(SpanKind::BatchSample), 2);
        assert_eq!(a.items(SpanKind::BatchSample), 12);
        assert_eq!(a.instants(SpanKind::FaultBurst), 1);
        assert_eq!(a.items(SpanKind::FaultBurst), 3);
        assert_eq!(a.self_ns(SpanKind::BatchSample).mean(), 200.0);
    }

    #[test]
    fn fold_records_itself_and_preserves_order_determinism() {
        let mk = |ns: u64| {
            let mut s = SpanStats::new();
            s.record(SpanKind::Trial, ns, 1);
            s
        };
        let folded = SpanStats::fold([mk(10), mk(20), mk(30)]);
        assert_eq!(folded.count(SpanKind::Trial), 3);
        assert_eq!(folded.count(SpanKind::Fold), 1);
        assert_eq!(folded.items(SpanKind::Fold), 3);
        assert_eq!(folded.self_ns(SpanKind::Trial).mean(), 20.0);
    }

    #[test]
    fn manifest_json_has_stable_fields() {
        let m = RunManifest::new()
            .with_protocol("majority")
            .with_population(1_000_000)
            .with_master_seed(7)
            .with_threads(4)
            .with_git_rev("abc123");
        let j = m.to_json();
        assert!(j.starts_with("{\"schema\":\"pp-run/v1\""));
        assert!(j.contains("\"protocol\":\"majority\""));
        assert!(j.contains("\"population\":1000000"));
        assert!(j.contains("\"master_seed\":7"));
        assert!(j.contains("\"threads\":4"));
        assert!(j.contains("\"fault_plan\":null"));
        assert!(j.contains("\"git_rev\":\"abc123\""));
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let mut t = ChromeTracer::new().with_manifest(RunManifest::new().with_protocol("epi"));
        t.tag_worker(2);
        t.enter(SpanKind::BatchSample);
        t.exit(SpanKind::BatchSample, 42);
        t.instant(SpanKind::FaultBurst, 5);
        let j = t.to_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"name\":\"batch_sample\""));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"args\":{\"items\":42}"));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"tid\":2"));
        assert!(j.contains("\"manifest\":{\"schema\":\"pp-run/v1\""));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn span_stats_json_orders_kinds_deterministically() {
        let mut s = SpanStats::new();
        s.record(SpanKind::BatchApply, 50, 2);
        s.record(SpanKind::SchedulerDraw, 10, 1);
        let j = s.to_json();
        let draw = j.find("scheduler_draw").unwrap();
        let apply = j.find("batch_apply").unwrap();
        assert!(draw < apply, "kinds must render in discriminant order");
        assert!(j.starts_with("{\"schema\":\"pp-trace/v1\""));
    }
}
