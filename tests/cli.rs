//! End-to-end tests of the `pp` command-line binary.

use std::process::Command;

fn pp(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pp"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn qe_prints_quantifier_free_form() {
    let (ok, text) = pp(&["qe", "exists q. x = 2 * q"]);
    assert!(ok, "{text}");
    assert!(text.contains("quantifier-free form"), "{text}");
    assert!(text.contains("2 | "), "must contain a divisibility atom: {text}");
}

#[test]
fn simulate_reports_stabilization() {
    let (ok, text) = pp(&["simulate", "a > b", "a=5", "b=3", "--seed", "7"]);
    assert!(ok, "{text}");
    assert!(text.contains("ground truth = true"), "{text}");
    assert!(text.contains("stabilized to true"), "{text}");
}

#[test]
fn verify_runs_exhaustively() {
    let (ok, text) = pp(&["verify", "x = 1 mod 2", "--max-n", "4"]);
    assert!(ok, "{text}");
    assert!(text.contains("verified exhaustively"), "{text}");
    assert!(text.contains("all stably correct"), "{text}");
}

#[test]
fn analyze_prints_exact_expectation() {
    let (ok, text) = pp(&["analyze", "a > b", "a=3", "b=2"]);
    assert!(ok, "{text}");
    assert!(text.contains("exact E[interactions"), "{text}");
    assert!(text.contains("commits to"), "{text}");
}

#[test]
fn graph_subcommand_runs_theorem7() {
    let (ok, text) = pp(&["graph", "--kind", "cycle", "a > b", "a=3", "b=2", "--seed", "3"]);
    assert!(ok, "{text}");
    assert!(text.contains("Theorem 7"), "{text}");
    assert!(text.contains("stabilized to true"), "{text}");
}

#[test]
fn errors_are_reported_with_usage() {
    let (ok, text) = pp(&["bogus"]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");
    let (ok, text) = pp(&["simulate", "a > b", "zz=1"]);
    assert!(!ok);
    assert!(text.contains("does not occur"), "{text}");
}
