//! Urn automata — the companion storage model of §8.
//!
//! "One direction we have explored \[2\] is to define a novel storage
//! device, the *urn*, which contains a multiset of tokens from a finite
//! alphabet. It functions as auxiliary storage for a finite control …
//! Access to the tokens in the urn is by uniform random sampling, making
//! it similar to the model of conjugating automata."
//!
//! This module renders that model executable: a finite control repeatedly
//! samples one token uniformly from the urn; the transition function maps
//! `(state, token)` to a new state plus a multiset of tokens to put back
//! (none = consume, one = replace, several = grow the urn). The automaton
//! halts on reaching a halt state, or when the urn empties.
//!
//! Two example automata show the model's two regimes:
//!
//! * [`parity_automaton`] — consume-and-toggle; exact (it halts when the
//!   urn is empty, which the *control* observes — unlike a population,
//!   the automaton's sampling loop knows when nothing is left);
//! * [`majority_automaton`] — pairwise cancellation with a k-streak
//!   stopping rule; correct with high probability, mirroring the
//!   conjugating-automaton zero test.

use rand::Rng;

/// A transition: next control state plus tokens returned to the urn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrnAction {
    /// Next control state.
    pub next: usize,
    /// Tokens put (back) into the urn.
    pub put: Vec<u8>,
}

/// Errors from construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UrnError {
    /// A transition mentions an out-of-range state or token.
    BadTransition {
        /// Offending state.
        state: usize,
        /// Offending token.
        token: u8,
    },
    /// The run exceeded its step budget.
    OutOfFuel {
        /// The exhausted budget.
        fuel: u64,
    },
}

impl std::fmt::Display for UrnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadTransition { state, token } => {
                write!(f, "transition from state {state} on token {token} is out of range")
            }
            Self::OutOfFuel { fuel } => write!(f, "no halt within {fuel} samples"),
        }
    }
}

impl std::error::Error for UrnError {}

/// Outcome of a halted urn-automaton run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrnRun {
    /// Control state at halt.
    pub state: usize,
    /// Final urn contents as per-token counts.
    pub urn: Vec<u64>,
    /// Samples drawn.
    pub samples: u64,
}

/// An urn automaton: finite control + a token urn accessed by uniform
/// random sampling.
#[derive(Debug, Clone)]
pub struct UrnAutomaton {
    num_states: usize,
    num_tokens: u8,
    start: usize,
    /// `halt[s]` marks state `s` as halting.
    halt: Vec<bool>,
    /// `delta[s * num_tokens + t]`.
    delta: Vec<UrnAction>,
}

impl UrnAutomaton {
    /// Creates an automaton.
    ///
    /// * `delta(state, token)` must be defined for every pair: supply a
    ///   dense table in row-major `(state, token)` order.
    /// * A run halts in any state with `halt[state]`, or when the urn
    ///   empties (the control observes exhaustion).
    ///
    /// # Errors
    ///
    /// Returns [`UrnError::BadTransition`] if any action mentions an
    /// out-of-range state or token.
    ///
    /// # Panics
    ///
    /// Panics if table or `halt` dimensions are inconsistent or `start`
    /// is out of range.
    pub fn new(
        num_states: usize,
        num_tokens: u8,
        start: usize,
        halt: Vec<bool>,
        delta: Vec<UrnAction>,
    ) -> Result<Self, UrnError> {
        assert_eq!(halt.len(), num_states, "halt flags must cover all states");
        assert_eq!(
            delta.len(),
            num_states * num_tokens as usize,
            "transition table must be dense"
        );
        assert!(start < num_states, "start state out of range");
        for (i, a) in delta.iter().enumerate() {
            let state = i / num_tokens as usize;
            let token = (i % num_tokens as usize) as u8;
            if a.next >= num_states || a.put.iter().any(|&t| t >= num_tokens) {
                return Err(UrnError::BadTransition { state, token });
            }
        }
        Ok(Self { num_states, num_tokens, start, halt, delta })
    }

    /// Number of control states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Token alphabet size.
    pub fn num_tokens(&self) -> u8 {
        self.num_tokens
    }

    /// Runs on an initial urn (`initial[t]` copies of token `t`) for at
    /// most `fuel` samples.
    ///
    /// # Errors
    ///
    /// Returns [`UrnError::OutOfFuel`] if no halt occurs in time.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != num_tokens`.
    pub fn run(
        &self,
        initial: &[u64],
        fuel: u64,
        rng: &mut impl Rng,
    ) -> Result<UrnRun, UrnError> {
        assert_eq!(initial.len(), self.num_tokens as usize, "urn arity mismatch");
        let mut urn = initial.to_vec();
        let mut total: u64 = urn.iter().sum();
        let mut state = self.start;
        let mut samples = 0u64;
        while !self.halt[state] && total > 0 {
            if samples >= fuel {
                return Err(UrnError::OutOfFuel { fuel });
            }
            samples += 1;
            // Uniform sample.
            let mut x = rng.gen_range(0..total);
            let mut token = 0u8;
            for (t, &c) in urn.iter().enumerate() {
                if x < c {
                    token = t as u8;
                    break;
                }
                x -= c;
            }
            urn[token as usize] -= 1;
            total -= 1;
            let action = &self.delta[state * self.num_tokens as usize + token as usize];
            state = action.next;
            for &t in &action.put {
                urn[t as usize] += 1;
                total += 1;
            }
        }
        Ok(UrnRun { state, urn, samples })
    }
}

/// Exact parity: one token type; the control toggles between states 0/1 as
/// it consumes tokens and reads the answer off its state when the urn
/// empties. Halts in state = (count mod 2).
pub fn parity_automaton() -> UrnAutomaton {
    UrnAutomaton::new(
        2,
        1,
        0,
        vec![false, false], // halts only by urn exhaustion
        vec![
            UrnAction { next: 1, put: vec![] }, // state 0, token 0: toggle
            UrnAction { next: 0, put: vec![] }, // state 1, token 0: toggle
        ],
    )
    .expect("static table is valid")
}

/// Majority with high probability: tokens `A = 0`, `B = 1`. The control
/// holds at most one token: a held `A` cancels a sampled `B` and vice
/// versa; sampling `k` consecutive tokens of the kind already held is
/// taken as evidence the other kind is exhausted.
///
/// States encode `(holding, streak)`:
/// `0` = empty-handed; `1 + h*k + s` = holding kind `h` with streak `s`;
/// halt states `H_A = 1 + 2k`, `H_B = 2 + 2k` declare the winner.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn majority_automaton(k: u32) -> UrnAutomaton {
    assert!(k >= 1, "streak parameter must be positive");
    let k = k as usize;
    let hold = |h: usize, s: usize| 1 + h * k + s; // s in 0..k
    let halt_a = 1 + 2 * k;
    let halt_b = 2 + 2 * k;
    let num_states = halt_b + 1;
    let mut delta = Vec::with_capacity(num_states * 2);
    let mut halt = vec![false; num_states];
    halt[halt_a] = true;
    halt[halt_b] = true;
    for s in 0..num_states {
        for t in 0..2usize {
            let action = if s == 0 {
                // Empty-handed: pick the token up.
                UrnAction { next: hold(t, 0), put: vec![] }
            } else if s == halt_a || s == halt_b {
                UrnAction { next: s, put: vec![t as u8] }
            } else {
                let h = (s - 1) / k;
                let streak = (s - 1) % k;
                if t == h {
                    // Same kind again: streak grows; put it back.
                    let next = if streak + 1 >= k {
                        if h == 0 {
                            halt_a
                        } else {
                            halt_b
                        }
                    } else {
                        hold(h, streak + 1)
                    };
                    UrnAction { next, put: vec![t as u8] }
                } else {
                    // Opposite kind: cancel both, start over.
                    UrnAction { next: 0, put: vec![] }
                }
            };
            delta.push(action);
        }
    }
    UrnAutomaton::new(num_states, 2, 0, halt, delta).expect("static table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::seeded_rng;

    #[test]
    fn construction_validates() {
        let bad = UrnAutomaton::new(
            1,
            1,
            0,
            vec![false],
            vec![UrnAction { next: 5, put: vec![] }],
        );
        assert!(matches!(bad, Err(UrnError::BadTransition { .. })));
        let bad_token = UrnAutomaton::new(
            1,
            1,
            0,
            vec![false],
            vec![UrnAction { next: 0, put: vec![9] }],
        );
        assert!(matches!(bad_token, Err(UrnError::BadTransition { .. })));
    }

    #[test]
    fn parity_is_exact() {
        let a = parity_automaton();
        let mut rng = seeded_rng(3);
        for count in 0u64..20 {
            let run = a.run(&[count], 1000, &mut rng).unwrap();
            assert_eq!(run.state as u64, count % 2, "count = {count}");
            assert_eq!(run.samples, count, "consumes every token exactly once");
            assert_eq!(run.urn, vec![0]);
        }
    }

    #[test]
    fn majority_with_clear_margin_is_usually_right() {
        let a = majority_automaton(4);
        let mut rng = seeded_rng(7);
        let halt_b = 2 + 2 * 4; // see constructor layout
        let mut right = 0u32;
        let trials = 200;
        for _ in 0..trials {
            let run = a.run(&[20, 60], 1_000_000, &mut rng).unwrap();
            if run.state == halt_b {
                right += 1;
            }
        }
        assert!(right > trials * 9 / 10, "correct {right}/{trials}");
    }

    #[test]
    fn majority_cancellation_preserves_difference() {
        // The cancellation invariant: when the automaton halts, the urn's
        // A−B difference equals the initial difference up to the held/k
        // returned tokens; with a clear winner declared, the loser count
        // should be (nearly) zero most of the time.
        let a = majority_automaton(5);
        let mut rng = seeded_rng(11);
        let run = a.run(&[5, 25], 1_000_000, &mut rng).unwrap();
        // Winner B: all 5 A-tokens cancelled 5 B-tokens.
        assert!(run.urn[0] <= 5);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        // A looping automaton that always puts the token back.
        let a = UrnAutomaton::new(
            1,
            1,
            0,
            vec![false],
            vec![UrnAction { next: 0, put: vec![0] }],
        )
        .unwrap();
        let mut rng = seeded_rng(0);
        assert_eq!(a.run(&[1], 100, &mut rng), Err(UrnError::OutOfFuel { fuel: 100 }));
    }

    #[test]
    fn growing_urn_is_supported() {
        // Every sample duplicates the token once, then halts at state 1.
        let a = UrnAutomaton::new(
            2,
            1,
            0,
            vec![false, true],
            vec![
                UrnAction { next: 1, put: vec![0, 0] },
                UrnAction { next: 1, put: vec![0] },
            ],
        )
        .unwrap();
        let mut rng = seeded_rng(1);
        let run = a.run(&[3], 100, &mut rng).unwrap();
        assert_eq!(run.urn, vec![4]); // consumed 1, put back 2
    }
}
