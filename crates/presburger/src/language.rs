//! Language acceptance by population protocols (§3.4–§3.5, Corollary 4).
//!
//! Under the *string input convention* the `i`-th input symbol goes to the
//! `i`-th agent; since stably computable predicates are invariant under
//! agent renaming (Theorem 1), only *symmetric* languages can be accepted
//! (Corollary 1), and a symmetric language is determined by the Parikh
//! image of its words (Lemma 2). Corollary 4: a symmetric language is
//! accepted by a population protocol if its Parikh image is semilinear —
//! equivalently (Ginsburg–Spanier), Presburger-definable.
//!
//! [`SymmetricLanguage`] packages that pipeline: a Presburger formula over
//! symbol counts plus an alphabet, with membership testing by evaluation
//! and by actual population simulation.

use pp_core::{seeded_rng, Simulation};
use rand::Rng;

use crate::compile::{compile, CompileError, CompiledProtocol};
use crate::formula::Formula;
use crate::semilinear::{parikh, SemilinearSet};

/// A symmetric language over a finite alphabet, defined by a Presburger
/// predicate on its Parikh image.
///
/// # Example
///
/// Words with equally many `a`s and `b`s — symmetric, non-regular, and
/// accepted by a population protocol:
///
/// ```
/// use pp_presburger::language::SymmetricLanguage;
/// use pp_presburger::parse;
///
/// let eq = SymmetricLanguage::new(
///     vec!['a', 'b'],
///     parse("a_count = b_count").unwrap().formula,
/// ).unwrap();
/// assert!(eq.contains("abba"));
/// assert!(!eq.contains("abb"));
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricLanguage {
    alphabet: Vec<char>,
    protocol: CompiledProtocol,
}

impl SymmetricLanguage {
    /// Defines the language `{w : φ(Ψ(w))}`, where `Ψ` is the Parikh map
    /// and `φ`'s free variable `i` counts occurrences of `alphabet[i]`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the formula's free variables exceed
    /// the alphabet size (or the alphabet is empty).
    pub fn new(alphabet: Vec<char>, formula: Formula) -> Result<Self, CompileError> {
        let protocol = compile(&formula, alphabet.len())?;
        Ok(Self { alphabet, protocol })
    }

    /// Defines the language whose Parikh image is the given semilinear set
    /// (the exact statement of Corollary 4).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on dimension mismatch.
    pub fn from_semilinear(
        alphabet: Vec<char>,
        image: &SemilinearSet,
    ) -> Result<Self, CompileError> {
        Self::new(alphabet, image.to_formula())
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// The compiled population protocol deciding the language.
    pub fn protocol(&self) -> &CompiledProtocol {
        &self.protocol
    }

    /// Membership by direct evaluation of the Parikh image.
    ///
    /// # Panics
    ///
    /// Panics if `word` contains symbols outside the alphabet.
    pub fn contains(&self, word: &str) -> bool {
        let counts = parikh(word.chars(), &self.alphabet);
        self.protocol.eval(&counts)
    }

    /// Membership decided by actually running the population protocol
    /// under the string input convention (agent `i` receives `word[i]`),
    /// with uniform random pairing, for up to `horizon` interactions.
    ///
    /// Returns `None` if the population had not stabilized to the correct
    /// verdict within the horizon (increase it), `Some(verdict)` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the word is shorter than 2 symbols (a population needs two
    /// agents) or contains symbols outside the alphabet.
    pub fn accepts_via_population(
        &self,
        word: &str,
        horizon: u64,
        rng: &mut impl Rng,
    ) -> Option<bool> {
        let inputs: Vec<usize> = word
            .chars()
            .map(|c| {
                self.alphabet
                    .iter()
                    .position(|&a| a == c)
                    .unwrap_or_else(|| panic!("symbol {c:?} not in alphabet"))
            })
            .collect();
        let expected = self.contains(word);
        let mut sim = Simulation::from_inputs(self.protocol.clone(), inputs);
        let report = sim.measure_stabilization(&expected, horizon, rng);
        report.converged().then_some(expected)
    }

    /// Convenience: [`accepts_via_population`](Self::accepts_via_population)
    /// with a fixed seed and a generous horizon.
    ///
    /// # Panics
    ///
    /// Panics if the population did not stabilize (pathological only for
    /// huge words).
    pub fn accepts(&self, word: &str) -> bool {
        let n = word.chars().count() as u64;
        let horizon = (200 * n * n * (64 - n.leading_zeros() as u64)).max(100_000);
        let mut rng = seeded_rng(0xfeed);
        self.accepts_via_population(word, horizon, &mut rng)
            .expect("population did not stabilize within the default horizon")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::semilinear::LinearSet;

    fn equal_ab() -> SymmetricLanguage {
        SymmetricLanguage::new(vec!['a', 'b'], parse("na = nb").unwrap().formula).unwrap()
    }

    #[test]
    fn membership_by_parikh_image() {
        let l = equal_ab();
        assert!(l.contains("ab"));
        assert!(l.contains("abba"));
        assert!(l.contains("bbaa"));
        assert!(!l.contains("aab"));
        assert!(l.contains("")); // 0 = 0
    }

    #[test]
    fn population_decides_membership() {
        let l = equal_ab();
        assert!(l.accepts("abab"));
        assert!(!l.accepts("abb"));
        assert!(l.accepts("bbbaaa"));
    }

    #[test]
    fn symmetry_is_automatic() {
        // All permutations of a word share a verdict (Corollary 1).
        let l = equal_ab();
        for w in ["aabb", "abab", "abba", "baab", "baba", "bbaa"] {
            assert!(l.contains(w), "{w}");
        }
    }

    #[test]
    fn from_semilinear_matches_membership() {
        // Parikh image {(k, 2k)} : twice as many b as a.
        let img = SemilinearSet::new(vec![LinearSet::new(vec![0, 0], vec![vec![1, 2]])]);
        let l = SymmetricLanguage::from_semilinear(vec!['a', 'b'], &img).unwrap();
        assert!(l.contains("abb"));
        assert!(l.contains("aabbbb")); // (2, 4)
        assert!(l.contains(""));
        assert!(!l.contains("ab"));
        assert!(l.accepts("bab"));
        assert!(!l.accepts("ba"));
    }

    #[test]
    fn divisibility_language() {
        // {w : |w|_a ≡ 0 (mod 3)}.
        let l = SymmetricLanguage::new(
            vec!['a', 'b'],
            parse("na = 0 mod 3").unwrap().formula,
        )
        .unwrap();
        assert!(l.contains("aaab"));
        assert!(!l.contains("aab"));
        assert!(l.accepts("aaabbb"));
        assert!(!l.accepts("aabbbb"));
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn foreign_symbols_rejected() {
        equal_ab().contains("abc");
    }
}
