//! E13 (ablation, beyond the paper) — what the Lemma 5 construction buys.
//!
//! The paper's majority is exact and generalizes to every Presburger
//! predicate, at the cost of a leader bottleneck: Θ(n² log n). The 3-state
//! approximate-majority protocol (Angluin–Aspnes–Eisenstat 2007) is
//! exponentially faster but errs. This bench quantifies both sides:
//!
//! * speed: stabilization interactions across an n sweep;
//! * correctness: the 3-state protocol's error probability computed
//!   **exactly** from the configuration Markov chain (`pp-analysis`),
//!   no sampling.

use pp_analysis::MarkovAnalysis;
use pp_bench::{fit_exponent, fmt, mean, print_header};
use pp_core::ensemble::Ensemble;
use pp_core::Simulation;
use pp_protocols::ext::ApproximateMajority;
use pp_protocols::majority;

fn main() {
    println!("\nE13a: speed — exact (Lemma 5) vs 3-state approximate majority");
    println!("60/40 split, mean stabilization interactions\n");
    print_header(&["n", "exact", "approx", "speedup"], &[6, 12, 12, 9]);

    let mut ns = Vec::new();
    let mut exact_ts = Vec::new();
    let mut approx_ts = Vec::new();
    let n_list: &[u64] = if pp_bench::smoke() { &[20, 40] } else { &[20, 40, 80, 160, 320] };
    for &n in n_list {
        let ones = n * 3 / 5;
        let zeros = n - ones;
        let trials = if pp_bench::smoke() { 5 } else { (200_000 / (n * n)).clamp(10, 60) };
        // Both protocols share trial `i`'s RNG stream (exact first, then
        // approximate, exactly as the former sequential loop did); the
        // ensemble runs whole trials in parallel with offset seeding, so
        // the printed means are unchanged at any thread count.
        let outcomes = Ensemble::new(trials, 0).legacy_offset_seeds().map(|_trial, rng| {
            let mut sim = Simulation::from_counts(majority(), [(0usize, zeros), (1usize, ones)]);
            let rep = sim.measure_stabilization(&true, 2000 * n * n, rng);
            let exact = rep.stabilized_at.expect("exact converges") as f64;

            let mut sim =
                Simulation::from_counts(ApproximateMajority, [(false, zeros), (true, ones)]);
            let rep = sim.measure_stabilization(&true, 2000 * n * n, rng);
            (exact, rep.stabilized_at.map(|t| t as f64))
        });
        let ex: Vec<f64> = outcomes.iter().map(|&(e, _)| e).collect();
        let ap: Vec<f64> = outcomes.iter().filter_map(|&(_, a)| a).collect();
        let (e, a) = (mean(&ex), mean(&ap));
        println!("{:>6} {:>12} {:>12} {:>9}", n, fmt(e), fmt(a), fmt(e / a));
        ns.push(n as f64);
        exact_ts.push(e);
        approx_ts.push(a);
    }
    println!(
        "\nfitted exponents: exact {:.2} (Θ(n² log n)), approx {:.2} (Θ(n log n))\n",
        fit_exponent(&ns, &exact_ts),
        fit_exponent(&ns, &approx_ts)
    );

    println!("E13b: exact error probability of the 3-state protocol (Markov chain)\n");
    print_header(&["n", "ones", "zeros", "P[wrong verdict]"], &[5, 6, 6, 17]);
    let splits: &[(u64, u64)] = if pp_bench::smoke() {
        &[(3, 2), (4, 3)]
    } else {
        &[(3, 2), (4, 3), (5, 4), (6, 3), (7, 5), (8, 4)]
    };
    for &(ones, zeros) in splits {
        let m = MarkovAnalysis::analyze(ApproximateMajority, [(true, ones), (false, zeros)]);
        let probs = m.commit_probabilities();
        // Wrong classes: committed histograms whose consensus is not "true".
        let mut wrong = 0.0;
        for (cls, p) in m.classes().iter().zip(&probs) {
            let all_true = cls.len() == 1 && cls[0].0;
            if !all_true {
                wrong += p;
            }
        }
        println!("{:>5} {:>6} {:>6} {:>17}", ones + zeros, ones, zeros, fmt(wrong));
    }
    println!("\nablation verdict: the paper's construction pays ~n extra time for");
    println!("exactness on every margin; the 3-state shortcut errs on thin margins\n");
}
