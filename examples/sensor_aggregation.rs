//! Sensor-network aggregation on restricted interaction graphs (§2, §5).
//!
//! The paper motivates the model with sensor networks whose units meet
//! unpredictably. This example runs two aggregation predicates — majority
//! voting and parity — on populations whose interaction graphs are *not*
//! complete (a line of sensors along a pipeline, a star around a base
//! station, a random mobility graph), using the Theorem 7 / Fig. 1 baton
//! simulator, and compares convergence against the complete graph.
//!
//! Run with: `cargo run --example sensor_aggregation`

use population_protocols::core::prelude::*;
use population_protocols::graphs;
use population_protocols::protocols::{majority, GraphSimulator};

fn run_on_graph(
    name: &str,
    graph: &graphs::InteractionGraph,
    inputs: &[usize],
    expected: bool,
    horizon: u64,
    seed: u64,
) {
    let mut rng = seeded_rng(seed);
    let mut sim = AgentSimulation::from_inputs(
        GraphSimulator::new(majority()),
        inputs,
        graph.scheduler(),
    );
    let report = sim.measure_stabilization(&expected, horizon, &mut rng);
    match report.stabilized_at {
        Some(t) => println!(
            "{name:<18} edges = {:4}  stabilized after {t:>9} interactions"
            , graph.edge_count()
        ),
        None => println!("{name:<18} edges = {:4}  NOT stabilized in {horizon}", graph.edge_count()),
    }
}

fn main() {
    let n = 12usize;
    // 7 "yes" sensors, 5 "no": majority = yes.
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 12 < 7)).collect();
    let expected = true;

    println!("majority vote over {n} passively mobile sensors");
    println!("(complete-graph protocol transformed by Theorem 7 / Fig. 1)\n");

    let mut rng = seeded_rng(99);
    run_on_graph("complete", &graphs::complete(n), &inputs, expected, 10_000_000, 1);
    run_on_graph("undirected line", &graphs::undirected_line(n), &inputs, expected, 60_000_000, 2);
    run_on_graph("directed cycle", &graphs::directed_cycle(n), &inputs, expected, 60_000_000, 3);
    run_on_graph("star", &graphs::star(n), &inputs, expected, 60_000_000, 4);
    run_on_graph(
        "random G(n, 0.2)",
        &graphs::erdos_renyi_connected(n, 0.2, &mut rng),
        &inputs,
        expected,
        60_000_000,
        5,
    );

    println!("\nReference: the bare (untransformed) protocol on the complete graph:");
    let mut sim = Simulation::from_counts(majority(), [(0usize, 5), (1usize, 7)]);
    let mut rng = seeded_rng(6);
    let report = sim.measure_stabilization(&expected, 10_000_000, &mut rng);
    println!(
        "bare majority      n = {n}   stabilized after {:>9} interactions",
        report.stabilized_at.unwrap_or(u64::MAX)
    );
}
