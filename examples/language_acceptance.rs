//! Language acceptance and one-way communication (§3.5, §8).
//!
//! 1. Symmetric languages: `{w : |w|_a = |w|_b}` is non-regular but its
//!    Parikh image is semilinear, so a population accepts it (Corollary 4).
//! 2. One-way protocols: count-to-k still works when interactions can only
//!    change the responder (§8's observation model).
//!
//! Run with: `cargo run --release --example language_acceptance`

use population_protocols::core::prelude::*;
use population_protocols::presburger::{parse, SymmetricLanguage};
use population_protocols::protocols::oneway::{is_one_way, one_way_count_threshold};

fn main() {
    println!("=== Corollary 4: accepting {{w : #a(w) = #b(w)}} ===\n");
    let lang = SymmetricLanguage::new(
        vec!['a', 'b'],
        parse("na = nb").unwrap().formula,
    )
    .expect("formula compiles");

    for word in ["abab", "aabb", "abb", "bbbaaa", "ba"] {
        let by_parikh = lang.contains(word);
        let by_population = lang.accepts(word);
        println!(
            "  {word:<8} Parikh image says {by_parikh:<5}  population stabilized to {by_population}"
        );
        assert_eq!(by_parikh, by_population);
    }

    println!("\n=== §8 one-way communication: count-to-3 by observation only ===\n");
    let protocol = one_way_count_threshold(3);
    println!(
        "protocol is structurally one-way: {}",
        is_one_way(protocol.clone(), &[true, false])
    );
    let mut rng = seeded_rng(5);
    for ones in [2u64, 3, 7] {
        let mut sim = Simulation::from_counts(protocol.clone(), [(true, ones), (false, 20 - ones)]);
        let expected = ones >= 3;
        let rep = sim.measure_stabilization(&expected, 500_000, &mut rng);
        println!(
            "  {ones} ones among 20 agents: predicate = {expected}, stabilized = {} \
             (at interaction {})",
            rep.converged(),
            rep.stabilized_at.unwrap_or(0)
        );
    }
}
