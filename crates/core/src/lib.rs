//! Core model of *population protocols*: networks of passively mobile
//! finite-state sensors, after Angluin, Aspnes, Diamadi, Fischer and Peralta,
//! "Computation in networks of passively mobile finite-state sensors"
//! (PODC 2004).
//!
//! A population protocol is a tuple `(X, Y, Q, I, O, δ)`: finite input and
//! output alphabets, a finite state set, an input function `I : X → Q`, an
//! output function `O : Q → Y`, and a joint transition function
//! `δ : Q × Q → Q × Q` applied to ordered pairs (initiator, responder) of
//! agents when they *interact*. The protocol runs in a *population* of `n`
//! anonymous agents whose permitted interactions are the edges of an
//! interaction graph; under a fairness condition the population *stably
//! computes* an input–output relation (§3 of the paper).
//!
//! This crate provides:
//!
//! * the [`Protocol`] trait ([`protocol`]),
//! * dense state interning and transition memoization for fast simulation
//!   ([`registry`]),
//! * count-based (complete-graph) and agent-based (arbitrary-graph)
//!   configurations ([`config`]),
//! * schedulers, including the uniform-random pairing of *conjugating
//!   automata* (§6) ([`scheduler`]),
//! * a simulation engine with stabilization measurement ([`engine`]),
//! * the paper's input/output encoding conventions (§3.4) ([`convention`]).
//!
//! # Example
//!
//! Run the paper's opening "flock of birds" protocol (§1): do at least five
//! sensors report an elevated temperature?
//!
//! ```
//! use pp_core::prelude::*;
//!
//! /// Count-to-five: states q0..=q5; q5 is the alert state.
//! struct CountToFive;
//!
//! impl Protocol for CountToFive {
//!     type State = u8;
//!     type Input = bool;
//!     type Output = bool;
//!
//!     fn input(&self, &elevated: &bool) -> u8 {
//!         u8::from(elevated)
//!     }
//!     fn output(&self, &q: &u8) -> bool {
//!         q == 5
//!     }
//!     fn delta(&self, &p: &u8, &q: &u8) -> (u8, u8) {
//!         if p + q >= 5 {
//!             (5, 5)
//!         } else {
//!             (p + q, 0)
//!         }
//!     }
//! }
//!
//! let mut rng = seeded_rng(7);
//! // 6 birds with elevated temperature among 100.
//! let mut sim = Simulation::from_counts(CountToFive, [(true, 6), (false, 94)]);
//! sim.run(200_000, &mut rng);
//! assert_eq!(sim.consensus_output(), Some(&true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent_batch;
pub mod batch;
pub mod bitset;
pub mod config;
pub mod convention;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod faults;
pub mod fxhash;
pub mod observe;
pub mod protocol;
pub mod registry;
pub mod sampling;
pub mod scheduler;
pub mod spec;
pub mod trace;

pub mod prelude {
    //! Convenient glob import for the most common types.
    pub use crate::bitset::BitSet;
    pub use crate::config::{AgentConfig, AgentStore, CanonicalConfig, CountConfig};
    pub use crate::convention::{all_agents_output, symbol_count_output, zero_nonzero_output};
    pub use crate::engine::{
        consensus_reached, seeded_rng, AgentSimulation, Simulation, StabilizationReport,
        StepTransition,
    };
    pub use crate::ensemble::{
        split_seed, Ensemble, EnsembleReport, FaultEnsembleReport, LogHistogram, SeedMode,
        TrialSummary, Welford,
    };
    pub use crate::error::PopulationError;
    pub use crate::faults::{
        enumeration_count, unrank_multiset, AdversarialInit, AdversarialInitMode, Churn,
        CorruptionMode, CrashFaults, FaultCtx, FaultPlan, FaultRunReport, InteractionDrop,
        Mttr, RecoveryReport, TransientCorruption,
    };
    pub use crate::observe::{
        BatchEvent, BatchPair, ConvergenceProbe, InteractionEvent, JsonlSink, MergeProbe,
        MetricsProbe, NoProbe, OccupancyFieldProbe, Probe, Snapshot, TimingProbe,
        TrajectoryProbe,
    };
    pub use crate::protocol::{CoinProtocol, FnProtocol, Protocol, SyntheticCoins};
    pub use crate::registry::{DenseRuntime, OutputId, StateId};
    pub use crate::scheduler::{
        BatchPairSampler, CsrScheduler, EdgeListScheduler, PairSampler, UniformPairScheduler,
    };
    pub use crate::spec::{
        EngineSel, JsonValue, ProtocolRef, RunOutcome, RunReport, RunSpec, SpecError,
        StopCondition, TopologySpec,
    };
    pub use crate::trace::{
        ChromeTracer, NoTracer, RunManifest, SpanKind, SpanStats, Tracer,
    };
}

pub use bitset::BitSet;
pub use config::{AgentConfig, AgentStore, CanonicalConfig, CountConfig};
pub use engine::{
    consensus_reached, seeded_rng, AgentSimulation, Simulation, StabilizationReport,
    StepTransition,
};
pub use ensemble::{
    split_seed, Ensemble, EnsembleReport, FaultEnsembleReport, LogHistogram, SeedMode,
    TrialSummary, Welford,
};
pub use error::PopulationError;
pub use faults::{
    enumeration_count, unrank_multiset, AdversarialInit, AdversarialInitMode, Churn,
    CorruptionMode, CrashFaults, FaultCtx, FaultPlan, FaultRunReport, InteractionDrop, Mttr,
    RecoveryReport, TransientCorruption,
};
pub use observe::{
    BatchEvent, BatchPair, ConvergenceProbe, InteractionEvent, JsonlSink, MergeProbe,
    MetricsProbe, NoProbe, OccupancyFieldProbe, Probe, Snapshot, TimingProbe,
    TrajectoryProbe,
};
pub use protocol::{CoinProtocol, FnProtocol, Protocol, SyntheticCoins};
pub use registry::{DenseRuntime, OutputId, StateId};
pub use scheduler::{
    BatchPairSampler, CsrScheduler, EdgeListScheduler, PairSampler, UniformPairScheduler,
};
pub use spec::{
    EngineSel, FaultSpec, JsonValue, MeanFieldSpec, ProbeSpec, ProtocolRef, RunOutcome,
    RunReport, RunSpec, SeedModeSpec, SingleRun, SpecError, StopCondition, TopologySpec,
};
pub use trace::{ChromeTracer, NoTracer, RunManifest, SpanKind, SpanStats, Tracer};
