//! Schedulers: who interacts next?
//!
//! The model itself is nondeterministic — any encounter permitted by the
//! interaction graph may happen next, subject only to fairness (§3.1). For
//! simulation we must pick. The paper's probabilistic layer (§6,
//! *conjugating automata*) draws the ordered pair uniformly at random from
//! the edges of the interaction graph; random pairing guarantees fairness
//! with probability 1.
//!
//! [`UniformPairScheduler`] implements the complete-graph case,
//! [`EdgeListScheduler`] the general case, [`RoundRobinScheduler`] a
//! deterministic fair schedule useful in tests, and [`ScriptedScheduler`] an
//! arbitrary (possibly adversarial) fixed schedule.

use std::collections::HashMap;

use rand::{Rng, RngCore};

use crate::error::PopulationError;

/// A source of ordered agent pairs `(initiator, responder)` for agent-based
/// simulations.
pub trait PairSampler {
    /// Draws the next interacting pair. The two indices are always distinct
    /// and in `0..n`.
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32);

    /// Population size this sampler draws from.
    fn population(&self) -> usize;

    /// Number of schedulable pairs joining two agents for which `is_live`
    /// holds, or `None` if this sampler cannot tell (the engine then falls
    /// back to capped rejection sampling).
    ///
    /// [`AgentSimulation`](crate::AgentSimulation) calls this after every
    /// crash so that a *starved* schedule (zero live pairs) is detected
    /// structurally — an `O(n + m)` scan per crash — instead of by spinning
    /// through a 100k-draw rejection budget on every subsequent step.
    fn live_pairs(&self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        let _ = is_live;
        None
    }

    /// Preconditions future draws on liveness: after `mask_live` returns
    /// `Some(k)`, every [`sample`](Self::sample) hits a pair of live agents
    /// directly (no rejection needed) and `k` is the number of live pairs
    /// (`Some(0)` = starved; the caller must stop sampling). Returns `None`
    /// if this sampler does not support masking (the default).
    ///
    /// Samplers that support it rebuild an internal live-edge view, so the
    /// cost is paid once per crash burst rather than per draw.
    fn mask_live(&mut self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        let _ = is_live;
        None
    }
}

/// Extension of [`PairSampler`]: fills a buffer of `k` sampled pairs per
/// call, monomorphized over the RNG.
///
/// Two things make the batched form faster than `k` calls through the
/// object-safe [`sample`](PairSampler::sample):
///
/// * the RNG is a concrete type here, so the generator inlines into the
///   sampling loop instead of costing two virtual calls per draw;
/// * the loop body has no dependence between iterations, so the CPU can
///   overlap the random edge-array reads (memory-level parallelism) — at
///   populations whose edge list spills out of cache this is the dominant
///   win, because a sequential draw-apply-draw loop serializes one cache
///   miss per interaction.
///
/// The default implementation routes through `sample`, so any sampler can be
/// used where a `BatchPairSampler` is required; the built-in samplers
/// override it with stream-identical monomorphized loops (property-tested in
/// `tests/agent_batch_properties.rs`).
pub trait BatchPairSampler: PairSampler {
    /// Clears `buf` and fills it with `k` sampled pairs, exactly as `k`
    /// successive [`sample`](PairSampler::sample) calls would (same
    /// distribution; for the built-in samplers, the same RNG stream).
    fn sample_batch<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        k: usize,
        buf: &mut Vec<(u32, u32)>,
    ) {
        buf.clear();
        let mut r = rng;
        for _ in 0..k {
            let pair = self.sample(&mut r);
            buf.push(pair);
        }
    }
}

/// Uniform random ordered pairs from the complete interaction graph — the
/// sampling rule of conjugating automata (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPairScheduler {
    n: u32,
}

impl UniformPairScheduler {
    /// Creates a sampler over `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; [`try_new`](Self::try_new) reports the same
    /// condition as an error instead.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: errors with
    /// [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn try_new(n: usize) -> Result<Self, PopulationError> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall { n });
        }
        Ok(Self { n: u32::try_from(n).expect("population exceeds u32::MAX") })
    }
}

impl PairSampler for UniformPairScheduler {
    #[inline]
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        let u = rng.gen_range(0..self.n);
        let mut v = rng.gen_range(0..self.n - 1);
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn population(&self) -> usize {
        self.n as usize
    }

    /// Every ordered pair of distinct live agents: `live · (live − 1)`.
    fn live_pairs(&self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        let live = (0..self.n).filter(|&a| is_live(a)).count() as u64;
        Some(live * live.saturating_sub(1))
    }
}

impl BatchPairSampler for UniformPairScheduler {
    fn sample_batch<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        k: usize,
        buf: &mut Vec<(u32, u32)>,
    ) {
        buf.clear();
        buf.reserve(k);
        // Same inversion draw as `sample`, monomorphized: identical stream.
        for _ in 0..k {
            let u = rng.gen_range(0..self.n);
            let mut v = rng.gen_range(0..self.n - 1);
            if v >= u {
                v += 1;
            }
            buf.push((u, v));
        }
    }
}

/// Uniform random ordered pairs from an explicit directed edge list.
///
/// # Duplicate edges are weights
///
/// Each draw picks a uniformly random *slot* of the edge list, so an edge
/// listed `k` times is drawn with `k` times the probability of a singly
/// listed one — duplicates are a deliberate, validated way to weight the
/// schedule (the multigraph reading of §5's interaction graphs). Callers
/// who want exact uniformity over *distinct* edges must deduplicate first
/// ([`pp_graphs::InteractionGraph`] does) or use
/// [`CsrScheduler`], which merges duplicate edges into explicit weights at
/// construction.
///
/// [`pp_graphs::InteractionGraph`]: https://docs.rs/pp-graphs
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListScheduler {
    edges: Vec<(u32, u32)>,
    n: usize,
}

impl EdgeListScheduler {
    /// Creates a sampler over the given directed edges in a population of
    /// size `n`.
    ///
    /// # Panics
    ///
    /// Panics if the edge list is empty, contains a self-loop, or refers to
    /// an agent outside `0..n`; [`try_new`](Self::try_new) reports the same
    /// conditions as errors instead.
    pub fn new(n: usize, edges: Vec<(u32, u32)>) -> Self {
        Self::try_new(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: errors with [`PopulationError::NoEdges`] on an
    /// empty edge list, [`PopulationError::SelfLoop`] on an edge `(u, u)`,
    /// or [`PopulationError::EdgeOutOfRange`] on an endpoint outside `0..n`.
    ///
    /// Duplicate edges are accepted and act as weights (see the
    /// [type-level docs](Self)).
    pub fn try_new(n: usize, edges: Vec<(u32, u32)>) -> Result<Self, PopulationError> {
        if edges.is_empty() {
            return Err(PopulationError::NoEdges);
        }
        for &(u, v) in &edges {
            if u == v {
                return Err(PopulationError::SelfLoop { agent: u });
            }
            if (u as usize) >= n || (v as usize) >= n {
                let agent = if (u as usize) >= n { u } else { v };
                return Err(PopulationError::EdgeOutOfRange { agent, n });
            }
        }
        Ok(Self { edges, n })
    }

    /// The directed edges this sampler draws from.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

impl PairSampler for EdgeListScheduler {
    #[inline]
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        self.edges[rng.gen_range(0..self.edges.len())]
    }

    fn population(&self) -> usize {
        self.n
    }

    /// Number of edge *slots* whose endpoints are both live (duplicates
    /// count once per slot, consistent with their weighting semantics).
    fn live_pairs(&self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        Some(self.edges.iter().filter(|&&(u, v)| is_live(u) && is_live(v)).count() as u64)
    }
}

impl BatchPairSampler for EdgeListScheduler {
    fn sample_batch<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        k: usize,
        buf: &mut Vec<(u32, u32)>,
    ) {
        buf.clear();
        buf.reserve(k);
        let m = self.edges.len();
        // Same uniform slot draw as `sample`, monomorphized: identical
        // stream, and the random edge-array reads of consecutive iterations
        // are independent, so they overlap in the memory pipeline.
        for _ in 0..k {
            buf.push(self.edges[rng.gen_range(0..m)]);
        }
    }
}

/// Compressed-sparse-row edge sampler: the scalable form of
/// [`EdgeListScheduler`] for large interaction graphs (§5 at 10⁸ agents).
///
/// The graph is stored as a CSR adjacency (`offsets` + `targets`, edges
/// grouped by initiator) plus a parallel `srcs` column so a flat edge index
/// resolves to its ordered pair in `O(1)`. Construction counting-sorts the
/// input edges by initiator (no comparison sort) and **merges duplicate
/// edges into explicit weights**: a simple graph samples by one uniform
/// index per draw, a multigraph through a Walker–Vose alias table over
/// edges (the same machinery as [`WeightedPairScheduler`]) — `O(1)` either
/// way, and duplicates keep exactly the slot-multiplicity semantics of
/// `EdgeListScheduler`.
///
/// # Regular graphs need no `srcs` column
///
/// When every agent has the same out-degree `d` (a torus, a ring, …), the
/// CSR layout makes the initiator of flat edge `e` *arithmetic*:
/// `srcs[e] == e / d`, a shift when `d` is a power of two. Construction
/// detects this and skips materializing `srcs` entirely, which both saves
/// the column's memory (4 bytes/edge — 1.6 GB at 4·10⁸ edges) and, more
/// importantly, removes one random out-of-cache read per draw: at 10⁶+
/// agents the sampler's cost is dominated by latency of exactly these
/// reads, so halving them nearly halves ns/interaction. The computed value
/// is identical to the stored one, so sampled streams are unchanged.
///
/// # Crash masking
///
/// [`mask_live`](PairSampler::mask_live) is supported: it rebuilds a live
/// edge view (ids of edges joining two live agents, re-weighted and
/// re-aliased in the weighted case) once per crash burst, after which every
/// draw is preconditioned on liveness — no per-draw rejection, and a
/// starved schedule is reported as `Some(0)` instead of a rejection spin.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrScheduler {
    n: usize,
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s out-edges; length `n + 1`.
    offsets: Vec<u32>,
    /// Initiator of each edge (parallel to `targets`): resolves a flat edge
    /// index without a binary search over `offsets`. Empty when `regular`
    /// is set — the initiator is then computed, not loaded.
    srcs: Vec<u32>,
    /// `Some((d, log2 d))` when every agent has out-degree `d` (`log2 d`
    /// only when `d` is a power of two): `srcs[e] == e / d`.
    regular: Option<(u32, Option<u32>)>,
    /// Responder of each edge, grouped by initiator.
    targets: Vec<u32>,
    /// Stencil-compressed responder column (see [`StencilTargets`]); present
    /// on regular graphs whose vertices share at most 256 distinct
    /// neighborhood shapes. The batched sampler then reads one dictionary
    /// byte per *vertex* instead of one word per *edge*.
    stencil: Option<StencilTargets>,
    /// Delta-compressed responder column (see [`NarrowTargets`]); fallback
    /// when no stencil exists but nearly every target sits within `i16` of
    /// its initiator. The batched sampler gathers from this column — 2
    /// bytes per edge instead of 4 — so the hot working set halves;
    /// `targets` stays authoritative for `neighbors`, single draws, and the
    /// live-edge machinery.
    narrow: Option<NarrowTargets>,
    /// Per-edge weights (duplicate multiplicities); `None` when uniform.
    weights: Option<Vec<f64>>,
    /// Alias table over all edges; present iff `weights` is.
    alias: Option<(Vec<f64>, Vec<u32>)>,
    /// Live-edge view installed by `mask_live`; `None` = all edges live.
    live: Option<LiveEdges>,
}

/// Stencil-dictionary form of a regular CSR responder column. Lattice-like
/// graphs have very few distinct *neighborhood shapes*: on a torus every
/// interior vertex sees the same sorted delta-tuple `(-side, -1, +1, +side)`,
/// and only the wrap rows/columns differ — nine shapes in total, whatever
/// the size. When every vertex has the same out-degree `d` and the distinct
/// shapes number ≤ 256, the batched gather resolves a responder as
/// `u + table[class[u] · d + slot]`: one random byte load into `class`
/// (1 byte per vertex) plus one load into the dictionary-resident `table`,
/// instead of one random word load into the `m`-long responder column. At
/// n = 10⁷ (torus, d = 4) that shrinks the randomly-touched array from
/// 160 MB (`u32` per edge) to 10 MB — resident even in a contended cache.
/// Deltas are stored exact (`i64`), so there is no exception path.
#[derive(Debug, Clone, PartialEq)]
struct StencilTargets {
    /// Dictionary index of each vertex's neighborhood shape.
    class: Vec<u8>,
    /// `classes × d` signed deltas, row per class, slot-major.
    table: Vec<i64>,
}

/// Dictionary capacity of [`StencilTargets`]: shapes must fit a `u8` class.
const STENCIL_MAX_CLASSES: usize = 256;

/// Builds the stencil dictionary for a `d`-regular CSR responder column, or
/// `None` when the graph has more than [`STENCIL_MAX_CLASSES`] distinct
/// neighborhood shapes (then not lattice-like, and the dictionary would
/// stop being cache-resident anyway).
fn build_stencil(n: usize, d: u32, targets: &[u32]) -> Option<StencilTargets> {
    if d == 0 || n == 0 {
        return None;
    }
    let d = d as usize;
    let mut class = Vec::with_capacity(n);
    let mut table: Vec<i64> = Vec::new();
    let mut dict: HashMap<Vec<i64>, u8> = HashMap::new();
    let mut tuple: Vec<i64> = vec![0; d];
    for u in 0..n {
        for (slot, t) in tuple.iter_mut().enumerate() {
            *t = i64::from(targets[u * d + slot]) - u as i64;
        }
        let id = match dict.get(&tuple) {
            Some(&id) => id,
            None => {
                if dict.len() == STENCIL_MAX_CLASSES {
                    return None;
                }
                let id = dict.len() as u8;
                dict.insert(tuple.clone(), id);
                table.extend_from_slice(&tuple);
                id
            }
        };
        class.push(id);
    }
    Some(StencilTargets { class, table })
}

/// Delta-compressed form of a CSR responder column. On mesh-like graphs
/// (tori, grids, rings) almost every edge connects near-numbered agents, so
/// `target - src` fits an `i16`; the few that don't — wrap-around edges —
/// carry the [`NARROW_EXCEPTION`] sentinel and live on a sorted side list.
/// Built only when at most 1 edge in 64 is an exception, so hot-loop
/// branches on the sentinel stay near-perfectly predicted.
#[derive(Debug, Clone, PartialEq)]
struct NarrowTargets {
    /// `target - src` per edge, or [`NARROW_EXCEPTION`].
    deltas: Vec<i16>,
    /// `(edge index, target)` for edges whose delta overflows, sorted by
    /// edge index for binary search.
    exceptions: Vec<(u32, u32)>,
}

/// Sentinel in [`NarrowTargets::deltas`]: resolve via the exception list.
const NARROW_EXCEPTION: i16 = i16::MIN;

/// Builds the delta-compressed responder column, or `None` when more than
/// 1 edge in 64 would overflow an `i16` delta.
fn build_narrow(offsets: &[u32], targets: &[u32]) -> Option<NarrowTargets> {
    let m = targets.len();
    let mut deltas = Vec::with_capacity(m);
    let mut exceptions: Vec<(u32, u32)> = Vec::new();
    let mut u = 0usize;
    for (e, &v) in targets.iter().enumerate() {
        while offsets[u + 1] as usize <= e {
            u += 1;
        }
        let d = i64::from(v) - u as i64;
        match i16::try_from(d) {
            Ok(d16) if d16 != NARROW_EXCEPTION => deltas.push(d16),
            _ => {
                deltas.push(NARROW_EXCEPTION);
                exceptions.push((e as u32, v));
                if exceptions.len() * 64 > m {
                    return None;
                }
            }
        }
    }
    Some(NarrowTargets { deltas, exceptions })
}

/// Resolves an exception-listed edge's target. Out of line: reached for a
/// vanishing fraction of draws by construction.
#[cold]
#[inline(never)]
fn narrow_exception_target(nt: &NarrowTargets, e: usize) -> u32 {
    let i = nt
        .exceptions
        .binary_search_by_key(&(e as u32), |&(idx, _)| idx)
        .expect("sentinel delta without an exception entry");
    nt.exceptions[i].1
}

/// The gather phase of batched sampling: rewrites each `(edge index, 0)`
/// placeholder in `buf` to its ordered pair, computing initiators through
/// `src` (a shift / divide for regular graphs, a `srcs` load otherwise) and
/// responders from the narrow column when present. The representation match
/// sits outside the loops; each loop body is branch-free but for the
/// near-never exception sentinel.
#[inline]
fn gather_pairs(
    narrow: Option<&NarrowTargets>,
    targets: &[u32],
    buf: &mut [(u32, u32)],
    src: impl Fn(usize) -> u32,
) {
    match narrow {
        Some(nt) => {
            for p in buf.iter_mut() {
                let e = p.0 as usize;
                let u = src(e);
                let d = nt.deltas[e];
                let v = if d != NARROW_EXCEPTION {
                    u.wrapping_add_signed(i32::from(d))
                } else {
                    narrow_exception_target(nt, e)
                };
                *p = (u, v);
            }
        }
        None => {
            for p in buf.iter_mut() {
                let e = p.0 as usize;
                *p = (src(e), targets[e]);
            }
        }
    }
}

/// The live-edge view of a [`CsrScheduler`] under crash masking.
#[derive(Debug, Clone, PartialEq)]
struct LiveEdges {
    /// Flat indices of edges joining two live agents.
    ids: Vec<u32>,
    /// Alias table over `ids` (weighted graphs only).
    alias: Option<(Vec<f64>, Vec<u32>)>,
}

impl CsrScheduler {
    /// Builds the sampler from a directed edge list (any order, duplicates
    /// allowed — they become weights).
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`try_new`](Self::try_new) reports as
    /// errors.
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::try_new(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: errors with [`PopulationError::NoEdges`] on an
    /// empty edge list, [`PopulationError::SelfLoop`] on an edge `(u, u)`,
    /// or [`PopulationError::EdgeOutOfRange`] on an endpoint outside `0..n`.
    pub fn try_new(n: usize, edges: &[(u32, u32)]) -> Result<Self, PopulationError> {
        if edges.is_empty() {
            return Err(PopulationError::NoEdges);
        }
        for &(u, v) in edges {
            if u == v {
                return Err(PopulationError::SelfLoop { agent: u });
            }
            if (u as usize) >= n || (v as usize) >= n {
                let agent = if (u as usize) >= n { u } else { v };
                return Err(PopulationError::EdgeOutOfRange { agent, n });
            }
        }
        // Counting sort by initiator.
        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        // Merge duplicates row by row (rows are small — one sort per row
        // over the agent's out-degree).
        let mut m_targets: Vec<u32> = Vec::with_capacity(targets.len());
        let mut m_offsets = vec![0u32; n + 1];
        let mut mults: Vec<u32> = Vec::with_capacity(targets.len());
        let mut weighted = false;
        for u in 0..n {
            let row = &mut targets[offsets[u] as usize..offsets[u + 1] as usize];
            row.sort_unstable();
            let mut i = 0;
            while i < row.len() {
                let v = row[i];
                let mut k = 1u32;
                while i + (k as usize) < row.len() && row[i + k as usize] == v {
                    k += 1;
                }
                if k > 1 {
                    weighted = true;
                }
                m_targets.push(v);
                mults.push(k);
                i += k as usize;
            }
            m_offsets[u + 1] = m_targets.len() as u32;
        }
        let regular = detect_regular(&m_offsets);
        let srcs = if regular.is_some() { Vec::new() } else { build_srcs(&m_offsets) };
        let stencil = regular.and_then(|(d, _)| build_stencil(n, d, &m_targets));
        let narrow = if stencil.is_some() {
            None
        } else {
            build_narrow(&m_offsets, &m_targets)
        };
        let (weights, alias) = if weighted {
            let w: Vec<f64> = mults.iter().map(|&k| f64::from(k)).collect();
            let total: f64 = w.iter().sum();
            let table = build_alias_table(&w, total);
            (Some(w), Some(table))
        } else {
            (None, None)
        };
        Ok(Self {
            n,
            offsets: m_offsets,
            srcs,
            regular,
            targets: m_targets,
            stencil,
            narrow,
            weights,
            alias,
            live: None,
        })
    }

    /// Builds the sampler directly from CSR arrays (`offsets.len() == n + 1`,
    /// edges of agent `u` at `targets[offsets[u]..offsets[u + 1]]`) — the
    /// allocation-lean path for generators that already produce CSR, e.g.
    /// a 10⁸-agent torus. Edges are taken as given: a target listed twice in
    /// a row acts as a double-probability slot (no merge pass runs).
    ///
    /// Errors as [`try_new`](Self::try_new), plus
    /// [`PopulationError::UnrepresentableInput`] on malformed offsets.
    pub fn from_csr(
        n: usize,
        offsets: Vec<u32>,
        targets: Vec<u32>,
    ) -> Result<Self, PopulationError> {
        if offsets.len() != n + 1
            || offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets[n] as usize != targets.len()
        {
            return Err(PopulationError::UnrepresentableInput {
                reason: "malformed CSR offsets".into(),
            });
        }
        if targets.is_empty() {
            return Err(PopulationError::NoEdges);
        }
        for u in 0..n {
            for &v in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                if (v as usize) >= n {
                    return Err(PopulationError::EdgeOutOfRange { agent: v, n });
                }
                if v as usize == u {
                    return Err(PopulationError::SelfLoop { agent: v });
                }
            }
        }
        let regular = detect_regular(&offsets);
        let srcs = if regular.is_some() { Vec::new() } else { build_srcs(&offsets) };
        let stencil = regular.and_then(|(d, _)| build_stencil(n, d, &targets));
        let narrow = if stencil.is_some() {
            None
        } else {
            build_narrow(&offsets, &targets)
        };
        Ok(Self {
            n,
            offsets,
            srcs,
            regular,
            targets,
            stencil,
            narrow,
            weights: None,
            alias: None,
            live: None,
        })
    }

    /// Number of distinct edges after duplicate merging.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of agent `u` (sorted).
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The ordered pair of flat edge `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> (u32, u32) {
        (self.src_of(e), self.targets[e])
    }

    /// Initiator of flat edge `e`: computed for regular graphs, loaded from
    /// the `srcs` column otherwise.
    #[inline]
    fn src_of(&self, e: usize) -> u32 {
        match self.regular {
            Some((_, Some(shift))) => (e >> shift) as u32,
            Some((d, None)) => (e / d as usize) as u32,
            None => self.srcs[e],
        }
    }

    /// Per-edge weights (duplicate multiplicities), if any edge was merged.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Draws a flat edge index respecting weights and any live mask.
    #[inline]
    fn draw_edge<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.live {
            Some(lv) => {
                let i = match &lv.alias {
                    Some((prob, alias)) => draw_alias_idx(rng, prob, alias),
                    None => rng.gen_range(0..lv.ids.len()),
                };
                lv.ids[i] as usize
            }
            None => match &self.alias {
                Some((prob, alias)) => draw_alias_idx(rng, prob, alias),
                None => rng.gen_range(0..self.targets.len()),
            },
        }
    }
}

/// `Some((d, log2 d))` when the CSR offsets describe a `d`-regular
/// out-degree sequence (every row the same length), `log2 d` present only
/// when `d` is a power of two.
fn detect_regular(offsets: &[u32]) -> Option<(u32, Option<u32>)> {
    let d = offsets[1] - offsets[0];
    if d == 0 || offsets.windows(2).any(|w| w[1] - w[0] != d) {
        return None;
    }
    let shift = d.is_power_of_two().then(|| d.trailing_zeros());
    Some((d, shift))
}

/// Materializes the per-edge initiator column from CSR offsets.
fn build_srcs(offsets: &[u32]) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut srcs = vec![0u32; offsets[n] as usize];
    for u in 0..n {
        srcs[offsets[u] as usize..offsets[u + 1] as usize].fill(u as u32);
    }
    srcs
}

/// One `O(1)` alias-table draw (Walker/Vose): pick a bucket uniformly, then
/// accept it or take its alias.
#[inline]
fn draw_alias_idx<R: RngCore + ?Sized>(rng: &mut R, prob: &[f64], alias: &[u32]) -> usize {
    let i = rng.gen_range(0..prob.len());
    if rng.gen_f64() < prob[i] {
        i
    } else {
        alias[i] as usize
    }
}

impl PairSampler for CsrScheduler {
    #[inline]
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        let e = self.draw_edge(rng);
        (self.src_of(e), self.targets[e])
    }

    fn population(&self) -> usize {
        self.n
    }

    fn live_pairs(&self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        Some(
            (0..self.targets.len())
                .filter(|&e| is_live(self.src_of(e)) && is_live(self.targets[e]))
                .count() as u64,
        )
    }

    fn mask_live(&mut self, is_live: &dyn Fn(u32) -> bool) -> Option<u64> {
        let mut ids: Vec<u32> = Vec::new();
        for e in 0..self.targets.len() {
            if is_live(self.src_of(e)) && is_live(self.targets[e]) {
                ids.push(e as u32);
            }
        }
        if ids.len() == self.targets.len() {
            // Everyone is live again (or still): drop the view entirely so
            // the unmasked fast path is taken.
            self.live = None;
            return Some(self.targets.len() as u64);
        }
        let k = ids.len() as u64;
        let alias = match (&self.weights, ids.is_empty()) {
            (Some(w), false) => {
                let lw: Vec<f64> = ids.iter().map(|&e| w[e as usize]).collect();
                let total: f64 = lw.iter().sum();
                Some(build_alias_table(&lw, total))
            }
            _ => None,
        };
        self.live = Some(LiveEdges { ids, alias });
        Some(k)
    }
}

/// A uniform edge-index draw below a fixed width, stream-identical to the
/// shim's `gen_range(0..width)` — same rejection zone, same accepted word,
/// same value — with the accepted word's `% width` computed through a
/// precomputed Granlund–Montgomery round-up magic instead of a hardware
/// divide. `gen_range` recomputes its zone per call and ends in a
/// data-dependent `div`; batched sampling draws against one fixed width
/// thousands of times, so both are hoisted into this one-time setup.
/// Exactness (identical value to `%` for every 64-bit word) is asserted
/// against `gen_range` in `fast_uniform_matches_gen_range` below and,
/// end-to-end, by every batch-vs-sequential stream-identity test.
///
/// Power-of-two widths need no special arm: their zone is `u64::MAX`
/// (every word accepted, exactly like the shim's mask shortcut) and the
/// magic reduces to `v - (v >> log2(width)) * width == v & (width - 1)`,
/// so words, values, and stream position all coincide with the shim.
enum FastUniform {
    /// Width in `2..2^63`: rejection zone + round-up magic.
    Magic { width: u64, zone: u64, magic_lo: u64, shift: u32 },
    /// Width 1 or at least `2^63` (no real edge list hits either): plain
    /// division, still stream-identical.
    Div { width: u64, zone: u64 },
}

/// `v % width` via the round-up magic `2^(64+shift) / width + 1`, of which
/// only the low word is kept — the implicit `2^64` bit becomes the `v - t`
/// fold-in. Exact for every `v` when `2 <= width < 2^63`.
#[inline]
fn magic_rem(v: u64, width: u64, magic_lo: u64, shift: u32) -> u64 {
    let t = (((v as u128) * (magic_lo as u128)) >> 64) as u64;
    let q = (((v - t) >> 1) + t) >> (shift - 1);
    v - q * width
}

impl FastUniform {
    fn new(width: u64) -> Self {
        debug_assert!(width > 0);
        // The same acceptance zone `uniform_below` computes in the shim:
        // the largest `v` below the last whole multiple of `width`.
        let zone = u64::MAX - (u64::MAX % width + 1) % width;
        if !(2..1 << 63).contains(&width) {
            return FastUniform::Div { width, zone };
        }
        // `2^(shift-1) <= width - 1 < 2^shift`, so the magic strictly
        // exceeds `2^64` and its low word is what `magic_rem` needs.
        let shift = 64 - (width - 1).leading_zeros();
        let magic = (1u128 << (64 + shift)) / width as u128 + 1;
        FastUniform::Magic {
            width,
            zone,
            magic_lo: (magic - (1u128 << 64)) as u64,
            shift,
        }
    }

    /// One draw; the per-draw arm dispatch makes this the test/reference
    /// form — the batched path hoists the match around its fill loop.
    #[cfg(test)]
    fn draw(&self, rng: &mut (impl RngCore + ?Sized)) -> u64 {
        match *self {
            FastUniform::Magic { width, zone, magic_lo, shift } => loop {
                let v = rng.next_u64();
                if v <= zone {
                    return magic_rem(v, width, magic_lo, shift);
                }
            },
            FastUniform::Div { width, zone } => loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % width;
                }
            },
        }
    }

    /// Appends `k` draws to `buf` as `(index, 0)` placeholder pairs — the
    /// phase-one layout of the batched sampler. The arm match sits outside
    /// the loop and the loop is an exact-size `extend`, so the hot arm is
    /// pure register arithmetic: no growth call, no per-draw dispatch, no
    /// divide.
    fn fill(
        &self,
        rng: &mut (impl RngCore + ?Sized),
        k: usize,
        buf: &mut Vec<(u32, u32)>,
    ) {
        match *self {
            FastUniform::Magic { width, zone, magic_lo, shift } => {
                // `move` closures: the width constants become immediates
                // and registers instead of loads through the environment.
                // (A two-pass variant that pre-generates raw words into a
                // stack chunk measured ~25% slower here — the extra L1
                // round-trip costs more than the per-draw RNG state
                // spill it removes.)
                buf.extend((0..k).map(move |_| loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        break (magic_rem(v, width, magic_lo, shift) as u32, 0);
                    }
                }));
            }
            FastUniform::Div { width, zone } => {
                buf.extend((0..k).map(move |_| loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        break ((v % width) as u32, 0);
                    }
                }));
            }
        }
    }
}

impl BatchPairSampler for CsrScheduler {
    fn sample_batch<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        k: usize,
        buf: &mut Vec<(u32, u32)>,
    ) {
        buf.clear();
        buf.reserve(k);
        // Identical stream to `k` sequential `sample` calls. On the
        // unmasked unweighted path the draws are split from the gathers:
        // phase one is pure arithmetic (RNG + index), phase two a
        // branch-free loop of independent random reads — nothing between
        // the loads for the out-of-order core to mispredict, so the cache
        // misses overlap up to the hardware's memory-level parallelism.
        // A fused draw-and-gather loop keeps the RNG's rejection branch in
        // front of every load and measurably caps that overlap.
        if self.live.is_none() && self.alias.is_none() {
            let m = self.targets.len();
            FastUniform::new(m as u64).fill(rng, k, buf);
            if let (Some(st), Some((d, shift))) = (self.stencil.as_ref(), self.regular) {
                let d = d as usize;
                match shift {
                    Some(shift) => {
                        let mask = (1usize << shift) - 1;
                        for p in buf.iter_mut() {
                            let e = p.0 as usize;
                            let u = e >> shift;
                            let base = usize::from(st.class[u]) * d;
                            let v = (u as i64 + st.table[base + (e & mask)]) as u32;
                            *p = (u as u32, v);
                        }
                    }
                    None => {
                        for p in buf.iter_mut() {
                            let e = p.0 as usize;
                            let u = e / d;
                            let base = usize::from(st.class[u]) * d;
                            let v = (u as i64 + st.table[base + (e - u * d)]) as u32;
                            *p = (u as u32, v);
                        }
                    }
                }
            } else {
                let narrow = self.narrow.as_ref();
                match self.regular {
                    Some((_, Some(shift))) => {
                        gather_pairs(narrow, &self.targets, buf, |e| (e >> shift) as u32);
                    }
                    Some((d, None)) => {
                        gather_pairs(narrow, &self.targets, buf, move |e| {
                            (e / d as usize) as u32
                        });
                    }
                    None => {
                        gather_pairs(narrow, &self.targets, buf, |e| self.srcs[e]);
                    }
                }
            }
        } else {
            for _ in 0..k {
                let e = self.draw_edge(rng);
                buf.push((self.src_of(e), self.targets[e]));
            }
        }
    }
}

/// Deterministically cycles through every ordered pair of a complete graph.
///
/// Every permitted encounter occurs once per round, which makes executions
/// driven by this scheduler fair in the intuitive sense of §1 (and, on any
/// protocol whose configuration sequence becomes periodic, in the formal
/// sense too). Ideal for reproducible tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobinScheduler {
    n: u32,
    next: u64,
}

impl RoundRobinScheduler {
    /// Creates a round-robin schedule over `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least 2 agents");
        Self { n: n as u32, next: 0 }
    }
}

impl PairSampler for RoundRobinScheduler {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> (u32, u32) {
        let pairs = u64::from(self.n) * u64::from(self.n - 1);
        let k = self.next % pairs;
        self.next += 1;
        let u = (k / u64::from(self.n - 1)) as u32;
        let mut v = (k % u64::from(self.n - 1)) as u32;
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn population(&self) -> usize {
        self.n as usize
    }
}

/// Weighted random ordered pairs (§8's *weighted sampling* direction): the
/// initiator is drawn with probability proportional to its weight, and the
/// responder proportional to weight among the rest.
///
/// The paper conjectures that, with reasonable restrictions on the weights,
/// weighted sampling yields the same computational power as uniform
/// sampling; experiment E15 compares convergence behavior empirically.
///
/// Drawing uses a Walker alias table built once in the constructor, so each
/// draw costs `O(1)` — one uniform index plus one biased coin — instead of
/// a linear CDF scan. The responder (which must differ from the initiator)
/// is drawn by rejection against the same table; since the initiator's
/// weight share is at most that of the heaviest agent, the expected number
/// of rejections is bounded by `1 / (1 − w_max/W)`, and a bounded retry
/// budget falls back to an exact weighted scan over the remaining agents.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPairScheduler {
    weights: Vec<f64>,
    total: f64,
    /// Alias-table acceptance probability of bucket `i` (Walker/Vose).
    prob: Vec<f64>,
    /// Alias-table donor index of bucket `i`.
    alias: Vec<u32>,
}

/// Rejection budget for the responder draw before falling back to the exact
/// weighted scan. With any sane weight profile a handful suffices; the
/// fallback keeps pathological profiles (one agent carrying almost all the
/// weight) correct rather than slow-looping.
const MAX_RESPONDER_REJECTS: u32 = 64;

impl WeightedPairScheduler {
    /// Creates a sampler with one positive weight per agent.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 weights are given or any weight is not a
    /// finite positive number.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.len() >= 2, "population must have at least 2 agents");
        for &w in &weights {
            assert!(w.is_finite() && w > 0.0, "weights must be finite and positive");
        }
        let total: f64 = weights.iter().sum();
        let (prob, alias) = build_alias_table(&weights, total);
        Self { weights, total, prob, alias }
    }

    /// The agent weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// One `O(1)` draw from the alias table: pick a bucket uniformly, then
    /// accept it or take its alias.
    fn draw_alias(&self, rng: &mut dyn RngCore) -> u32 {
        let n = self.weights.len();
        let i = rng.gen_range(0..n);
        if rng.gen_f64() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// Exact weighted draw over all agents except `skip` — the rejection
    /// fallback, and the reference law the alias path must match.
    fn draw_scan(&self, rng: &mut dyn RngCore, skip: usize) -> u32 {
        let total = self.total - self.weights[skip];
        let mut x = rng.gen_range(0.0..total);
        for (i, &w) in self.weights.iter().enumerate() {
            if i == skip {
                continue;
            }
            if x < w {
                return i as u32;
            }
            x -= w;
        }
        // Floating-point slack: return the last eligible agent.
        (0..self.weights.len())
            .rev()
            .find(|&i| i != skip)
            .expect("at least two agents") as u32
    }
}

/// Builds a Walker/Vose alias table for the distribution `weights / total`:
/// buckets with below-average weight are topped up by an above-average
/// donor, giving `P(i) = (prob[i] + Σ_{j: alias[j]=i} (1 − prob[j])) / n`.
fn build_alias_table(weights: &[f64], total: f64) -> (Vec<f64>, Vec<u32>) {
    let n = weights.len();
    let mut prob = vec![0.0f64; n];
    let mut alias: Vec<u32> = (0..n as u32).collect();
    // Scaled weights: mean 1 per bucket.
    let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
    let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
    let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
    while let Some(s) = small.pop() {
        let Some(l) = large.pop() else {
            // Floating-point slack only: an under-full bucket with no donor
            // left keeps full mass.
            prob[s] = 1.0;
            continue;
        };
        prob[s] = scaled[s];
        alias[s] = l as u32;
        // The donor gave away 1 − scaled[s] of its mass.
        scaled[l] -= 1.0 - scaled[s];
        if scaled[l] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    // Leftover donors keep full mass.
    for i in large {
        prob[i] = 1.0;
    }
    (prob, alias)
}

impl PairSampler for WeightedPairScheduler {
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        let u = self.draw_alias(rng);
        // Responder: same marginal as a weighted draw excluding `u`.
        for _ in 0..MAX_RESPONDER_REJECTS {
            let v = self.draw_alias(rng);
            if v != u {
                return (u, v);
            }
        }
        (u, self.draw_scan(rng, u as usize))
    }

    fn population(&self) -> usize {
        self.weights.len()
    }
}

/// Batch sampling via the default per-draw fallback.
impl BatchPairSampler for WeightedPairScheduler {}

/// Batch sampling via the default per-draw fallback.
impl BatchPairSampler for RoundRobinScheduler {}

/// Replays a fixed, possibly adversarial, schedule; panics when exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedScheduler {
    script: Vec<(u32, u32)>,
    pos: usize,
    n: usize,
}

impl ScriptedScheduler {
    /// Creates a scheduler replaying `script` over a population of size `n`.
    pub fn new(n: usize, script: Vec<(u32, u32)>) -> Self {
        Self { script, pos: 0, n }
    }

    /// Number of scripted interactions remaining.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.pos
    }
}

impl PairSampler for ScriptedScheduler {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> (u32, u32) {
        let e = self.script[self.pos];
        self.pos += 1;
        e
    }

    fn population(&self) -> usize {
        self.n
    }
}

/// Batch sampling via the default per-draw fallback.
impl BatchPairSampler for ScriptedScheduler {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_encodes_exact_marginals() {
        // The table's implied law P(i) = (prob[i] + Σ_{j: alias[j]=i}
        // (1 − prob[j])) / n must equal w_i / W.
        let weights = vec![8.0, 1.0, 1.0, 1.0, 1.0, 0.5, 3.5];
        let total: f64 = weights.iter().sum();
        let (prob, alias) = build_alias_table(&weights, total);
        let n = weights.len();
        for (i, &w) in weights.iter().enumerate() {
            let mut p = prob[i];
            for j in 0..n {
                if alias[j] as usize == i && j != i {
                    p += 1.0 - prob[j];
                }
            }
            let expect = w * n as f64 / total;
            assert!((p - expect).abs() < 1e-12, "agent {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let mut s = UniformPairScheduler::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
        }
    }

    #[test]
    fn uniform_pairs_cover_all_ordered_pairs_roughly_uniformly() {
        let n = 4u32;
        let mut s = UniformPairScheduler::new(n as usize);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = std::collections::HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *hits.entry(s.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert_eq!(hits.len(), (n * (n - 1)) as usize);
        let expect = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &hits {
            let ratio = f64::from(c) / expect;
            assert!((0.9..1.1).contains(&ratio), "pair {pair:?} ratio {ratio}");
        }
    }

    #[test]
    fn edge_list_scheduler_samples_only_listed_edges() {
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let mut s = EdgeListScheduler::new(3, edges.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let e = s.sample(&mut rng);
            assert!(edges.contains(&e));
        }
        assert_eq!(s.population(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_list_rejects_self_loops() {
        EdgeListScheduler::new(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_list_rejects_out_of_range() {
        EdgeListScheduler::new(3, vec![(0, 7)]);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        assert_eq!(
            UniformPairScheduler::try_new(1).unwrap_err(),
            PopulationError::PopulationTooSmall { n: 1 },
        );
        assert_eq!(UniformPairScheduler::try_new(2).unwrap().population(), 2);
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![]).unwrap_err(),
            PopulationError::NoEdges,
        );
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![(0, 1), (2, 2)]).unwrap_err(),
            PopulationError::SelfLoop { agent: 2 },
        );
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![(0, 1), (5, 1)]).unwrap_err(),
            PopulationError::EdgeOutOfRange { agent: 5, n: 3 },
        );
        assert!(EdgeListScheduler::try_new(3, vec![(0, 1)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn uniform_new_panics_on_tiny_population() {
        UniformPairScheduler::new(1);
    }

    #[test]
    fn round_robin_covers_every_ordered_pair_each_round() {
        let n = 5usize;
        let mut s = RoundRobinScheduler::new(n);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n * (n - 1) {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(seen.insert((u, v)), "duplicate pair ({u},{v}) within a round");
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        // Agent 0 has weight 8, agents 1..4 weight 1 each: agent 0 should
        // initiate ~8/12 of the time.
        let mut s = WeightedPairScheduler::new(vec![8.0, 1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut zero_initiates = 0u32;
        let trials = 60_000;
        for _ in 0..trials {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
            if u == 0 {
                zero_initiates += 1;
            }
        }
        let rate = f64::from(zero_initiates) / f64::from(trials);
        assert!((rate - 8.0 / 12.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_weights_match_uniform_sampler_distribution() {
        let mut s = WeightedPairScheduler::new(vec![1.0; 4]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = std::collections::HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *hits.entry(s.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert_eq!(hits.len(), 12);
        let expect = trials as f64 / 12.0;
        for (&pair, &c) in &hits {
            let ratio = f64::from(c) / expect;
            assert!((0.9..1.1).contains(&ratio), "pair {pair:?} ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn weighted_rejects_nonpositive_weights() {
        WeightedPairScheduler::new(vec![1.0, 0.0]);
    }

    #[test]
    fn edge_list_duplicates_act_as_weights() {
        // Edge (0,1) listed 3 times, (1,2) once: (0,1) drawn ~3/4.
        let mut s = EdgeListScheduler::new(3, vec![(0, 1), (0, 1), (0, 1), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40_000;
        let heavy = (0..trials).filter(|_| s.sample(&mut rng) == (0, 1)).count();
        let rate = heavy as f64 / f64::from(trials);
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn edge_list_live_pairs_counts_live_slots() {
        let s = EdgeListScheduler::new(4, vec![(0, 1), (0, 1), (2, 3)]);
        assert_eq!(s.live_pairs(&|_| true), Some(3));
        assert_eq!(s.live_pairs(&|a| a != 3), Some(2));
        assert_eq!(s.live_pairs(&|a| a >= 2), Some(1));
        assert_eq!(s.live_pairs(&|a| a == 0), Some(0));
        let u = UniformPairScheduler::new(5);
        assert_eq!(u.live_pairs(&|_| true), Some(20));
        assert_eq!(u.live_pairs(&|a| a < 3), Some(6));
        assert_eq!(u.live_pairs(&|a| a == 1), Some(0));
    }

    #[test]
    fn csr_merges_duplicates_into_weights() {
        let s = CsrScheduler::new(3, &[(0, 1), (1, 2), (0, 1), (2, 0)]);
        assert_eq!(s.edge_count(), 3, "duplicate (0,1) merged");
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.weights().unwrap(), &[2.0, 1.0, 1.0]);
        // Merged weights preserve the slot-multiplicity law: (0,1) ~ 1/2.
        let mut s = s;
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 40_000;
        let heavy = (0..trials).filter(|_| s.sample(&mut rng) == (0, 1)).count();
        let rate = heavy as f64 / f64::from(trials);
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn csr_simple_graph_is_uniform_over_edges() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 1)];
        let mut s = CsrScheduler::new(3, &edges);
        assert!(s.weights().is_none());
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = std::collections::HashMap::new();
        let trials = 80_000;
        for _ in 0..trials {
            *hits.entry(s.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert_eq!(hits.len(), 4);
        for (&pair, &c) in &hits {
            let ratio = f64::from(c) / (trials as f64 / 4.0);
            assert!((0.9..1.1).contains(&ratio), "pair {pair:?} ratio {ratio}");
        }
    }

    #[test]
    fn csr_mask_live_preconditions_draws() {
        let mut s = CsrScheduler::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // Crash agent 3: edges (2,3) and (3,0) die.
        assert_eq!(s.mask_live(&|a| a != 3), Some(2));
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..2000 {
            let (u, v) = s.sample(&mut rng);
            assert!(u != 3 && v != 3, "masked draw hit a crashed agent");
        }
        // Everyone live again: the view is dropped.
        assert_eq!(s.mask_live(&|_| true), Some(4));
        // Full starvation is structural, not a spin.
        assert_eq!(s.mask_live(&|a| a == 0), Some(0));
    }

    #[test]
    fn csr_masked_weighted_graph_reweights_live_edges() {
        // (0,1) ×2, (1,2) ×1, (2,3) ×1; crash 3 → live edges (0,1) w2,
        // (1,2) w1 → (0,1) at 2/3.
        let mut s = CsrScheduler::new(4, &[(0, 1), (0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.mask_live(&|a| a != 3), Some(2));
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 40_000;
        let heavy = (0..trials).filter(|_| s.sample(&mut rng) == (0, 1)).count();
        let rate = heavy as f64 / f64::from(trials);
        assert!((rate - 2.0 / 3.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn csr_from_csr_validates() {
        let s = CsrScheduler::from_csr(3, vec![0, 1, 2, 3], vec![1, 2, 0]).unwrap();
        assert_eq!(s.edge(0), (0, 1));
        assert_eq!(s.edge(2), (2, 0));
        assert!(matches!(
            CsrScheduler::from_csr(3, vec![0, 2, 1, 3], vec![1, 2, 0]),
            Err(PopulationError::UnrepresentableInput { .. })
        ));
        assert_eq!(
            CsrScheduler::from_csr(3, vec![0, 0, 0, 0], vec![]),
            Err(PopulationError::NoEdges)
        );
        assert_eq!(
            CsrScheduler::from_csr(2, vec![0, 1, 2], vec![1, 5]),
            Err(PopulationError::EdgeOutOfRange { agent: 5, n: 2 })
        );
        assert_eq!(
            CsrScheduler::from_csr(2, vec![0, 1, 2], vec![0, 0]),
            Err(PopulationError::SelfLoop { agent: 0 })
        );
    }

    #[test]
    fn csr_try_new_reports_structured_errors() {
        assert_eq!(CsrScheduler::try_new(3, &[]), Err(PopulationError::NoEdges));
        assert_eq!(
            CsrScheduler::try_new(3, &[(0, 1), (2, 2)]),
            Err(PopulationError::SelfLoop { agent: 2 })
        );
        assert_eq!(
            CsrScheduler::try_new(3, &[(0, 5)]),
            Err(PopulationError::EdgeOutOfRange { agent: 5, n: 3 })
        );
    }

    #[test]
    fn regular_csr_computes_srcs_identically_to_stored_column() {
        // A directed 3-regular circulant (degrees 3 — not a power of two)
        // and a 4-regular torus-like ring (power of two): both must sample
        // the exact same pairs as EdgeListScheduler over the same sorted
        // edge list, with the same RNG stream — `srcs[e] == e / d`.
        for d in [3u32, 4] {
            let n = 11u32;
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for u in 0..n {
                for j in 1..=d {
                    edges.push((u, (u + j) % n));
                }
            }
            edges.sort_unstable();
            let mut csr = CsrScheduler::new(n as usize, &edges);
            let mut flat = EdgeListScheduler::new(n as usize, edges.clone());
            let mut rng_a = StdRng::seed_from_u64(u64::from(d));
            let mut rng_b = StdRng::seed_from_u64(u64::from(d));
            for _ in 0..4_000 {
                assert_eq!(csr.sample(&mut rng_a), flat.sample(&mut rng_b));
            }
            for (e, &pair) in edges.iter().enumerate() {
                assert_eq!(csr.edge(e), pair);
            }
            // The live-edge machinery also resolves computed sources:
            // crashing one agent kills its d out-edges and d in-edges.
            assert_eq!(csr.live_pairs(&|a| a != 0), Some(u64::from((n - 2) * d)));
        }
    }

    /// Sorted-neighbor CSR arrays of a `side × side` torus.
    fn torus_csr(side: usize) -> (usize, Vec<u32>, Vec<u32>) {
        let n = side * side;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(4 * n);
        offsets.push(0u32);
        for r in 0..side {
            for c in 0..side {
                let at = |r: usize, c: usize| (r * side + c) as u32;
                let mut nb = [
                    at((r + side - 1) % side, c),
                    at((r + 1) % side, c),
                    at(r, (c + side - 1) % side),
                    at(r, (c + 1) % side),
                ];
                nb.sort_unstable();
                targets.extend_from_slice(&nb);
                offsets.push(targets.len() as u32);
            }
        }
        (n, offsets, targets)
    }

    /// Batch draws must equal `k` sequential draws (which read the wide
    /// column) on the same seed, and leave the RNG at the same position.
    fn assert_batch_matches_sequential(csr: &mut CsrScheduler, seed: u64, k: usize) {
        let mut seq = csr.clone();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut buf = Vec::new();
        csr.sample_batch(&mut rng_a, k, &mut buf);
        for (i, &pair) in buf.iter().enumerate() {
            assert_eq!(pair, seq.sample(&mut rng_b), "draw {i}");
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "streams must align");
    }

    /// Sorted-neighbor CSR arrays of a `side³` 3D torus (6-regular).
    fn torus3d_csr_arrays(side: usize) -> (usize, Vec<u32>, Vec<u32>) {
        let n = side * side * side;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(6 * n);
        offsets.push(0u32);
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    let at = |z: usize, y: usize, x: usize| {
                        ((z * side + y) * side + x) as u32
                    };
                    let mut nb = [
                        at(z, y, (x + side - 1) % side),
                        at(z, y, (x + 1) % side),
                        at(z, (y + side - 1) % side, x),
                        at(z, (y + 1) % side, x),
                        at((z + side - 1) % side, y, x),
                        at((z + 1) % side, y, x),
                    ];
                    nb.sort_unstable();
                    targets.extend_from_slice(&nb);
                    offsets.push(targets.len() as u32);
                }
            }
        }
        (n, offsets, targets)
    }

    #[test]
    fn stencil_handles_the_6_neighbor_lattice_unchanged() {
        // A side³ 3D torus is 6-regular with at most 27 neighborhood shapes
        // (each axis is interior, low-wrap, or high-wrap), so the existing
        // stencil-dictionary build must compress it exactly as it does the
        // 2D torus — no code path changes for the third dimension.
        let (n, offsets, targets) = torus3d_csr_arrays(12);
        let mut csr = CsrScheduler::from_csr(n, offsets, targets).unwrap();
        let st = csr.stencil.as_ref().expect("regular 3D torus must build a stencil");
        assert_eq!(st.class.len(), n);
        assert_eq!(st.table.len() % 6, 0);
        assert!(st.table.len() / 6 <= 27, "a 3D torus has at most 27 shapes");
        assert!(csr.narrow.is_none(), "stencil supersedes the narrow column");
        assert_batch_matches_sequential(&mut csr, 27, 40_000);
    }

    #[test]
    fn stencil_targets_resolve_identically_to_wide_column() {
        // A 260×260 torus is 4-regular with nine neighborhood shapes
        // (interior, four wrap sides, four corners), so the batched gather
        // takes the stencil-dictionary path.
        let (n, offsets, targets) = torus_csr(260);
        let mut csr = CsrScheduler::from_csr(n, offsets, targets).unwrap();
        let st = csr.stencil.as_ref().expect("regular torus must build a stencil");
        assert_eq!(st.class.len(), n);
        assert_eq!(st.table.len() % 4, 0);
        assert!(st.table.len() / 4 <= 9, "a torus has at most nine shapes");
        assert!(csr.narrow.is_none(), "stencil supersedes the narrow column");
        assert_batch_matches_sequential(&mut csr, 260, 40_000);
    }

    #[test]
    fn narrow_targets_resolve_identically_to_wide_column() {
        // Dropping one edge de-regularizes the torus, so the stencil bails
        // and the fallback narrow column is built: interior deltas (±1,
        // ±260) and horizontal wraps (±259) fit an i16; the 2·260 vertical
        // wrap edges (±259·260) overflow and land on the exception list.
        // The batched gather (narrow column + sentinel branch) must produce
        // the exact pairs the sequential draws read from the wide column.
        let side = 260usize;
        let (n, mut offsets, mut targets) = torus_csr(side);
        targets.remove(0); // vertex 0 loses its delta-1 neighbor
        for o in &mut offsets[1..] {
            *o -= 1;
        }
        let mut csr = CsrScheduler::from_csr(n, offsets, targets).unwrap();
        assert!(csr.stencil.is_none(), "irregular graph must not stencil");
        let nt = csr.narrow.as_ref().expect("torus deltas must compress");
        assert_eq!(nt.exceptions.len(), 2 * side);
        assert!(nt.exceptions.windows(2).all(|w| w[0].0 < w[1].0));

        let mut seq = csr.clone();
        let mut rng_a = StdRng::seed_from_u64(260);
        let mut rng_b = StdRng::seed_from_u64(260);
        let mut buf = Vec::new();
        // 40_000 draws hit the 0.38% exception edges ~150 times.
        csr.sample_batch(&mut rng_a, 40_000, &mut buf);
        let hits = buf
            .iter()
            .filter(|&&(u, v)| {
                i16::try_from(i64::from(v) - i64::from(u)).is_err()
            })
            .count();
        assert!(hits > 0, "draws must exercise the exception branch");
        for (i, &pair) in buf.iter().enumerate() {
            assert_eq!(pair, seq.sample(&mut rng_b), "draw {i}");
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "streams must align");
    }

    #[test]
    fn fast_uniform_matches_gen_range() {
        // The magic-multiply remainder must agree with `gen_range`'s
        // hardware divide on the identical RNG stream: same words consumed,
        // same value returned, for power-of-two, tiny, huge, and
        // rejection-heavy widths alike.
        let widths = [
            1u64,
            2,
            3,
            5,
            7,
            64,
            1000,
            4_000_000,
            (1 << 32) - 1,
            (1 << 32) + 1,
            (1 << 40) + 12345,
            (1 << 62) + 999,          // zone rejects almost half the words
            (1 << 63) - 1,
            1 << 63,                  // power of two at the Div boundary
            (1 << 63) + 1,            // Div fallback
            u64::MAX,
        ];
        for &w in &widths {
            let fu = FastUniform::new(w);
            let mut rng_a = StdRng::seed_from_u64(w ^ 0x5eed);
            let mut rng_b = StdRng::seed_from_u64(w ^ 0x5eed);
            for _ in 0..2_000 {
                assert_eq!(
                    fu.draw(&mut rng_a),
                    rng_b.gen_range(0..w),
                    "width {w}"
                );
            }
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "width {w} stream");
        }
    }

    #[test]
    fn sample_batch_matches_sequential_stream() {
        // The monomorphized batch loops must consume the RNG exactly as the
        // sequential draws do.
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 1), (1, 0)];
        let mut a = CsrScheduler::new(3, &edges);
        let mut b = a.clone();
        let mut buf = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(14);
        let mut rng_b = StdRng::seed_from_u64(14);
        a.sample_batch(&mut rng_a, 257, &mut buf);
        let seq: Vec<(u32, u32)> = (0..257).map(|_| b.sample(&mut rng_b)).collect();
        assert_eq!(buf, seq);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "streams must stay aligned");

        let mut a = UniformPairScheduler::new(9);
        let mut b = a;
        let mut rng_a = StdRng::seed_from_u64(15);
        let mut rng_b = StdRng::seed_from_u64(15);
        a.sample_batch(&mut rng_a, 100, &mut buf);
        let seq: Vec<(u32, u32)> = (0..100).map(|_| b.sample(&mut rng_b)).collect();
        assert_eq!(buf, seq);

        let mut a = EdgeListScheduler::new(3, edges.to_vec());
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(16);
        let mut rng_b = StdRng::seed_from_u64(16);
        a.sample_batch(&mut rng_a, 100, &mut buf);
        let seq: Vec<(u32, u32)> = (0..100).map(|_| b.sample(&mut rng_b)).collect();
        assert_eq!(buf, seq);
    }

    #[test]
    fn scripted_replays_in_order() {
        let mut s = ScriptedScheduler::new(3, vec![(0, 1), (2, 1)]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), (0, 1));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.sample(&mut rng), (2, 1));
    }
}
