//! The full Theorem 10 stack: a Turing machine runs on a flock.
//!
//! Pipeline: TM → (Minsky reduction) → 3-counter machine → population of
//! finite-state agents with a leader, a timer, and distributed counter
//! shares, driven by uniform random pairing, with randomized zero tests.
//!
//! Run with: `cargo run --release --example turing_on_population`

use population_protocols::core::seeded_rng;
use population_protocols::machines::programs;
use population_protocols::random::tm_sim::TmSimOutcome;
use population_protocols::random::PopulationTm;

fn main() {
    let n = 20;
    let k = 3;
    let tm = programs::tm_unary_parity();
    let sim = PopulationTm::new(&tm, n, k, 2);

    println!("Turing machine:     unary parity (alphabet 2, 3 states)");
    println!("population size:    {n} agents (1 leader, 1 timer, {} holders)", n - 2);
    println!("zero-test k:        {k}");
    println!("tape capacity:      {} cells\n", sim.max_tape_cells());

    let mut rng = seeded_rng(1);
    for ones in 0..4usize {
        let input = vec![1u8; ones];
        let reference = sim.reference_tape(&input, 1_000_000);
        match sim.run(&input, 8_000_000_000, &mut rng) {
            TmSimOutcome::Halted { tape, interactions, silent_errors } => {
                let verdict = if tape == reference { "correct" } else { "WRONG" };
                println!(
                    "input 1^{ones}: output {:?} ({verdict}), \
                     {interactions} interactions, {silent_errors} silent zero-test error(s)",
                    tape
                );
            }
            other => println!("input 1^{ones}: {other:?}"),
        }
    }

    println!(
        "\n(Each zero test errs with probability Θ(n^-k/m) — Theorem 9 — so \
         occasional wrong runs\nare expected and vanish as n or k grows; \
         see benches/e8_tm_simulation.)"
    );
}
